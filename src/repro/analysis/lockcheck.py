"""``lock-discipline``: a guarded-by convention for threaded host state.

PR 9 made the reproduction a long-lived multi-threaded *service* — a
dispatcher thread, user-facing ``submit``/``status``/``cancel`` calls,
a tcp acceptor thread — and its review immediately surfaced a real
concurrency bug (a result-cache insert racing the cancellation check).
The wire-level exchange structures are already model-checked by
:mod:`repro.analysis.interleave`; this rule covers the *thread-level*
state those checks cannot see, by making the locking contract a
machine-checked annotation instead of a code comment:

**Declaring guards.**  Either a trailing comment on the attribute's
assignment (in ``__init__`` or the class body)::

    self._jobs = {}          # guarded-by: _lock

or a class-level mapping (checked identically)::

    GUARDED_BY = {"_latest": "_lock", "stats": "_lock"}

**What is enforced** (per class, purely lexically):

- every ``self.<attr>`` read or write of a guarded attribute happens
  inside a ``with self.<lock>:`` block for the declared lock — where
  "the declared lock" resolves through Condition aliasing: after
  ``self._cond = threading.Condition(self._lock)``, holding ``_cond``
  *is* holding ``_lock`` and either spelling satisfies the guard;
- a method may instead be documented as called with the lock held, via
  a trailing marker on its ``def`` line (``# lock-held: _lock``), which
  shifts the obligation to its callers — use sparingly, the marker is
  trusted, not verified;
- ``Condition.wait()`` must be called while holding the condition's
  lock **and** lexically inside a ``while`` loop (the classic
  wait-predicate idiom — an ``if`` guard misses spurious wakeups and
  notify races); ``notify``/``notify_all`` must hold the lock;
- lock acquisitions that nest (``with self._a:`` containing
  ``with self._b:``) build a per-class lock-order graph; a cycle —
  two locks taken in both orders on different paths — is the classic
  deadlock shape and is flagged on the back edge.

**Severities.**  Violations of the above are errors.  A guard naming an
attribute that is never assigned a recognized lock object is a warning
(the annotation protects nothing).  A ``GUARDED_BY`` entry whose
attribute never appears in the class is a note (stale annotation).

**Limits** (documented, deliberate): the analysis is lexical.  It does
not follow call graphs (a helper that acquires the lock for you needs
the ``# lock-held`` marker at its own ``def``), does not track locks of
*other* objects (``other._lock``), and treats code inside nested
function definitions as running without locks (a closure may execute
after the ``with`` block exits).  Thread-confined state — attributes
only one thread ever touches, like the fleet's host-loop bookkeeping —
should simply not be annotated; the convention is opt-in by design.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.core import Finding, Module, Rule, register_rule

__all__ = ["RULE_LOCK_DISCIPLINE"]

#: ``# guarded-by: _lock`` trailing an attribute assignment.
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")

#: ``# lock-held: _lock`` (or bare ``# lock-held``) trailing a ``def``.
_LOCK_HELD_RE = re.compile(r"#\s*lock-held(?::\s*([A-Za-z_]\w*))?")

#: Constructors that produce a lock-like object.
_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition"})


def _self_attr(node: ast.AST) -> str | None:
    """``X`` for a ``self.X`` attribute access, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_ctor(call: ast.AST) -> tuple[str, ast.AST | None] | None:
    """``(ctor_name, first_arg)`` when ``call`` builds a lock object."""
    if not isinstance(call, ast.Call):
        return None
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name not in _LOCK_CTORS:
        return None
    if isinstance(func, ast.Attribute):
        root = func.value
        if not (isinstance(root, ast.Name) and root.id == "threading"):
            return None
    return name, (call.args[0] if call.args else None)


@dataclass
class _ClassLocks:
    """Everything the rule knows about one class's locking contract."""

    #: lock attr -> canonical lock attr (Condition aliasing resolved).
    canonical: dict[str, str] = field(default_factory=dict)
    #: lock attrs that are Conditions (wait/notify discipline applies).
    conditions: set[str] = field(default_factory=set)
    #: guarded attr -> (declared lock attr, declaration lineno).
    guarded: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: attrs assigned anywhere in the class (for stale-GUARDED_BY notes).
    assigned: set[str] = field(default_factory=set)

    def resolve(self, lock: str) -> str:
        return self.canonical.get(lock, lock)


def _methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _collect_class(cls: ast.ClassDef, lines: list[str]) -> _ClassLocks:
    info = _ClassLocks()
    # GUARDED_BY class-level mapping.
    for node in cls.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "GUARDED_BY"
            and isinstance(node.value, ast.Dict)
        ):
            for key, value in zip(node.value.keys, node.value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    info.guarded[key.value] = (value.value, key.lineno)
    # Attribute assignments: locks, trailing guarded-by comments.
    for meth in _methods(cls):
        for node in ast.walk(meth):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value: ast.AST | None = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                info.assigned.add(attr)
                ctor = _lock_ctor(value) if value is not None else None
                if ctor is not None:
                    kind, first_arg = ctor
                    alias = _self_attr(first_arg) if first_arg is not None else None
                    info.canonical[attr] = alias if alias is not None else attr
                    if kind == "Condition":
                        info.conditions.add(attr)
                line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
                match = _GUARDED_RE.search(line)
                if match is not None:
                    info.guarded[attr] = (match.group(1), node.lineno)
    # Resolve one level of Condition aliasing onto the underlying lock.
    for attr, target in list(info.canonical.items()):
        info.canonical[attr] = info.canonical.get(target, target)
    return info


def _lock_held_marker(
    func: ast.FunctionDef | ast.AsyncFunctionDef, lines: list[str]
) -> str | None:
    """``# lock-held[: _lock]`` on the def line; ``"*"`` for the bare form."""
    line = lines[func.lineno - 1] if func.lineno <= len(lines) else ""
    match = _LOCK_HELD_RE.search(line)
    if match is None:
        return None
    return match.group(1) or "*"


class _MethodChecker:
    """One lexical pass over a method body, tracking held locks."""

    def __init__(
        self,
        module: Module,
        cls: ast.ClassDef,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        info: _ClassLocks,
        held_marker: str | None,
        edges: dict[tuple[str, str], int],
    ) -> None:
        self.module = module
        self.cls = cls
        self.func = func
        self.info = info
        self.held_marker = held_marker
        self.edges = edges
        self.findings: list[Finding] = []

    # -- helpers ----------------------------------------------------------
    def _satisfied(self, lock: str, held: frozenset[str]) -> bool:
        if lock in held:
            return True
        if self.held_marker == "*":
            return True
        return self.held_marker is not None and (
            self.info.resolve(self.held_marker) == lock
        )

    def _err(self, node: ast.AST, message: str, severity: str = "error") -> None:
        self.findings.append(
            self.module.finding(node, "lock-discipline", message, severity)
        )

    # -- the walk ---------------------------------------------------------
    def check(self) -> list[Finding]:
        self._visit_body(self.func.body, frozenset(), in_while=False)
        return self.findings

    def _visit_body(
        self, body: list[ast.stmt], held: frozenset[str], in_while: bool
    ) -> None:
        for stmt in body:
            self._visit_stmt(stmt, held, in_while)

    def _visit_stmt(
        self, stmt: ast.stmt, held: frozenset[str], in_while: bool
    ) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in stmt.items:
                self._visit_expr(item.context_expr, held, in_while)
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in self.info.canonical:
                    lock = self.info.resolve(attr)
                    for prior in held | frozenset(acquired):
                        if prior != lock:
                            key = (prior, lock)
                            self.edges.setdefault(key, stmt.lineno)
                    acquired.append(lock)
            self._visit_body(stmt.body, held | frozenset(acquired), in_while)
            return
        if isinstance(stmt, (ast.While,)):
            self._visit_expr(stmt.test, held, in_while)
            self._visit_body(stmt.body, held, in_while=True)
            self._visit_body(stmt.orelse, held, in_while=True)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def may run after the enclosing with exits:
            # conservatively, it holds nothing.
            self._visit_body(stmt.body, frozenset(), in_while=False)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter, held, in_while)
            self._visit_expr(stmt.target, held, in_while)
            self._visit_body(stmt.body, held, in_while)
            self._visit_body(stmt.orelse, held, in_while)
            return
        if isinstance(stmt, (ast.If,)):
            self._visit_expr(stmt.test, held, in_while)
            self._visit_body(stmt.body, held, in_while)
            self._visit_body(stmt.orelse, held, in_while)
            return
        if isinstance(stmt, ast.Try):
            self._visit_body(stmt.body, held, in_while)
            for handler in stmt.handlers:
                self._visit_body(handler.body, held, in_while)
            self._visit_body(stmt.orelse, held, in_while)
            self._visit_body(stmt.finalbody, held, in_while)
            return
        # Leaf statements: check every expression they contain.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._visit_expr(child, held, in_while)
            elif isinstance(child, ast.stmt):  # pragma: no cover - safety net
                self._visit_stmt(child, held, in_while)

    def _visit_expr(
        self, node: ast.AST, held: frozenset[str], in_while: bool
    ) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Lambda,)):
                continue  # deferred execution: treated as unlocked below
            if isinstance(sub, ast.Call):
                self._check_condition_call(sub, held, in_while)
            attr = _self_attr(sub)
            if attr is None or attr not in self.info.guarded:
                continue
            declared, _ = self.info.guarded[attr]
            lock = self.info.resolve(declared)
            if not self._satisfied(lock, held):
                self._err(
                    sub,
                    f"{self.cls.name}.{self.func.name}: access to "
                    f"{attr!r} (guarded-by {declared!r}) outside "
                    f"`with self.{declared}:` — annotate the method "
                    "`# lock-held` if callers hold the lock",
                )

    def _check_condition_call(
        self, call: ast.Call, held: frozenset[str], in_while: bool
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        cond_attr = _self_attr(func.value)
        if cond_attr is None or cond_attr not in self.info.conditions:
            return
        lock = self.info.resolve(cond_attr)
        if func.attr in ("wait", "wait_for", "notify", "notify_all"):
            if not self._satisfied(lock, held):
                self._err(
                    call,
                    f"{self.cls.name}.{self.func.name}: "
                    f"{cond_attr}.{func.attr}() without holding "
                    f"`self.{cond_attr}` — Condition methods require the lock",
                )
        if func.attr in ("wait", "wait_for") and not in_while:
            self._err(
                call,
                f"{self.cls.name}.{self.func.name}: {cond_attr}.{func.attr}() "
                "outside a `while <predicate>` loop — spurious wakeups and "
                "notify races make a bare wait incorrect",
            )


def _cycle_findings(
    module: Module, cls: ast.ClassDef, edges: dict[tuple[str, str], int]
) -> Iterator[Finding]:
    """DFS back-edge detection over the per-class lock-order graph."""
    graph: dict[str, list[str]] = {}
    for a, b in edges:
        graph.setdefault(a, []).append(b)
    color: dict[str, int] = {}  # 0 white (absent), 1 grey, 2 black
    stack_path: list[str] = []

    def visit(node: str) -> Iterator[tuple[str, str]]:
        color[node] = 1
        stack_path.append(node)
        for succ in graph.get(node, ()):
            if color.get(succ, 0) == 1:
                yield node, succ  # back edge: cycle
            elif color.get(succ, 0) == 0:
                yield from visit(succ)
        stack_path.pop()
        color[node] = 2

    for start in sorted(graph):
        if color.get(start, 0) == 0:
            for a, b in visit(start):
                lineno = edges.get((a, b), cls.lineno)
                yield module.finding(
                    lineno,
                    "lock-discipline",
                    f"{cls.name}: lock-order cycle — {b!r} is acquired "
                    f"while holding {a!r} here, but {a!r} is also acquired "
                    f"while holding {b!r} elsewhere (deadlock shape)",
                )


def _check_lock_discipline(module: Module) -> Iterable[Finding]:
    lines = module.source.splitlines()
    for cls in (n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)):
        info = _collect_class(cls, lines)
        if not info.guarded and not info.canonical:
            continue
        # Annotation sanity: guards must name a real lock; GUARDED_BY
        # entries must name a real attribute.
        for attr, (declared, lineno) in sorted(info.guarded.items()):
            if info.resolve(declared) not in set(info.canonical.values()):
                yield module.finding(
                    lineno,
                    "lock-discipline",
                    f"{cls.name}.{attr}: guarded-by names {declared!r}, which "
                    "is never assigned a threading.Lock/RLock/Condition in "
                    "this class — the annotation protects nothing",
                    severity="warning",
                )
            if attr not in info.assigned:
                yield module.finding(
                    lineno,
                    "lock-discipline",
                    f"{cls.name}: GUARDED_BY entry {attr!r} matches no "
                    "attribute assigned in this class (stale annotation?)",
                    severity="note",
                )
        edges: dict[tuple[str, str], int] = {}
        for meth in _methods(cls):
            if meth.name == "__init__":
                continue  # construction precedes sharing
            marker = _lock_held_marker(meth, lines)
            if marker is not None and marker != "*" and (
                info.resolve(marker) not in set(info.canonical.values())
            ):
                yield module.finding(
                    meth,
                    "lock-discipline",
                    f"{cls.name}.{meth.name}: lock-held marker names "
                    f"{marker!r}, which is not a lock of this class",
                    severity="warning",
                )
            checker = _MethodChecker(module, cls, meth, info, marker, edges)
            yield from checker.check()
        yield from _cycle_findings(module, cls, edges)


RULE_LOCK_DISCIPLINE = register_rule(Rule(
    id="lock-discipline",
    description=(
        "attributes annotated `# guarded-by: <lock>` (or via a GUARDED_BY "
        "class mapping) are only accessed under `with self.<lock>:`; "
        "Condition.wait sits in a predicate loop under its lock; nested "
        "lock acquisitions are cycle-free"
    ),
    scope="module",
    check=_check_lock_discipline,
))
