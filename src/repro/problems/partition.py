"""Number partitioning → QUBO (a Lucas-catalog application).

The paper's conclusion proposes applying ABS to further applications;
number partitioning is the canonical extra: split integers
``a_0 … a_{n−1}`` into two sets with minimal sum difference.  With
bits ``x_i`` (``x_i = 1`` ⇔ ``a_i`` in set 1) and ``c = Σ a_i``, the
difference is ``|c − 2 Σ a_i x_i|`` and

``(c − 2 Σ a_i x_i)² = c² + Σ_i 4 a_i (a_i − c) x_i
                      + Σ_{i<j} 8 a_i a_j x_i x_j``

so the QUBO with ``W_ii = 4 a_i(a_i − c)`` and ``W_ij = 4 a_i a_j``
(each unordered pair contributes ``2·W_ij = 8 a_i a_j``) satisfies
``E(X) = difference² − c²``.
"""

from __future__ import annotations

import numpy as np

from repro.qubo.matrix import QuboMatrix
from repro.utils.validation import check_bit_vector


def partition_to_qubo(values: np.ndarray) -> tuple[QuboMatrix, int]:
    """Compile integers ``values`` into ``(qubo, offset)``.

    ``E(X) + offset == (sum difference)²`` for every assignment, with
    ``offset = (Σ values)²``; the ground state is a perfect partition
    iff the minimum energy equals ``−offset``.
    """
    a = np.asarray(values)
    if a.ndim != 1 or a.size == 0:
        raise ValueError("values must be a non-empty 1-D integer array")
    if not np.issubdtype(a.dtype, np.integer):
        raise TypeError(f"values must be integers, got dtype {a.dtype}")
    if (a < 0).any():
        raise ValueError("values must be non-negative")
    a = a.astype(np.int64)
    c = int(a.sum())
    W = 4 * np.outer(a, a)
    np.fill_diagonal(W, 4 * a * (a - c))
    qubo = QuboMatrix(W, copy=False, check=False, name=f"partition-{a.size}")
    return qubo, c * c


def decode_partition(values: np.ndarray, x: np.ndarray) -> tuple[int, int, int]:
    """Return ``(sum0, sum1, |difference|)`` for an assignment."""
    a = np.asarray(values, dtype=np.int64)
    xb = check_bit_vector(x, a.size, "x")
    s1 = int((a * xb).sum())
    s0 = int(a.sum()) - s1
    return s0, s1, abs(s0 - s1)
