"""Property and regression tests for the tcp frame codec.

Three concerns, per the PR 8 acceptance bar:

1. **Round trips** — every encodable HELLO/TARGETS/RESULT/EVENTS
   payload decodes back bit-identically, for arbitrary problem sizes
   and block counts (hypothesis-driven).
2. **No silent garbage** — truncated, corrupted, or adversarial bytes
   must raise the typed :class:`FrameError`; the codec never returns a
   plausible-looking payload from a damaged frame.
3. **Platform-stable wire format** — the frames and the shm packing
   paths are pinned against golden little-endian bytes, so a
   big-endian or differently-defaulted host cannot silently change
   what goes over the wire (the ``WIRE_I64``/``WIRE_U8`` audit).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.abs.buffers import pack_solutions
from repro.abs.exchange import ENGINE_COUNTER_KEYS, WIRE_I64, WIRE_U8
from repro.abs.tcp import (
    F_EVENTS,
    F_HELLO,
    F_RESULT,
    F_TARGETS,
    FRAME_HEADER,
    FRAME_MAGIC,
    MAX_FRAME_PAYLOAD,
    FrameError,
    decode_events,
    decode_frame,
    decode_hello,
    decode_result,
    decode_targets,
    encode_events,
    encode_frame,
    encode_hello,
    encode_result,
    encode_targets,
)

pytestmark = pytest.mark.tcp

dims = st.tuples(st.integers(1, 9), st.integers(1, 70))  # (B, n)
i64 = st.integers(-(2**63), 2**63 - 1)


def random_bits(B, n, seed):
    return np.random.default_rng(seed).integers(0, 2, (B, n), dtype=np.uint8)


# -- 1. round trips ---------------------------------------------------------

@given(wid=st.integers(0, 2**31 - 1), inc=i64)
def test_hello_round_trip(wid, inc):
    ftype, payload, consumed = decode_frame(encode_hello(wid, inc))
    assert ftype == F_HELLO
    assert decode_hello(payload) == (wid, inc)


@given(dims=dims, gen=st.integers(0, 2**62), epoch=st.integers(0, 2**31), seed=st.integers(0, 99))
def test_targets_round_trip(dims, gen, epoch, seed):
    B, n = dims
    t = random_bits(B, n, seed)
    frame = encode_targets(gen, epoch, t)
    ftype, payload, consumed = decode_frame(frame)
    assert ftype == F_TARGETS and consumed == len(frame)
    got_gen, got_epoch, got = decode_targets(payload)
    assert (got_gen, got_epoch) == (gen, epoch)
    assert got.dtype == np.uint8 and (got == t).all()


@given(dims=dims, seed=st.integers(0, 99), evaluated=st.integers(0, 2**62),
       flips=st.integers(0, 2**62), inc=st.integers(0, 2**31))
def test_result_round_trip(dims, seed, evaluated, flips, inc):
    B, n = dims
    rng = np.random.default_rng(seed)
    energies = rng.integers(-(2**40), 2**40, B)
    x = random_bits(B, n, seed + 1)
    counters = {k: int(rng.integers(0, 2**40)) for k in ENGINE_COUNTER_KEYS}
    counters["exchange.tcp.reconnects"] = 3
    frame = encode_result(5, inc, energies, x, evaluated, flips, counters)
    ftype, payload, _ = decode_frame(frame)
    assert ftype == F_RESULT
    batch = decode_result(payload)
    assert batch.worker_id == 5 and batch.incarnation == inc
    assert batch.evaluated == evaluated and batch.flips == flips
    assert (batch.energies == energies).all()
    assert (batch.x == x).all()
    for k in ENGINE_COUNTER_KEYS:
        assert batch.counters[k] == counters[k]
    assert batch.counters["exchange.tcp.reconnects"] == 3


@given(events=st.lists(
    st.tuples(st.text(max_size=20),
              st.dictionaries(st.text(max_size=8), st.integers(), max_size=3)),
    max_size=5,
))
def test_events_round_trip(events):
    ftype, payload, _ = decode_frame(encode_events(2, 7, events))
    assert ftype == F_EVENTS
    assert decode_events(payload) == (2, 7, events)


@given(data=st.binary(max_size=200), ftype=st.sampled_from([F_HELLO, F_TARGETS, F_RESULT, F_EVENTS]))
def test_generic_frame_round_trip_and_streaming(data, ftype):
    frame = encode_frame(ftype, data)
    assert decode_frame(frame) == (ftype, data, len(frame))
    # streaming: every strict prefix is "incomplete", never garbage
    for cut in range(len(frame)):
        assert decode_frame(frame[:cut], partial_ok=True) is None
    # trailing bytes of a following frame are left unconsumed
    got = decode_frame(frame + b"AB\x01rest", partial_ok=True)
    assert got == (ftype, data, len(frame))


# -- 2. damage is loud ------------------------------------------------------

@given(junk=st.binary(min_size=FRAME_HEADER.size, max_size=64))
def test_garbage_never_decodes_silently(junk):
    """Random bytes either raise FrameError or — astronomically rarely —
    are a genuinely valid frame (magic + type + bound + CRC all hold)."""
    try:
        out = decode_frame(junk)
    except FrameError:
        return
    ftype, payload, consumed = out
    head = junk[: FRAME_HEADER.size]
    magic, jtype, length, crc = FRAME_HEADER.unpack(head)
    assert magic == FRAME_MAGIC and jtype == ftype
    assert zlib.crc32(payload) & 0xFFFFFFFF == crc


@given(cut=st.integers(0, 30), seed=st.integers(0, 9))
def test_truncated_frames_raise(cut, seed):
    frame = encode_targets(3, 1, random_bits(2, 19, seed))
    if cut < len(frame):
        with pytest.raises(FrameError):
            decode_frame(frame[:cut])


def test_bit_flips_raise():
    frame = bytearray(encode_targets(4, 2, random_bits(3, 17, 0)))
    for pos in range(len(frame)):
        damaged = bytearray(frame)
        damaged[pos] ^= 0x40
        try:
            out = decode_frame(damaged)
        except FrameError:
            continue
        pytest.fail(f"bit flip at byte {pos} decoded silently: {out!r}")


def test_oversized_length_rejected_without_allocation():
    head = FRAME_HEADER.pack(FRAME_MAGIC, F_TARGETS, MAX_FRAME_PAYLOAD + 1, 0)
    with pytest.raises(FrameError, match="exceeds bound"):
        decode_frame(head, partial_ok=True)  # never waits for 64 MiB of junk


def test_unknown_frame_type_rejected():
    head = FRAME_HEADER.pack(FRAME_MAGIC, 9, 0, zlib.crc32(b"") & 0xFFFFFFFF)
    with pytest.raises(FrameError, match="unknown frame type"):
        decode_frame(head)
    with pytest.raises(ValueError, match="unknown frame type"):
        encode_frame(9, b"")


def test_payload_decoders_validate_shape():
    with pytest.raises(FrameError, match="HELLO"):
        decode_hello(b"\x00" * 3)
    with pytest.raises(FrameError, match="TARGETS body"):
        _, payload, _ = decode_frame(encode_targets(1, 0, random_bits(2, 9, 0)))
        decode_targets(payload[:-1] + b"\x00\x00")
    with pytest.raises(FrameError, match="RESULT payload"):
        decode_result(b"\x00" * 20)
    with pytest.raises(FrameError, match="EVENTS"):
        decode_events(struct.pack("<iq", 0, 0) + b"not a pickle")


# -- 3. the wire format is pinned -------------------------------------------

def test_wire_dtypes_are_explicit_little_endian():
    """The shm rings and tcp frames share these dtypes; native-order
    ``np.int64`` would silently flip on a big-endian host."""
    assert WIRE_I64 == np.dtype("<i8") and WIRE_I64.byteorder in ("<", "=")
    assert np.dtype("<i8").itemsize == 8
    assert WIRE_U8 == np.dtype("u1")
    # struct formats in the codec are all explicitly little-endian
    assert FRAME_HEADER.size == 12


def test_golden_frame_bytes():
    """Byte-for-byte pin of every frame type, so any codec change that
    would break cross-host (or cross-version) interop fails here."""
    wid_inc = struct.pack("<iq", 1, 2)
    assert encode_hello(1, 2) == (
        b"AB" + bytes([F_HELLO, 0]) + struct.pack(
            "<II", len(wid_inc), zlib.crc32(wid_inc) & 0xFFFFFFFF
        ) + wid_inc
    )

    targets = np.array([[1, 0, 1, 1, 0, 0, 0, 0, 1]], dtype=np.uint8)
    body = struct.pack("<qqii", 7, 1, 1, 9) + pack_solutions(targets).tobytes()
    assert encode_targets(7, 1, targets) == (
        b"AB" + bytes([F_TARGETS, 0]) + struct.pack(
            "<II", len(body), zlib.crc32(body) & 0xFFFFFFFF
        ) + body
    )
    # and the packbits payload itself is bit-order stable
    assert pack_solutions(targets).tobytes() == bytes([0b10110000, 0b10000000])


def test_golden_result_bytes_hexdump():
    """Full RESULT frame against a frozen hexdump — the strongest pin:
    any reordering of the counter vector, a dtype drift, or a struct
    layout change shows up as a diff here."""
    energies = np.array([-5, -9], dtype=np.int64)
    x = np.array([[1, 0, 0, 0, 0, 0, 0, 0, 1, 1],
                  [0, 1, 0, 0, 0, 0, 0, 0, 0, 1]], dtype=np.uint8)
    counters = {k: i + 1 for i, k in enumerate(ENGINE_COUNTER_KEYS)}
    frame = encode_result(1, 0, energies, x, 100, 10, counters)
    k = len(ENGINE_COUNTER_KEYS)
    expect = (
        struct.pack("<iqiiqq", 1, 0, 2, 10, 100, 10)
        + np.arange(1, k + 1, dtype="<i8").tobytes()
        + struct.pack("<qq", 0, 0)  # tcp reconnects/dropped: absent → 0
        + np.array([-5, -9], dtype="<i8").tobytes()
        + bytes([0b10000000, 0b11000000, 0b01000000, 0b01000000])
    )
    assert frame == (
        b"AB" + bytes([F_RESULT, 0])
        + struct.pack("<II", len(expect), zlib.crc32(expect) & 0xFFFFFFFF)
        + expect
    )


def test_shm_packing_paths_use_wire_dtypes():
    """The regression for the latent-bug audit: the mailbox/ring views
    and the queue/shm publish paths must produce little-endian int64
    and plain uint8 regardless of platform defaults."""
    from repro.abs.exchange import SolutionRing, TargetMailbox

    box = TargetMailbox.create(1, 8)
    try:
        assert box._header.dtype == WIRE_I64
        assert box._slots.dtype == WIRE_U8
    finally:
        box.unlink()
    ring = SolutionRing.create(1, 8, slots=2)
    try:
        assert ring._header.dtype == WIRE_I64
        assert ring._meta.dtype == WIRE_I64
        assert ring._energies.dtype == WIRE_I64
        assert ring._packed.dtype == WIRE_U8
    finally:
        ring.unlink()
