"""Differential-equivalence suite: every registered backend must walk
step-for-step identically to the scalar references.

The oracle is the scalar code the paper's algorithms were first
implemented against — :class:`~repro.search.policies.WindowMinDeltaPolicy`
(Figure 2 selection), ``SearchState.flip`` (the Eq. 16 refresh),
``_scan_best`` (Algorithm 4's inner incumbent check) and
:func:`~repro.search.straight.straight_search` (Algorithm 5).  Each
test drives a :class:`BulkSearchEngine` on one backend and re-derives
the expected trajectory per block from those primitives, comparing
``X``/``delta``/``energy``/``best_x``/``best_energy``/counters exactly
(int64 arithmetic: no tolerances anywhere).

Parametrized over the registry, so a newly registered backend is pinned
automatically.  On machines without numba, the ``numba`` name resolves
to the tagged numpy fallback — the fallback lane is then what gets
pinned, which is exactly what production would run.
"""

import warnings

import numpy as np
import pytest

from repro.backends import available_backends, resolve_backend
from repro.gpusim import BulkSearchEngine
from repro.problems.maxcut import maxcut_to_qubo, maxcut_to_sparse_qubo, random_graph
from repro.qubo import QuboMatrix, SearchState
from repro.search.bulk import _scan_best
from repro.search.policies import WindowMinDeltaPolicy
from repro.search.straight import straight_search
from tests.helpers.engine_check import assert_engine_valid

_INT64_MAX = np.iinfo(np.int64).max


@pytest.fixture(params=available_backends())
def backend(request):
    """A fresh backend instance per test, for every registered name."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # numba fallback notice
        return resolve_backend(request.param)


@pytest.fixture
def problem():
    return QuboMatrix.random(48, seed=97)


@pytest.fixture
def sparse_pair():
    g = random_graph(56, 260, weighted=True, seed=23)
    return maxcut_to_qubo(g), maxcut_to_sparse_qubo(g)


def _scalar_local_walk(weights, steps, window, offset):
    """Engine-equivalent scalar trajectory for one block from zero."""
    st = SearchState.zeros(weights)
    pol = WindowMinDeltaPolicy(window, offset=offset)
    rng = np.random.default_rng(0)  # the policy is deterministic; rng unused
    best_e, best_x = _INT64_MAX, np.zeros(st.n, dtype=np.uint8)
    trajectory = []
    for _ in range(steps):
        st.flip(pol.select(st, rng))
        best_e, best_x = _scan_best(st, best_e, best_x)
        trajectory.append(
            (st.x.copy(), st.delta.copy(), st.energy, best_e, best_x.copy())
        )
    return trajectory


class TestLocalStepsEquivalence:
    @pytest.mark.parametrize("window", [1, 3, 16, 48])
    def test_walk_matches_scalar(self, backend, problem, window):
        B = 3
        eng = BulkSearchEngine(
            problem, B, windows=window, offsets=np.array([0, 7, 31]), backend=backend
        )
        offsets0 = eng.offsets.copy()
        eng.local_steps(60)
        for b in range(B):
            x, delta, energy, best_e, best_x = _scalar_local_walk(
                problem, 60, window, int(offsets0[b])
            )[-1]
            assert np.array_equal(eng.X[b], x), f"block {b}: X diverged"
            assert np.array_equal(eng.delta[b], delta), f"block {b}: delta diverged"
            assert eng.energy[b] == energy, f"block {b}: energy diverged"
            assert eng.best_energy[b] == best_e, f"block {b}: best_energy diverged"
            assert np.array_equal(eng.best_x[b], best_x), f"block {b}: best_x diverged"

    def test_every_intermediate_step_matches(self, backend, problem):
        """Single-step granularity: not just the same destination, the
        same path — X/delta/energy/best after *each* forced flip."""
        steps, window = 25, 8
        eng = BulkSearchEngine(
            problem, 2, windows=window, offsets=np.zeros(2, dtype=np.int64),
            backend=backend,
        )
        reference = _scalar_local_walk(problem, steps, window, 0)
        for i in range(steps):
            eng.local_steps(1)
            x, delta, energy, best_e, best_x = reference[i]
            for b in range(2):
                assert np.array_equal(eng.X[b], x), f"step {i}, block {b}: X"
                assert np.array_equal(eng.delta[b], delta), f"step {i}: delta"
                assert eng.energy[b] == energy, f"step {i}: energy"
                assert eng.best_energy[b] == best_e, f"step {i}: best_energy"
                assert np.array_equal(eng.best_x[b], best_x), f"step {i}: best_x"

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_problems_stay_valid(self, backend, seed):
        problem = QuboMatrix.random(32, seed=seed)
        eng = BulkSearchEngine(problem, 4, windows=np.array([2, 5, 11, 32]), backend=backend)
        eng.local_steps(50)
        assert_engine_valid(eng, context=f"seed={seed} local walk")

    def test_zero_steps_is_identity(self, backend, problem):
        eng = BulkSearchEngine(problem, 2, backend=backend)
        before = (eng.X.copy(), eng.delta.copy(), eng.energy.copy(), eng.offsets.copy())
        eng.local_steps(0)
        assert np.array_equal(eng.X, before[0])
        assert np.array_equal(eng.delta, before[1])
        assert np.array_equal(eng.energy, before[2])
        assert np.array_equal(eng.offsets, before[3])


class TestStraightEquivalence:
    @pytest.mark.parametrize("scan_neighbors", [True, False])
    def test_matches_scalar(self, backend, problem, scan_neighbors, rng):
        B = 4
        targets = rng.integers(0, 2, (B, problem.n), dtype=np.uint8)
        eng = BulkSearchEngine(problem, B, backend=backend)
        flips = eng.straight_to(targets, scan_neighbors=scan_neighbors)
        assert (eng.X == targets).all()
        assert flips == int(targets.sum())
        for b in range(B):
            st = SearchState.zeros(problem)
            bx, be, _ = straight_search(st, targets[b], scan_neighbors=scan_neighbors)
            assert eng.energy[b] == st.energy, f"block {b}: energy"
            assert np.array_equal(eng.delta[b], st.delta), f"block {b}: delta"
            assert eng.best_energy[b] == be, f"block {b}: best_energy"
            assert np.array_equal(eng.best_x[b], bx), f"block {b}: best_x"

    def test_blocks_retire_independently(self, backend, problem):
        eng = BulkSearchEngine(problem, 3, backend=backend)
        targets = np.zeros((3, problem.n), dtype=np.uint8)
        targets[0, :2] = 1
        targets[1, :17] = 1
        targets[2, :] = 1
        eng.straight_to(targets)
        assert (eng.X == targets).all()
        assert_engine_valid(eng, context="independent retirement")


class TestSparseEquivalence:
    def test_sparse_matches_dense(self, backend, sparse_pair, rng):
        dense, sparse = sparse_pair
        kw = dict(windows=8, offsets=np.zeros(3, dtype=np.int64), backend=backend)
        e_d = BulkSearchEngine(dense, 3, **kw)
        e_s = BulkSearchEngine(sparse, 3, **kw)
        targets = rng.integers(0, 2, (3, dense.n), dtype=np.uint8)
        for eng in (e_d, e_s):
            eng.straight_to(targets)
            eng.local_steps(70)
        assert np.array_equal(e_d.X, e_s.X)
        assert np.array_equal(e_d.delta, e_s.delta)
        assert np.array_equal(e_d.energy, e_s.energy)
        assert np.array_equal(e_d.best_energy, e_s.best_energy)
        assert np.array_equal(e_d.best_x, e_s.best_x)
        assert_engine_valid(e_s, context="sparse walk")

    def test_sparse_matches_scalar_straight(self, backend, sparse_pair, rng):
        _, sparse = sparse_pair
        targets = rng.integers(0, 2, (2, sparse.n), dtype=np.uint8)
        eng = BulkSearchEngine(sparse, 2, backend=backend)
        eng.straight_to(targets)
        for b in range(2):
            st = SearchState.zeros(sparse)
            bx, be, _ = straight_search(st, targets[b], scan_neighbors=True)
            assert eng.energy[b] == st.energy
            assert np.array_equal(eng.delta[b], st.delta)
            assert eng.best_energy[b] == be


class TestCrossBackendIdentity:
    """All registered backends agree with each other, state and counters."""

    def _run(self, backend_name, problem, targets):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            eng = BulkSearchEngine(
                problem, targets.shape[0], windows=np.array([2, 6, 16]),
                backend=backend_name,
            )
        eng.straight_to(targets)
        eng.local_steps(40)
        eng.straight_to(targets ^ 1)
        eng.local_steps(40)
        return eng

    def test_identical_states_and_counters(self, problem, rng):
        targets = rng.integers(0, 2, (3, problem.n), dtype=np.uint8)
        engines = {
            name: self._run(name, problem, targets) for name in available_backends()
        }
        ref = engines.pop("numpy")
        for name, eng in engines.items():
            assert np.array_equal(eng.X, ref.X), name
            assert np.array_equal(eng.delta, ref.delta), name
            assert np.array_equal(eng.energy, ref.energy), name
            assert np.array_equal(eng.best_energy, ref.best_energy), name
            assert np.array_equal(eng.best_x, ref.best_x), name
            assert np.array_equal(eng.offsets, ref.offsets), name
            assert eng.counters.as_dict() == ref.counters.as_dict(), name


class TestSolveLevelEquivalence:
    """A full seeded solve is backend-independent, result and counters."""

    def test_seeded_solve_identical_across_backends(self, problem):
        from repro.api import solve

        results = {}
        for name in available_backends():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                results[name] = solve(
                    problem, max_rounds=5, seed=42, blocks_per_gpu=8, backend=name
                )
        ref = results.pop("numpy")
        for name, res in results.items():
            assert res.best_energy == ref.best_energy, name
            assert np.array_equal(res.best_x, ref.best_x), name
            assert res.counters == ref.counters, name
            assert res.rounds == ref.rounds, name
