"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import signal
import socket

import numpy as np
import pytest
from hypothesis import HealthCheck, settings


def _loopback_available() -> bool:
    """Whether this environment can bind a loopback listener.

    Hardened sandboxes sometimes forbid even 127.0.0.1 binds; the tcp
    exchange lane is meaningless there, so its tests skip cleanly
    instead of erroring."""
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
            s.bind(("127.0.0.1", 0))
        return True
    except OSError:
        return False


def pytest_collection_modifyitems(config, items):
    if _loopback_available():
        return
    skip = pytest.mark.skip(reason="loopback sockets unavailable in this sandbox")
    for item in items:
        if item.get_closest_marker("tcp") is not None:
            item.add_marker(skip)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Enforce ``@pytest.mark.timeout(seconds)`` without a plugin.

    The multiprocessing suite must *fail* within its budget rather than
    hang CI when a worker/host handshake deadlocks.  When the real
    ``pytest-timeout`` plugin is installed it takes precedence; this
    fallback covers environments without it, using ``SIGALRM`` (so it
    is a no-op on platforms lacking it, e.g. Windows).
    """
    marker = item.get_closest_marker("timeout")
    if (
        marker is None
        or not hasattr(signal, "SIGALRM")
        or item.config.pluginmanager.hasplugin("timeout")
    ):
        yield
        return
    seconds = float(marker.args[0]) if marker.args else 60.0

    def _expired(signum, frame):
        raise TimeoutError(f"test exceeded its {seconds:g}s timeout budget")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)

# One moderate profile for CI speed; property tests are numerous, so
# each keeps its example count modest and skips the shrink deadline.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for ad-hoc randomness in tests."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_qubo():
    """A 16-bit random instance small enough for exhaustive checking."""
    from repro.qubo import QuboMatrix

    return QuboMatrix.random(12, seed=12345)


@pytest.fixture
def medium_qubo():
    """A 64-bit instance for walk-based tests."""
    from repro.qubo import QuboMatrix

    return QuboMatrix.random(64, seed=54321)
