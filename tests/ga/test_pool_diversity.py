"""Property tests for the Diverse-ABS Hamming-niched pool admission.

Pins the invariants ``SolutionPool.check_invariants`` asserts —
sortedness, distinctness, pairwise min-Hamming separation — across
arbitrary ``insert``/``insert_batch`` interleavings, and that
``insert_batch`` stays semantically identical to sequential ``insert``
under the diversity policy.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.pool import SolutionPool

pytestmark = pytest.mark.diverse


def bits(*vals):
    return np.array(vals, dtype=np.uint8)


def hamming(a, b):
    return int((a != b).sum())


def pairwise_min_distance(pool):
    mat = pool.as_matrix()
    best = None
    for i in range(len(mat)):
        for j in range(i + 1, len(mat)):
            d = hamming(mat[i], mat[j])
            best = d if best is None else min(best, d)
    return best


# One candidate stream: interleaved single inserts and batches, drawn
# from a deliberately small bit-space so niches collide constantly.
ops_strategy = st.lists(
    st.tuples(
        st.booleans(),  # True: batch op, False: single insert
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**12 - 1),  # bit pattern
                st.integers(min_value=-50, max_value=50),  # energy
            ),
            min_size=1,
            max_size=6,
        ),
    ),
    min_size=1,
    max_size=12,
)


def to_vec(pattern, n=12):
    return np.array([(pattern >> i) & 1 for i in range(n)], dtype=np.uint8)


class TestAdmissionSemantics:
    def test_near_worse_candidate_rejected(self):
        pool = SolutionPool(8, capacity=8, min_distance=3)
        assert pool.insert(bits(0, 0, 0, 0, 0, 0, 0, 0), -10)
        # Distance 1 from the entry, worse energy: niched out.
        assert not pool.insert(bits(1, 0, 0, 0, 0, 0, 0, 0), -5)
        assert pool.rejected_diverse == 1
        assert pool.rejected_worse == 0

    def test_near_better_candidate_replaces_niche(self):
        pool = SolutionPool(8, capacity=8, min_distance=3)
        pool.insert(bits(0, 0, 0, 0, 0, 0, 0, 0), -10)
        pool.insert(bits(1, 1, 1, 1, 1, 1, 1, 1), -20)
        # Distance 1 from the first entry and better: evicts it.
        assert pool.insert(bits(1, 0, 0, 0, 0, 0, 0, 0), -15)
        assert len(pool) == 2
        assert not pool.contains(bits(0, 0, 0, 0, 0, 0, 0, 0))
        assert pool.energies() == [-20, -15]

    def test_candidate_straddling_two_niches_evicts_both(self):
        pool = SolutionPool(8, capacity=8, min_distance=3)
        pool.insert(bits(0, 0, 0, 0, 0, 0, 0, 0), -10)
        pool.insert(bits(1, 1, 0, 0, 0, 0, 0, 0), -12)
        # Distance 1 and 2 from the two entries; beats both.
        assert pool.insert(bits(1, 0, 0, 0, 0, 0, 0, 0), -30)
        assert len(pool) == 1
        assert pool.best().energy == -30
        pool.check_invariants()

    def test_candidate_must_beat_best_of_niche(self):
        pool = SolutionPool(8, capacity=8, min_distance=3)
        pool.insert(bits(0, 0, 0, 0, 0, 0, 0, 0), -30)
        pool.insert(bits(1, 1, 1, 0, 0, 0, 0, 0), -10)
        # Beats one near entry but not the other: rejected, pool intact.
        assert not pool.insert(bits(1, 1, 0, 0, 0, 0, 0, 0), -20)
        assert len(pool) == 2
        assert pool.rejected_diverse == 1

    @pytest.mark.parametrize("d", [0, 1])
    def test_min_distance_leq_one_is_base_policy(self, d):
        # d=1 only excludes exact duplicates, which the key set already
        # rejects — both configurations must match the base pool.
        rng = np.random.default_rng(0)
        base = SolutionPool(10, capacity=6)
        dpool = SolutionPool(10, capacity=6, min_distance=d)
        for _ in range(200):
            x = rng.integers(0, 2, 10).astype(np.uint8)
            e = int(rng.integers(-40, 40))
            assert base.insert(x.copy(), e) == dpool.insert(x.copy(), e)
        assert base.energies() == dpool.energies()
        assert np.array_equal(base.as_matrix(), dpool.as_matrix())
        assert dpool.rejected_diverse == 0

    def test_mean_pairwise_distance(self):
        pool = SolutionPool(8, capacity=8, min_distance=4)
        assert pool.mean_pairwise_distance() is None
        pool.insert(bits(0, 0, 0, 0, 0, 0, 0, 0), -1)
        assert pool.mean_pairwise_distance() is None
        pool.insert(bits(1, 1, 1, 1, 0, 0, 0, 0), -2)
        assert pool.mean_pairwise_distance() == 4.0


class TestInterleavingProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=ops_strategy, d=st.integers(min_value=0, max_value=6))
    def test_invariants_hold_after_any_interleaving(self, ops, d):
        pool = SolutionPool(12, capacity=5, min_distance=d)
        for is_batch, entries in ops:
            if is_batch:
                X = np.stack([to_vec(p) for p, _ in entries])
                E = np.array([e for _, e in entries], dtype=np.int64)
                pool.insert_batch(X, E)
            else:
                for p, e in entries:
                    pool.insert(to_vec(p), e)
            pool.check_invariants()
        # Explicit re-checks, independent of check_invariants:
        energies = pool.energies()
        assert energies == sorted(energies)
        keys = {row.tobytes() for row in pool.as_matrix()}
        assert len(keys) == len(pool)
        if d > 1 and len(pool) >= 2:
            assert pairwise_min_distance(pool) >= d

    @settings(max_examples=60, deadline=None)
    @given(ops=ops_strategy, d=st.integers(min_value=0, max_value=6))
    def test_batch_equals_sequential(self, ops, d):
        batched = SolutionPool(12, capacity=5, min_distance=d)
        sequential = SolutionPool(12, capacity=5, min_distance=d)
        for is_batch, entries in ops:
            X = np.stack([to_vec(p) for p, _ in entries])
            E = np.array([e for _, e in entries], dtype=np.int64)
            if is_batch:
                got = batched.insert_batch(X, E)
            else:
                got = sum(batched.insert(X[i], int(E[i])) for i in range(len(E)))
            want = sum(
                sequential.insert(X[i], int(E[i])) for i in range(len(E))
            )
            assert got == want
        assert batched.energies() == sequential.energies()
        assert np.array_equal(batched.as_matrix(), sequential.as_matrix())
        for name in (
            "inserted",
            "rejected_duplicate",
            "rejected_worse",
            "rejected_diverse",
        ):
            assert getattr(batched, name) == getattr(sequential, name)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_seeded_pool_respects_separation(self, seed):
        pool = SolutionPool(16, capacity=8, min_distance=5)
        pool.seed_random(seed)
        pool.check_invariants()
        rng = np.random.default_rng(seed)
        for _ in range(50):
            pool.insert(
                rng.integers(0, 2, 16).astype(np.uint8), int(rng.integers(-99, 0))
            )
        pool.check_invariants()
        if len(pool) >= 2:
            assert pairwise_min_distance(pool) >= 5

    def test_infinite_seeds_replaced_by_finite_niche_winners(self):
        pool = SolutionPool(12, capacity=4, min_distance=4)
        pool.seed_random(3)
        assert all(math.isinf(e) for e in pool.energies())
        rng = np.random.default_rng(4)
        for _ in range(40):
            pool.insert(rng.integers(0, 2, 12).astype(np.uint8), -5)
        assert any(math.isfinite(e) for e in pool.energies())
        pool.check_invariants()
