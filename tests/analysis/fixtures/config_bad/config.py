"""Fixture config: `gamma` is plumbed nowhere."""

from dataclasses import dataclass


@dataclass
class AbsConfig:
    alpha: int = 1
    gamma: int = 3
