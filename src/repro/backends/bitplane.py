"""Bit-plane kernel backend: packed uint64 state + runtime-compiled C loops.

The paper's device kernels keep each block's solution as machine words
in the register file and update energies incrementally; this backend is
the CPU analogue of that representation.  State ``X`` is packed into
``B × ⌈n/64⌉`` little-endian uint64 *bit planes* (bit ``i`` of block
``b`` is bit ``i & 63`` of word ``i >> 6`` — the same layout the
Figure-5 exchange rings ship via ``np.packbits``), and the whole
``run_local_steps`` hot loop (Figure 2 windowed min-Δ select → Eq. 16
delta refresh → Algorithm 4 incumbent check → offset advance) runs as
one C call per batch: the per-step sign vectors ``1 - 2x`` are read
directly from the packed planes with shifts and masks instead of a
``B × n`` integer multiply, and the Eq. 16 row add is fused with the
incumbent's neighbourhood min scan so ``delta`` is traversed once per
flip instead of twice.

The C translation unit is compiled once per process at ``prepare_*``
time (``cc -O3 -fwrapv -shared``) and loaded through :mod:`ctypes` —
no third-party JIT dependency.  ``-fwrapv`` pins C signed overflow to
two's-complement wraparound, so the arithmetic is bit-for-bit the
NumPy reference's int64/int32 modular arithmetic; the differential
suite (``tests/backends/``) holds this backend to exact state equality
at single-step granularity like every other backend.

Two dense weight tiers are chosen automatically by ``prepare_dense``:

- ``dense_w16_d32`` — off-diagonal weights fit int16 *and* the Δ bound
  ``max_i(|W_ii| + 2·Σ_{j≠i}|W_ij|)`` fits int32: 16-bit weight rows
  and a 32-bit delta vector quarter the memory traffic of the int64
  reference (the dominant cost at n = 1024).
- ``dense_w64`` — the general int64 fallback tier, same fused loop.

Sparse problems use a CSR scatter variant (``sparse_w64``) whose
delta-write count matches the reference exactly: ``degree(k) + 1`` per
flip.  In every tier the weight rows are stored with a **zeroed
diagonal**: Eq. 16 only touches ``j ≠ k`` and the kernel pre-writes
``d[k] = -d_k``, which then survives the fused row add (it gains
``W_kk = 0``) and participates in the running neighbourhood minimum.

A C compiler is an *optional* dependency, gated exactly like numba:
when none is found (or ``REPRO_NO_CC`` is set, which the test suite
uses to exercise the fallback lane), :func:`make_bitplane_backend`
returns the NumPy reference backend tagged ``fallback_from="bitplane"``
and warns once per process.  The packed-plane helpers
(:func:`pack_rows` / :func:`unpack_rows` / :func:`hamming_distances`)
are plain NumPy and always available — straight-search distances are
XOR + popcount (``np.bitwise_count``) on the planes.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.backends.base import KernelBackend, PreparedWeights
from repro.backends.numpy_backend import NumpyBackend

__all__ = [
    "BitplaneBackend",
    "BitplanePreparedWeights",
    "cc_available",
    "hamming_distances",
    "make_bitplane_backend",
    "pack_rows",
    "unpack_rows",
]

_warned = False

_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

#define RESTRICT __restrict__

/* Batched Algorithm-4 loops over bit-plane state.
 *
 * X is packed little-endian: bit i of block b is bit (i & 63) of word
 * Xp[b*nw + (i >> 6)].  Weight rows arrive with a ZEROED diagonal so
 * the pre-written d[k] = -d_k survives the fused Eq. 16 pass (it gains
 * W[k][k] = 0) and is seen by the running neighbourhood minimum.
 * Compile with -fwrapv: signed wraparound must match numpy exactly.
 */

int64_t bp_local_steps_w16_d32(
    const int16_t *RESTRICT W,      /* n*n off-diagonal weights, diag zeroed */
    uint64_t *RESTRICT Xp,          /* B*nw packed state planes */
    int32_t  *RESTRICT delta,       /* B*n */
    int64_t  *RESTRICT energy,      /* B */
    int64_t  *RESTRICT best_e,      /* B */
    uint64_t *RESTRICT bestp,       /* B*nw incumbent snapshot planes */
    int64_t  *RESTRICT bestflip,    /* B: -2 untouched, -1 position, >=0 bit */
    int64_t  *RESTRICT offsets,     /* B, advanced in place */
    const int64_t *RESTRICT windows,
    int64_t n, int64_t B, int64_t nw, int64_t steps)
{
    for (int64_t t = 0; t < steps; t++) {
        for (int64_t b = 0; b < B; b++) {
            int32_t *RESTRICT d = delta + b * n;
            uint64_t *RESTRICT xp = Xp + b * nw;
            /* Figure 2 windowed min-delta select (first minimum wins). */
            int64_t off = offsets[b], l = windows[b];
            int64_t k = off;
            int32_t wmin = d[off];
            for (int64_t j = 1; j < l; j++) {
                int64_t idx = off + j;
                if (idx >= n) idx -= n;
                if (d[idx] < wmin) { wmin = d[idx]; k = idx; }
            }
            /* Eq. 16 flip, fused with the incumbent's min scan. */
            int32_t dk_old = d[k];
            uint64_t kbit = 1ULL << (k & 63);
            int sk = (xp[k >> 6] & kbit) ? -1 : 1;
            xp[k >> 6] ^= kbit;
            d[k] = -dk_old;
            energy[b] += (int64_t)dk_old;
            const int16_t *RESTRICT row = W + k * n;
            int32_t mn = INT32_MAX;
            if (sk > 0) {
                for (int64_t w = 0; w < nw; w++) {
                    uint64_t bits = xp[w];
                    int64_t base = w << 6;
                    int64_t lim = n - base; if (lim > 64) lim = 64;
                    int32_t *RESTRICT dd = d + base;
                    const int16_t *RESTRICT rr = row + base;
                    for (int64_t j = 0; j < lim; j++) {
                        int32_t msk = -(int32_t)((bits >> j) & 1);
                        int32_t r2 = 2 * (int32_t)rr[j];
                        int32_t v = dd[j] + ((r2 ^ msk) - msk);
                        dd[j] = v;
                        if (v < mn) mn = v;
                    }
                }
            } else {
                for (int64_t w = 0; w < nw; w++) {
                    uint64_t bits = xp[w];
                    int64_t base = w << 6;
                    int64_t lim = n - base; if (lim > 64) lim = 64;
                    int32_t *RESTRICT dd = d + base;
                    const int16_t *RESTRICT rr = row + base;
                    for (int64_t j = 0; j < lim; j++) {
                        int32_t msk = -(int32_t)(~(bits >> j) & 1);
                        int32_t r2 = 2 * (int32_t)rr[j];
                        int32_t v = dd[j] + ((r2 ^ msk) - msk);
                        dd[j] = v;
                        if (v < mn) mn = v;
                    }
                }
            }
            /* Algorithm 4 incumbent: best neighbour first, then position. */
            int64_t cand = energy[b] + (int64_t)mn;
            if (cand < best_e[b]) {
                int64_t pos = 0;
                while (d[pos] != mn) pos++;     /* first minimum */
                best_e[b] = cand;
                memcpy(bestp + b * nw, xp, (size_t)nw * 8);
                bestflip[b] = pos;
            }
            if (energy[b] < best_e[b]) {
                best_e[b] = energy[b];
                memcpy(bestp + b * nw, xp, (size_t)nw * 8);
                bestflip[b] = -1;
            }
            offsets[b] = (off + l) % n;
        }
    }
    return steps * B * n;
}

int64_t bp_local_steps_w64(
    const int64_t *RESTRICT W,      /* n*n off-diagonal weights, diag zeroed */
    uint64_t *RESTRICT Xp,
    int64_t  *RESTRICT delta,
    int64_t  *RESTRICT energy,
    int64_t  *RESTRICT best_e,
    uint64_t *RESTRICT bestp,
    int64_t  *RESTRICT bestflip,
    int64_t  *RESTRICT offsets,
    const int64_t *RESTRICT windows,
    int64_t n, int64_t B, int64_t nw, int64_t steps)
{
    for (int64_t t = 0; t < steps; t++) {
        for (int64_t b = 0; b < B; b++) {
            int64_t *RESTRICT d = delta + b * n;
            uint64_t *RESTRICT xp = Xp + b * nw;
            int64_t off = offsets[b], l = windows[b];
            int64_t k = off;
            int64_t wmin = d[off];
            for (int64_t j = 1; j < l; j++) {
                int64_t idx = off + j;
                if (idx >= n) idx -= n;
                if (d[idx] < wmin) { wmin = d[idx]; k = idx; }
            }
            int64_t dk_old = d[k];
            uint64_t kbit = 1ULL << (k & 63);
            int sk = (xp[k >> 6] & kbit) ? -1 : 1;
            xp[k >> 6] ^= kbit;
            d[k] = -dk_old;
            energy[b] += dk_old;
            const int64_t *RESTRICT row = W + k * n;
            int64_t mn = INT64_MAX;
            if (sk > 0) {
                for (int64_t w = 0; w < nw; w++) {
                    uint64_t bits = xp[w];
                    int64_t base = w << 6;
                    int64_t lim = n - base; if (lim > 64) lim = 64;
                    int64_t *RESTRICT dd = d + base;
                    const int64_t *RESTRICT rr = row + base;
                    for (int64_t j = 0; j < lim; j++) {
                        int64_t msk = -(int64_t)((bits >> j) & 1);
                        int64_t r2 = rr[j] + rr[j];
                        int64_t v = dd[j] + ((r2 ^ msk) - msk);
                        dd[j] = v;
                        if (v < mn) mn = v;
                    }
                }
            } else {
                for (int64_t w = 0; w < nw; w++) {
                    uint64_t bits = xp[w];
                    int64_t base = w << 6;
                    int64_t lim = n - base; if (lim > 64) lim = 64;
                    int64_t *RESTRICT dd = d + base;
                    const int64_t *RESTRICT rr = row + base;
                    for (int64_t j = 0; j < lim; j++) {
                        int64_t msk = -(int64_t)(~(bits >> j) & 1);
                        int64_t r2 = rr[j] + rr[j];
                        int64_t v = dd[j] + ((r2 ^ msk) - msk);
                        dd[j] = v;
                        if (v < mn) mn = v;
                    }
                }
            }
            int64_t cand = energy[b] + mn;
            if (cand < best_e[b]) {
                int64_t pos = 0;
                while (d[pos] != mn) pos++;
                best_e[b] = cand;
                memcpy(bestp + b * nw, xp, (size_t)nw * 8);
                bestflip[b] = pos;
            }
            if (energy[b] < best_e[b]) {
                best_e[b] = energy[b];
                memcpy(bestp + b * nw, xp, (size_t)nw * 8);
                bestflip[b] = -1;
            }
            offsets[b] = (off + l) % n;
        }
    }
    return steps * B * n;
}

int64_t bp_local_steps_sparse(
    const int64_t *RESTRICT indptr,  /* n+1 (off-diagonal CSR) */
    const int64_t *RESTRICT indices,
    const int64_t *RESTRICT data,
    uint64_t *RESTRICT Xp,
    int64_t  *RESTRICT delta,
    int64_t  *RESTRICT energy,
    int64_t  *RESTRICT best_e,
    uint64_t *RESTRICT bestp,
    int64_t  *RESTRICT bestflip,
    int64_t  *RESTRICT offsets,
    const int64_t *RESTRICT windows,
    int64_t n, int64_t B, int64_t nw, int64_t steps)
{
    int64_t updates = 0;
    for (int64_t t = 0; t < steps; t++) {
        for (int64_t b = 0; b < B; b++) {
            int64_t *RESTRICT d = delta + b * n;
            uint64_t *RESTRICT xp = Xp + b * nw;
            int64_t off = offsets[b], l = windows[b];
            int64_t k = off;
            int64_t wmin = d[off];
            for (int64_t j = 1; j < l; j++) {
                int64_t idx = off + j;
                if (idx >= n) idx -= n;
                if (d[idx] < wmin) { wmin = d[idx]; k = idx; }
            }
            /* Eq. 16 scatter over the flipped bit's CSR neighbours; the
             * CSR holds off-diagonal entries only, so j != k always and
             * flipping k's plane bit first is order-equivalent. */
            int64_t dk_old = d[k];
            uint64_t kbit = 1ULL << (k & 63);
            int sk = (xp[k >> 6] & kbit) ? -1 : 1;
            xp[k >> 6] ^= kbit;
            for (int64_t p = indptr[k]; p < indptr[k + 1]; p++) {
                int64_t j = indices[p];
                int sj = (xp[j >> 6] >> (j & 63)) & 1 ? -1 : 1;
                int64_t w2 = data[p] + data[p];
                d[j] += (sj == sk) ? w2 : -w2;
            }
            updates += indptr[k + 1] - indptr[k] + 1;
            d[k] = -dk_old;
            energy[b] += dk_old;
            /* Reference update_best: full first-minimum scan. */
            int64_t pos = 0, mn = d[0];
            for (int64_t j = 1; j < n; j++)
                if (d[j] < mn) { mn = d[j]; pos = j; }
            int64_t cand = energy[b] + mn;
            if (cand < best_e[b]) {
                best_e[b] = cand;
                memcpy(bestp + b * nw, xp, (size_t)nw * 8);
                bestflip[b] = pos;
            }
            if (energy[b] < best_e[b]) {
                best_e[b] = energy[b];
                memcpy(bestp + b * nw, xp, (size_t)nw * 8);
                bestflip[b] = -1;
            }
            offsets[b] = (off + l) % n;
        }
    }
    return updates;
}
"""

_KERNEL_NAMES = (
    "bp_local_steps_w16_d32",
    "bp_local_steps_w64",
    "bp_local_steps_sparse",
)


# --------------------------------------------------------------------------
# Packed-plane helpers (pure NumPy; the layout the exchange rings use too)
# --------------------------------------------------------------------------

def pack_rows(X: np.ndarray, nw: int | None = None) -> np.ndarray:
    """Pack 0/1 rows into little-endian uint64 bit planes.

    ``X`` has shape ``(..., n)``; the result has shape ``(..., nw)``
    with ``nw = ⌈n/64⌉`` (pad bits are zero).  Bit ``i`` lands in word
    ``i >> 6`` at position ``i & 63``.
    """
    X = np.asarray(X, dtype=np.uint8)
    n = int(X.shape[-1])
    words = (n + 63) // 64 if nw is None else int(nw)
    pad = words * 64 - n
    if pad:
        widths = [(0, 0)] * (X.ndim - 1) + [(0, pad)]
        X = np.pad(X, widths)
    packed = np.ascontiguousarray(np.packbits(X, axis=-1, bitorder="little"))
    return packed.view(np.uint64)


def unpack_rows(planes: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: uint64 planes back to uint8 bits."""
    planes = np.ascontiguousarray(planes, dtype=np.uint64)
    return np.unpackbits(
        planes.view(np.uint8), axis=-1, bitorder="little", count=n
    )


def hamming_distances(planes_a: np.ndarray, planes_b: np.ndarray) -> np.ndarray:
    """Per-row Hamming distance between packed states: XOR + popcount.

    This is the Algorithm 5 straight-search distance (= the exact flip
    count ``straight_to`` performs per block) computed on bit planes in
    ``⌈n/64⌉`` word operations instead of ``n`` byte compares.
    """
    diff = np.bitwise_xor(planes_a, planes_b)
    return np.bitwise_count(diff).sum(axis=-1, dtype=np.int64)


# --------------------------------------------------------------------------
# Compiler gating + runtime compilation
# --------------------------------------------------------------------------

def _find_cc() -> str | None:
    """The first usable C compiler: ``$CC``, then cc/gcc/clang."""
    for candidate in (os.environ.get("CC", ""), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def cc_available() -> bool:
    """Whether the bit-plane backend can compile on this machine.

    ``REPRO_NO_CC`` (any non-empty value) masks an installed compiler —
    the mechanism the test suite uses to cover the fallback path
    deterministically, mirroring ``REPRO_NO_NUMBA``.
    """
    if os.environ.get("REPRO_NO_CC", ""):
        return False
    return _find_cc() is not None


def _compile_library() -> ctypes.CDLL:
    """Compile the kernel translation unit and load it via ctypes."""
    cc = _find_cc()
    if cc is None:
        raise RuntimeError("no C compiler found (set $CC or install cc/gcc/clang)")
    workdir = Path(tempfile.mkdtemp(prefix="repro-bitplane-"))
    src = workdir / "bitplane_kernels.c"
    src.write_text(_C_SOURCE)
    out = workdir / "bitplane_kernels.so"
    base = [cc, "-O3", "-funroll-loops", "-fwrapv", "-shared", "-fPIC"]
    proc = None
    # -march=native first; retry portable when the toolchain rejects it.
    for flags in ([*base, "-march=native"], base):
        proc = subprocess.run(
            [*flags, "-o", str(out), str(src)], capture_output=True, text=True
        )
        if proc.returncode == 0:
            break
    else:
        stderr = (proc.stderr or "").strip() if proc is not None else ""
        raise RuntimeError(f"bit-plane kernel compilation failed: {stderr[:500]}")
    lib = ctypes.CDLL(str(out))
    for fname in _KERNEL_NAMES:
        getattr(lib, fname).restype = ctypes.c_int64
    return lib


def make_bitplane_backend() -> KernelBackend:
    """The ``bitplane`` registry factory: compiled backend or tagged fallback."""
    global _warned
    if cc_available():
        try:
            BitplaneBackend.ensure_compiled()
        except (OSError, RuntimeError, subprocess.SubprocessError):
            pass
        else:
            return BitplaneBackend()
    if not _warned:
        _warned = True
        warnings.warn(
            "backend 'bitplane' requested but no working C compiler is "
            "available; falling back to the NumPy reference backend "
            "(install cc/gcc/clang, or unset REPRO_NO_CC, to enable the "
            "compiled bit-plane kernels)",
            RuntimeWarning,
            stacklevel=3,
        )
    fallback = NumpyBackend()
    fallback.fallback_from = "bitplane"
    return fallback


def _ptr(arr: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(arr.ctypes.data)


class _Planes:
    """Per-problem kernel artifacts derived at ``prepare_*`` time."""

    __slots__ = ("variant", "weights", "nw", "fn")

    def __init__(
        self, variant: str, weights: np.ndarray | None, nw: int, fn: Any
    ) -> None:
        self.variant = variant
        self.weights = weights
        self.nw = nw
        self.fn = fn


@dataclass(frozen=True)
class BitplanePreparedWeights(PreparedWeights):
    """:class:`PreparedWeights` plus the compiled-kernel artifacts."""

    planes: _Planes | None = None


class BitplaneBackend(NumpyBackend):
    """Packed-state backend with a fused, C-compiled ``run_local_steps``.

    The primitive kernels (``flip``/``select_*``/``update_best``/
    ``track_position``) are inherited from the NumPy reference — they
    run on the engine's unpacked arrays and are already exact — while
    the dominant multi-step loop runs on packed planes in C.  State is
    packed on entry and unpacked on exit of each ``run_local_steps``
    batch, an O(B·n/8) conversion amortized over ``steps`` fused flips.
    """

    name = "bitplane"

    _lib: Any = None

    @classmethod
    def ensure_compiled(cls) -> Any:
        """Compile + load the shared library once per process."""
        if cls._lib is None:
            cls._lib = _compile_library()
        return cls._lib

    def prepare_dense(self, W: np.ndarray) -> PreparedWeights:
        lib = self.ensure_compiled()
        W = np.ascontiguousarray(W, dtype=np.int64)
        n = int(W.shape[0])
        nw = (n + 63) // 64
        diag = np.ascontiguousarray(np.diagonal(W))
        Woff = W.copy()
        # Eq. 16 touches j != k only and the kernel pre-writes
        # d[k] = -d_k, so the stored rows carry a zero diagonal.
        np.fill_diagonal(Woff, 0)
        use_w16 = bool(Woff.min() >= -(2**15) and Woff.max() < 2**15)
        if use_w16:
            off_sum = np.abs(Woff).sum(axis=1)
            dmax = float(
                (np.abs(diag.astype(np.float64)) + 2.0 * off_sum).max()
            )
            use_w16 = dmax <= float(2**31 - 2)
        if use_w16:
            planes = _Planes(
                "dense_w16_d32",
                np.ascontiguousarray(Woff.astype(np.int16)),
                nw,
                lib.bp_local_steps_w16_d32,
            )
        else:
            planes = _Planes("dense_w64", Woff, nw, lib.bp_local_steps_w64)
        return BitplanePreparedWeights(n=n, dense=W, planes=planes)

    def prepare_sparse(self, sparse: Any) -> PreparedWeights:
        lib = self.ensure_compiled()
        base = super().prepare_sparse(sparse)
        planes = _Planes(
            "sparse_w64", None, (base.n + 63) // 64, lib.bp_local_steps_sparse
        )
        return BitplanePreparedWeights(
            n=base.n,
            indptr=base.indptr,
            indices=base.indices,
            data=base.data,
            planes=planes,
        )

    def run_local_steps(
        self,
        pw: PreparedWeights,
        X: np.ndarray,
        delta: np.ndarray,
        energy: np.ndarray,
        best_energy: np.ndarray,
        best_x: np.ndarray,
        offsets: np.ndarray,
        windows: np.ndarray,
        steps: int,
    ) -> int:
        planes = getattr(pw, "planes", None)
        if steps == 0 or planes is None:
            # Foreign PreparedWeights (not from our prepare_*): run the
            # reference composition rather than guessing a layout.
            return super().run_local_steps(
                pw, X, delta, energy, best_energy, best_x, offsets, windows, steps
            )
        n = pw.n
        nw = planes.nw
        B = int(X.shape[0])
        Xp = pack_rows(X, nw)
        bestp = np.zeros((B, nw), dtype=np.uint64)
        bestflip = np.full(B, -2, dtype=np.int64)
        eng = np.ascontiguousarray(energy, dtype=np.int64)
        be = np.ascontiguousarray(best_energy, dtype=np.int64)
        off = np.ascontiguousarray(offsets, dtype=np.int64)
        win = np.ascontiguousarray(windows, dtype=np.int64)
        i64 = ctypes.c_int64
        tail = (
            _ptr(eng), _ptr(be), _ptr(bestp), _ptr(bestflip), _ptr(off),
            _ptr(win), i64(n), i64(B), i64(nw), i64(steps),
        )
        if planes.variant == "sparse_w64":
            d = np.ascontiguousarray(delta, dtype=np.int64)
            updates = planes.fn(
                _ptr(pw.indptr), _ptr(pw.indices), _ptr(pw.data),
                _ptr(Xp), _ptr(d), *tail,
            )
            if d is not delta:
                delta[:] = d
        elif planes.variant == "dense_w16_d32":
            # The d32 tier is only selected when the Δ bound fits int32,
            # so this narrowing is exact for any reachable delta vector.
            d32 = np.ascontiguousarray(delta.astype(np.int32))
            updates = planes.fn(_ptr(planes.weights), _ptr(Xp), _ptr(d32), *tail)
            delta[:] = d32
        else:
            d = np.ascontiguousarray(delta, dtype=np.int64)
            updates = planes.fn(_ptr(planes.weights), _ptr(Xp), _ptr(d), *tail)
            if d is not delta:
                delta[:] = d
        X[:] = unpack_rows(Xp, n)
        if eng is not energy:
            energy[:] = eng
        if be is not best_energy:
            best_energy[:] = be
        if off is not offsets:
            offsets[:] = off
        dirty = bestflip != -2
        if dirty.any():
            rid = np.flatnonzero(dirty)
            best_x[rid] = unpack_rows(bestp[rid], n)
            flips = bestflip[rid]
            from_neighbour = flips >= 0
            if from_neighbour.any():
                best_x[rid[from_neighbour], flips[from_neighbour]] ^= 1
        return int(updates)
