"""Ablation — automatic per-block window adaptation (paper §5).

The paper's future-work proposal: *"each CUDA block would perform
different algorithms and possibly they are changed automatically."*
We implement the automatic part for the window-size knob
(:class:`repro.abs.adaptive.WindowAdapter`) and measure it at the
engine level, where the window choice dominates (inside the full ABS
the GA's restarts mask mis-tuning on instances this small):

- **all-hot fixed** — every block at l = 1 (deliberately mis-tuned),
- **adaptive** — 15 hot blocks + a single l = 64 seed block, losers
  imitating winners every other round,
- **all-good fixed** — every block at l = 64 (the reference).

Shape: adaptation must recover most of the gap between the mis-tuned
and reference configurations, by propagating the good window through
the block population.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import FULL
from repro.abs import WindowAdapter
from repro.gpusim import BulkSearchEngine
from repro.problems.random_qubo import random_qubo
from repro.utils.tables import Table

_N = 512 if FULL else 256
_BLOCKS = 16
_ROUNDS = 30 if FULL else 20
_STEPS = 50


def _run(windows, adapt: bool, seed: int = 0):
    qubo = random_qubo(_N, seed=_N)
    eng = BulkSearchEngine(qubo, _BLOCKS, windows=np.asarray(windows, dtype=np.int64))
    adapter = WindowAdapter(_N, _BLOCKS, period=2, seed=seed) if adapt else None
    for _ in range(_ROUNDS):
        eng.local_steps(_STEPS)
        if adapter is not None:
            adapter.observe(eng.best_energy)
            new = adapter.maybe_adapt(eng.windows)
            if new is not None:
                eng.windows = new
    return int(eng.best_energy.min()), eng.windows.copy()


def test_ablation_adaptive_windows(benchmark, report):
    e_hot, _ = _run([1] * _BLOCKS, adapt=False)
    e_adapt, w_final = _run([1] * (_BLOCKS - 1) + [64], adapt=True)
    e_good, _ = _run([64] * _BLOCKS, adapt=False)

    table = Table(
        ["configuration", "best energy", "final windows"],
        title=(
            f"Window adaptation ablation (engine level), n={_N}, "
            f"{_BLOCKS} blocks × {_ROUNDS}×{_STEPS} flips"
        ),
    )
    table.add_row(["all-hot fixed (l=1)", e_hot, "1 … 1"])
    table.add_row(
        ["adaptive (15×l=1 + one l=64 seed)", e_adapt,
         " ".join(str(v) for v in sorted(w_final.tolist()))]
    )
    table.add_row(["all-good fixed (l=64)", e_good, "64 … 64"])

    gap = e_good - e_hot
    recovered = (e_adapt - e_hot) / gap if gap else 1.0
    report(
        "Ablation adaptive windows",
        table.render()
        + f"\n\nAdaptation recovered {recovered:.0%} of the mis-tuning gap: "
        "the single good window propagates through the block population "
        "(losers imitate winners with ×/÷2 perturbation every 2 rounds).",
    )

    assert gap < 0, "sanity: l=64 must beat l=1 on this instance"
    assert recovered > 0.7, f"adaptation recovered only {recovered:.0%}"
    # The window population actually moved away from the mis-tuned value.
    assert (w_final > 1).sum() >= _BLOCKS // 2

    benchmark(lambda: _run([1] * (_BLOCKS - 1) + [64], adapt=True, seed=1))
