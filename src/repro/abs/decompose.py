"""Large-problem decomposition solving (qbsolv-style outer loop).

The paper's engine holds the whole problem per device (32 k-bit cap,
§3.2); problems beyond what a device can hold are the classic territory
of decomposition solvers such as D-Wave's qbsolv.  This module adds
that outer loop on top of ABS:

1. keep a global incumbent ``x`` with live ``Δ`` bookkeeping
   (:class:`~repro.qubo.state.SearchState` — so selection is O(1) per
   bit and applying a sub-solution costs O(flips · n));
2. each iteration selects a subset ``S`` of ``subproblem_size``
   variables — by most-promising ``Δ`` values plus random fill, or
   uniformly at random;
3. the sub-QUBO conditioned on the frozen complement is
   ``W_sub[i,j] = W[S_i, S_j]`` (i ≠ j) and
   ``W_sub[i,i] = W[S_i,S_i] + 2·Σ_{j∉S} W[S_i, j]·x_j``,
   so that for any sub-assignment ``y``:
   ``E(x ⊕ S←y) = E_sub(y) + const(x, S)``;
4. the subproblem is solved by a short ABS run; improving
   sub-solutions are applied to the incumbent via incremental flips.

Works with dense and sparse weight backends alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.abs.config import AbsConfig
from repro.abs.solver import AdaptiveBulkSearch
from repro.backends.graycode import MAX_GRAYCODE_BITS, graycode_minimum
from repro.qubo.matrix import QuboMatrix, as_weight_matrix
from repro.qubo.sparse import SparseQubo
from repro.qubo.state import SearchState
from repro.telemetry import NULL_BUS
from repro.utils.rng import RngFactory
from repro.utils.timer import Stopwatch


@dataclass
class DecompositionConfig:
    """Outer-loop tunables.

    Attributes
    ----------
    subproblem_size:
        Variables per subproblem (``k``).
    iterations:
        Outer iterations to run.
    selection:
        ``"delta"`` — half the subset from the most negative ``Δ``
        (most promising single flips), half uniformly random (for
        diversification); ``"random"`` — all uniform.
    inner_rounds, inner_blocks, inner_steps:
        Budget of each inner ABS solve.
    exact_below:
        Subproblems of this many variables or fewer are solved to
        proven optimality by Gray-code enumeration
        (:func:`repro.backends.graycode.graycode_minimum`) instead of
        an inner ABS run; ``None`` disables the exact finisher.  Capped
        at :data:`~repro.backends.graycode.MAX_GRAYCODE_BITS`.
    patience:
        Stop after this many consecutive non-improving iterations
        (``None`` disables).
    seed:
        Root seed for subset selection, the initial incumbent, and all
        inner solves.
    """

    subproblem_size: int = 48
    iterations: int = 20
    selection: str = "delta"
    inner_rounds: int = 12
    inner_blocks: int = 16
    inner_steps: int = 24
    exact_below: int | None = None
    patience: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.subproblem_size < 2:
            raise ValueError(
                f"subproblem_size must be >= 2, got {self.subproblem_size}"
            )
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if self.selection not in ("delta", "random"):
            raise ValueError(
                f"selection must be 'delta' or 'random', got {self.selection!r}"
            )
        for name in ("inner_rounds", "inner_blocks", "inner_steps"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.exact_below is not None and not (
            2 <= self.exact_below <= MAX_GRAYCODE_BITS
        ):
            raise ValueError(
                f"exact_below must be in [2, {MAX_GRAYCODE_BITS}], "
                f"got {self.exact_below}"
            )
        if self.patience is not None and self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")


@dataclass
class DecompositionResult:
    """Outcome of a decomposition solve."""

    best_x: np.ndarray
    best_energy: int
    iterations: int
    improvements: int
    elapsed: float
    history: list[tuple[float, int]] = field(default_factory=list)


class DecompositionSolver:
    """qbsolv-style outer loop around :class:`AdaptiveBulkSearch`."""

    def __init__(
        self,
        weights,
        config: DecompositionConfig | None = None,
        telemetry=None,
    ) -> None:
        if isinstance(weights, SparseQubo):
            self.weights = weights
            self.n = weights.n
        else:
            self.weights = as_weight_matrix(weights)
            self.n = self.weights.shape[0]
        self.config = config or DecompositionConfig()
        self._bus = telemetry if telemetry is not None else NULL_BUS
        if self.config.subproblem_size > self.n:
            raise ValueError(
                f"subproblem_size ({self.config.subproblem_size}) exceeds "
                f"problem size ({self.n})"
            )

    # ------------------------------------------------------------------
    # Subproblem construction
    # ------------------------------------------------------------------
    def _subrows(self, subset: np.ndarray) -> np.ndarray:
        """Dense ``k × n`` slice of W's rows at ``subset``."""
        if isinstance(self.weights, SparseQubo):
            rows = self.weights.csr[subset, :].todense().astype(np.int64)
            # CSR holds only the off-diagonal part; restore diagonals.
            rows[np.arange(len(subset)), subset] = self.weights.diag[subset]
            return np.asarray(rows)
        return self.weights[subset, :].astype(np.int64)

    def build_subproblem(self, x: np.ndarray, subset: np.ndarray) -> QuboMatrix:
        """The conditioned sub-QUBO over ``subset`` given incumbent ``x``.

        For any ``y``: ``E(x with subset←y) = E_sub(y) + const``, so
        minimizing the subproblem minimizes the full energy over the
        free variables.
        """
        subset = np.asarray(subset, dtype=np.int64)
        rows = self._subrows(subset)  # k × n, includes diagonal entries
        inner = rows[:, subset]  # k × k block (diagonal = W_ss)
        xi = x.astype(np.int64)
        # r_s = Σ_{j ∉ S} W_sj x_j  = (full row)·x − (in-set part)·x_S
        r = rows @ xi - inner @ xi[subset]
        sub = inner.copy()
        diag = np.diagonal(inner) + 2 * r
        sub[np.arange(len(subset)), np.arange(len(subset))] = diag
        return QuboMatrix(sub, copy=False, check=False, name="subproblem")

    def _select(self, state: SearchState, rng: np.random.Generator) -> np.ndarray:
        k = self.config.subproblem_size
        if self.config.selection == "random" or k >= self.n:
            return rng.choice(self.n, size=k, replace=False)
        half = k // 2
        promising = np.argsort(state.delta)[:half]
        rest = np.setdiff1d(np.arange(self.n), promising, assume_unique=False)
        filler = rng.choice(rest, size=k - half, replace=False)
        return np.concatenate([promising, filler])

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(self) -> DecompositionResult:
        """Run the outer loop; returns the best incumbent found."""
        cfg = self.config
        factory = RngFactory(cfg.seed)
        rng = factory.stream("outer")
        watch = Stopwatch().start()

        x0 = factory.stream("init").integers(0, 2, self.n).astype(np.uint8)
        state = SearchState.from_bits(self.weights, x0)
        best_x = state.x.copy()
        best_e = state.energy
        history: list[tuple[float, int]] = [(watch.elapsed, best_e)]
        improvements = 0
        stale = 0
        iterations = 0

        for it in range(cfg.iterations):
            iterations += 1
            subset = self._select(state, rng)
            sub = self.build_subproblem(state.x, subset)
            if cfg.exact_below is not None and len(subset) <= cfg.exact_below:
                # Exact finisher: small subproblems get a proven-optimal
                # sub-assignment instead of a cold inner ABS run.
                sol = graycode_minimum(sub)
                y = sol.x
                sub_best = sol.energy
                if self._bus.enabled:
                    self._bus.counters.inc("backend.graycode.finisher_calls")
                    self._bus.counters.inc(
                        "backend.graycode.enumerated", sol.evaluated
                    )
            else:
                inner_cfg = AbsConfig(
                    blocks_per_gpu=cfg.inner_blocks,
                    local_steps=cfg.inner_steps,
                    pool_capacity=max(8, cfg.inner_blocks),
                    max_rounds=cfg.inner_rounds,
                    seed=int(factory.stream("inner", it).integers(2**62)),
                )
                sub_res = AdaptiveBulkSearch(sub, inner_cfg).solve("sync")
                y = sub_res.best_x
                sub_best = sub_res.best_energy
            # Accept only sub-solutions at least as good as the current
            # sub-assignment (the inner solver starts cold and can lose;
            # the exact finisher never does).
            from repro.qubo.energy import energy as _energy

            if sub_best <= _energy(sub, state.x[subset]):
                # Apply: flip exactly the in-subset bits that changed;
                # incremental updates keep E and Δ exact for next round.
                changed = subset[state.x[subset] != y]
                for bit in changed:
                    state.flip(int(bit))
            if state.energy < best_e:
                best_e = state.energy
                best_x = state.x.copy()
                improvements += 1
                stale = 0
            else:
                stale += 1
                if cfg.patience is not None and stale >= cfg.patience:
                    history.append((watch.elapsed, best_e))
                    break
            history.append((watch.elapsed, best_e))

        return DecompositionResult(
            best_x=best_x,
            best_energy=int(best_e),
            iterations=iterations,
            improvements=improvements,
            elapsed=watch.stop(),
            history=history,
        )
