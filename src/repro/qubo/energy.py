"""The energy function and the paper's difference-computation identities.

This module implements, in vectorized NumPy, exactly the quantities
Section 2 of the paper manipulates:

- ``energy``            — Eq. (1):  ``E(X) = XᵀWX``                 O(n²)
- ``delta_vector``      — Eq. (4):  ``Δ_k(X)`` for all k             O(n²)
- ``delta_single``      — Eq. (10): one ``Δ_k(X)``                   O(n)
- ``update_delta_after_flip`` — Eq. (6)/(16): refresh the whole Δ
  vector after one flip                                              O(n)

All arithmetic is carried out in ``int64``: with 16-bit weights and
n ≤ 32 k, ``|E| ≤ 2¹⁵·(2¹⁵)² ≈ 3.5·10¹³`` which fits comfortably.
"""

from __future__ import annotations

import numpy as np

from repro.qubo.matrix import WeightsLike, as_weight_matrix
from repro.utils.validation import check_bit_vector, check_index


def _sparse(weights):
    """Return the :class:`~repro.qubo.sparse.SparseQubo` if that's what
    ``weights`` is, else ``None`` (lazy import avoids a cycle)."""
    from repro.qubo.sparse import SparseQubo

    return weights if isinstance(weights, SparseQubo) else None


def weights_size(weights) -> int:
    """Number of bits of a dense or sparse weights object."""
    sq = _sparse(weights)
    if sq is not None:
        return sq.n
    return as_weight_matrix(weights).shape[0]


def phi(x: np.ndarray | int) -> np.ndarray | int:
    """The sign map ``φ(x) = 1 − 2x`` of Eq. (3): 0 ↦ +1, 1 ↦ −1."""
    if isinstance(x, np.ndarray):
        return 1 - 2 * x.astype(np.int64)
    return 1 - 2 * int(x)


def energy(weights: WeightsLike, x: np.ndarray) -> int:
    """Evaluate ``E(X) = XᵀWX`` (Eq. 1) from scratch — O(n²).

    This is the reference evaluator used by Algorithm 1 and by every
    test that cross-checks the incremental identities.  Accepts dense
    weights or a :class:`~repro.qubo.sparse.SparseQubo`.
    """
    sq = _sparse(weights)
    if sq is not None:
        return sq.energy(x)
    W = as_weight_matrix(weights)
    xb = check_bit_vector(x, W.shape[0])
    xi = xb.astype(np.int64)
    return int(xi @ W.astype(np.int64, copy=False) @ xi)


def energy_batch(weights: WeightsLike, X: np.ndarray) -> np.ndarray:
    """Evaluate ``E`` for each row of a ``B × n`` bit matrix — O(Bn²).

    Returns an ``int64`` vector of length ``B``.
    """
    W = as_weight_matrix(weights)
    X = np.asarray(X)
    if X.ndim != 2 or X.shape[1] != W.shape[0]:
        raise ValueError(
            f"X must have shape (B, {W.shape[0]}), got {X.shape}"
        )
    Xi = X.astype(np.int64)
    return np.einsum("bi,ij,bj->b", Xi, W.astype(np.int64, copy=False), Xi)


def delta_vector(weights: WeightsLike, x: np.ndarray) -> np.ndarray:
    """All flip deltas ``Δ_k(X) = E(flip_k(X)) − E(X)`` (Eq. 4) — O(n²).

    ``Δ_k = φ(x_k)·(2·Σ_{j≠k} W_kj x_j + W_kk)``.  Used to initialize a
    :class:`~repro.qubo.state.SearchState` from an arbitrary bit vector
    and as the ground truth the O(n) update is tested against.
    """
    sq = _sparse(weights)
    if sq is not None:
        return sq.delta_vector(x)
    W = as_weight_matrix(weights).astype(np.int64, copy=False)
    xb = check_bit_vector(x, W.shape[0])
    xi = xb.astype(np.int64)
    diag = np.diagonal(W)
    row = W @ xi  # Σ_j W_kj x_j including j == k
    inner = 2 * (row - diag * xi) + diag
    return phi(xb) * inner


def delta_single(weights: WeightsLike, x: np.ndarray, k: int) -> int:
    """One flip delta ``Δ_k(X)`` via Eq. (10) — O(n), O(degree) sparse."""
    sq = _sparse(weights)
    if sq is not None:
        xb = check_bit_vector(x, sq.n)
        check_index(k, sq.n, "k")
        cols, vals = sq.row(k)
        s = int(vals @ xb[cols].astype(np.int64))
        return int(phi(int(xb[k]))) * (2 * s + int(sq.diag[k]))
    W = as_weight_matrix(weights).astype(np.int64, copy=False)
    xb = check_bit_vector(x, W.shape[0])
    check_index(k, W.shape[0], "k")
    xi = xb.astype(np.int64)
    row = W[k]
    s = int(row @ xi) - int(row[k]) * int(xi[k])
    return int(phi(int(xb[k]))) * (2 * s + int(row[k]))


def update_delta_after_flip(
    weights: WeightsLike,
    x: np.ndarray,
    delta: np.ndarray,
    k: int,
) -> int:
    """Apply Eq. (6)/(16) in place after deciding to flip bit ``k`` — O(n).

    Given the *pre-flip* solution ``x`` and its delta vector ``delta``,
    updates ``delta`` to describe ``flip_k(x)`` and flips ``x[k]`` in
    place.  Returns the energy change ``Δ_k`` that the caller must add
    to its tracked energy:

    - ``Δ_i(flip_k X) = Δ_i(X) + 2·W_ik·φ(x_i)·φ(x_k)`` for ``i ≠ k``
    - ``Δ_k(flip_k X) = −Δ_k(X)``

    This single function is the kernel that makes the paper's O(1)
    search efficiency possible: every search step costs O(n) while
    exposing the energies of all ``n`` neighbors (O(degree) for sparse
    weights).
    """
    sq = _sparse(weights)
    if sq is not None:
        return sq.update_delta_after_flip(x, delta, k)
    W = as_weight_matrix(weights)
    n = W.shape[0]
    check_index(k, n, "k")
    if x.shape != (n,) or delta.shape != (n,):
        raise ValueError(
            f"x and delta must have shape ({n},), got {x.shape} and {delta.shape}"
        )
    if delta.dtype != np.int64:
        raise TypeError(f"delta must be int64, got {delta.dtype}")

    applied = int(delta[k])
    sk = 1 - 2 * int(x[k])  # φ(x_k) before the flip
    # Δ_i += 2 W_ik φ(x_i) φ(x_k); vectorized over all i, then fix i == k.
    signs = (1 - 2 * x.astype(np.int64)) * sk
    delta += 2 * W[:, k].astype(np.int64, copy=False) * signs
    delta[k] = -applied
    x[k] ^= 1
    return applied
