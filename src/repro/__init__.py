"""repro — Adaptive Bulk Search (ABS) for QUBO, reproduced in Python.

A full reimplementation of "Adaptive Bulk Search: Solving Quadratic
Unconstrained Binary Optimization Problems on Multiple GPUs" (Yasudo et
al., ICPP 2020): the O(1)-search-efficiency local search (Algorithm 4),
the straight search (Algorithm 5), the host genetic algorithm, a
CUDA-like multi-GPU substrate simulated in NumPy/multiprocessing, the
paper's three benchmark families, and harnesses regenerating every
table and figure of its evaluation.

Quickstart
----------
>>> from repro import QuboMatrix, AdaptiveBulkSearch, AbsConfig
>>> q = QuboMatrix.random(256, seed=0)
>>> result = AdaptiveBulkSearch(q, AbsConfig(max_rounds=50, seed=1)).solve()
>>> result.best_energy < 0
True

Subpackages
-----------
- :mod:`repro.qubo`     — weight matrices, energy/Δ identities, I/O
- :mod:`repro.search`   — Algorithms 1–5 and classical baselines
- :mod:`repro.ga`       — host genetic algorithm (pool + operators)
- :mod:`repro.gpusim`   — simulated CUDA devices, occupancy, timing
- :mod:`repro.abs`      — the ABS framework (host + devices + buffers)
- :mod:`repro.problems` — Max-Cut / TSP / random-QUBO benchmark suites
- :mod:`repro.metrics`  — search rate, time-to-solution, efficiency
"""

from repro.abs import AbsConfig, AdaptiveBulkSearch, SolveResult
from repro.api import solve, solve_ising
from repro.qubo import IsingModel, QuboMatrix, SearchState, SparseQubo

__version__ = "1.3.0"

__all__ = [
    "QuboMatrix",
    "SparseQubo",
    "SearchState",
    "IsingModel",
    "AdaptiveBulkSearch",
    "AbsConfig",
    "SolveResult",
    "solve",
    "solve_ising",
    "__version__",
]
