"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_bit_vector,
    check_index,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive(0.1, "x")

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive(bad, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        check_probability(ok, "p")

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, "p")


class TestCheckIndex:
    def test_accepts_in_range(self):
        check_index(0, 3)
        check_index(2, 3)

    @pytest.mark.parametrize("bad", [-1, 3, 100])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(IndexError):
            check_index(bad, 3)


class TestCheckBitVector:
    def test_uint8_passthrough_values(self):
        x = np.array([0, 1, 1], dtype=np.uint8)
        out = check_bit_vector(x, 3)
        assert out.dtype == np.uint8
        assert np.array_equal(out, x)

    def test_int_list_converted(self):
        out = check_bit_vector([1, 0, 1])
        assert out.dtype == np.uint8

    def test_wrong_length(self):
        with pytest.raises(ValueError, match="length"):
            check_bit_vector([0, 1], 3)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="1-D"):
            check_bit_vector(np.zeros((2, 2)))

    def test_non_bit_values(self):
        with pytest.raises(ValueError, match="0/1"):
            check_bit_vector([0, 2, 1])

    def test_non_bit_uint8(self):
        with pytest.raises(ValueError, match="0/1"):
            check_bit_vector(np.array([0, 7], dtype=np.uint8))

    def test_empty_ok(self):
        assert check_bit_vector([]).shape == (0,)
