"""TSPLIB instances: file parsing and seeded synthetic analogues.

:func:`load_tsplib` parses the classic TSPLIB95 ``.tsp`` format
(EUC_2D, ATT, GEO, and EXPLICIT FULL_MATRIX / UPPER_ROW /
LOWER_DIAG_ROW edge weights), so the paper's real instances work when
their files are present.

Without network access, :data:`TSPLIB_CATALOG` supplies **synthetic
analogues** of the five Table 1(b) instances: the same city counts
(16, 29, 42, 52, 70 → 225…4761 bits) with seeded uniform coordinates
and TSPLIB EUC_2D rounding.  (The paper lists st70 as 4621 bits; (70−1)²
is 4761 — presumably a typo, which the bench notes.)  Reference tour
lengths come from Held–Karp (exact, c ≤ 17) or multi-restart 2-opt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.problems.tsp import held_karp, two_opt
from repro.utils.rng import as_generator

PathLike = Union[str, Path]


class TsplibFormatError(ValueError):
    """Raised for malformed TSPLIB files."""


@dataclass(frozen=True)
class TspInstance:
    """A TSP instance: name + integer distance matrix."""

    name: str
    dist: np.ndarray

    @property
    def cities(self) -> int:
        """Number of cities."""
        return self.dist.shape[0]

    @property
    def n_bits(self) -> int:
        """QUBO size ``(c − 1)²``."""
        return (self.cities - 1) ** 2

    def reference_length(self, *, seed: int = 0) -> int:
        """A strong reference tour length: exact for c ≤ 17, 2-opt above."""
        if self.cities <= 17:
            return held_karp(self.dist)[0]
        return two_opt(self.dist, seed=seed, restarts=6)[0]


# ---------------------------------------------------------------------------
# Distance functions (TSPLIB95 definitions)
# ---------------------------------------------------------------------------

def euc_2d(coords: np.ndarray) -> np.ndarray:
    """EUC_2D: rounded Euclidean distances (``nint``)."""
    diff = coords[:, None, :] - coords[None, :, :]
    return np.rint(np.sqrt((diff**2).sum(axis=2))).astype(np.int64)


def ceil_2d(coords: np.ndarray) -> np.ndarray:
    """CEIL_2D: Euclidean distances rounded up."""
    diff = coords[:, None, :] - coords[None, :, :]
    d = np.ceil(np.sqrt((diff**2).sum(axis=2))).astype(np.int64)
    np.fill_diagonal(d, 0)
    return d


def man_2d(coords: np.ndarray) -> np.ndarray:
    """MAN_2D: rounded Manhattan (L1) distances."""
    diff = np.abs(coords[:, None, :] - coords[None, :, :])
    return np.rint(diff.sum(axis=2)).astype(np.int64)


def att_distance(coords: np.ndarray) -> np.ndarray:
    """ATT: pseudo-Euclidean (ceiling-rounded scaled distance)."""
    diff = coords[:, None, :] - coords[None, :, :]
    r = np.sqrt((diff**2).sum(axis=2) / 10.0)
    t = np.rint(r)
    return np.where(t < r, t + 1, t).astype(np.int64)


def geo_distance(coords: np.ndarray) -> np.ndarray:
    """GEO: great-circle distance per the TSPLIB95 spec (DDD.MM input)."""
    deg = np.trunc(coords)
    minutes = coords - deg
    rad = math.pi * (deg + 5.0 * minutes / 3.0) / 180.0
    lat, lon = rad[:, 0], rad[:, 1]
    rrr = 6378.388
    q1 = np.cos(lon[:, None] - lon[None, :])
    q2 = np.cos(lat[:, None] - lat[None, :])
    q3 = np.cos(lat[:, None] + lat[None, :])
    d = rrr * np.arccos(
        np.clip(0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3), -1.0, 1.0)
    ) + 1.0
    d = d.astype(np.int64)
    np.fill_diagonal(d, 0)
    return d


_EDGE_WEIGHT_FUNCS = {
    "EUC_2D": euc_2d,
    "CEIL_2D": ceil_2d,
    "MAN_2D": man_2d,
    "ATT": att_distance,
    "GEO": geo_distance,
}


# ---------------------------------------------------------------------------
# TSPLIB parser
# ---------------------------------------------------------------------------

def load_tsplib(path: PathLike) -> TspInstance:
    """Parse a TSPLIB95 ``.tsp`` file into a :class:`TspInstance`."""
    path = Path(path)
    name = path.stem
    dimension: int | None = None
    ew_type: str | None = None
    ew_format: str | None = None
    coords: dict[int, tuple[float, float]] = {}
    weights: list[float] = []

    lines = path.read_text().splitlines()
    section: str | None = None
    for raw in lines:
        line = raw.strip()
        if not line or line == "EOF":
            section = None if line == "EOF" else section
            continue
        upper = line.upper()
        if ":" in line and section is None:
            key, _, value = line.partition(":")
            key = key.strip().upper()
            value = value.strip()
            if key == "NAME":
                name = value
            elif key == "DIMENSION":
                dimension = int(value)
            elif key == "EDGE_WEIGHT_TYPE":
                ew_type = value.upper()
            elif key == "EDGE_WEIGHT_FORMAT":
                ew_format = value.upper()
            continue
        if upper.startswith("NODE_COORD_SECTION") or upper.startswith("DISPLAY_DATA_SECTION"):
            section = "coords" if upper.startswith("NODE") else None
            continue
        if upper.startswith("EDGE_WEIGHT_SECTION"):
            section = "weights"
            continue
        if section == "coords":
            parts = line.split()
            if len(parts) < 3:
                raise TsplibFormatError(f"{path}: bad coord line {line!r}")
            coords[int(parts[0])] = (float(parts[1]), float(parts[2]))
        elif section == "weights":
            weights.extend(float(tok) for tok in line.split())

    if dimension is None:
        raise TsplibFormatError(f"{path}: missing DIMENSION")
    if ew_type in _EDGE_WEIGHT_FUNCS:
        if len(coords) != dimension:
            raise TsplibFormatError(
                f"{path}: expected {dimension} coords, got {len(coords)}"
            )
        xy = np.array([coords[i + 1] for i in range(dimension)], dtype=np.float64)
        dist = _EDGE_WEIGHT_FUNCS[ew_type](xy)
    elif ew_type == "EXPLICIT":
        dist = _explicit_matrix(weights, dimension, ew_format or "FULL_MATRIX", path)
    else:
        raise TsplibFormatError(f"{path}: unsupported EDGE_WEIGHT_TYPE {ew_type!r}")
    np.fill_diagonal(dist, 0)
    return TspInstance(name=name, dist=dist)


def _explicit_matrix(
    weights: list[float], n: int, fmt: str, path: Path
) -> np.ndarray:
    d = np.zeros((n, n), dtype=np.int64)
    vals = [int(round(v)) for v in weights]
    if fmt == "FULL_MATRIX":
        if len(vals) != n * n:
            raise TsplibFormatError(f"{path}: FULL_MATRIX needs {n * n} values")
        d[:] = np.asarray(vals).reshape(n, n)
    elif fmt == "UPPER_ROW":
        if len(vals) != n * (n - 1) // 2:
            raise TsplibFormatError(f"{path}: UPPER_ROW needs {n * (n - 1) // 2} values")
        iu = np.triu_indices(n, k=1)
        d[iu] = vals
        d += d.T
    elif fmt == "LOWER_DIAG_ROW":
        if len(vals) != n * (n + 1) // 2:
            raise TsplibFormatError(
                f"{path}: LOWER_DIAG_ROW needs {n * (n + 1) // 2} values"
            )
        il = np.tril_indices(n, k=0)
        d[il] = vals
        d = d + d.T - np.diag(np.diagonal(d))
    else:
        raise TsplibFormatError(f"{path}: unsupported EDGE_WEIGHT_FORMAT {fmt!r}")
    return d


# ---------------------------------------------------------------------------
# Synthetic catalog (Table 1(b) analogues)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TsplibSpec:
    """Recipe for a synthetic analogue of a TSPLIB instance."""

    name: str
    cities: int
    seed: int
    box: int = 1000  # coordinate range [0, box)


TSPLIB_CATALOG: dict[str, TsplibSpec] = {
    "ulysses16": TsplibSpec("ulysses16", 16, seed=216),
    "bayg29": TsplibSpec("bayg29", 29, seed=229),
    "dantzig42": TsplibSpec("dantzig42", 42, seed=242),
    "berlin52": TsplibSpec("berlin52", 52, seed=252),
    "st70": TsplibSpec("st70", 70, seed=270),
}


def synthetic_instance(name: str) -> TspInstance:
    """Seeded EUC_2D analogue of a Table 1(b) instance (same city count)."""
    try:
        spec = TSPLIB_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown TSPLIB analogue {name!r}; available: {sorted(TSPLIB_CATALOG)}"
        ) from None
    rng = as_generator(spec.seed)
    coords = rng.uniform(0, spec.box, size=(spec.cities, 2))
    return TspInstance(name=spec.name, dist=euc_2d(coords))
