"""Unit tests for the process-mode worker supervision state machine.

Everything in :class:`~repro.abs.supervisor.WorkerSupervisor` is
injectable (spawn, queues, clock), so the restart/degrade logic is
exercised deterministically with fake processes — no OS processes, no
wall-clock sleeps.  Integration with real processes lives in
``test_solver_process.py``.
"""

import pytest

from repro.abs.supervisor import WorkerSupervisor
from repro.telemetry import MemorySink, TelemetryBus, validate_record


class FakeProc:
    """A controllable stand-in for ``multiprocessing.Process``."""

    def __init__(self, worker_id: int, incarnation: int):
        self.worker_id = worker_id
        self.incarnation = incarnation
        self.alive = True
        self.exitcode = None
        self.terminated = False
        self.killed = False

    def is_alive(self):
        return self.alive

    def join(self, timeout=None):
        pass

    def terminate(self):
        self.terminated = True
        self.alive = False
        self.exitcode = -15

    def kill(self):
        self.killed = True
        self.alive = False
        self.exitcode = -9

    def die(self, exitcode=1):
        self.alive = False
        self.exitcode = exitcode


class Harness:
    """Records every spawn; exposes the latest proc per worker."""

    def __init__(self):
        self.spawned = []  # (worker_id, incarnation, queue)
        self.procs = {}

    def spawn(self, worker_id, incarnation, target_q):
        proc = FakeProc(worker_id, incarnation)
        self.spawned.append((worker_id, incarnation, target_q))
        self.procs[worker_id] = proc
        return proc


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_supervisor(n_workers=2, **kwargs):
    harness = Harness()
    clock = kwargs.pop("clock", FakeClock())
    sup = WorkerSupervisor(
        n_workers,
        harness.spawn,
        channel_factory=lambda wid, inc: object(),
        clock=clock,
        **kwargs,
    )
    return sup, harness, clock


class TestLifecycle:
    def test_start_spawns_every_worker_once(self):
        sup, harness, _ = make_supervisor(n_workers=3)
        sup.start()
        assert [(w, i) for w, i, _ in harness.spawned] == [(0, 0), (1, 0), (2, 0)]
        assert sup.n_healthy == 3
        assert sup.healthy_ids == [0, 1, 2]
        assert len(sup.all_processes) == 3
        assert len(sup.all_channels) == 3

    def test_double_start_rejected(self):
        sup, _, _ = make_supervisor()
        sup.start()
        with pytest.raises(RuntimeError, match="already started"):
            sup.start()

    def test_poll_before_start_rejected(self):
        sup, _, _ = make_supervisor()
        with pytest.raises(RuntimeError, match="not started"):
            sup.poll()

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerSupervisor(0, lambda *a: None, channel_factory=lambda wid, inc: object())
        with pytest.raises(ValueError):
            WorkerSupervisor(
                1, lambda *a: None, channel_factory=lambda wid, inc: object(), max_restarts=-1
            )
        with pytest.raises(ValueError):
            WorkerSupervisor(
                1, lambda *a: None, channel_factory=lambda wid, inc: object(), stall_timeout=0.0
            )

    def test_healthy_workers_produce_no_actions(self):
        sup, _, _ = make_supervisor()
        sup.start()
        assert sup.poll() == []
        assert sup.workers_restarted == 0
        assert sup.workers_lost == 0


class TestRestartOnDeath:
    def test_dead_worker_restarted_with_fresh_channel(self):
        sup, harness, _ = make_supervisor(max_restarts=2)
        sup.start()
        q0 = sup.target_channel(1)
        harness.procs[1].die(exitcode=1)
        actions = sup.poll()
        assert [(a.worker_id, a.kind, a.reason) for a in actions] == [
            (1, "restart", "died")
        ]
        assert actions[0].exitcode == 1
        assert sup.workers_restarted == 1
        assert sup.incarnation(1) == 1
        # Replacement reads a *new* channel handle; the old one is
        # retained only for final draining.
        assert sup.target_channel(1) is not q0
        assert harness.spawned[-1][:2] == (1, 1)
        # The healthy worker was untouched.
        assert sup.incarnation(0) == 0

    def test_restart_budget_exhaustion_degrades(self):
        sup, harness, _ = make_supervisor(max_restarts=1)
        sup.start()
        harness.procs[1].die()
        assert sup.poll()[0].kind == "restart"
        harness.procs[1].die()
        actions = sup.poll()
        assert [(a.worker_id, a.kind) for a in actions] == [(1, "lost")]
        assert sup.workers_lost == 1
        assert sup.n_healthy == 1
        assert sup.target_channel(1) is None
        # A lost worker is never polled again.
        assert sup.poll() == []

    def test_zero_budget_loses_worker_immediately(self):
        sup, harness, _ = make_supervisor(max_restarts=0)
        sup.start()
        harness.procs[0].die()
        assert sup.poll()[0].kind == "lost"
        assert sup.workers_restarted == 0
        assert sup.n_healthy == 1

    def test_all_workers_lost(self):
        sup, harness, _ = make_supervisor(max_restarts=0)
        sup.start()
        harness.procs[0].die()
        harness.procs[1].die()
        sup.poll()
        assert sup.n_healthy == 0
        assert sup.healthy_ids == []


class TestStallDetection:
    def test_stalled_worker_is_reaped_and_restarted(self):
        clock = FakeClock()
        sup, harness, _ = make_supervisor(
            max_restarts=1, stall_timeout=5.0, clock=clock
        )
        sup.start()
        stalled = harness.procs[0]
        clock.now = 6.0
        actions = sup.poll()
        kinds = {(a.worker_id, a.kind, a.reason) for a in actions}
        assert (0, "restart", "stalled") in kinds
        assert stalled.terminated  # the silent process was torn down
        assert sup.workers_restarted >= 1

    def test_results_reset_the_stall_clock(self):
        clock = FakeClock()
        sup, _, _ = make_supervisor(stall_timeout=5.0, clock=clock)
        sup.start()
        clock.now = 4.0
        assert sup.note_result(0, 0) is True
        assert sup.note_result(1, 0) is True
        clock.now = 8.0  # 4 s since last result < 5 s deadline
        assert sup.poll() == []

    def test_no_stall_detection_by_default(self):
        clock = FakeClock()
        sup, _, _ = make_supervisor(clock=clock)  # stall_timeout=None
        sup.start()
        clock.now = 1e6
        assert sup.poll() == []


class TestIncarnationAccounting:
    def test_stale_result_is_flagged_and_does_not_reset_clock(self):
        clock = FakeClock()
        sup, harness, _ = make_supervisor(
            max_restarts=1, stall_timeout=10.0, clock=clock
        )
        sup.start()
        harness.procs[1].die()
        sup.poll()  # restart → incarnation 1
        clock.now = 5.0
        # A result from the dead incarnation 0 must not count as
        # progress for the replacement.
        assert sup.note_result(1, 0) is False
        assert sup.note_result(0, 0) is True  # keep worker 0 fresh
        clock.now = 11.0
        actions = sup.poll()
        assert [(a.worker_id, a.kind) for a in actions] == [(1, "lost")]

    def test_result_for_lost_worker_is_stale(self):
        sup, harness, _ = make_supervisor(max_restarts=0)
        sup.start()
        harness.procs[0].die()
        sup.poll()
        assert sup.note_result(0, 0) is False


class TestSupervisorTelemetry:
    def test_events_emitted_and_schema_valid(self):
        clock = FakeClock()
        sink = MemorySink()
        bus = TelemetryBus([sink])
        harness = Harness()
        sup = WorkerSupervisor(
            2,
            harness.spawn,
            channel_factory=lambda wid, inc: object(),
            max_restarts=1,
            stall_timeout=5.0,
            bus=bus,
            clock=clock,
        )
        sup.start()
        harness.procs[0].die(exitcode=3)   # death → restart
        clock.now = 6.0                     # worker 1 stalls → restart
        sup.poll()
        harness.procs[0].die()              # budget gone → degrade
        sup.poll()
        names = [e.name for e in sink.events]
        assert names.count("supervisor.restart") == 2
        assert names.count("supervisor.stall") == 1
        assert names.count("supervisor.degrade") == 1
        restart = sink.named("supervisor.restart")[0]
        assert restart.fields["worker"] == 0
        assert restart.fields["reason"] == "died"
        assert restart.fields["exitcode"] == 3
        degrade = sink.named("supervisor.degrade")[0]
        assert degrade.fields["healthy_left"] == 1
        for record in sink.records():
            validate_record(record)
        assert bus.counters.get("supervisor.restarts") == 2
        assert bus.counters.get("supervisor.workers_lost") == 1


class TestRebindChannels:
    def test_rebind_replaces_tracked_channels(self):
        """A persistent fleet rebinds on every re-arm; the tracked set
        must stay one channel per worker, not grow one per job."""
        sup, _, _ = make_supervisor(n_workers=2)
        sup.start()
        for _ in range(5):
            sup.rebind_channels(lambda wid, inc, old: object())
        assert len(sup.all_channels) == 2
        assert sup.all_channels == [sup.target_channel(0), sup.target_channel(1)]

    def test_rebind_in_place_keeps_tracking(self):
        sup, _, _ = make_supervisor(n_workers=1)
        sup.start()
        before = sup.target_channel(0)
        sup.rebind_channels(lambda wid, inc, old: old)  # re-stamped in place
        assert sup.target_channel(0) is before
        assert len(sup.all_channels) == 1

    def test_rebind_before_start_rejected(self):
        sup, _, _ = make_supervisor()
        with pytest.raises(RuntimeError, match="not started"):
            sup.rebind_channels(lambda wid, inc, old: old)
