"""Tests for the efficiency-measurement harness."""

import pytest

from repro.metrics.efficiency import measure_efficiency
from repro.qubo import QuboMatrix
from repro.search import BulkLocalSearch, NaiveLocalSearch
from repro.search.accept import AlwaysAccept


class TestMeasureEfficiency:
    def test_points_cover_grid(self):
        weights = {n: QuboMatrix.random(n, seed=n) for n in (16, 32)}
        algos = [NaiveLocalSearch(AlwaysAccept()), BulkLocalSearch()]
        pts = measure_efficiency(algos, weights, steps=50)
        assert len(pts) == 4
        assert {p.n for p in pts} == {16, 32}
        assert {p.algorithm for p in pts} == {a.name for a in algos}

    def test_naive_efficiency_is_n_squared(self):
        weights = {32: QuboMatrix.random(32, seed=32)}
        (pt,) = measure_efficiency([NaiveLocalSearch(AlwaysAccept())], weights, steps=64)
        assert pt.efficiency == pytest.approx(32 * 32)

    def test_bulk_efficiency_is_one(self):
        weights = {64: QuboMatrix.random(64, seed=64)}
        (pt,) = measure_efficiency([BulkLocalSearch()], weights, steps=64)
        assert pt.efficiency == pytest.approx(1.0)

    def test_size_mismatch_detected(self):
        weights = {16: QuboMatrix.random(8, seed=0)}
        with pytest.raises(ValueError, match="size"):
            measure_efficiency([BulkLocalSearch()], weights)

    def test_steps_validation(self):
        with pytest.raises(ValueError):
            measure_efficiency([BulkLocalSearch()], {}, steps=0)
