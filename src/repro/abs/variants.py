"""Heterogeneous search-variant recipes for Diverse ABS.

The follow-up paper ("Diverse Adaptive Bulk Search", arXiv:2207.03069)
observes that a fleet of *identical* searches converges onto
near-duplicate solutions, and instead runs a mix of search algorithms
and parameterizations across the GPUs.  This module is that mix for
the reproduction: a :class:`SearchVariant` bundles the per-device
knobs the base solver already exposes — the Figure-2 window ladder
``l``, the Algorithm-4 scan-neighbors policy, the forced-flip count,
and the host-side GA operator mix — plus an optional tabu-polish pass
reusing :class:`repro.search.tabu.TabuSearch` (the multi-start tabu
ingredient of Lewis, arXiv:1706.00037).

Variants are assigned per simulated device via ``AbsConfig.variants``
(cycled when fewer variants than devices are named) and may be
reallocated at run time by the
:class:`~repro.abs.adaptive.VariantController`.

Every field of a recipe defaults to ``None`` — *inherit the run's
``AbsConfig`` value* — so the ``"ladder"`` recipe with all-``None``
fields reproduces the base paper's configuration exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.abs.config import WindowSpec, resolve_windows
from repro.ga.host import GaConfig

#: Window spec accepted by a variant: anything
#: :func:`~repro.abs.config.resolve_windows` takes, plus ``"greedy"``
#: (window = n, i.e. pure min-Δ greedy descent) — and ``None`` to
#: inherit the run's configured window.
VariantWindowSpec = Union[WindowSpec, None]


@dataclass(frozen=True)
class SearchVariant:
    """One named per-device search recipe.

    Attributes
    ----------
    name:
        Registry key (also what ``--variants`` takes on the CLI).
    description:
        One-line summary shown in docs/telemetry.
    window:
        Window spec override (int, ``"spread"``, ``"greedy"``, or a
        per-block sequence); ``None`` inherits ``AbsConfig.window``.
        Integer values are clamped to ``[1, n]`` at resolve time so a
        recipe stays valid on problems smaller than its fixed window.
    local_steps:
        Step-4b forced-flip count override; ``None`` inherits.
    scan_neighbors:
        Straight-search neighbor-scan policy override; ``None``
        inherits.
    ga:
        GA operator mix used by the host when generating targets *for
        this device*; ``None`` inherits ``AbsConfig.ga``.
    tabu_steps:
        When positive, each device round ends with a
        :class:`~repro.search.tabu.TabuSearch` polish of the round's
        best block solution (``0`` disables the pass).
    tabu_tenure:
        Tabu tenure for the polish pass (``None``: the search's own
        ``min(20, n // 4) + 1`` heuristic).
    """

    name: str
    description: str = ""
    window: VariantWindowSpec = None
    local_steps: int | None = None
    scan_neighbors: bool | None = None
    ga: GaConfig | None = None
    tabu_steps: int = 0
    tabu_tenure: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variant name must be non-empty")
        if self.local_steps is not None and self.local_steps < 0:
            raise ValueError(
                f"local_steps must be >= 0, got {self.local_steps}"
            )
        if self.tabu_steps < 0:
            raise ValueError(f"tabu_steps must be >= 0, got {self.tabu_steps}")
        if self.tabu_tenure is not None and self.tabu_tenure < 1:
            raise ValueError(f"tabu_tenure must be >= 1, got {self.tabu_tenure}")

    # Effective-value helpers: the solver resolves every knob through
    # these so "None = inherit the run config" lives in one place.
    def effective_local_steps(self, default: int) -> int:
        return default if self.local_steps is None else int(self.local_steps)

    def effective_scan(self, default: bool) -> bool:
        return default if self.scan_neighbors is None else bool(self.scan_neighbors)

    def effective_ga(self, default: GaConfig) -> GaConfig:
        return default if self.ga is None else self.ga

    def windows(self, default: WindowSpec, n_blocks: int, n: int) -> np.ndarray:
        """Per-block ``l`` values for this variant on an ``n``-bit problem."""
        spec: WindowSpec = default if self.window is None else self.window
        if isinstance(spec, str) and spec == "greedy":
            return np.full(n_blocks, n, dtype=np.int64)
        if isinstance(spec, (int, np.integer)):
            spec = int(min(max(int(spec), 1), n))
        return resolve_windows(spec, n_blocks, n)


_REGISTRY: dict[str, SearchVariant] = {}


def register_variant(variant: SearchVariant) -> SearchVariant:
    """Register ``variant`` under its name (overwriting any previous)."""
    _REGISTRY[variant.name] = variant
    return variant


def available_variants() -> tuple[str, ...]:
    """Registered variant names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_variant(name: str) -> SearchVariant:
    """Look up a registered variant by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown variant {name!r} "
            f"(registered: {', '.join(available_variants())})"
        ) from None


def resolve_variant_list(
    spec: str | Sequence[str | SearchVariant], n_gpus: int
) -> list[SearchVariant]:
    """Expand a variant spec into one :class:`SearchVariant` per device.

    ``spec`` is a comma-separated string (the CLI form), or a sequence
    of names and/or :class:`SearchVariant` instances.  Fewer variants
    than devices cycle round-robin (device ``g`` gets entry
    ``g % len``), matching how the follow-up paper spreads its
    algorithm mix over the GPU fleet.
    """
    if n_gpus < 1:
        raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
    if isinstance(spec, str):
        names: Sequence[str | SearchVariant] = [
            part.strip() for part in spec.split(",") if part.strip()
        ]
    else:
        names = list(spec)
    if not names:
        raise ValueError("variant spec must name at least one variant")
    resolved = [
        item if isinstance(item, SearchVariant) else get_variant(item)
        for item in names
    ]
    return [resolved[g % len(resolved)] for g in range(n_gpus)]


#: The stock fleet `--variants fleet` expands to: the base-paper
#: ladder plus one explorer, one exploiter, and one tabu-flavored
#: recipe, cycled across devices.
DEFAULT_FLEET = ("ladder", "hot", "greedy", "tabu")

register_variant(
    SearchVariant(
        name="ladder",
        description="base-paper recipe: inherit every run-config knob",
    )
)
register_variant(
    SearchVariant(
        name="hot",
        description="explorer: tiny window + mutation-heavy GA targets",
        window=2,
        ga=GaConfig(p_mutation=0.7, p_crossover=0.2),
    )
)
register_variant(
    SearchVariant(
        name="greedy",
        description="exploiter: full-n window (pure min-Δ descent) + "
        "crossover-heavy elite GA",
        window="greedy",
        ga=GaConfig(p_mutation=0.2, p_crossover=0.7, elite_bias=3.0),
    )
)
register_variant(
    SearchVariant(
        name="tabu",
        description="multi-start tabu flavor: visited-only tracking, "
        "restart-heavy GA, tabu polish of each round's best",
        scan_neighbors=False,
        ga=GaConfig(p_mutation=0.3, p_crossover=0.2),
        tabu_steps=48,
    )
)


def resolve_fleet(
    spec: str | Sequence[str | SearchVariant], n_gpus: int
) -> list[SearchVariant]:
    """:func:`resolve_variant_list` with the ``"fleet"`` alias expanded."""
    if isinstance(spec, str) and spec.strip() == "fleet":
        spec = list(DEFAULT_FLEET)
    return resolve_variant_list(spec, n_gpus)
