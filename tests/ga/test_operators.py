"""Tests for genetic operators."""

import numpy as np
import pytest

from repro.ga.operators import crossover_uniform, mutate, select_parent
from repro.ga.pool import SolutionPool


class TestMutate:
    def test_flips_exact_count(self, rng):
        x = np.zeros(64, dtype=np.uint8)
        child = mutate(x, rng, flips=5)
        assert int((child ^ x).sum()) == 5

    def test_parent_unchanged(self, rng):
        x = np.zeros(16, dtype=np.uint8)
        mutate(x, rng, flips=3)
        assert not x.any()

    def test_default_flip_count(self, rng):
        x = np.zeros(64, dtype=np.uint8)
        child = mutate(x, rng)
        assert int((child ^ x).sum()) == 4  # 64 // 16

    def test_small_vector_default_is_one(self, rng):
        x = np.zeros(4, dtype=np.uint8)
        assert int((mutate(x, rng) ^ x).sum()) == 1

    def test_empty_vector(self, rng):
        assert mutate(np.zeros(0, dtype=np.uint8), rng).shape == (0,)

    @pytest.mark.parametrize("flips", [0, 100])
    def test_invalid_flip_count(self, rng, flips):
        with pytest.raises(ValueError):
            mutate(np.zeros(8, dtype=np.uint8), rng, flips=flips)

    def test_distinct_bits_flipped(self, rng):
        x = np.ones(10, dtype=np.uint8)
        child = mutate(x, rng, flips=10)
        assert not child.any()  # all ten flipped exactly once


class TestCrossover:
    def test_child_bits_come_from_parents(self, rng):
        a = np.zeros(32, dtype=np.uint8)
        b = np.ones(32, dtype=np.uint8)
        child = crossover_uniform(a, b, rng)
        assert set(np.unique(child)) <= {0, 1}

    def test_identical_parents_identical_child(self, rng):
        a = np.array([1, 0, 1, 1], dtype=np.uint8)
        child = crossover_uniform(a, a.copy(), rng)
        assert np.array_equal(child, a)

    def test_agreeing_positions_preserved(self, rng):
        a = np.array([1, 0, 1, 0, 1, 1], dtype=np.uint8)
        b = np.array([1, 1, 1, 0, 0, 1], dtype=np.uint8)
        child = crossover_uniform(a, b, rng)
        agree = a == b
        assert np.array_equal(child[agree], a[agree])

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            crossover_uniform(
                np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8), rng
            )

    def test_mixes_both_parents(self):
        rng = np.random.default_rng(7)
        a = np.zeros(64, dtype=np.uint8)
        b = np.ones(64, dtype=np.uint8)
        child = crossover_uniform(a, b, rng)
        assert 0 < child.sum() < 64


class TestSelectParent:
    def _pool(self):
        pool = SolutionPool(4, capacity=8)
        for i in range(8):
            x = np.array([(i >> k) & 1 for k in range(4)], dtype=np.uint8)
            pool.insert(x, i * 10)
        return pool

    def test_empty_pool_rejected(self, rng):
        with pytest.raises(IndexError):
            select_parent(SolutionPool(4, capacity=2), rng)

    def test_invalid_bias(self, rng):
        with pytest.raises(ValueError):
            select_parent(self._pool(), rng, elite_bias=0)

    def test_elite_bias_prefers_low_energy(self):
        rng = np.random.default_rng(0)
        pool = self._pool()
        picks = [select_parent(pool, rng, elite_bias=3.0) for _ in range(400)]
        # Rank of each picked solution: best solutions picked far more.
        ranks = [
            next(i for i in range(len(pool)) if np.array_equal(pool[i].x, p))
            for p in picks
        ]
        assert np.mean(ranks) < 2.0

    def test_uniform_bias_spreads(self):
        rng = np.random.default_rng(0)
        pool = self._pool()
        picks = [select_parent(pool, rng, elite_bias=1.0) for _ in range(400)]
        ranks = [
            next(i for i in range(len(pool)) if np.array_equal(pool[i].x, p))
            for p in picks
        ]
        assert 2.5 < np.mean(ranks) < 4.5  # ~uniform over 8 ranks
