"""Graph k-coloring → QUBO (Lucas formulation; §5 "other applications").

Bits ``x_{v,c}`` (vertex ``v`` gets colour ``c``), with penalty ``A``:

``H = A·Σ_v (1 − Σ_c x_{v,c})² + A·Σ_{(u,v)∈E} Σ_c x_{u,c}·x_{v,c}``

Dropping the constant ``A·|V|`` from the expanded one-hot terms, a
*proper* k-colouring has QUBO energy exactly ``−A·|V|``; the returned
``offset = A·|V|`` makes ``E(X) + offset == 0`` the feasibility
certificate (and, in general, ``E + offset = A · (one-hot violations +
monochromatic edges)`` for one-hot-satisfying assignments).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.qubo.matrix import QuboMatrix
from repro.utils.validation import check_bit_vector


def coloring_to_qubo(
    graph: nx.Graph, colors: int, *, penalty: int = 2
) -> tuple[QuboMatrix, int]:
    """Compile a k-colouring instance into ``(qubo, offset)``.

    Bit ``v·k + c`` means vertex ``v`` has colour ``c``.  ``penalty``
    must be even so the expanded one-hot pair terms (2A) and conflict
    terms (A) stay integral when split symmetrically; the default 2 is
    the smallest valid choice.
    """
    if colors < 1:
        raise ValueError(f"colors must be >= 1, got {colors}")
    if penalty < 2 or penalty % 2:
        raise ValueError(f"penalty must be a positive even integer, got {penalty}")
    n_v = graph.number_of_nodes()
    if sorted(graph.nodes()) != list(range(n_v)):
        raise ValueError("graph nodes must be exactly 0..n-1")
    A = int(penalty)
    k = int(colors)
    N = n_v * k
    W = np.zeros((N, N), dtype=np.int64)

    def bit(v: int, c: int) -> int:
        return v * k + c

    # One-hot per vertex: −A per bit (diagonal), +2A per same-vertex pair.
    for v in range(n_v):
        for c in range(k):
            W[bit(v, c), bit(v, c)] = -A
        for c1 in range(k):
            for c2 in range(c1 + 1, k):
                W[bit(v, c1), bit(v, c2)] += A
                W[bit(v, c2), bit(v, c1)] += A
    # Conflicts: +A per monochromatic edge (split A/2+A/2 symmetric).
    half = A // 2
    for u, v in graph.edges():
        if u == v:
            raise ValueError(f"self-loop on node {u} cannot be coloured")
        for c in range(k):
            W[bit(u, c), bit(v, c)] += half
            W[bit(v, c), bit(u, c)] += half
    qubo = QuboMatrix(W, copy=False, check=False, name=f"coloring-{n_v}v{k}c")
    return qubo, A * n_v


def decode_coloring(x: np.ndarray, n_vertices: int, colors: int) -> list[int] | None:
    """Colour per vertex, or ``None`` if any one-hot constraint fails."""
    xb = check_bit_vector(x, n_vertices * colors, "x").reshape(n_vertices, colors)
    if not (xb.sum(axis=1) == 1).all():
        return None
    return [int(c) for c in np.argmax(xb, axis=1)]


def is_proper_coloring(graph: nx.Graph, assignment: list[int]) -> bool:
    """Whether no edge is monochromatic under ``assignment``."""
    if len(assignment) != graph.number_of_nodes():
        raise ValueError(
            f"assignment has {len(assignment)} entries for "
            f"{graph.number_of_nodes()} vertices"
        )
    return all(assignment[u] != assignment[v] for u, v in graph.edges())


def count_violations(graph: nx.Graph, x: np.ndarray, colors: int) -> tuple[int, int]:
    """``(one_hot_violations, monochromatic_edges)`` for any bit vector.

    ``one_hot_violations`` counts, per vertex, ``(1 − Σ_c x_{v,c})²``
    summed over vertices (0 when every vertex has exactly one colour).
    """
    n_v = graph.number_of_nodes()
    xb = check_bit_vector(x, n_v * colors, "x").reshape(n_v, colors)
    onehot = int(((1 - xb.sum(axis=1).astype(np.int64)) ** 2).sum())
    mono = 0
    for u, v in graph.edges():
        mono += int((xb[u] & xb[v]).sum())
    return onehot, mono
