"""Worker supervision for the multi-process ABS solver (Figure 5 host).

The paper's premise (§3.3) is that host and devices are *mutually
asynchronous*: a device that stalls or dies must never stall the
search.  This module gives the process-mode host loop that property for
real OS processes:

- every worker is tracked for **liveness** (its process is running) and
  **progress** (it has shipped a result within ``stall_timeout``
  seconds, when a deadline is configured);
- an unhealthy worker is **restarted** up to ``max_restarts`` times.
  The replacement starts from the engine's canonical zero state and is
  rehydrated by the caller with fresh GA targets from the current pool
  — the straight-search handoff (Algorithm 5) makes the worker
  state-free by design, so nothing else needs recovering;
- when a worker's restart budget is exhausted it is marked **lost** and
  the solve degrades gracefully onto the survivors.  Only when *no*
  healthy worker remains does the caller fail the run.

The state machine lives here, decoupled from transport plumbing: the
solver passes a ``spawn`` callable (create + start one worker process)
and a ``channel_factory(worker_id, incarnation)`` (the target channel a
given incarnation reads — a fresh queue on the queue transport, a
handle onto the *surviving* shared-memory mailbox with a bumped epoch
on the ring transport), and calls :meth:`WorkerSupervisor.poll` from
its polling loop.  Everything is injectable (clock, spawn, channels),
so the supervision logic is unit tested without real processes.

Telemetry: ``supervisor.stall`` when a progress deadline is missed,
``supervisor.restart`` per replacement, ``supervisor.degrade`` when a
worker is abandoned — all in the machine-checked schema
(``docs/observability.md``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.telemetry.bus import NULL_BUS, NullBus, TelemetryBus

#: Seconds granted to a terminated worker process before ``kill()``.
_TERMINATE_GRACE = 1.0


@dataclass(frozen=True)
class WorkerAction:
    """One supervision decision, returned by :meth:`WorkerSupervisor.poll`.

    Attributes
    ----------
    worker_id:
        The worker the action applies to.
    kind:
        ``"restart"`` (a replacement process was spawned — the caller
        should rehydrate it with fresh targets) or ``"lost"`` (restart
        budget exhausted; the worker is permanently retired).
    reason:
        ``"died"`` (process no longer alive) or ``"stalled"`` (no
        result within the progress deadline).
    exitcode:
        The defunct process's exit code, when known.
    """

    worker_id: int
    kind: str
    reason: str
    exitcode: int | None = None


class _WorkerState:
    """Book-keeping for one worker slot (all incarnations)."""

    __slots__ = (
        "worker_id",
        "proc",
        "target_q",
        "incarnation",
        "restarts_used",
        "last_progress",
        "lost",
    )

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.proc: Any = None
        self.target_q: Any = None
        self.incarnation = 0
        self.restarts_used = 0
        self.last_progress = 0.0
        self.lost = False


class WorkerSupervisor:
    """Liveness/progress tracking and restart policy for worker processes.

    Parameters
    ----------
    n_workers:
        Number of worker slots (``AbsConfig.n_gpus``).
    spawn:
        ``spawn(worker_id, incarnation, channel) -> process`` — create
        and start one worker process reading targets from ``channel``.
        The returned object needs ``is_alive()``, ``terminate()``,
        ``kill()``, ``join(timeout)``, and ``exitcode``.
    channel_factory:
        ``channel_factory(worker_id, incarnation) -> channel`` — the
        target channel that incarnation reads.  On the queue transport
        this is a fresh ``ctx.Queue`` per incarnation, so stale targets
        can neither leak across incarnations nor pile up unread; on the
        shared-memory transport the underlying mailbox *survives* the
        restart and the factory returns a handle bound to the new
        incarnation's epoch, which makes the replacement skip anything
        published for its predecessor.
    max_restarts:
        Restart budget *per worker*; 0 disables restarts entirely.
    stall_timeout:
        Progress deadline in seconds — a worker that ships no result
        for longer is treated as unhealthy.  ``None`` (default)
        disables stall detection; process death is always detected.
    bus:
        Telemetry bus for ``supervisor.*`` events (optional).
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(
        self,
        n_workers: int,
        spawn: Callable[[int, int, Any], Any],
        *,
        channel_factory: Callable[[int, int], Any],
        max_restarts: int = 2,
        stall_timeout: float | None = None,
        bus: TelemetryBus | NullBus | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if stall_timeout is not None and stall_timeout <= 0:
            raise ValueError(f"stall_timeout must be positive, got {stall_timeout}")
        self._spawn = spawn
        self._channel_factory = channel_factory
        self._max_restarts = int(max_restarts)
        self._stall_timeout = stall_timeout
        self._bus = bus if bus is not None else NULL_BUS
        self._clock = clock
        self._workers = [_WorkerState(g) for g in range(n_workers)]
        # Per-worker state (_workers) is externally synchronized — poll,
        # rebind, and note_result all run on the owning host loop.  The
        # ever-spawned registries are different: fleet shutdown() walks
        # them from whatever thread closes the service, concurrently
        # with a supervise-thread restart appending to them.  Scopes
        # stay call-free so no lock-order edges can form.
        self._registry_lock = threading.Lock()
        self._all_procs: list[Any] = []  # guarded-by: _registry_lock
        self._all_channels: list[Any] = []  # guarded-by: _registry_lock
        #: Total successful restarts across all workers.
        self.workers_restarted = 0
        #: Workers permanently retired (restart budget exhausted).
        self.workers_lost = 0
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn incarnation 0 of every worker."""
        if self._started:
            raise RuntimeError("supervisor already started")
        self._started = True
        now = self._clock()
        for st in self._workers:
            st.target_q = self._channel_factory(st.worker_id, st.incarnation)
            with self._registry_lock:
                self._all_channels.append(st.target_q)
            st.proc = self._spawn(st.worker_id, st.incarnation, st.target_q)
            with self._registry_lock:
                self._all_procs.append(st.proc)
            st.last_progress = now

    def target_channel(self, worker_id: int) -> Any | None:
        """Current-incarnation target channel; ``None`` once lost."""
        st = self._workers[worker_id]
        return None if st.lost else st.target_q

    def rebind_channels(
        self, rebind: Callable[[int, int, Any], Any]
    ) -> None:
        """Re-bind every healthy worker's target channel in place.

        ``rebind(worker_id, incarnation, old_channel) -> channel`` —
        used by the warm fleet when re-arming live workers with a new
        job: the transport keeps its surviving mailbox/stream/queue but
        stamps subsequent publishes with the new job's epoch token.
        Unlike a restart, the incarnation does not change and no process
        is spawned.  Progress clocks are reset so a worker is not
        declared stalled for time spent idle between jobs.
        """
        if not self._started:
            raise RuntimeError("supervisor not started")
        now = self._clock()
        for st in self._workers:
            if st.lost:
                continue
            old = st.target_q
            new = rebind(st.worker_id, st.incarnation, old)
            if new is not old:
                # Replace (never append): a persistent fleet re-arms on
                # every job, and accumulating one channel per worker per
                # job would grow — and drain at shutdown — without bound.
                with self._registry_lock:
                    for i, ch in enumerate(self._all_channels):
                        if ch is old:
                            self._all_channels[i] = new
                            break
                    else:  # pragma: no cover - untracked channel
                        self._all_channels.append(new)
                st.target_q = new
            st.last_progress = now

    def incarnation(self, worker_id: int) -> int:
        """Current incarnation number of a worker slot (0-based)."""
        return self._workers[worker_id].incarnation

    @property
    def n_healthy(self) -> int:
        """Workers not (yet) marked lost."""
        return sum(1 for st in self._workers if not st.lost)

    @property
    def healthy_ids(self) -> list[int]:
        """Worker ids not (yet) marked lost."""
        return [st.worker_id for st in self._workers if not st.lost]

    @property
    def all_processes(self) -> list[Any]:
        """Every process ever spawned (for final join/terminate)."""
        with self._registry_lock:
            return list(self._all_procs)

    @property
    def all_channels(self) -> list[Any]:
        """Every target channel ever created (for final draining)."""
        with self._registry_lock:
            return list(self._all_channels)

    # ------------------------------------------------------------------
    # Progress accounting
    # ------------------------------------------------------------------
    def note_result(self, worker_id: int, incarnation: int) -> bool:
        """Record a result arrival; returns whether it is *fresh*.

        A result is fresh when it came from the worker's current
        incarnation.  Stale results (shipped by a killed predecessor,
        still sitting in the shared queue) are safe to *absorb* — any
        solution is a valid solution — but must not reset the
        replacement's progress clock nor update its counter snapshot,
        so the caller branches on the return value.
        """
        st = self._workers[worker_id]
        if st.lost or incarnation != st.incarnation:
            return False
        st.last_progress = self._clock()
        return True

    # ------------------------------------------------------------------
    # The supervision step
    # ------------------------------------------------------------------
    def poll(self) -> list[WorkerAction]:
        """Check every worker's health; restart or retire the unhealthy.

        Called from the host polling loop (cheap: one ``is_alive`` per
        worker).  Returns the actions taken this step so the caller can
        bank the defunct incarnation's counters and rehydrate
        replacements with fresh GA targets.
        """
        if not self._started:
            raise RuntimeError("supervisor not started")
        actions: list[WorkerAction] = []
        for st in self._workers:
            if st.lost:
                continue
            now = self._clock()
            dead = not st.proc.is_alive()
            stalled = (
                not dead
                and self._stall_timeout is not None
                and now - st.last_progress > self._stall_timeout
            )
            if not dead and not stalled:
                continue
            reason = "died" if dead else "stalled"
            if stalled:
                if self._bus.enabled:
                    self._bus.emit(
                        "supervisor.stall",
                        worker=st.worker_id,
                        silent_for=now - st.last_progress,
                        stall_timeout=self._stall_timeout,
                    )
                self._reap(st.proc)
            else:
                st.proc.join(timeout=0)  # collect the zombie
            exitcode = st.proc.exitcode
            if st.restarts_used >= self._max_restarts:
                actions.append(self._retire(st, reason, exitcode))
            else:
                actions.append(self._restart(st, reason, exitcode))
        return actions

    def _restart(
        self, st: _WorkerState, reason: str, exitcode: int | None
    ) -> WorkerAction:
        st.restarts_used += 1
        st.incarnation += 1
        st.target_q = self._channel_factory(st.worker_id, st.incarnation)
        with self._registry_lock:
            self._all_channels.append(st.target_q)
        st.proc = self._spawn(st.worker_id, st.incarnation, st.target_q)
        with self._registry_lock:
            self._all_procs.append(st.proc)
        st.last_progress = self._clock()
        self.workers_restarted += 1
        bus = self._bus
        if bus.enabled:
            bus.counters.inc("supervisor.restarts")
            bus.emit(
                "supervisor.restart",
                worker=st.worker_id,
                reason=reason,
                incarnation=st.incarnation,
                restarts_used=st.restarts_used,
                exitcode=exitcode,
            )
        return WorkerAction(st.worker_id, "restart", reason, exitcode)

    def _retire(
        self, st: _WorkerState, reason: str, exitcode: int | None
    ) -> WorkerAction:
        st.lost = True
        self.workers_lost += 1
        bus = self._bus
        if bus.enabled:
            bus.counters.inc("supervisor.workers_lost")
            bus.emit(
                "supervisor.degrade",
                worker=st.worker_id,
                reason=reason,
                restarts_used=st.restarts_used,
                healthy_left=self.n_healthy,
                exitcode=exitcode,
            )
        return WorkerAction(st.worker_id, "lost", reason, exitcode)

    @staticmethod
    def _reap(proc: Any) -> None:
        """Terminate a stalled process, escalating to ``kill``."""
        proc.terminate()
        proc.join(timeout=_TERMINATE_GRACE)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=_TERMINATE_GRACE)
