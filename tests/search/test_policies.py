"""Tests for the Figure-2 selection policies."""

import numpy as np
import pytest

from repro.qubo import QuboMatrix, SearchState
from repro.search.policies import GreedyPolicy, RandomPolicy, WindowMinDeltaPolicy


@pytest.fixture
def state():
    return SearchState.zeros(QuboMatrix.random(16, seed=8))


class TestWindowMinDelta:
    def test_selects_min_in_window(self, state, rng):
        pol = WindowMinDeltaPolicy(window=4, offset=0)
        k = pol.select(state, rng)
        window = state.delta[0:4]
        assert k == int(np.argmin(window))

    def test_offset_advances_by_window(self, state, rng):
        pol = WindowMinDeltaPolicy(window=4, offset=0)
        pol.select(state, rng)
        assert pol.offset == 4
        pol.select(state, rng)
        assert pol.offset == 8

    def test_offset_wraps_modulo_n(self, state, rng):
        pol = WindowMinDeltaPolicy(window=6, offset=12)
        k = pol.select(state, rng)
        assert pol.offset == (12 + 6) % 16
        window_idx = [(12 + i) % 16 for i in range(6)]
        assert k in window_idx

    def test_window_one_is_deterministic_cycle(self, state, rng):
        pol = WindowMinDeltaPolicy(window=1)
        picks = [pol.select(state, rng) for _ in range(5)]
        assert picks == [0, 1, 2, 3, 4]

    def test_window_n_equals_greedy(self, state, rng):
        pol = WindowMinDeltaPolicy(window=16)
        assert pol.select(state, rng) == GreedyPolicy().select(state, rng)

    def test_window_larger_than_n_clamped(self, state, rng):
        pol = WindowMinDeltaPolicy(window=100)
        k = pol.select(state, rng)
        assert 0 <= k < 16

    def test_reset_restores_offset(self, state, rng):
        pol = WindowMinDeltaPolicy(window=4, offset=2)
        pol.select(state, rng)
        pol.reset()
        assert pol.offset == 2

    def test_clone_is_fresh(self, state, rng):
        pol = WindowMinDeltaPolicy(window=4, offset=2)
        pol.select(state, rng)
        dup = pol.clone()
        assert dup.offset == 2
        assert dup is not pol

    @pytest.mark.parametrize("bad", [0, -3])
    def test_invalid_window(self, bad):
        with pytest.raises(ValueError):
            WindowMinDeltaPolicy(window=bad)

    def test_invalid_offset(self):
        with pytest.raises(ValueError):
            WindowMinDeltaPolicy(window=2, offset=-1)

    def test_repr(self):
        assert "window=4" in repr(WindowMinDeltaPolicy(4))


class TestGreedyPolicy:
    def test_picks_global_min(self, state, rng):
        assert GreedyPolicy().select(state, rng) == int(np.argmin(state.delta))


class TestRandomPolicy:
    def test_in_range_and_covers(self, state):
        rng = np.random.default_rng(0)
        pol = RandomPolicy()
        picks = {pol.select(state, rng) for _ in range(300)}
        assert picks <= set(range(16))
        assert len(picks) > 10  # covers most of the range
