"""Convergence-trace analysis for solver histories.

A :class:`~repro.abs.result.SolveResult` carries ``history`` —
``(elapsed_seconds, best_energy)`` checkpoints.  These helpers turn
such traces into the summary quantities used when comparing anytime
solvers: time-to-threshold, the step-function value at a time, and the
anytime area under the curve.
"""

from __future__ import annotations

import math
from typing import Sequence

Trace = Sequence[tuple[float, float]]


def _check_trace(history: Trace) -> list[tuple[float, float]]:
    trace = [(float(t), float(e)) for t, e in history]
    for i in range(len(trace) - 1):
        if trace[i + 1][0] < trace[i][0]:
            raise ValueError("history timestamps must be non-decreasing")
    return trace


def time_to_threshold(history: Trace, threshold: float) -> float | None:
    """First timestamp at which the best energy reached ``threshold``.

    Returns ``None`` if the trace never gets there.
    """
    for t, e in _check_trace(history):
        if e <= threshold:
            return t
    return None


def value_at(history: Trace, time: float) -> float:
    """Best energy known at ``time`` (step interpolation).

    ``inf`` before the first checkpoint.
    """
    if time < 0:
        raise ValueError(f"time must be non-negative, got {time}")
    best = math.inf
    for t, e in _check_trace(history):
        if t > time:
            break
        best = min(best, e)
    return best


def anytime_auc(history: Trace, t_end: float, *, baseline: float = 0.0) -> float:
    """Area between the best-energy step function and ``baseline`` on
    ``[first checkpoint, t_end]``.

    Lower is better for minimization (the solver spends less time at
    high energies).  Useful for comparing anytime behaviour of two
    configurations whose final energies tie.
    """
    trace = _check_trace(history)
    if not trace:
        raise ValueError("history is empty")
    if t_end < trace[0][0]:
        raise ValueError(
            f"t_end ({t_end}) precedes the first checkpoint ({trace[0][0]})"
        )
    area = 0.0
    best = trace[0][1]
    prev_t = trace[0][0]
    for t, e in trace[1:]:
        t = min(t, t_end)
        area += (t - prev_t) * (best - baseline)
        best = min(best, e)
        prev_t = t
        if prev_t >= t_end:
            break
    if prev_t < t_end:
        area += (t_end - prev_t) * (best - baseline)
    return area


def mean_trace(histories: Sequence[Trace], times: Sequence[float]) -> list[float]:
    """Mean best energy across runs, sampled at ``times``.

    Runs that have no checkpoint yet at a sample time contribute
    ``inf`` — the mean is then ``inf`` too, making warm-up visible.
    """
    if not histories:
        raise ValueError("need at least one history")
    out = []
    for t in times:
        vals = [value_at(h, t) for h in histories]
        out.append(sum(vals) / len(vals) if all(map(math.isfinite, vals)) else math.inf)
    return out
