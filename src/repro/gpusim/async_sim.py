"""Quantifying the benefit of asynchronous block execution (§3.2).

The paper argues that because each CUDA block's straight search runs
for a *different* number of flips (the Hamming distance to its GA
target varies), synchronizing blocks between rounds would waste time —
and ABS avoids that by letting every block run free ("the overhead for
synchronization … is avoided because each CUDA block operates
asynchronously").

This module turns that argument into numbers.  Given a ``B × R`` matrix
of per-block, per-round work amounts (e.g. flips: Hamming distance +
fixed local steps):

- **synchronized makespan** — a barrier after every round: each round
  costs the *maximum* over blocks, so
  ``Σ_r max_b work[b, r]``;
- **asynchronous makespan** — blocks never wait: block ``b``'s
  completion is its own ``Σ_r work[b, r]``, and the makespan is the
  maximum over blocks (with B blocks sharing the machine uniformly,
  relative throughput comparisons are unaffected by the sharing
  factor).

``async_speedup`` is their ratio ≥ 1; it grows with the spread of the
per-round work distribution.  :func:`sample_round_work` extracts a
realistic work matrix from an actual solver run's Hamming distances.
"""

from __future__ import annotations

import numpy as np

from repro.qubo.matrix import WeightsLike
from repro.utils.rng import SeedLike, as_generator


def _check_work(work: np.ndarray) -> np.ndarray:
    w = np.asarray(work, dtype=np.float64)
    if w.ndim != 2 or w.size == 0:
        raise ValueError(f"work must be a non-empty B × R matrix, got shape {w.shape}")
    if (w < 0).any():
        raise ValueError("work amounts must be non-negative")
    return w


def synchronized_makespan(work: np.ndarray) -> float:
    """Barrier after every round: ``Σ_r max_b work[b, r]``."""
    w = _check_work(work)
    return float(w.max(axis=0).sum())


def asynchronous_makespan(work: np.ndarray) -> float:
    """No barriers: ``max_b Σ_r work[b, r]``."""
    w = _check_work(work)
    return float(w.sum(axis=1).max())


def async_speedup(work: np.ndarray) -> float:
    """Synchronized / asynchronous makespan (≥ 1 always).

    Equality holds only when every round's work is identical across
    blocks; heterogeneous straight-search lengths push it up.
    """
    sync = synchronized_makespan(work)
    anc = asynchronous_makespan(work)
    if anc == 0:
        return 1.0
    return sync / anc


def sample_round_work(
    weights: WeightsLike,
    n_blocks: int,
    rounds: int,
    *,
    local_steps: int = 32,
    pool_capacity: int = 32,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Measure a realistic ``B × R`` work matrix from a live ABS run.

    Runs the sync solver round by round and records, per block and
    round, the straight-search flip count (the Hamming distance from
    the block's position to its GA target) plus the fixed local steps —
    exactly the per-round work a real device block performs.
    """
    from repro.abs.config import AbsConfig, resolve_windows
    from repro.abs.device import DeviceSimulator
    from repro.abs.host import Host
    from repro.utils.rng import RngFactory

    if n_blocks < 1 or rounds < 1:
        raise ValueError("n_blocks and rounds must be >= 1")
    factory = RngFactory(
        seed if not isinstance(seed, np.random.Generator) else None
    )
    host = Host(_weights_n(weights), pool_capacity, rng_factory=factory)
    windows = resolve_windows("spread", n_blocks, host.n)
    device = DeviceSimulator(
        weights, n_blocks, windows=windows, local_steps=local_steps
    )
    work = np.zeros((n_blocks, rounds), dtype=np.float64)
    targets = host.initial_targets(n_blocks)
    for r in range(rounds):
        hamming = (device.engine.X ^ targets).sum(axis=1)
        work[:, r] = hamming + local_steps
        energies, xs = device.round(targets)
        host.absorb_batch(energies, xs)
        targets = host.make_targets(n_blocks)
    return work


def _weights_n(weights: WeightsLike) -> int:
    from repro.qubo.energy import weights_size

    return weights_size(weights)
