"""Tests for the time-to-solution harness."""

import math

import pytest

from repro.abs.config import AbsConfig
from repro.metrics.tts import TtsResult, time_to_solution
from repro.qubo import QuboMatrix
from repro.search import solve_exact


@pytest.fixture(scope="module")
def problem_and_opt():
    q = QuboMatrix.random(14, seed=777)
    return q, solve_exact(q).energy


class TestTimeToSolution:
    def test_reachable_target_all_succeed(self, problem_and_opt):
        q, opt = problem_and_opt
        cfg = AbsConfig(blocks_per_gpu=8, local_steps=16, max_rounds=300, seed=0)
        res = time_to_solution(q, opt, cfg, repeats=3)
        assert res.successes == 3
        assert res.success_rate == 1.0
        assert res.mean_time > 0
        assert res.min_time <= res.mean_time
        assert all(b == opt for b in res.best_energies)

    def test_unreachable_target_counts_failures(self, problem_and_opt):
        q, opt = problem_and_opt
        cfg = AbsConfig(blocks_per_gpu=2, local_steps=2, max_rounds=2, seed=0)
        res = time_to_solution(q, opt - 10**6, cfg, repeats=2)
        assert res.successes == 0
        assert math.isnan(res.mean_time)
        assert math.isnan(res.min_time)

    def test_distinct_seeds_per_repeat(self, problem_and_opt):
        q, opt = problem_and_opt
        cfg = AbsConfig(blocks_per_gpu=4, local_steps=8, max_rounds=50, seed=5)
        res = time_to_solution(q, opt, cfg, repeats=3)
        # Different seeds make byte-identical times vanishingly unlikely;
        # at minimum the result must report one time per success.
        assert len(res.times) == res.successes

    def test_validation(self, problem_and_opt):
        q, opt = problem_and_opt
        good = AbsConfig(max_rounds=2, seed=0)
        with pytest.raises(ValueError):
            time_to_solution(q, opt, good, repeats=0)
        no_stop = AbsConfig(target_energy=0)
        with pytest.raises(ValueError, match="timeout"):
            time_to_solution(q, opt, no_stop)


class TestTtsResult:
    def test_empty_success_rate(self):
        r = TtsResult(times=(), successes=0, repeats=0, target_energy=0, best_energies=())
        assert r.success_rate == 0.0
