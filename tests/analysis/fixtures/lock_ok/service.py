"""A class that follows the guarded-by convention exactly."""

import threading


class TidyService:
    GUARDED_BY = {"stats": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._aux = threading.Lock()
        self._jobs = {}  # guarded-by: _lock
        self.stats = {"hits": 0}

    def submit(self, job_id, job):
        with self._cond:  # Condition aliases onto _lock: satisfies the guard
            self._jobs[job_id] = job
            self._cond.notify_all()

    def snapshot(self):
        with self._lock:
            out = dict(self._jobs)
            out["hits"] = self.stats["hits"]
        return out

    def wait_for_jobs(self):
        with self._cond:
            while not self._jobs:
                self._cond.wait(timeout=0.1)
            return len(self._jobs)

    def _locked_count(self):  # lock-held: _lock
        return len(self._jobs)

    def count(self):
        with self._lock:
            return self._locked_count()

    def nested_consistent(self):
        with self._lock:
            with self._aux:  # one order everywhere: acyclic
                return len(self._jobs)
