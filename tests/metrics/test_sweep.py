"""Tests for the parameter-sweep harness."""

import pytest

from repro.abs.config import AbsConfig
from repro.metrics.sweep import best_point, render_sweep, sweep
from repro.qubo import QuboMatrix


@pytest.fixture(scope="module")
def problem():
    return QuboMatrix.random(24, seed=4242)


@pytest.fixture(scope="module")
def base():
    return AbsConfig(blocks_per_gpu=4, local_steps=8, max_rounds=4, seed=1)


class TestSweep:
    def test_grid_cartesian_product(self, problem, base):
        pts = sweep(problem, base, {"local_steps": [4, 8], "blocks_per_gpu": [2, 4]})
        assert len(pts) == 4
        combos = {(p.params["local_steps"], p.params["blocks_per_gpu"]) for p in pts}
        assert combos == {(4, 2), (4, 4), (8, 2), (8, 4)}

    def test_params_actually_applied(self, problem, base):
        pts = sweep(problem, base, {"blocks_per_gpu": [2, 8]})
        ev = {p.params["blocks_per_gpu"]: p.result.evaluated for p in pts}
        assert ev[8] > ev[2]  # more blocks evaluate more

    def test_repeats_keep_best(self, problem, base):
        single = sweep(problem, base, {"local_steps": [8]}, repeats=1)
        multi = sweep(problem, base, {"local_steps": [8]}, repeats=3)
        assert multi[0].result.best_energy <= single[0].result.best_energy

    def test_unknown_field_rejected(self, problem, base):
        with pytest.raises(ValueError, match="unknown AbsConfig field"):
            sweep(problem, base, {"warp_speed": [9]})

    def test_empty_grid_rejected(self, problem, base):
        with pytest.raises(ValueError, match="at least one"):
            sweep(problem, base, {})

    def test_repeats_validation(self, problem, base):
        with pytest.raises(ValueError):
            sweep(problem, base, {"local_steps": [8]}, repeats=0)

    def test_deterministic(self, problem, base):
        a = sweep(problem, base, {"local_steps": [4, 8]})
        b = sweep(problem, base, {"local_steps": [4, 8]})
        assert [p.result.best_energy for p in a] == [
            p.result.best_energy for p in b
        ]


class TestRendering:
    def test_render_table(self, problem, base):
        pts = sweep(problem, base, {"local_steps": [4, 8]})
        out = render_sweep(pts, title="my sweep")
        assert out.splitlines()[0] == "my sweep"
        assert "local_steps" in out
        assert "best energy" in out

    def test_render_empty_rejected(self):
        with pytest.raises(ValueError):
            render_sweep([])

    def test_best_point(self, problem, base):
        pts = sweep(problem, base, {"local_steps": [2, 16]})
        bp = best_point(pts)
        assert bp.result.best_energy == min(p.result.best_energy for p in pts)

    def test_best_point_empty(self):
        with pytest.raises(ValueError):
            best_point([])

    def test_label(self, problem, base):
        pts = sweep(problem, base, {"local_steps": [4]})
        assert pts[0].label == "local_steps=4"
