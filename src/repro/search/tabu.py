"""Tabu-search baseline over single-bit flips.

A standard QUBO tabu search in the style of qbsolv's inner loop: each
iteration flips the non-tabu bit with minimum Δ (aspiration: a tabu bit
may still be flipped if it would improve on the incumbent), then marks
it tabu for ``tenure`` iterations.  Like Algorithm 4 it forces a flip
every step and enjoys the same O(n)-per-step bookkeeping; it serves as
an independent classical comparator in the Table 3 benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.qubo.matrix import WeightsLike
from repro.qubo.state import SearchState
from repro.search.base import LocalSearch, SearchRecord
from repro.utils.rng import SeedLike


class TabuSearch(LocalSearch):
    """Min-Δ tabu search with aspiration.

    Parameters
    ----------
    tenure:
        Iterations a flipped bit stays tabu.  ``None`` picks
        ``min(20, n // 4) + 1`` at run time (a common heuristic).
    """

    name = "tabu search"

    def __init__(self, tenure: int | None = None) -> None:
        if tenure is not None and tenure < 1:
            raise ValueError(f"tenure must be >= 1, got {tenure}")
        self.tenure = tenure

    def run(
        self,
        weights: WeightsLike,
        x0: np.ndarray,
        steps: int,
        seed: SeedLike = None,
        *,
        record_history: bool = False,
    ) -> SearchRecord:
        W, x, rng = self._prepare(weights, x0, steps, seed)
        n = W.shape[0]
        if n == 0:
            empty = np.zeros(0, dtype=np.uint8)
            return SearchRecord(empty, 0, empty.copy(), 0, steps, 0, 1, 0)
        state = SearchState.from_bits(W, x)
        ops = n * n
        evaluated = n  # delta vector exposes all neighbors immediately
        tenure = self.tenure or (min(20, n // 4) + 1)

        expires = np.zeros(n, dtype=np.int64)  # step at which tabu expires
        best_x = state.x.copy()
        best_e = state.energy
        history: list[int] = []

        for step in range(steps):
            allowed = expires <= step
            # Aspiration: any move reaching a new incumbent is allowed.
            aspiring = (state.energy + state.delta) < best_e
            mask = allowed | aspiring
            if not mask.any():
                mask = allowed if allowed.any() else np.ones(n, dtype=bool)
            masked = np.where(mask, state.delta, np.iinfo(np.int64).max)
            k = int(np.argmin(masked))
            state.flip(k)
            ops += n
            evaluated += n
            expires[k] = step + 1 + tenure
            if state.energy < best_e:
                best_e = state.energy
                best_x = state.x.copy()
            j = int(np.argmin(state.delta))
            cand = state.energy + int(state.delta[j])
            if cand < best_e:
                best_e = cand
                best_x = state.x.copy()
                best_x[j] ^= 1
            if record_history:
                history.append(best_e)

        return SearchRecord(
            best_x=best_x,
            best_energy=best_e,
            final_x=state.x.copy(),
            final_energy=state.energy,
            steps=steps,
            flips=state.flips,
            evaluated=evaluated,
            ops=ops,
            history=history,
        )
