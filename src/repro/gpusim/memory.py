"""Memory-placement accounting for the simulated kernel (paper §3.2).

The paper stores, per CUDA block:

- in the **register file**: the current solution ``X`` (1 bit each) and
  all ``Δ_i`` values (32-bit);
- in **shared memory**: the best solution ``B`` (packed bits) and the
  energies ``E_B`` and ``E_X``;
- in **global memory**: the weight matrix ``W`` (16-bit), the target
  buffer, and the solution buffer.

:func:`plan_block_memory` performs this placement for a given problem
size and verifies it against a :class:`~repro.gpusim.device.DeviceSpec`,
reproducing the capacity claims (32 k bits, 16-bit weights in 11 GB).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import RTX_2080_TI, DeviceSpec
from repro.gpusim.occupancy import Occupancy, compute_occupancy


@dataclass(frozen=True)
class BlockMemoryPlan:
    """Per-block/per-GPU memory placement for an ``n``-bit kernel."""

    n: int
    bits_per_thread: int
    #: registers per thread: p deltas (32-bit) + packed bits + overhead
    registers_per_thread: int
    #: shared bytes per block: packed best solution + E_B + E_X
    shared_bytes_per_block: int
    #: global bytes for the weight matrix at 16-bit weights
    weight_bytes: int
    #: global bytes for one target/solution slot (packed bits + energy)
    slot_bytes: int
    occupancy: Occupancy

    def fits(self, device: DeviceSpec = RTX_2080_TI, *, n_slots: int = 0) -> bool:
        """Whether the plan fits the device at full occupancy."""
        shared_total = self.shared_bytes_per_block * self.occupancy.blocks_per_sm
        if shared_total > device.shared_mem_per_sm:
            return False
        global_needed = self.weight_bytes + 2 * n_slots * self.slot_bytes
        return global_needed <= device.global_mem


def plan_block_memory(
    n: int,
    bits_per_thread: int,
    device: DeviceSpec = RTX_2080_TI,
    *,
    weight_bytes_per_entry: int = 2,
) -> BlockMemoryPlan:
    """Compute the §3.2 memory placement for an ``n``-bit kernel.

    Raises :class:`ValueError` (propagated from the occupancy
    calculator) if the kernel cannot launch at all.
    """
    occ = compute_occupancy(n, bits_per_thread, device)
    packed_solution = -(-n // 8)  # bits of B, packed
    shared = packed_solution + 8 + 8  # + E_B and E_X as int64
    return BlockMemoryPlan(
        n=n,
        bits_per_thread=bits_per_thread,
        registers_per_thread=occ.registers_per_thread,
        shared_bytes_per_block=shared,
        weight_bytes=n * n * weight_bytes_per_entry,
        slot_bytes=packed_solution + 8,
        occupancy=occ,
    )
