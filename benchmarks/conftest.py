"""Benchmark-harness plumbing.

Every bench regenerates one table or figure from the paper's evaluation
section and registers a rendered paper-vs-measured table through the
``report`` fixture.  The tables are printed in the terminal summary
(after pytest's capture ends) and written to ``benchmarks/results/`` so
that ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures them.

Scale: by default every bench runs a *reduced* configuration sized for
a laptop/CI box (seconds, not the paper's four RTX 2080 Ti).  Set
``REPRO_FULL=1`` for the full instance list (minutes to hours).
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Full-scale switch shared by all benches.
FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

_reports: list[tuple[str, str]] = []


class BackendUnavailable(RuntimeError):
    """A requested kernel backend resolved to a fallback, not itself.

    Benches must never time a fallback under the requested backend's
    name: the recorded numbers would silently describe the numpy
    reference while claiming to describe the accelerated kernels.
    """


def resolve_backend_strict(name: str):
    """Resolve ``name`` and *fail hard* if it degraded to a fallback.

    The registry's graceful degradation (``fallback_from``) is the
    right behaviour for solves; for benches it is a lie waiting to be
    published.  Raises :class:`BackendUnavailable` instead of recording
    fallback measurement points.
    """
    from repro.backends import resolve_backend

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        backend = resolve_backend(name)
    if backend.fallback_from:
        raise BackendUnavailable(
            f"backend {name!r} is unavailable on this machine (resolved to "
            f"{backend.name!r} via fallback) — refusing to bench the fallback "
            f"under the requested backend's name"
        )
    return backend


@pytest.fixture
def strict_backend():
    """Fixture form of :func:`resolve_backend_strict` for benches."""
    return resolve_backend_strict


@pytest.fixture
def report():
    """Register a rendered results table for the terminal summary."""

    def _register(title: str, text: str) -> None:
        _reports.append((title, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = title.lower().replace(" ", "_").replace("(", "").replace(")", "")
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")

    return _register


@pytest.fixture
def bench_record(request):
    """Record wall-clock + telemetry counter snapshots to a JSON file.

    Usage inside a bench::

        def test_table1c(..., bench_record):
            result = AdaptiveBulkSearch(qubo, cfg).solve("sync")
            bench_record("n=1024", result, target=-12345)

    Each registered run captures the solve's ``best_energy`` /
    ``elapsed`` / ``evaluated`` / ``flips`` and the full
    ``SolveResult.counters`` snapshot; extra keyword pairs are stored
    verbatim.  On teardown the runs land in
    ``benchmarks/results/BENCH_<test name>.json`` together with the
    bench's total wall-clock, so successive ``make bench`` outputs can
    be diffed counter-by-counter.
    """
    runs: list[dict] = []
    started = time.perf_counter()

    def _record(label: str, result=None, **extra) -> None:
        entry: dict = {"label": label, **extra}
        if result is not None:
            entry["best_energy"] = int(result.best_energy)
            entry["elapsed_s"] = float(result.elapsed)
            entry["evaluated"] = int(result.evaluated)
            entry["flips"] = int(result.flips)
            entry["counters"] = dict(result.counters)
        runs.append(entry)

    yield _record

    if not runs:
        return
    name = request.node.name.replace("[", "_").replace("]", "")
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "bench": name,
        "full_scale": FULL,
        "wall_clock_s": round(time.perf_counter() - started, 6),
        "runs": runs,
    }
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _reports:
        return
    terminalreporter.section("paper reproduction results")
    for title, text in _reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {title} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)
