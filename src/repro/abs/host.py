"""The CPU host loop (paper §3.1).

Host steps:

1. initialize the solution pool (random bit vectors at energy +∞) and
   the target buffer;
2. wait for new solutions stored by devices (poll the counter);
3. insert arrived solutions into the sorted, duplicate-free pool;
4. generate and store as many new GA targets as solutions arrived.

The host **never evaluates the energy function** — every energy it
handles was computed by a device.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.abs.buffers import StoredSolution
from repro.ga.host import GaConfig, TargetGenerator
from repro.ga.pool import SolutionPool
from repro.telemetry.bus import NULL_BUS, NullBus, TelemetryBus
from repro.utils.rng import RngFactory


class Host:
    """Pool management + GA target generation for one solve."""

    def __init__(
        self,
        n: int,
        pool_capacity: int,
        ga: GaConfig | None = None,
        *,
        rng_factory: RngFactory | None = None,
        bus: TelemetryBus | NullBus | None = None,
        min_distance: int = 0,
        device_ga: Sequence[GaConfig] | None = None,
    ) -> None:
        factory = rng_factory or RngFactory(None)
        self.bus = bus if bus is not None else NULL_BUS
        self.pool = SolutionPool(
            n, pool_capacity, min_distance=min_distance, bus=self.bus
        )
        self.pool.seed_random(factory.stream("pool-seed"))       # Step 1
        self.generator = TargetGenerator(
            self.pool, ga or GaConfig(), seed=factory.stream("ga"), bus=self.bus
        )
        # Diverse-ABS heterogeneous fleet: one generator per device so
        # each variant's GA operator mix draws from its own stream.
        # ``None`` (the default) keeps the single-generator base-paper
        # behavior — and its RNG draw order — bit-for-bit.
        self.device_generators: list[TargetGenerator] | None = None
        if device_ga is not None:
            self.device_generators = [
                TargetGenerator(
                    self.pool,
                    cfg_g,
                    seed=factory.stream("ga-variant", g),
                    bus=self.bus,
                )
                for g, cfg_g in enumerate(device_ga)
            ]
        #: Best device-reported solution ever seen (pool eviction-proof).
        self.best_energy: float = math.inf
        self.best_x: np.ndarray | None = None
        self.absorbed = 0

    @property
    def n(self) -> int:
        """Bits per solution."""
        return self.pool.n

    def initial_targets(self, count: int) -> np.ndarray:
        """Targets for the very first round: the seeded random pool.

        The devices' first straight search therefore walks from the
        zero vector to these random solutions, giving the pool its
        first real energies.  Returns a ``(count, n)`` uint8 matrix —
        pool entries repeated cyclically when ``count`` exceeds the
        pool size.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        pool_mat = self.pool.as_matrix()
        idx = np.arange(count) % len(self.pool)
        return np.ascontiguousarray(pool_mat[idx])

    def set_device_ga(self, device: int, ga: GaConfig) -> None:
        """Swap device ``device``'s GA operator mix (variant migration).

        The generator object — and therefore its RNG stream — is kept;
        only its config changes, so seeded runs stay reproducible
        across reallocations.
        """
        if self.device_generators is None:
            raise RuntimeError("host was built without per-device generators")
        self.device_generators[device].config = ga

    @property
    def ga_counts(self) -> dict[str, int]:
        """GA operator counts summed over every generator."""
        counts = dict(self.generator.counts)
        for gen in self.device_generators or ():
            for key, value in gen.counts.items():
                counts[key] += value
        return counts

    def absorb(self, solutions: Iterable[StoredSolution]) -> int:
        """Step 3: pool every arrived solution; returns #inserted."""
        pool = self.pool
        dup0, worse0 = pool.rejected_duplicate, pool.rejected_worse
        div0 = pool.rejected_diverse
        arrived = 0
        inserted = 0
        for sol in solutions:
            arrived += 1
            self.absorbed += 1
            if sol.energy < self.best_energy:
                self.best_energy = sol.energy
                self.best_x = sol.x.copy()
            if pool.insert(sol.x, sol.energy):
                inserted += 1
        self._emit_absorb(arrived, inserted, dup0, worse0, div0)
        return inserted

    def absorb_batch(self, energies: np.ndarray, X: np.ndarray) -> int:
        """Step 3, batched: pool one device round's ``(energies, X)``.

        Semantically identical to :meth:`absorb` over the rows in
        order — same best tracking, same counters, same
        ``host.absorb`` event — but the best scan is one vectorized
        ``argmin`` and the pool takes the whole matrix through
        :meth:`~repro.ga.pool.SolutionPool.insert_batch` (one
        ``np.packbits`` for every duplicate key).
        """
        energies = np.asarray(energies)
        X = np.asarray(X, dtype=np.uint8)
        if X.ndim != 2 or energies.shape != (X.shape[0],):
            raise ValueError(
                f"want energies (k,) and X (k, n); got {energies.shape} "
                f"and {X.shape}"
            )
        pool = self.pool
        dup0, worse0 = pool.rejected_duplicate, pool.rejected_worse
        div0 = pool.rejected_diverse
        arrived = X.shape[0]
        self.absorbed += arrived
        if arrived:
            b = int(energies.argmin())
            if energies[b] < self.best_energy:
                self.best_energy = int(energies[b])
                self.best_x = X[b].copy()
        inserted = pool.insert_batch(X, energies)
        self._emit_absorb(arrived, inserted, dup0, worse0, div0)
        return inserted

    def _emit_absorb(
        self, arrived: int, inserted: int, dup0: int, worse0: int, div0: int
    ) -> None:
        bus = self.bus
        if not bus.enabled:
            return
        pool = self.pool
        bus.counters.inc("host.solutions_absorbed", arrived)
        rng = pool.finite_energy_range()
        bus.emit(
            "host.absorb",
            arrived=arrived,
            inserted=inserted,
            rejected_duplicate=pool.rejected_duplicate - dup0,
            rejected_worse=pool.rejected_worse - worse0,
            rejected_diverse=pool.rejected_diverse - div0,
            pool_size=len(pool),
            pool_best=rng[0] if rng else None,
            pool_worst=rng[1] if rng else None,
            pool_spread=rng[1] - rng[0] if rng else None,
        )

    def make_targets(self, count: int, device: int | None = None) -> np.ndarray:
        """Step 4: GA-generate ``count`` fresh targets (``(count, n)``).

        ``device`` selects that device's variant generator when the
        host was built with per-device GA configs; ``None`` uses the
        shared base generator (the only one that exists — and the only
        RNG stream consumed — on a homogeneous run).
        """
        if device is None or self.device_generators is None:
            generator = self.generator
        else:
            generator = self.device_generators[device]
        targets = generator.generate(count)
        bus = self.bus
        if bus.enabled:
            counts = self.ga_counts
            bus.counters.inc("host.targets_generated", count)
            bus.emit(
                "host.targets",
                count=count,
                mutation=counts["mutation"],
                crossover=counts["crossover"],
                copy=counts["copy"],
            )
        return targets
