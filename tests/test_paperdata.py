"""Internal-consistency checks of the embedded published data."""

import pytest

from repro import paperdata as pd


class TestTable1:
    def test_table1a_sizes(self):
        assert len(pd.TABLE_1A) == 8
        assert {r.n for r in pd.TABLE_1A} == {800, 2000, 5000, 10000}

    def test_table1b_bit_counts_follow_formula(self):
        for row in pd.TABLE_1B:
            expected = (row.cities - 1) ** 2
            if row.problem == "st70":
                # Published as 4621; (70−1)² = 4761 — known typo.
                assert row.n == 4621
                assert expected == 4761
            else:
                assert row.n == expected

    def test_table1c_sizes_are_powers_of_two(self):
        for row in pd.TABLE_1C:
            assert row.n & (row.n - 1) == 0

    def test_times_positive(self):
        for row in (*pd.TABLE_1A, *pd.TABLE_1B, *pd.TABLE_1C):
            assert row.time_s > 0


class TestTable2:
    def test_twenty_rows(self):
        assert len(pd.TABLE_2) == 20

    def test_peak_rate(self):
        assert max(r.rate_tera for r in pd.TABLE_2) == 1.24
        peak = max(pd.TABLE_2, key=lambda r: r.rate_tera)
        assert peak.n == 1024 and peak.bits_per_thread == 16

    def test_active_blocks_arithmetic(self):
        """blocks = 68 · 1024 / (n/p) for every row — the arithmetic
        the occupancy calculator reproduces."""
        for r in pd.TABLE_2:
            threads = r.n // r.bits_per_thread
            assert r.active_blocks == 68 * 1024 // threads

    def test_headline_speedup_over_fpga(self):
        """§4.3: 'about 60 times faster' than the 20.4 G FPGA."""
        assert pd.ABS_PEAK_RATE / pd.FPGA_REF22_RATE == pytest.approx(60, rel=0.02)


class TestTable3:
    def test_five_systems(self):
        assert len(pd.TABLE_3) == 5

    def test_abs_row(self):
        abs_row = next(r for r in pd.TABLE_3 if "ABS" in r.system)
        assert abs_row.bits == 32768
        assert abs_row.search_rate == 1.24e12
        assert "RTX 2080 Ti" in abs_row.technology

    def test_only_fully_connected_rows_besides_dwave(self):
        for r in pd.TABLE_3:
            if r.system == "D-Wave":
                assert r.connection == "Chimera graph"
            else:
                assert r.connection == "fully-connected"
