"""Minimum vertex cover → QUBO (a Lucas-catalog application).

Minimize ``Σ_i x_i`` subject to every edge having a covered endpoint.
With penalty ``P > 1`` per uncovered edge:

``f(x) = Σ_i x_i + P · Σ_{(u,v)∈E} (1 − x_u)(1 − x_v)``

which expands to linear terms ``1 − P·deg(i)`` and quadratic terms
``P`` per edge (plus the constant ``P·|E|``, returned separately).
:class:`~repro.qubo.matrix.QuboMatrix.from_terms` doubles the matrix
when needed to stay integral, so check ``qubo.energy_scale()``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.qubo.matrix import QuboMatrix
from repro.utils.validation import check_bit_vector


def vertex_cover_to_qubo(graph: nx.Graph, *, penalty: int = 2) -> tuple[QuboMatrix, int]:
    """Compile a graph into ``(qubo, offset)``.

    For a bit vector that *is* a cover,
    ``scale · (cover size) == E(X) + scale · 0`` and in general
    ``E(X)/scale + offset == cover_size + P · uncovered_edges``
    with ``scale = qubo.energy_scale()`` and ``offset = P·|E|``.
    """
    if penalty < 2:
        raise ValueError(f"penalty must be >= 2 to dominate the objective, got {penalty}")
    n = graph.number_of_nodes()
    if sorted(graph.nodes()) != list(range(n)):
        raise ValueError("graph nodes must be exactly 0..n-1")
    linear = {i: 1 for i in range(n)}
    quadratic: dict[tuple[int, int], int] = {}
    for u, v in graph.edges():
        if u == v:
            raise ValueError(f"self-loop on node {u} is not coverable")
        linear[u] -= penalty
        linear[v] -= penalty
        key = (min(u, v), max(u, v))
        quadratic[key] = quadratic.get(key, 0) + penalty
    qubo = QuboMatrix.from_terms(n, linear, quadratic, name=f"vertex-cover-{n}")
    return qubo, penalty * graph.number_of_edges()


def is_vertex_cover(graph: nx.Graph, x: np.ndarray) -> bool:
    """Whether the selected vertices cover every edge."""
    xb = check_bit_vector(x, graph.number_of_nodes(), "x")
    return all(xb[u] or xb[v] for u, v in graph.edges())


def decode_cover(x: np.ndarray) -> list[int]:
    """Indices of the selected cover vertices."""
    xb = check_bit_vector(x)
    return [int(i) for i in np.flatnonzero(xb)]
