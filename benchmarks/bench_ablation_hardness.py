"""Ablation — instance-hardness anatomy across the benchmark families.

§4.2's empirical ordering (synthetic random: easy; Max-Cut: moderate,
weighted harder; TSP: hard) is explained here with landscape
statistics measured on same-bit-count instances:

- TSP's one-hot structure forces valid solutions ≥ 4 flips apart, so a
  random-walk step almost always crosses a penalty cliff — visible as
  the much larger energy range relative to progress and as a very high
  share of 1-flip-trapped random solutions;
- dense random instances have smooth, weakly-trapped landscapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import FULL
from repro.metrics.landscape import (
    descent_statistics,
    escape_radius,
    random_walk_autocorrelation,
)
from repro.problems.maxcut import maxcut_to_qubo, random_graph
from repro.problems.random_qubo import random_qubo
from repro.problems.tsp import tsp_to_qubo
from repro.problems.tsplib import euc_2d
from repro.utils.rng import as_generator
from repro.utils.tables import Table

_STEPS = 6000 if FULL else 3000
_SAMPLES = 300 if FULL else 150


def _instances():
    # ~225-bit instances of each family (the ulysses16 size).
    n = 225
    rng = as_generator(0)
    random_w = random_qubo(n, seed=1, name="random16")
    graph = random_graph(n, 6 * n, weighted=True, seed=2)
    maxcut = maxcut_to_qubo(graph, name="maxcut±1")
    coords = rng.uniform(0, 1000, size=(16, 2))
    tsp = tsp_to_qubo(euc_2d(coords), name="tsp16").qubo  # (16−1)² = 225
    return {"random 16-bit": random_w, "Max-Cut ±1": maxcut, "TSP (16 cities)": tsp}


def test_ablation_instance_hardness(benchmark, report):
    descents = 30 if FULL else 20
    table = Table(
        [
            "family", "bits", "ρ(1)", "corr. length",
            "distinct endpoints", "escape ≤ 2 flips",
        ],
        title=(
            f"Landscape anatomy at 225 bits ({_STEPS}-step walks, "
            f"{descents} greedy descents)"
        ),
    )
    stats = {}
    for name, qubo in _instances().items():
        ac = random_walk_autocorrelation(qubo, steps=_STEPS, seed=3)
        ds = descent_statistics(qubo, descents=descents, seed=4)
        radii = [
            escape_radius(qubo, ds.endpoint_bits[i]) for i in range(descents)
        ]
        frac2 = sum(1 for r in radii if r is not None) / descents
        stats[name] = {"rho1": ac.rho1, "escape2": frac2}
        table.add_row(
            [
                name,
                qubo.n,
                f"{ac.rho1:.4f}",
                f"{ac.correlation_length:.1f}",
                f"{ds.distinct_endpoints}/{descents}",
                f"{frac2:.0%}",
            ]
        )

    report(
        "Ablation instance hardness",
        table.render()
        + "\n\nThe 'escape ≤ 2 flips' column is the §4.2 hardness mechanism "
        "made visible: every greedy endpoint on Max-Cut (and most on dense "
        "random) can be improved by a 1–2 bit move, while TSP endpoints "
        "never can — valid tours are >= 4 flips apart, so single-bit local "
        "search alone stalls and the GA/straight-search machinery has to "
        "carry the escape.",
    )

    # §4.2 shape: TSP local minima are (almost) never 2-flip escapable,
    # the smooth families almost always are.
    assert stats["TSP (16 cities)"]["escape2"] <= 0.2
    assert stats["Max-Cut ±1"]["escape2"] >= 0.8
    assert stats["random 16-bit"]["escape2"] > stats["TSP (16 cities)"]["escape2"]
    # All walks are positively correlated at lag 1 (sanity).
    assert all(s["rho1"] > 0 for s in stats.values())

    q = random_qubo(225, seed=1)
    benchmark(
        lambda: random_walk_autocorrelation(q, steps=300, max_lag=8, seed=0)
    )
