"""Measurement harnesses: search rate, time-to-solution, efficiency.

These implement the paper's two evaluation metrics (§4): *search rate*
(solutions evaluated per second, Definition 1 over wall-clock time) and
*time-to-solution* (time until a target energy is reached, averaged
over repeated runs — the paper uses ten).  :mod:`.efficiency` measures
operations-per-solution for the Algorithm 1–4 ladder, turning the
Lemma 1–3 / Theorem 1 claims into data.
"""

from repro.metrics.efficiency import EfficiencyPoint, measure_efficiency
from repro.metrics.landscape import (
    descent_statistics,
    escape_radius,
    fitness_distance_correlation,
    local_minimum_fraction,
    random_walk_autocorrelation,
)
from repro.metrics.search_rate import RateMeasurement, measure_engine_rate, measure_solver_rate
from repro.metrics.sweep import SweepPoint, best_point, render_sweep, sweep
from repro.metrics.trace import anytime_auc, mean_trace, time_to_threshold, value_at
from repro.metrics.tts import TtsResult, time_to_solution

__all__ = [
    "random_walk_autocorrelation",
    "local_minimum_fraction",
    "fitness_distance_correlation",
    "descent_statistics",
    "escape_radius",
    "sweep",
    "SweepPoint",
    "render_sweep",
    "best_point",
    "time_to_threshold",
    "value_at",
    "anytime_auc",
    "mean_trace",
    "RateMeasurement",
    "measure_engine_rate",
    "measure_solver_rate",
    "TtsResult",
    "time_to_solution",
    "EfficiencyPoint",
    "measure_efficiency",
]
