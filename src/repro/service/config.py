"""Configuration for the warm-fleet solver service."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for :class:`~repro.service.core.SolverService`.

    Every field here must be plumbed through the ``serve`` CLI — the
    ``config-plumbing`` analyzer rule checks ServiceConfig exactly like
    it checks AbsConfig, so an unplumbed knob fails ``make analyze``.

    Attributes
    ----------
    result_cache_size:
        Completed-result cache entries, keyed by the canonical
        ``(problem, config, seed)`` run digest
        (:func:`repro.qubo.io.run_digest`).  Only jobs whose outcome
        is a pure function of that digest are cached: seeded, no
        wall-clock ``time_limit``, and deterministic execution (sync
        mode or ``lockstep=True``) — anything else is a sample, and a
        cached copy would silently change semantics.  0 disables the
        cache.
    weights_cache_size:
        Host-side shared-memory weight segments kept alive across jobs,
        keyed by problem digest (dense problems only; sparse ones ship
        by pickle and need no segment).
    prepared_cache_size:
        Per-worker cap on cached backend-prepared weights
        (``PreparedWeights`` keyed by ``(backend, digest)``).
    max_queue:
        Maximum queued (not yet running) jobs; ``submit`` raises when
        full.  0 means unbounded.
    default_priority:
        Priority assigned when ``submit`` is called without one.
        Higher runs earlier; ties run in submission order (FIFO).
    arm_timeout:
        Seconds the fleet re-arm handshake may take before the job
        fails (covers worker spawn + backend prep on first use).
    """

    result_cache_size: int = 128
    weights_cache_size: int = 8
    prepared_cache_size: int = 4
    max_queue: int = 0
    default_priority: int = 0
    arm_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.result_cache_size < 0:
            raise ValueError(
                f"result_cache_size must be >= 0, got {self.result_cache_size}"
            )
        if self.weights_cache_size < 1:
            raise ValueError(
                f"weights_cache_size must be >= 1, got {self.weights_cache_size}"
            )
        if self.prepared_cache_size < 1:
            raise ValueError(
                f"prepared_cache_size must be >= 1, got {self.prepared_cache_size}"
            )
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.arm_timeout <= 0:
            raise ValueError(
                f"arm_timeout must be positive, got {self.arm_timeout}"
            )
