"""Batched GA hot path: equivalence with the scalar reference.

The batched operators power the host's vectorized target generation
(one ``(count, n)`` matrix per round instead of ``count`` Python-level
draws).  They consume the RNG stream in a different *order* than the
scalar path, so children are not positionally identical — the contract
checked here is distributional/structural equivalence plus exact
invariants (flip counts, bit provenance, rank formula), and bit-exact
reproducibility run-to-run.
"""

import numpy as np
import pytest

from repro.ga.host import GaConfig, TargetGenerator
from repro.ga.operators import (
    crossover_uniform_batch,
    default_mutation_flips,
    mutate,
    mutate_batch,
    select_parent,
    select_parent_ranks,
)
from repro.ga.pool import SolutionPool


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


class TestMutateBatch:
    def test_flips_exact_count_per_row(self, rng):
        X = np.zeros((9, 64), dtype=np.uint8)
        children = mutate_batch(X, rng, flips=5)
        assert (children.sum(axis=1) == 5).all()

    def test_parents_unchanged(self, rng):
        X = np.zeros((4, 32), dtype=np.uint8)
        mutate_batch(X, rng, flips=3)
        assert not X.any()

    def test_default_matches_scalar_default(self, rng):
        X = np.zeros((6, 64), dtype=np.uint8)
        children = mutate_batch(X, rng)
        assert (children.sum(axis=1) == default_mutation_flips(64)).all()

    def test_empty_batch(self, rng):
        out = mutate_batch(np.zeros((0, 16), dtype=np.uint8), rng)
        assert out.shape == (0, 16)

    def test_rows_mutate_independently(self, rng):
        X = np.zeros((50, 64), dtype=np.uint8)
        children = mutate_batch(X, rng, flips=4)
        # Overwhelmingly unlikely that all 50 rows flipped the same 4
        # bits unless rows share the random draw.
        assert len({row.tobytes() for row in children}) > 1

    def test_invalid_flips(self, rng):
        with pytest.raises(ValueError):
            mutate_batch(np.zeros((2, 8), dtype=np.uint8), rng, flips=0)

    def test_scalar_and_batch_same_distribution(self):
        """Flip-position histograms agree between paths (chi-square-ish
        sanity: every bit is hit a comparable number of times)."""
        n, k, flips = 16, 400, 3
        scalar_hits = np.zeros(n)
        rng_a = np.random.default_rng(7)
        for _ in range(k):
            scalar_hits += mutate(np.zeros(n, dtype=np.uint8), rng_a, flips=flips)
        rng_b = np.random.default_rng(8)
        batch_hits = mutate_batch(
            np.zeros((k, n), dtype=np.uint8), rng_b, flips=flips
        ).sum(axis=0)
        expected = k * flips / n
        assert (np.abs(scalar_hits - expected) < 6 * np.sqrt(expected)).all()
        assert (np.abs(batch_hits - expected) < 6 * np.sqrt(expected)).all()


class TestCrossoverBatch:
    def test_bits_come_from_parents(self, rng):
        A = np.zeros((8, 32), dtype=np.uint8)
        B = np.ones((8, 32), dtype=np.uint8)
        kids = crossover_uniform_batch(A, B, rng)
        assert set(np.unique(kids)) <= {0, 1}

    def test_agreeing_positions_preserved(self, rng):
        A = rng.integers(0, 2, (10, 40), dtype=np.uint8)
        B = rng.integers(0, 2, (10, 40), dtype=np.uint8)
        kids = crossover_uniform_batch(A, B, rng)
        agree = A == B
        assert (kids[agree] == A[agree]).all()

    def test_identical_parents_identical_children(self, rng):
        A = rng.integers(0, 2, (5, 24), dtype=np.uint8)
        kids = crossover_uniform_batch(A, A.copy(), rng)
        assert (kids == A).all()

    def test_mixes_both_parents(self):
        rng = np.random.default_rng(3)
        A = np.zeros((20, 64), dtype=np.uint8)
        B = np.ones((20, 64), dtype=np.uint8)
        kids = crossover_uniform_batch(A, B, rng)
        per_row = kids.sum(axis=1)
        assert (per_row > 0).all() and (per_row < 64).all()


class TestSelectParentRanks:
    def test_scalar_routes_through_shared_formula(self):
        """The scalar path consumes the identical stream state, so a
        seeded scalar selection equals the rank formula evaluated on
        the same uniform draw."""
        pool = SolutionPool(16, 8)
        pool.seed_random(np.random.default_rng(0), 8)
        r1 = np.random.default_rng(99)
        r2 = np.random.default_rng(99)
        picked = select_parent(pool, r1, elite_bias=2.0)
        rank = int(select_parent_ranks(len(pool), r2.random(1), 2.0)[0])
        assert (picked == pool[rank].x).all()

    def test_elite_bias_prefers_low_ranks(self):
        rng = np.random.default_rng(5)
        ranks = select_parent_ranks(100, rng.random(20_000), elite_bias=2.0)
        assert ranks.mean() < 40  # uniform would be ~49.5

    def test_uniform_bias_spreads(self):
        rng = np.random.default_rng(5)
        ranks = select_parent_ranks(100, rng.random(20_000), elite_bias=1.0)
        assert 45 < ranks.mean() < 55

    def test_ranks_in_range(self):
        rng = np.random.default_rng(6)
        ranks = select_parent_ranks(7, rng.random(1000), elite_bias=1.5)
        assert ranks.min() >= 0 and ranks.max() <= 6

    def test_empty_pool_rejected(self):
        with pytest.raises(IndexError):
            select_parent_ranks(0, np.array([0.5]), 2.0)

    def test_invalid_bias(self):
        with pytest.raises(ValueError):
            select_parent_ranks(4, np.array([0.5]), 0.0)


def make_generator(seed, n=32, capacity=16, **cfg):
    pool = SolutionPool(n, capacity)
    pool.seed_random(np.random.default_rng(0), capacity)
    gen = TargetGenerator(pool, GaConfig(**cfg), seed=seed)
    return pool, gen


class TestBatchedGenerate:
    def test_matrix_shape_and_dtype(self):
        _, gen = make_generator(1)
        out = gen.generate(12)
        assert out.shape == (12, 32)
        assert out.dtype == np.uint8
        assert out.flags["C_CONTIGUOUS"]

    def test_zero_count(self):
        _, gen = make_generator(1)
        assert gen.generate(0).shape == (0, 32)
        assert gen.generate_scalar(0).shape == (0, 32)

    def test_negative_count_rejected(self):
        _, gen = make_generator(1)
        with pytest.raises(ValueError):
            gen.generate(-1)

    def test_operator_mix_counted(self):
        _, gen = make_generator(2)
        before = dict(gen.counts)
        gen.generate(200)
        delta = {k: gen.counts[k] - before[k] for k in before}
        assert sum(delta.values()) == 200
        assert delta["mutation"] > 0 and delta["crossover"] > 0

    def test_batch_reproducible_by_seed(self):
        _, g1 = make_generator(77)
        _, g2 = make_generator(77)
        assert (g1.generate(64) == g2.generate(64)).all()

    def test_scalar_path_reproducible_by_seed(self):
        _, g1 = make_generator(78)
        _, g2 = make_generator(78)
        assert (g1.generate_scalar(64) == g2.generate_scalar(64)).all()

    def test_batch_operator_mix_matches_configured_probabilities(self):
        _, gb = make_generator(55, p_mutation=0.5, p_crossover=0.3)
        gb.generate(2000)
        assert abs(gb.counts["mutation"] - 1000) < 120
        assert abs(gb.counts["crossover"] - 600) < 120
        assert abs(gb.counts["copy"] - 400) < 120

    def test_copy_only_config_returns_pool_members(self):
        pool, gen = make_generator(3, p_mutation=0.0, p_crossover=0.0)
        out = gen.generate(20)
        members = {p.x.tobytes() for p in pool}
        assert {row.tobytes() for row in out} <= members

    def test_mutation_only_targets_near_pool(self):
        pool, gen = make_generator(4, p_mutation=1.0, p_crossover=0.0)
        out = gen.generate(10)
        flips = default_mutation_flips(32)
        dists = [
            min(int((row ^ p.x).sum()) for p in pool) for row in out
        ]
        assert max(dists) <= flips
