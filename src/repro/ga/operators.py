"""Genetic operators: mutation, uniform crossover, parent selection.

These follow §2.2.1 exactly: a mutation flips some random bits of one
selected solution; a crossover builds a child by picking each bit from
either of two parents uniformly at random.
"""

from __future__ import annotations

import numpy as np

from repro.ga.pool import SolutionPool
from repro.utils.validation import check_bit_vector


def mutate(x: np.ndarray, rng: np.random.Generator, flips: int | None = None) -> np.ndarray:
    """Return a copy of ``x`` with ``flips`` random distinct bits flipped.

    ``flips`` defaults to ``max(1, n // 16)`` — enough perturbation to
    leave the parent's attraction basin while staying nearby.
    """
    xb = check_bit_vector(x)
    n = xb.shape[0]
    if n == 0:
        return xb.copy()
    if flips is None:
        flips = max(1, n // 16)
    if not (1 <= flips <= n):
        raise ValueError(f"flips must be in [1, {n}], got {flips}")
    child = xb.copy()
    idx = rng.choice(n, size=flips, replace=False)
    child[idx] ^= 1
    return child


def crossover_uniform(
    a: np.ndarray, b: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Uniform crossover: each child bit is drawn from either parent."""
    ab = check_bit_vector(a)
    bb = check_bit_vector(b, ab.shape[0], "b")
    take_b = rng.integers(0, 2, size=ab.shape[0], dtype=np.uint8).astype(bool)
    child = ab.copy()
    child[take_b] = bb[take_b]
    return child


def select_parent(
    pool: SolutionPool, rng: np.random.Generator, *, elite_bias: float = 2.0
) -> np.ndarray:
    """Rank-biased parent selection from the (sorted) pool.

    Draws rank ``⌊m · u^elite_bias⌋`` with ``u ~ U[0,1)``: bias > 1
    favours low-energy entries, bias = 1 is uniform.  The paper does
    not pin down the selection rule; rank bias is the conventional
    choice for sorted populations and is exposed as a parameter.
    """
    if len(pool) == 0:
        raise IndexError("cannot select a parent from an empty pool")
    if elite_bias <= 0:
        raise ValueError(f"elite_bias must be positive, got {elite_bias}")
    rank = int(len(pool) * rng.random() ** elite_bias)
    rank = min(rank, len(pool) - 1)
    return pool[rank].x
