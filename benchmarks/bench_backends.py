"""Backend shoot-out — reference numpy vs optional numba JIT kernels.

Measures ``local_steps`` throughput (the dominant hot path of a solve)
for every registered kernel backend at several ``(n, B)`` operating
points, including the paper-scale-ish ``n=1024, B=256``.  Results land
in ``benchmarks/results/BENCH_backends.json`` with per-point flip rates
and the speedup of each backend over the numpy reference.

On a machine without numba the ``numba`` entry records the fallback
(``resolved: numpy``, ``fallback: true``) and a speedup of ~1× — the
JSON then documents that the fallback lane was exercised rather than
the JIT.  With numba installed, the fused multi-step kernels are
expected to clear 2× on the large point (the per-step Python loop is
gone entirely).

Runnable both ways::

    pytest benchmarks/bench_backends.py
    PYTHONPATH=src python benchmarks/bench_backends.py
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path

import numpy as np

from repro.backends import available_backends, resolve_backend
from repro.gpusim import BulkSearchEngine
from repro.qubo import QuboMatrix
from repro.utils.tables import Table

try:  # standalone execution has no package context for conftest
    from benchmarks.conftest import FULL, RESULTS_DIR
except ImportError:  # pragma: no cover - `python benchmarks/bench_backends.py`
    import os

    FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")
    RESULTS_DIR = Path(__file__).parent / "results"

_POINTS = (
    # (n, B, steps) — small, medium, and the acceptance point.
    (256, 64, 60),
    (512, 128, 40),
    (1024, 256, 30),
)
if FULL:
    _POINTS += ((2048, 512, 20),)


def _measure(backend_name: str, n: int, blocks: int, steps: int) -> dict:
    """One timed ``local_steps`` run; returns rate + resolution info."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        backend = resolve_backend(backend_name)
    problem = QuboMatrix.random(n, seed=n)
    eng = BulkSearchEngine(
        problem, blocks, windows=16, offsets=np.zeros(blocks, dtype=np.int64),
        backend=backend,
    )
    eng.local_steps(4)  # warm-up (and JIT compilation, for numba)
    t0 = time.perf_counter()
    eng.local_steps(steps)
    elapsed = time.perf_counter() - t0
    return {
        "requested": backend_name,
        "resolved": backend.name,
        "fallback": bool(backend.fallback_from),
        "elapsed_s": round(elapsed, 6),
        "flips": blocks * steps,
        "flips_per_s": round(blocks * steps / elapsed, 1),
        "final_energy_checksum": int(eng.energy.sum()),
    }


def run_bench() -> dict:
    points = []
    for n, blocks, steps in _POINTS:
        measurements = {
            name: _measure(name, n, blocks, steps) for name in available_backends()
        }
        ref_rate = measurements["numpy"]["flips_per_s"]
        checksums = {m["final_energy_checksum"] for m in measurements.values()}
        point = {
            "n": n,
            "blocks": blocks,
            "steps": steps,
            "backends": measurements,
            "speedup_vs_numpy": {
                name: round(m["flips_per_s"] / ref_rate, 3)
                for name, m in measurements.items()
            },
            # All backends must land on the same state; a diverging
            # checksum means the bench timed two *different* searches.
            "identical_results": len(checksums) == 1,
        }
        points.append(point)
    payload = {
        "bench": "backends",
        "full_scale": FULL,
        "registered": list(available_backends()),
        "points": points,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_backends.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return payload


def _render(payload: dict) -> str:
    table = Table(
        ["n", "B", "backend", "resolved", "flips/s", "speedup vs numpy"],
        title="Kernel-backend throughput (local_steps)",
    )
    for point in payload["points"]:
        for name, m in sorted(point["backends"].items()):
            resolved = m["resolved"] + (" (fallback)" if m["fallback"] else "")
            table.add_row(
                [
                    point["n"],
                    point["blocks"],
                    name,
                    resolved,
                    f"{m['flips_per_s']:,.0f}",
                    f"{point['speedup_vs_numpy'][name]:.2f}x",
                ]
            )
    return table.render()


def test_bench_backends(report):
    payload = run_bench()
    for point in payload["points"]:
        assert point["identical_results"], (
            f"backends diverged at n={point['n']}, B={point['blocks']}"
        )
    report("Backend throughput", _render(payload))


if __name__ == "__main__":
    print(_render(run_bench()))
    print(f"\nwrote {RESULTS_DIR / 'BENCH_backends.json'}")
