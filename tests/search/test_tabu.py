"""Tests for the tabu-search baseline."""

import numpy as np
import pytest

from repro.qubo import QuboMatrix, energy
from repro.search import TabuSearch, solve_exact


class TestTabuSearch:
    def test_finds_optimum_on_small(self):
        for seed in (5, 6):
            q = QuboMatrix.random(12, seed=seed)
            opt = solve_exact(q).energy
            rec = TabuSearch().run(q, np.zeros(12, dtype=np.uint8), 600, seed=0)
            assert rec.best_energy == opt

    def test_every_step_flips(self, medium_qubo):
        rec = TabuSearch().run(
            medium_qubo, np.zeros(medium_qubo.n, dtype=np.uint8), 200, seed=0
        )
        assert rec.flips == 200

    def test_short_term_memory_avoids_immediate_reversal(self):
        """With tenure >= 1 the same bit is never flipped twice in a row
        (unless aspiration fires, which cannot un-improve)."""
        q = QuboMatrix.random(16, seed=1)
        rec = TabuSearch(tenure=8).run(q, np.zeros(16, dtype=np.uint8), 100, seed=0)
        # Re-run manually to observe the flip sequence.
        from repro.qubo import SearchState

        state = SearchState.from_bits(q.W, np.zeros(16, dtype=np.uint8))
        expires = np.zeros(16, dtype=np.int64)
        best_e = state.energy
        last_k = None
        repeats = 0
        for step in range(100):
            allowed = expires <= step
            aspiring = (state.energy + state.delta) < best_e
            mask = allowed | aspiring
            if not mask.any():
                mask = allowed if allowed.any() else np.ones(16, dtype=bool)
            masked = np.where(mask, state.delta, np.iinfo(np.int64).max)
            k = int(np.argmin(masked))
            if k == last_k and not aspiring[k]:
                repeats += 1
            state.flip(k)
            expires[k] = step + 9
            best_e = min(best_e, state.energy)
            last_k = k
        assert repeats == 0

    def test_best_matches_x(self, medium_qubo):
        rec = TabuSearch().run(
            medium_qubo, np.zeros(medium_qubo.n, dtype=np.uint8), 300, seed=0
        )
        assert rec.best_energy == energy(medium_qubo, rec.best_x)

    def test_invalid_tenure(self):
        with pytest.raises(ValueError):
            TabuSearch(tenure=0)

    def test_beats_or_matches_start(self, medium_qubo, rng):
        x0 = rng.integers(0, 2, medium_qubo.n, dtype=np.uint8)
        rec = TabuSearch().run(medium_qubo, x0, 500, seed=0)
        assert rec.best_energy < energy(medium_qubo, x0)
