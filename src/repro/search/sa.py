"""Classical simulated annealing baseline (Kirkpatrick et al., Eq. 7).

This is the "conventional SA" the paper contrasts with: a random bit is
proposed each step and accepted by the Metropolis rule under a cooling
schedule.  Energies are maintained incrementally through a
:class:`~repro.qubo.state.SearchState` (i.e. SA here already benefits
from the O(n)-per-flip delta update; the paper's advantage over it is
the forced flip + no-RNG policy + bulk parallelism, not the bookkeeping).
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.qubo.matrix import WeightsLike
from repro.qubo.state import SearchState
from repro.search.base import LocalSearch, SearchRecord
from repro.utils.rng import SeedLike


class CoolingSchedule(abc.ABC):
    """Maps step index → temperature."""

    @abc.abstractmethod
    def temperature(self, step: int, total_steps: int) -> float:
        """Temperature at ``step`` of ``total_steps``; must stay > 0."""


class GeometricSchedule(CoolingSchedule):
    """``t(step) = t0 · r^step`` with floor ``t_min`` (classic choice)."""

    def __init__(self, t0: float, rate: float = 0.999, t_min: float = 1e-9) -> None:
        if t0 <= 0:
            raise ValueError(f"t0 must be positive, got {t0}")
        if not (0.0 < rate <= 1.0):
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        if t_min <= 0:
            raise ValueError(f"t_min must be positive, got {t_min}")
        self.t0, self.rate, self.t_min = float(t0), float(rate), float(t_min)

    def temperature(self, step: int, total_steps: int) -> float:
        return max(self.t0 * self.rate**step, self.t_min)


class LinearSchedule(CoolingSchedule):
    """Linear ramp from ``t0`` down to ``t_end`` over the run."""

    def __init__(self, t0: float, t_end: float = 1e-9) -> None:
        if t0 <= 0 or t_end <= 0:
            raise ValueError("temperatures must be positive")
        if t_end > t0:
            raise ValueError(f"t_end ({t_end}) must not exceed t0 ({t0})")
        self.t0, self.t_end = float(t0), float(t_end)

    def temperature(self, step: int, total_steps: int) -> float:
        if total_steps <= 1:
            return self.t0
        frac = step / (total_steps - 1)
        return self.t0 + (self.t_end - self.t0) * frac


class SimulatedAnnealing(LocalSearch):
    """Metropolis SA over single-bit flips with a cooling schedule.

    Parameters
    ----------
    schedule:
        Cooling schedule.  When omitted, a geometric schedule is built
        with ``t0`` auto-scaled to the problem (mean |Δ| of the start
        state) at run time.
    k_b:
        The constant ``k_B`` of Eq. (7).
    """

    name = "simulated annealing"

    def __init__(self, schedule: CoolingSchedule | None = None, k_b: float = 1.0) -> None:
        if k_b <= 0:
            raise ValueError(f"k_b must be positive, got {k_b}")
        self.schedule = schedule
        self.k_b = float(k_b)

    def _auto_schedule(self, state: SearchState, steps: int) -> CoolingSchedule:
        """Geometric schedule whose t0 accepts ~60 % of mean uphill moves."""
        scale = float(np.abs(state.delta).mean()) or 1.0
        t0 = scale / math.log(1 / 0.6)
        # Cool to ~1e-3 of t0 across the run.
        rate = (1e-3) ** (1.0 / max(steps, 1))
        return GeometricSchedule(t0=t0, rate=rate, t_min=t0 * 1e-4)

    def run(
        self,
        weights: WeightsLike,
        x0: np.ndarray,
        steps: int,
        seed: SeedLike = None,
        *,
        record_history: bool = False,
    ) -> SearchRecord:
        W, x, rng = self._prepare(weights, x0, steps, seed)
        n = W.shape[0]
        state = SearchState.from_bits(W, x)
        ops = n * n
        evaluated = 1
        schedule = self.schedule or self._auto_schedule(state, steps)

        best_x = state.x.copy()
        best_e = state.energy
        history: list[int] = []

        for step in range(steps):
            t = schedule.temperature(step, steps)
            k = int(rng.integers(n))
            d = int(state.delta[k])
            evaluated += 1
            if d <= 0 or rng.random() < math.exp(-d / (self.k_b * t)):
                state.flip(k)
                ops += n
                if state.energy < best_e:
                    best_e = state.energy
                    best_x = state.x.copy()
            if record_history:
                history.append(best_e)

        return SearchRecord(
            best_x=best_x,
            best_energy=best_e,
            final_x=state.x.copy(),
            final_energy=state.energy,
            steps=steps,
            flips=state.flips,
            evaluated=evaluated,
            ops=ops,
            history=history,
        )
