"""Cross-transport determinism and sweeps accounting.

The exchange layer's contract is that it only *moves bits*: a seeded
solve must visit the same solutions whichever transport carries them,
whether telemetry is on or off, and (in lockstep mode) whether the
devices run in-process or as OS processes.  These tests pin that
contract bit-for-bit.

Free-running process mode is timing-dependent by design (the paper's
asynchronous tolerance), so the bit-identity tests use
``lockstep=True`` with a single worker — the configuration in which
process mode is defined to reproduce sync mode exactly.
"""

import glob
import multiprocessing
import os
import time

import numpy as np
import pytest

import repro.abs.solver as solver_mod
from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.qubo import QuboMatrix, energy
from repro.telemetry import MemorySink, TelemetryBus

pytestmark = [pytest.mark.process, pytest.mark.timeout(120)]

#: All three transports; the tcp lane carries its marker so the
#: loopback guard in tests/conftest.py can skip it where socket binds
#: are forbidden.
ALL_TRANSPORTS = [
    "shm",
    "queue",
    pytest.param("tcp", marks=pytest.mark.tcp),
]


@pytest.fixture
def problem():
    return QuboMatrix.random(24, seed=321)


def lockstep_cfg(exchange, **overrides):
    kwargs = dict(
        n_gpus=1,
        blocks_per_gpu=6,
        local_steps=8,
        pool_capacity=16,
        max_rounds=10,
        time_limit=120.0,
        seed=42,
        exchange=exchange,
        lockstep=True,
    )
    kwargs.update(overrides)
    return AbsConfig(**kwargs)


def fingerprint(res):
    return (res.best_energy, res.best_x.tobytes(), res.rounds, res.sweeps)


class TestCrossTransportDeterminism:
    def test_shm_and_queue_bit_identical(self, problem):
        a = AdaptiveBulkSearch(problem, lockstep_cfg("shm")).solve("process")
        b = AdaptiveBulkSearch(problem, lockstep_cfg("queue")).solve("process")
        assert fingerprint(a) == fingerprint(b)

    @pytest.mark.tcp
    def test_tcp_bit_identical_to_shm(self, problem):
        """The acceptance bar: tcp ≡ shm ≡ queue bit-for-bit in
        lockstep mode, and telemetry-inert — the solver's search
        counters agree exactly modulo the transport's own
        ``exchange.*`` accounting."""
        a = AdaptiveBulkSearch(problem, lockstep_cfg("shm")).solve("process")
        b = AdaptiveBulkSearch(problem, lockstep_cfg("tcp")).solve("process")
        assert fingerprint(a) == fingerprint(b)
        solver_keys = {
            k for k in (set(a.counters) | set(b.counters))
            if not k.startswith("exchange.")
        }
        for key in sorted(solver_keys):
            assert a.counters.get(key, 0) == b.counters.get(key, 0), key
        # and the tcp lane really ran over sockets
        assert b.counters["exchange.tcp.connects"] >= 1
        assert b.counters["exchange.tcp.frames_from_device"] >= 1

    @pytest.mark.parametrize("exchange", ALL_TRANSPORTS)
    def test_process_lockstep_matches_sync(self, problem, exchange):
        sync_cfg = AbsConfig(
            n_gpus=1, blocks_per_gpu=6, local_steps=8, pool_capacity=16,
            max_rounds=10, seed=42,
        )
        s = AdaptiveBulkSearch(problem, sync_cfg).solve("sync")
        p = AdaptiveBulkSearch(problem, lockstep_cfg(exchange)).solve("process")
        assert fingerprint(s) == fingerprint(p)
        # The search-work counters agree too (timing-free subset).
        for key in ("engine.flips", "engine.evaluated", "pool.inserted"):
            assert s.counters[key] == p.counters[key], key

    @pytest.mark.parametrize("exchange", ALL_TRANSPORTS)
    def test_telemetry_does_not_change_search(self, problem, exchange):
        quiet = AdaptiveBulkSearch(problem, lockstep_cfg(exchange)).solve("process")
        sink = MemorySink()
        bus = TelemetryBus([sink])
        loud = AdaptiveBulkSearch(
            problem, lockstep_cfg(exchange), telemetry=bus
        ).solve("process")
        assert fingerprint(quiet) == fingerprint(loud)
        # And the instrumented run actually produced exchange telemetry.
        assert len(sink.named("exchange.open")) == 1
        assert sink.named("exchange.open")[0].fields["transport"] == exchange

    def test_run_to_run_determinism(self, problem):
        runs = [
            AdaptiveBulkSearch(problem, lockstep_cfg("shm")).solve("process")
            for _ in range(2)
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])


class _SetOnEvent:
    def __init__(self, name, evt):
        self.name = name
        self.evt = evt

    def handle(self, event):
        if event.name == self.name:
            self.evt.set()


class TestRestartWithRings:
    def test_worker_restart_reuses_ring_segments(self, problem, monkeypatch):
        """Kill a worker's first incarnation under the shm transport:
        the replacement binds to the *same* shared-memory segments (no
        new /dev/shm entries appear mid-run), skips its predecessor's
        stale targets via the epoch, and carries the solve to the end."""
        ctx = multiprocessing.get_context("fork")
        restarted = ctx.Event()
        real_worker = solver_mod._worker_main

        def flaky_worker(worker_id, incarnation, *rest):
            if worker_id == 0 and incarnation == 0:
                os._exit(11)
            restarted.wait()  # start only after the host handled the death
            real_worker(worker_id, incarnation, *rest)

        monkeypatch.setattr(solver_mod, "_worker_main", flaky_worker)
        before = set(glob.glob("/dev/shm/*"))
        sink = MemorySink()
        bus = TelemetryBus([sink, _SetOnEvent("supervisor.restart", restarted)])
        cfg = AbsConfig(
            n_gpus=1,
            blocks_per_gpu=4,
            local_steps=8,
            max_rounds=4,
            max_worker_restarts=1,
            time_limit=120.0,
            seed=77,
            exchange="shm",
        )
        res = AdaptiveBulkSearch(problem, cfg, telemetry=bus).solve("process")
        assert res.workers_restarted == 1
        assert res.workers_lost == 0
        assert res.rounds == cfg.max_rounds
        assert res.best_energy == energy(problem, res.best_x)
        # All results came from incarnation 1 via the surviving rings.
        assert {e.fields["worker"] for e in sink.named("worker.result")} == {0}
        # Exactly one transport was ever opened — the restart allocated
        # no second set of mailboxes/rings.
        assert len(sink.named("exchange.open")) == 1
        # And nothing leaked afterwards.
        after = set(glob.glob("/dev/shm/*"))
        assert after <= before


class TestSweepsAccounting:
    def test_sync_sweeps_are_min_per_device_rounds(self, problem):
        """7 total rounds over 2 devices: device 0 ran 4, device 1 ran
        3 — the slowest device bounds the sweep count."""
        cfg = AbsConfig(n_gpus=2, blocks_per_gpu=4, local_steps=8,
                        max_rounds=7, seed=9)
        res = AdaptiveBulkSearch(problem, cfg).solve("sync")
        assert res.rounds == 7
        assert res.sweeps == 3

    def test_sync_single_device_sweeps_equal_rounds(self, problem):
        cfg = AbsConfig(n_gpus=1, blocks_per_gpu=4, local_steps=8,
                        max_rounds=5, seed=9)
        res = AdaptiveBulkSearch(problem, cfg).solve("sync")
        assert res.rounds == res.sweeps == 5

    def test_process_sweeps_bounded_by_rounds(self, problem):
        cfg = AbsConfig(n_gpus=2, blocks_per_gpu=4, local_steps=8,
                        max_rounds=8, time_limit=120.0, seed=9)
        res = AdaptiveBulkSearch(problem, cfg).solve("process")
        assert 0 <= res.sweeps <= res.rounds
        assert res.sweeps * cfg.n_gpus <= res.rounds + cfg.n_gpus

    def test_summary_reports_both(self, problem):
        cfg = AbsConfig(n_gpus=1, blocks_per_gpu=4, local_steps=8,
                        max_rounds=3, seed=9)
        res = AdaptiveBulkSearch(problem, cfg).solve("sync")
        assert f"rounds={res.rounds} sweeps={res.sweeps}" in res.summary()
