"""CLI integration tests (in-process via main())."""

import numpy as np
import pytest

from repro.cli import main
from repro.qubo import QuboMatrix, energy
from repro.qubo import io as qio


@pytest.fixture
def instance_file(tmp_path):
    q = QuboMatrix.random(24, seed=99)
    p = tmp_path / "inst.qubo"
    qio.save(q, p)
    return p, q


class TestSolveCommand:
    def test_basic_solve(self, instance_file, capsys):
        path, _ = instance_file
        rc = main(["solve", str(path), "--rounds", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "best energy" in out

    def test_solve_with_output_file(self, instance_file, tmp_path, capsys):
        path, q = instance_file
        out_path = tmp_path / "best.npy"
        rc = main(
            [
                "solve", str(path), "--rounds", "5", "--seed", "1",
                "--out", str(out_path),
            ]
        )
        assert rc == 0
        x = np.load(out_path)
        out = capsys.readouterr().out
        reported = int(out.split("best energy   :")[1].splitlines()[0])
        assert energy(q, x.astype(np.uint8)) == reported

    def test_unreached_target_exit_code(self, instance_file, capsys):
        path, _ = instance_file
        rc = main(
            [
                "solve", str(path), "--rounds", "1", "--seed", "1",
                "--target", "-99999999999",
            ]
        )
        assert rc == 1

    def test_missing_file_is_error(self, capsys):
        rc = main(["solve", "/nonexistent/path.qubo", "--rounds", "1"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestOtherCommands:
    def test_random_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "r.qubo"
        rc = main(["random", "32", str(out), "--seed", "3"])
        assert rc == 0
        assert qio.load(out).n == 32

    def test_occupancy_prints_table(self, capsys):
        rc = main(["occupancy", "1024"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1088" in out  # the p=16 row

    def test_rate_prints_model(self, capsys):
        rc = main(["rate", "--gpus", "4"])
        assert rc == 0
        assert "32768" in capsys.readouterr().out

    def test_bad_occupancy_size(self, capsys):
        rc = main(["occupancy", "-5"])
        assert rc == 2

    def test_landscape_instance(self, instance_file, capsys):
        path, _ = instance_file
        rc = main(
            ["landscape", str(path), "--walk-steps", "300", "--descents", "5",
             "--seed", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "correlation length" in out
        assert "2-flip escapable" in out

    def test_landscape_missing_file(self, capsys):
        rc = main(["landscape", "/no/such/file.qubo"])
        assert rc == 2
