"""Tests for the sparse bulk-engine backend."""

import numpy as np
import pytest

from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.gpusim import BulkSearchEngine
from repro.problems.maxcut import (
    cut_value,
    maxcut_to_qubo,
    maxcut_to_sparse_qubo,
    random_graph,
)
from repro.qubo import QuboMatrix, SparseQubo


@pytest.fixture
def graph():
    return random_graph(60, 300, weighted=True, seed=17)


@pytest.fixture
def pair(graph):
    return maxcut_to_qubo(graph), maxcut_to_sparse_qubo(graph)


class TestSparseEngineEquivalence:
    def test_local_steps_identical_to_dense(self, pair, rng):
        dense, sparse = pair
        kw = dict(windows=8, offsets=np.zeros(3, dtype=np.int64))
        e_d = BulkSearchEngine(dense, 3, **kw)
        e_s = BulkSearchEngine(sparse, 3, **kw)
        targets = rng.integers(0, 2, (3, 60), dtype=np.uint8)
        e_d.straight_to(targets)
        e_s.straight_to(targets)
        e_d.local_steps(80)
        e_s.local_steps(80)
        assert np.array_equal(e_d.X, e_s.X)
        assert np.array_equal(e_d.energy, e_s.energy)
        assert np.array_equal(e_d.delta, e_s.delta)
        assert np.array_equal(e_d.best_energy, e_s.best_energy)
        assert np.array_equal(e_d.best_x, e_s.best_x)

    def test_counters_identical(self, pair, rng):
        dense, sparse = pair
        e_d = BulkSearchEngine(dense, 2, windows=4)
        e_s = BulkSearchEngine(sparse, 2, windows=4)
        t = rng.integers(0, 2, (2, 60), dtype=np.uint8)
        e_d.straight_to(t)
        e_s.straight_to(t)
        e_d.local_steps(10)
        e_s.local_steps(10)
        # All exposure-semantics counters agree; delta_updates is the
        # honest work metric and is *supposed* to be smaller on the
        # sparse path (degree + 1 writes per flip instead of n) — see
        # tests/backends/test_counters.py for the exact accounting.
        d, s = e_d.counters.as_dict(), e_s.counters.as_dict()
        d_updates = d.pop("engine.delta_updates")
        s_updates = s.pop("engine.delta_updates")
        assert d == s
        assert d_updates == e_d.counters.flips * 60
        assert s_updates <= d_updates

    def test_validate_after_long_run(self, pair, rng):
        _, sparse = pair
        eng = BulkSearchEngine(sparse, 4, windows=np.array([2, 4, 8, 16]))
        eng.straight_to(rng.integers(0, 2, (4, 60), dtype=np.uint8))
        eng.local_steps(200)
        eng.validate()

    def test_set_state_sparse(self, pair, rng):
        _, sparse = pair
        eng = BulkSearchEngine(sparse, 2)
        x = rng.integers(0, 2, 60, dtype=np.uint8)
        eng.set_state(0, x)
        eng.validate()

    def test_zero_degree_bits_handled(self):
        """Isolated vertices have empty CSR rows — flips still work."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(6))
        g.add_edge(0, 1)
        sq = maxcut_to_sparse_qubo(g)
        eng = BulkSearchEngine(sq, 2, windows=3)
        eng.local_steps(20)
        eng.validate()


class TestSparseSolver:
    def test_sync_solve_cut_consistent(self, graph):
        sq = maxcut_to_sparse_qubo(graph)
        cfg = AbsConfig(blocks_per_gpu=8, local_steps=16, max_rounds=12, seed=3)
        res = AdaptiveBulkSearch(sq, cfg).solve("sync")
        assert cut_value(graph, res.best_x) == -res.best_energy

    def test_sparse_matches_dense_solution_quality(self, pair):
        dense, sparse = pair
        cfg = AbsConfig(blocks_per_gpu=8, local_steps=16, max_rounds=15, seed=4)
        r_d = AdaptiveBulkSearch(dense, cfg).solve("sync")
        r_s = AdaptiveBulkSearch(sparse, cfg).solve("sync")
        # Identical config + seed ⇒ identical deterministic trajectory.
        assert r_d.best_energy == r_s.best_energy
        assert np.array_equal(r_d.best_x, r_s.best_x)

    def test_process_mode_with_sparse(self, graph):
        sq = maxcut_to_sparse_qubo(graph)
        cfg = AbsConfig(
            blocks_per_gpu=4, local_steps=8, max_rounds=4, time_limit=30.0, seed=5
        )
        res = AdaptiveBulkSearch(sq, cfg).solve("process")
        assert res.best_energy == -cut_value(graph, res.best_x)

    def test_memory_advantage(self):
        """The sparse G-set-size representation is tiny vs dense."""
        g = random_graph(2000, 20000, seed=1)
        sq = maxcut_to_sparse_qubo(g)
        dense_bytes = 2000 * 2000 * 8
        assert sq.nbytes < dense_bytes / 40
