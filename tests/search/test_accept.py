"""Tests for acceptance rules."""

import numpy as np
import pytest

from repro.search.accept import AlwaysAccept, DescentAccept, MetropolisAccept


class TestAlwaysAccept:
    def test_accepts_everything(self, rng):
        rule = AlwaysAccept()
        assert rule.accept(10**9, rng)
        assert rule.accept(-5, rng)


class TestDescentAccept:
    def test_accepts_improvement_and_ties(self, rng):
        rule = DescentAccept()
        assert rule.accept(-1, rng)
        assert rule.accept(0, rng)

    def test_rejects_uphill(self, rng):
        assert not DescentAccept().accept(1, rng)


class TestMetropolisAccept:
    def test_downhill_always_accepted(self, rng):
        rule = MetropolisAccept(temperature=0.001)
        assert rule.accept(-1, rng)
        assert rule.accept(0, rng)

    def test_probability_formula(self):
        rule = MetropolisAccept(temperature=2.0, k_b=1.0)
        assert rule.probability(-3) == 1.0
        assert rule.probability(2) == pytest.approx(np.exp(-1.0))

    def test_kb_scales_probability(self):
        assert MetropolisAccept(1.0, k_b=2.0).probability(2) == pytest.approx(
            MetropolisAccept(2.0, k_b=1.0).probability(2)
        )

    def test_high_temperature_accepts_often(self):
        rng = np.random.default_rng(0)
        rule = MetropolisAccept(temperature=1e9)
        acc = sum(rule.accept(100, rng) for _ in range(200))
        assert acc > 190

    def test_low_temperature_rejects_uphill(self):
        rng = np.random.default_rng(0)
        rule = MetropolisAccept(temperature=1e-6)
        assert not any(rule.accept(100, rng) for _ in range(100))

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_invalid_temperature(self, bad):
        with pytest.raises(ValueError):
            MetropolisAccept(temperature=bad)

    def test_invalid_kb(self):
        with pytest.raises(ValueError):
            MetropolisAccept(1.0, k_b=0)

    def test_step_hook_is_noop(self):
        rule = MetropolisAccept(1.0)
        rule.step()  # must not raise
