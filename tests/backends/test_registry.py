"""Registry, resolution, env override, and fallback behaviour."""

import numpy as np
import pytest

import repro.backends.numba_backend as nb_mod
from repro.abs import AbsConfig
from repro.backends import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    KernelBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    make_numba_backend,
    numba_available,
    register_backend,
    resolve_backend,
)
from repro.backends import _REGISTRY
from repro.gpusim import BulkSearchEngine
from repro.qubo import QuboMatrix
from repro.telemetry import MemorySink, TelemetryBus, validate_record


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert "numpy" in names
        assert "numba" in names
        assert names == tuple(sorted(names))

    def test_get_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend 'cupy'"):
            get_backend("cupy")
        # The error names what *is* registered, for discoverability.
        with pytest.raises(ValueError, match="numpy"):
            get_backend("cupy")

    def test_get_backend_returns_fresh_instances(self):
        assert get_backend("numpy") is not get_backend("numpy")

    def test_register_custom_backend(self):
        class Custom(NumpyBackend):
            name = "custom-test"

        register_backend("custom-test", Custom)
        try:
            assert "custom-test" in available_backends()
            assert resolve_backend("custom-test").name == "custom-test"
        finally:
            del _REGISTRY["custom-test"]

    def test_register_rejects_bad_names(self):
        with pytest.raises(ValueError):
            register_backend("", NumpyBackend)
        with pytest.raises(ValueError):
            register_backend(None, NumpyBackend)


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert DEFAULT_BACKEND == "numpy"
        assert resolve_backend(None).name == "numpy"

    def test_instance_passthrough(self):
        inst = NumpyBackend()
        assert resolve_backend(inst) is inst

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"
        monkeypatch.setenv(BACKEND_ENV_VAR, "definitely-not-registered")
        with pytest.raises(ValueError, match="definitely-not-registered"):
            resolve_backend(None)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "definitely-not-registered")
        assert resolve_backend("numpy").name == "numpy"

    def test_type_check(self):
        with pytest.raises(TypeError):
            resolve_backend(42)


class TestConfigValidation:
    def test_unknown_backend_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="unknown backend"):
            AbsConfig(backend="cupy", max_rounds=1)

    @pytest.mark.parametrize("name", ["numpy", "numba", None])
    def test_known_backends_accepted(self, name):
        assert AbsConfig(backend=name, max_rounds=1).backend == name


class TestFallback:
    @pytest.fixture
    def masked(self, monkeypatch):
        """numba masked (as on a machine without it), warning flag reset."""
        monkeypatch.setenv("REPRO_NO_NUMBA", "1")
        monkeypatch.setattr(nb_mod, "_warned", False)

    def test_numba_available_respects_mask(self, masked):
        assert not numba_available()

    def test_fallback_is_tagged_numpy(self, masked):
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = make_numba_backend()
        assert isinstance(backend, NumpyBackend)
        assert backend.name == "numpy"
        assert backend.fallback_from == "numba"

    def test_warning_fires_once_per_process(self, masked):
        with pytest.warns(RuntimeWarning):
            make_numba_backend()
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")  # a second warning would raise
            make_numba_backend()

    def test_engine_emits_fallback_event(self, masked):
        import warnings as _w

        sink = MemorySink()
        bus = TelemetryBus([sink])
        with _w.catch_warnings():
            _w.simplefilter("ignore")
            BulkSearchEngine(QuboMatrix.random(16, seed=0), 2, backend="numba", bus=bus)
        events = sink.named("backend.fallback")
        assert len(events) == 1
        assert events[0].fields["requested"] == "numba"
        assert events[0].fields["using"] == "numpy"
        for record in sink.records():
            validate_record(record)

    def test_no_fallback_event_for_native_backend(self):
        sink = MemorySink()
        bus = TelemetryBus([sink])
        BulkSearchEngine(QuboMatrix.random(16, seed=0), 2, backend="numpy", bus=bus)
        assert not sink.named("backend.fallback")

    def test_fallback_still_solves(self, masked):
        import warnings as _w

        from repro.api import solve

        with _w.catch_warnings():
            _w.simplefilter("ignore")
            res = solve(
                QuboMatrix.random(24, seed=5), max_rounds=3, seed=7, backend="numba"
            )
        assert res.best_energy <= 0


@pytest.mark.backend_numba
@pytest.mark.skipif(not numba_available(), reason="numba not importable")
class TestNumbaNative:
    def test_factory_returns_jit_backend(self):
        backend = make_numba_backend()
        assert backend.name == "numba"
        assert backend.fallback_from is None

    def test_jit_kernels_compile_and_run(self):
        problem = QuboMatrix.random(24, seed=9)
        ref = BulkSearchEngine(problem, 2, windows=4, backend="numpy")
        jit = BulkSearchEngine(problem, 2, windows=4, backend="numba")
        targets = np.random.default_rng(3).integers(0, 2, (2, 24), dtype=np.uint8)
        for eng in (ref, jit):
            eng.straight_to(targets)
            eng.local_steps(40)
        assert np.array_equal(ref.X, jit.X)
        assert np.array_equal(ref.delta, jit.delta)
        assert np.array_equal(ref.energy, jit.energy)
        assert np.array_equal(ref.best_energy, jit.best_energy)
        assert np.array_equal(ref.best_x, jit.best_x)


class TestInterfaceContract:
    def test_every_registered_backend_is_a_kernel_backend(self):
        import warnings as _w

        for name in available_backends():
            with _w.catch_warnings():
                _w.simplefilter("ignore")
                backend = get_backend(name)
            assert isinstance(backend, KernelBackend)
            assert backend.name  # non-empty display name
