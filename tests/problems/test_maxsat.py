"""Tests for MAX-2-SAT → QUBO."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems.maxsat import (
    count_unsatisfied,
    max2sat_to_qubo,
    random_max2sat,
)
from repro.qubo import energy
from repro.search import solve_exact


def assignment_bits(code, n):
    return np.array([(code >> i) & 1 for i in range(n)], dtype=np.uint8)


class TestEnergyIdentity:
    @given(st.integers(0, 2**31 - 1), st.integers(3, 7), st.integers(3, 15))
    @settings(max_examples=25)
    def test_energy_counts_unsatisfied(self, seed, n_vars, n_clauses):
        clauses = random_max2sat(n_vars, n_clauses, seed=seed)
        qubo, offset = max2sat_to_qubo(n_vars, clauses)
        scale = qubo.energy_scale()
        rng = np.random.default_rng(seed)
        for _ in range(5):
            x = rng.integers(0, 2, n_vars, dtype=np.uint8)
            assert energy(qubo, x) / scale + offset == count_unsatisfied(clauses, x)

    def test_unit_clauses(self):
        clauses = [(1,), (-2,)]
        qubo, offset = max2sat_to_qubo(2, clauses)
        scale = qubo.energy_scale()
        for code in range(4):
            x = assignment_bits(code, 2)
            assert energy(qubo, x) / scale + offset == count_unsatisfied(clauses, x)

    def test_degenerate_same_variable_clause(self):
        clauses = [(1, 1), (-2, -2)]
        qubo, offset = max2sat_to_qubo(2, clauses)
        scale = qubo.energy_scale()
        for code in range(4):
            x = assignment_bits(code, 2)
            assert energy(qubo, x) / scale + offset == count_unsatisfied(clauses, x)

    def test_tautology_only_rejected(self):
        with pytest.raises(ValueError, match="tautolog"):
            max2sat_to_qubo(2, [(1, -1)])


class TestGroundStates:
    def test_satisfiable_formula_reaches_zero(self):
        clauses = [(1, 2), (-1, 3), (-2, -3), (1, 3)]
        qubo, offset = max2sat_to_qubo(3, clauses)
        sol = solve_exact(qubo)
        scale = qubo.energy_scale()
        assert sol.energy / scale + offset == 0
        assert count_unsatisfied(clauses, sol.x) == 0

    def test_unsatisfiable_core_minimum_is_one(self):
        # x ∧ ¬x via unit clauses: exactly one must fail.
        clauses = [(1,), (-1,)]
        qubo, offset = max2sat_to_qubo(1, clauses)
        sol = solve_exact(qubo)
        assert sol.energy / qubo.energy_scale() + offset == 1

    def test_ground_state_matches_brute_force(self):
        clauses = random_max2sat(8, 30, seed=5)
        qubo, offset = max2sat_to_qubo(8, clauses)
        scale = qubo.energy_scale()
        brute = min(
            count_unsatisfied(clauses, assignment_bits(c, 8)) for c in range(256)
        )
        sol = solve_exact(qubo)
        assert sol.energy / scale + offset == brute


class TestValidation:
    def test_zero_literal(self):
        with pytest.raises(ValueError, match="literal 0"):
            max2sat_to_qubo(2, [(0, 1)])

    def test_out_of_range_literal(self):
        with pytest.raises(IndexError):
            max2sat_to_qubo(2, [(1, 5)])

    def test_too_many_literals(self):
        with pytest.raises(ValueError, match="1 or 2"):
            max2sat_to_qubo(3, [(1, 2, 3)])

    def test_empty_clause_list(self):
        with pytest.raises(ValueError, match="at least one"):
            max2sat_to_qubo(2, [])

    def test_bad_nvars(self):
        with pytest.raises(ValueError):
            max2sat_to_qubo(0, [(1,)])


class TestRandomGenerator:
    def test_shapes_and_ranges(self):
        clauses = random_max2sat(10, 40, seed=1)
        assert len(clauses) == 40
        for c in clauses:
            assert len(c) == 2
            assert all(1 <= abs(l) <= 10 for l in c)
            assert abs(c[0]) != abs(c[1])

    def test_deterministic(self):
        assert random_max2sat(6, 12, seed=9) == random_max2sat(6, 12, seed=9)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_max2sat(1, 5)
        with pytest.raises(ValueError):
            random_max2sat(5, 0)
