"""Tests for instance file I/O."""

import numpy as np
import pytest

from repro.qubo import QuboMatrix
from repro.qubo.io import (
    QuboFormatError,
    load,
    load_json,
    load_qubo,
    save,
    save_json,
    save_qubo,
)


@pytest.fixture
def matrix():
    return QuboMatrix.random(10, seed=42, low=-9, high=9)


class TestCoordinateFormat:
    def test_roundtrip(self, matrix, tmp_path):
        p = tmp_path / "m.qubo"
        save_qubo(matrix, p)
        loaded = load_qubo(p)
        assert loaded == matrix
        assert loaded.name == matrix.name

    def test_comment_written(self, matrix, tmp_path):
        p = tmp_path / "m.qubo"
        save_qubo(matrix, p, comment="hello\nworld")
        text = p.read_text()
        assert "c hello" in text and "c world" in text
        assert load_qubo(p) == matrix

    def test_sparse_matrix_compact(self, tmp_path):
        W = np.zeros((100, 100), dtype=np.int64)
        W[3, 3] = 7
        W[1, 5] = W[5, 1] = -2
        q = QuboMatrix(W)
        p = tmp_path / "s.qubo"
        save_qubo(q, p)
        data_lines = [
            ln for ln in p.read_text().splitlines() if ln and ln[0] not in "cp"
        ]
        assert len(data_lines) == 2
        assert load_qubo(p) == q

    def test_missing_header(self, tmp_path):
        p = tmp_path / "bad.qubo"
        p.write_text("0 0 5\n")
        with pytest.raises(QuboFormatError, match="header"):
            load_qubo(p)

    def test_bad_entry_line(self, tmp_path):
        p = tmp_path / "bad.qubo"
        p.write_text("p qubo 0 2 0 0\n0 1\n")
        with pytest.raises(QuboFormatError, match="i j value"):
            load_qubo(p)

    def test_non_integer_entry(self, tmp_path):
        p = tmp_path / "bad.qubo"
        p.write_text("p qubo 0 2 0 1\n0 1 x\n")
        with pytest.raises(QuboFormatError, match="non-integer"):
            load_qubo(p)

    def test_out_of_range_index(self, tmp_path):
        p = tmp_path / "bad.qubo"
        p.write_text("p qubo 0 2 0 1\n0 5 2\n")
        with pytest.raises(QuboFormatError, match="out of range"):
            load_qubo(p)

    def test_odd_off_diagonal_rejected(self, tmp_path):
        p = tmp_path / "bad.qubo"
        p.write_text("p qubo 0 2 0 1\n0 1 3\n")
        with pytest.raises(QuboFormatError, match="odd"):
            load_qubo(p)

    def test_bad_problem_line(self, tmp_path):
        p = tmp_path / "bad.qubo"
        p.write_text("p foo 0 2 0 0\n")
        with pytest.raises(QuboFormatError, match="problem line"):
            load_qubo(p)


class TestJsonFormat:
    def test_roundtrip(self, matrix, tmp_path):
        p = tmp_path / "m.json"
        save_json(matrix, p, metadata={"origin": "test"})
        loaded = load_json(p)
        assert loaded == matrix
        assert loaded.name == matrix.name

    def test_invalid_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(QuboFormatError, match="invalid JSON"):
            load_json(p)

    def test_wrong_format_marker(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"format": "other"}')
        with pytest.raises(QuboFormatError, match="repro-qubo"):
            load_json(p)

    def test_shape_mismatch(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"format": "repro-qubo", "n": 3, "weights": [[1]]}')
        with pytest.raises(QuboFormatError, match="shape"):
            load_json(p)


class TestDispatch:
    @pytest.mark.parametrize("ext", [".qubo", ".json", ".npy"])
    def test_roundtrip_each_extension(self, matrix, tmp_path, ext):
        p = tmp_path / f"m{ext}"
        save(matrix, p)
        assert load(p) == matrix

    def test_unknown_extension_save(self, matrix, tmp_path):
        with pytest.raises(QuboFormatError, match="extension"):
            save(matrix, tmp_path / "m.txt")

    def test_unknown_extension_load(self, tmp_path):
        with pytest.raises(QuboFormatError, match="extension"):
            load(tmp_path / "m.txt")

    def test_npy_keeps_stem_name(self, matrix, tmp_path):
        p = tmp_path / "mystem.npy"
        save(matrix, p)
        assert load(p).name == "mystem"
