#!/usr/bin/env python3
"""Number partitioning — an 'other application' (paper §5 future work).

Splits a list of integers into two sets with minimal sum difference by
compiling ``(difference)²`` into a QUBO and handing it to ABS.  A
perfect partition corresponds to the QUBO ground state ``−(Σ values)²``,
so the solver can stop the moment it proves one exists.

Run:  python examples/number_partition.py
"""

from __future__ import annotations

import numpy as np

from repro import AbsConfig, AdaptiveBulkSearch
from repro.problems import decode_partition, partition_to_qubo


def main() -> None:
    rng = np.random.default_rng(11)
    values = rng.integers(1, 10_000, size=64).astype(np.int64)
    # Force an even total so a perfect partition is at least plausible.
    if values.sum() % 2:
        values[0] += 1
    print(f"partitioning {len(values)} integers, total {values.sum()}")

    qubo, offset = partition_to_qubo(values)
    config = AbsConfig(
        blocks_per_gpu=32,
        local_steps=64,
        pool_capacity=48,
        target_energy=-offset,  # ground state ⇔ difference 0
        time_limit=5.0,
        seed=21,
    )
    result = AdaptiveBulkSearch(qubo, config).solve()

    s0, s1, diff = decode_partition(values, result.best_x)
    print(f"set sums      : {s0} vs {s1}")
    print(f"difference    : {diff}")
    print(f"perfect split : {result.reached_target}")
    assert result.best_energy + offset == diff * diff


if __name__ == "__main__":
    main()
