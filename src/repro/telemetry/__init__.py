"""Instrumentation & telemetry for the ABS pipeline.

A lightweight, zero-dependency observability layer: components emit
named events onto a :class:`TelemetryBus` (off by default — the shared
:data:`NULL_BUS` makes every emit a no-op) and sinks route them to a
JSONL trace file, an in-memory list, the stdlib logger, or a periodic
progress reporter.  ``docs/observability.md`` documents every event and
counter; :mod:`repro.telemetry.schema` validates traces against that
contract.

Typical use::

    from repro.telemetry import TelemetryBus, JsonlSink
    from repro.abs import AdaptiveBulkSearch, AbsConfig

    with TelemetryBus([JsonlSink("run.jsonl")]) as bus:
        result = AdaptiveBulkSearch(q, cfg, telemetry=bus).solve()
    print(result.counters)  # per-run counter snapshot (always available)

or, from the CLI, ``python -m repro solve inst.qubo --trace-out run.jsonl
--log-level info``.
"""

from __future__ import annotations

import logging
import sys
from pathlib import Path
from typing import Union

from repro.telemetry.bus import (
    NULL_BUS,
    CounterRegistry,
    NullBus,
    RelayBus,
    Sink,
    StampedBus,
    TelemetryBus,
)
from repro.telemetry.events import Event, jsonable
from repro.telemetry.schema import (
    EVENT_SCHEMAS,
    SchemaError,
    validate_record,
    validate_trace,
)
from repro.telemetry.sinks import (
    JsonlSink,
    LoggingSink,
    MemorySink,
    ProgressReporter,
)

__all__ = [
    "NULL_BUS",
    "CounterRegistry",
    "Event",
    "EVENT_SCHEMAS",
    "JsonlSink",
    "LoggingSink",
    "MemorySink",
    "NullBus",
    "ProgressReporter",
    "RelayBus",
    "SchemaError",
    "Sink",
    "StampedBus",
    "TelemetryBus",
    "jsonable",
    "make_bus",
    "validate_record",
    "validate_trace",
]

_LOG_LEVELS = {"debug": logging.DEBUG, "info": logging.INFO}


def make_bus(
    trace_out: Union[str, Path, None] = None,
    log_level: str | None = None,
    *,
    progress_interval: float = 1.0,
) -> TelemetryBus | NullBus:
    """Build a bus from the two CLI knobs; :data:`NULL_BUS` if both unset.

    ``trace_out`` attaches a :class:`JsonlSink` writing the schema'd
    trace.  ``log_level`` is ``"info"`` (periodic progress lines on
    stderr) or ``"debug"`` (every event).  The caller owns the returned
    bus and should ``close()`` it (or use it as a context manager) so
    the JSONL file is flushed.
    """
    if trace_out is None and log_level is None:
        return NULL_BUS
    if log_level is not None and log_level not in _LOG_LEVELS:
        raise ValueError(
            f"log_level must be one of {sorted(_LOG_LEVELS)}, got {log_level!r}"
        )
    bus = TelemetryBus()
    if trace_out is not None:
        bus.attach(JsonlSink(trace_out))
    if log_level is not None:
        logger = logging.getLogger("repro.telemetry")
        logger.setLevel(_LOG_LEVELS[log_level])
        if not logger.handlers:
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
            logger.addHandler(handler)
        if log_level == "debug":
            bus.attach(LoggingSink(logger))
        bus.attach(ProgressReporter(progress_interval, log=logger))
    return bus
