"""The bulk engine: B simultaneous Algorithm 4/5 searches, batched.

One RTX 2080 Ti in the paper runs up to 1088 CUDA blocks, each an
independent forced-flip local search over its own register-file state.
This engine reproduces that execution model: block ``b`` is row ``b``
of the batched state

- ``X``      — ``B × n`` current solutions (uint8 bits),
- ``delta``  — ``B × n`` maintained ``Δ_i`` values (int64),
- ``energy`` — ``B`` tracked energies (int64),

and one :meth:`local_steps` iteration performs the Eq. (16) delta
refresh, windowed min-Δ selection (Figure 2, per-block window sizes and
offsets — the parallel-tempering-like temperature spread), the flip, and
best-solution tracking for *all* blocks.  :meth:`straight_to` is the
batched Algorithm 5, with blocks retiring independently as they reach
their targets (the asynchrony the paper gets from per-block execution).

The hot kernels themselves live behind the pluggable
:class:`~repro.backends.KernelBackend` interface (``numpy`` reference
kernels by default; ``numba`` JIT kernels that fuse the whole
``local_steps`` loop when numba is installed — see
:mod:`repro.backends` and ``docs/backends.md``).  The engine owns all
search state; backends are stateless kernel sets, so swapping backends
never changes the walk: every registered backend is tested to be
step-for-step identical to the scalar reference
:class:`~repro.search.bulk.BulkLocalSearch` /
:func:`~repro.search.straight.straight_search`
(``tests/backends/test_equivalence.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.backends import BackendSpec, resolve_backend
from repro.qubo.matrix import WeightsLike, as_weight_matrix
from repro.telemetry.bus import NULL_BUS, NullBus, TelemetryBus
from repro.utils.validation import check_bit_vector

_INT64_MAX = np.iinfo(np.int64).max


@dataclass
class EngineCounters:
    """Work counters aggregated across all blocks.

    ``evaluated`` follows the paper's Definition-1 *neighbourhood
    exposure* semantics: every flip exposes the energies of all ``n``
    neighbours through the live delta vector, so it always advances by
    ``flips × n`` — on the sparse path too, where the refresh only
    *writes* the flipped bit's ``degree + 1`` delta entries but the
    remaining entries stay exposed unchanged.  ``delta_updates`` is the
    honest work metric: delta entries actually written (``flips × n``
    dense, ``Σ (degree(k) + 1)`` sparse), i.e. what the hardware pays.
    The two only coincide on dense problems.
    """

    flips: int = 0
    evaluated: int = 0
    delta_updates: int = 0
    straight_flips: int = 0
    local_flips: int = 0
    straight_retirements: int = 0

    def as_dict(self, prefix: str = "engine.") -> dict[str, int]:
        """Counters as a flat ``{prefixed name: value}`` mapping."""
        return {
            f"{prefix}flips": self.flips,
            f"{prefix}evaluated": self.evaluated,
            f"{prefix}delta_updates": self.delta_updates,
            f"{prefix}straight_flips": self.straight_flips,
            f"{prefix}local_flips": self.local_flips,
            f"{prefix}straight_retirements": self.straight_retirements,
        }


class BulkSearchEngine:
    """Batched forced-flip searches for ``n_blocks`` simulated CUDA blocks.

    Parameters
    ----------
    weights:
        Problem weight matrix (copied into a contiguous int64 array so
        the per-step row gather never re-converts dtypes).
    n_blocks:
        Number of simultaneous searches ``B``.
    windows:
        Selection-window size(s) ``l`` (Figure 2).  A scalar applies to
        every block; a length-``B`` sequence gives each block its own
        "temperature".  Defaults to 16 (the paper's throughput sweet
        spot for small n).
    offsets:
        Initial window offsets.  Default staggers blocks across the bit
        range so equal-window blocks don't walk in lockstep.
    backend:
        Kernel backend: a registry name (``"numpy"``, ``"numba"``), a
        :class:`~repro.backends.KernelBackend` instance, or ``None`` to
        consult the ``REPRO_BACKEND`` environment variable and default
        to ``"numpy"``.  Backend choice never changes the search —
        only how fast the kernels run.
    bus:
        Optional :class:`~repro.telemetry.TelemetryBus`.  The engine
        emits one aggregate event per :meth:`straight_to` /
        :meth:`local_steps` call — never per flip — so a disabled bus
        costs one attribute check per batch.  With a bus attached, the
        engine also accumulates per-kernel wall-clock session counters
        (``backend.*_ns``).
    """

    def __init__(
        self,
        weights: WeightsLike,
        n_blocks: int,
        *,
        windows: int | np.ndarray = 16,
        offsets: np.ndarray | None = None,
        backend: BackendSpec = None,
        bus: TelemetryBus | NullBus | None = None,
        prepared: object | None = None,
    ) -> None:
        from repro.qubo.sparse import SparseQubo

        if n_blocks < 1:
            raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
        self.backend = resolve_backend(backend)
        self._bus = bus if bus is not None else NULL_BUS
        t0 = time.perf_counter_ns()
        # ``prepared`` lets a caller inject a PreparedWeights produced by
        # an earlier engine over the *same* weights and backend, skipping
        # backend prep entirely (the warm-fleet service's per-digest
        # cache rides on this).  Prepared state is read-only kernel input,
        # so sharing it across engines never couples their searches.
        if isinstance(weights, SparseQubo):
            # Sparse path: per-flip scatter over touched columns only.
            self.sparse: SparseQubo | None = weights
            self.W = None
            self.n = weights.n
            diag_src = weights.diag
            self._pw = (
                prepared if prepared is not None
                else self.backend.prepare_sparse(weights)
            )
        else:
            self.sparse = None
            W = as_weight_matrix(weights)
            self.n = int(W.shape[0])
            self.W = np.ascontiguousarray(W, dtype=np.int64)
            diag_src = np.diagonal(self.W)
            self._pw = (
                prepared if prepared is not None
                else self.backend.prepare_dense(self.W)
            )
        if self._bus.enabled:
            self._bus.counters.inc(
                f"backend.{self.backend.name}.prepare_ns",
                time.perf_counter_ns() - t0,
            )
        if self.n < 1:
            raise ValueError("engine requires at least one bit")
        self.B = int(n_blocks)

        win = np.broadcast_to(np.asarray(windows, dtype=np.int64), (self.B,)).copy()
        if (win < 1).any() or (win > self.n).any():
            raise ValueError(f"window sizes must be in [1, {self.n}]")
        self.windows = win
        if offsets is None:
            stride = max(1, self.n // self.B)
            offsets = (np.arange(self.B, dtype=np.int64) * stride) % self.n
        off = np.broadcast_to(np.asarray(offsets, dtype=np.int64), (self.B,)).copy()
        if (off < 0).any() or (off >= self.n).any():
            raise ValueError(f"offsets must be in [0, {self.n})")
        self.offsets = off

        # All blocks start from the zero vector: E(0) = 0, Δ_i = W_ii
        # (§3.2 Step 1) — never an O(n²) evaluation.
        diag = np.ascontiguousarray(diag_src, dtype=np.int64)
        self.X = np.zeros((self.B, self.n), dtype=np.uint8)
        self.delta = np.tile(diag, (self.B, 1))
        self.energy = np.zeros(self.B, dtype=np.int64)

        self.best_energy = np.full(self.B, _INT64_MAX, dtype=np.int64)
        self.best_x = np.zeros((self.B, self.n), dtype=np.uint8)
        self.counters = EngineCounters()
        self._ids = np.arange(self.B)
        if self._bus.enabled and self.backend.fallback_from:
            self._bus.emit(
                "backend.fallback",
                requested=self.backend.fallback_from,
                using=self.backend.name,
                reason=f"backend {self.backend.fallback_from!r} not importable",
            )

    @property
    def prepared(self) -> object:
        """The backend's PreparedWeights — harvestable for reuse by a
        later engine over the same weights and backend (``prepared=``)."""
        return self._pw

    # ------------------------------------------------------------------
    # Core batched flip (Eq. 16 for a subset of blocks)
    # ------------------------------------------------------------------
    def _flip(self, ids: np.ndarray, ks: np.ndarray) -> int:
        """Flip bit ``ks[i]`` in block ``ids[i]`` for all i, in bulk.

        Returns the number of delta entries written (see
        :class:`EngineCounters` for the ``evaluated`` vs
        ``delta_updates`` distinction).
        """
        updates = self.backend.flip(self._pw, self.X, self.delta, self.energy, ids, ks)
        m = len(ids)
        self.counters.flips += m
        self.counters.evaluated += m * self.n
        self.counters.delta_updates += updates
        return updates

    def _update_best(self, ids: np.ndarray) -> None:
        """Best-tracking over all n exposed neighbors plus the position."""
        self.backend.update_best(
            self.X, self.delta, self.energy, self.best_energy, self.best_x, ids
        )

    # ------------------------------------------------------------------
    # Device steps
    # ------------------------------------------------------------------
    def reset_best(self) -> None:
        """§3.2 Step 3: forget the per-block incumbents.

        The host already pooled anything worth keeping; resetting lets
        each block report a *different* good solution next round,
        avoiding premature convergence.
        """
        self.best_energy.fill(_INT64_MAX)

    def straight_to(self, targets: np.ndarray, *, scan_neighbors: bool = True) -> int:
        """Batched Algorithm 5: walk every block to its target.

        ``targets`` is ``B × n``.  Blocks retire as they arrive (their
        flip count equals their Hamming distance).  Returns the total
        number of flips performed.
        """
        T = np.asarray(targets)
        if T.shape != (self.B, self.n):
            raise ValueError(f"targets must have shape ({self.B}, {self.n}), got {T.shape}")
        if T.dtype != np.uint8:
            T = T.astype(np.uint8)
        backend = self.backend
        bus = self._bus
        timing = bus.enabled
        select_ns = flip_ns = best_ns = 0
        total = 0
        updates = 0
        iters = 0
        retired: int | None = None
        while True:
            diff = self.X ^ T
            active = diff.any(axis=1)
            if retired is None:
                retired = int(active.sum())
            if not active.any():
                break
            iters += 1
            ids = self._ids[active]
            if timing:
                t0 = time.perf_counter_ns()
                ks = backend.select_straight(self.delta, diff, ids)
                t1 = time.perf_counter_ns()
                updates += self._flip(ids, ks)
                t2 = time.perf_counter_ns()
            else:
                ks = backend.select_straight(self.delta, diff, ids)
                updates += self._flip(ids, ks)
            if scan_neighbors:
                self._update_best(ids)
            else:
                backend.track_position(
                    self.X, self.energy, self.best_energy, self.best_x, ids
                )
            if timing:
                t3 = time.perf_counter_ns()
                select_ns += t1 - t0
                flip_ns += t2 - t1
                best_ns += t3 - t2
            total += len(ids)
        self.counters.straight_flips += total
        self.counters.straight_retirements += retired or 0
        if bus.enabled:
            bus.counters.inc("engine.straight_flips", total)
            bus.counters.inc("engine.straight_retirements", retired or 0)
            # Keep the session counter families reconciled with
            # EngineCounters: straight flips evaluate n neighbours each,
            # and both phases contribute to engine.flips.
            bus.counters.inc("engine.flips", total)
            bus.counters.inc("engine.evaluated", total * self.n)
            bus.counters.inc("engine.delta_updates", updates)
            bus.counters.inc(f"backend.{self.backend.name}.straight_select_ns", select_ns)
            bus.counters.inc(f"backend.{self.backend.name}.flip_ns", flip_ns)
            bus.counters.inc(f"backend.{self.backend.name}.best_ns", best_ns)
            bus.emit(
                "engine.straight",
                flips=total,
                iters=iters,
                retired=retired or 0,
                already_at_target=self.B - (retired or 0),
                backend=self.backend.name,
            )
        return total

    def local_steps(self, steps: int) -> None:
        """Batched Algorithm 4: ``steps`` forced flips for every block.

        Selection follows Figure 2 exactly: block ``b`` extracts the
        ``l_b`` bits at its rotating offset, flips the one with minimum
        Δ, and advances its offset by ``l_b`` (mod n).  The whole
        multi-step loop is delegated to the backend, which may fuse it
        into a single JIT kernel (the numpy reference pays one Python
        iteration per step).
        """
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        bus = self._bus
        timing = bus.enabled
        if timing:
            t0 = time.perf_counter_ns()
        updates = self.backend.run_local_steps(
            self._pw,
            self.X,
            self.delta,
            self.energy,
            self.best_energy,
            self.best_x,
            self.offsets,
            self.windows,
            steps,
        )
        n = self.n
        self.counters.flips += steps * self.B
        self.counters.evaluated += steps * self.B * n
        self.counters.delta_updates += updates
        self.counters.local_flips += steps * self.B
        if bus.enabled and steps:
            bus.counters.inc("engine.local_flips", steps * self.B)
            bus.counters.inc("engine.flips", steps * self.B)
            bus.counters.inc("engine.evaluated", steps * self.B * n)
            bus.counters.inc("engine.delta_updates", updates)
            bus.counters.inc(
                f"backend.{self.backend.name}.local_steps_ns",
                time.perf_counter_ns() - t0,
            )
            bus.emit(
                "engine.local",
                steps=steps,
                flips=steps * self.B,
                evaluated=steps * self.B * n,
                backend=self.backend.name,
            )

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    def set_state(self, block: int, x: np.ndarray) -> None:
        """Force block ``block`` to solution ``x`` (recomputes its state).

        Test/setup helper — costs O(n²) and is never used on the hot
        path (the framework only moves blocks via straight search).
        """
        from repro.qubo.energy import delta_vector, energy

        weights = self.sparse if self.sparse is not None else self.W
        xb = check_bit_vector(x, self.n, "x")
        self.X[block] = xb
        self.energy[block] = energy(weights, xb)
        self.delta[block] = delta_vector(weights, xb)

    def block_best(self, block: int) -> tuple[int, np.ndarray]:
        """``(best_energy, best_x)`` for one block."""
        if not (0 <= block < self.B):
            raise IndexError(f"block must be in [0, {self.B}), got {block}")
        return int(self.best_energy[block]), self.best_x[block].copy()

    def global_best(self) -> tuple[int, np.ndarray]:
        """The best ``(energy, x)`` over all blocks."""
        b = int(self.best_energy.argmin())
        return self.block_best(b)

    def validate(self) -> None:
        """Recompute every block's energy/delta from scratch and compare.

        O(B·n²); for tests only.  The pytest-facing variant with a
        first-divergence diff lives in ``tests/helpers/engine_check.py``.
        """
        from repro.qubo.energy import delta_vector, energy

        weights = self.sparse if self.sparse is not None else self.W
        for b in range(self.B):
            e = energy(weights, self.X[b])
            d = delta_vector(weights, self.X[b])
            assert e == self.energy[b], f"block {b}: energy {self.energy[b]} != {e}"
            assert np.array_equal(d, self.delta[b]), f"block {b}: delta diverged"
