"""Deterministic random-number plumbing.

The paper's selection policy (Figure 2) is deliberately RNG-free, but the
host GA, workload generators, and baselines all need randomness.  To keep
every experiment reproducible across process boundaries (the multi-GPU
simulation forks workers), all randomness flows from
:class:`numpy.random.Generator` instances derived from explicit seeds via
``SeedSequence.spawn`` — never from NumPy's legacy global state.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a sequence of
    integers, a :class:`~numpy.random.SeedSequence`, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used to hand each simulated GPU worker its own stream: worker ``i``
    always receives the same stream for the same parent seed, regardless
    of how many workers run or in what order they start.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn through the generator's bit generator seed sequence.
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if not isinstance(seq, np.random.SeedSequence):  # pragma: no cover
            raise TypeError("generator does not expose a SeedSequence")
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class RngFactory:
    """A reproducible, forkable source of named random streams.

    Each distinct ``name`` maps to a deterministic child stream of the
    root seed, so adding a new consumer of randomness never perturbs the
    streams existing consumers see.

    Example
    -------
    >>> f = RngFactory(1234)
    >>> rng_ga = f.stream("ga")
    >>> rng_w0 = f.stream("worker", 0)
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, np.random.Generator):
            raise TypeError("RngFactory needs a seed, not a Generator")
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        else:
            self._root = np.random.SeedSequence(seed)

    @property
    def root_entropy(self) -> object:
        """The root entropy (useful for logging how a run was seeded)."""
        return self._root.entropy

    def stream(self, name: str, index: int = 0) -> np.random.Generator:
        """Return the generator for logical stream ``(name, index)``.

        The mapping is stable: the same ``(root seed, name, index)``
        always yields the same stream.
        """
        # Hash the name into spawn_key material deterministically.
        key = tuple(name.encode("utf-8")) + (index,)
        child = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=key
        )
        return np.random.default_rng(child)

    def streams(self, name: str, count: int) -> list[np.random.Generator]:
        """Return ``count`` generators for stream family ``name``."""
        return [self.stream(name, i) for i in range(count)]

    def iter_streams(self, name: str) -> Iterator[np.random.Generator]:
        """Yield an unbounded sequence of generators for ``name``."""
        i = 0
        while True:
            yield self.stream(name, i)
            i += 1


def random_bits(rng: np.random.Generator, n: int) -> np.ndarray:
    """Return a uniformly random length-``n`` bit vector (dtype uint8)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return rng.integers(0, 2, size=n, dtype=np.uint8)


def random_bit_matrix(rng: np.random.Generator, rows: int, n: int) -> np.ndarray:
    """Return a ``rows × n`` matrix of uniformly random bits (uint8)."""
    if rows < 0 or n < 0:
        raise ValueError("rows and n must be non-negative")
    return rng.integers(0, 2, size=(rows, n), dtype=np.uint8)
