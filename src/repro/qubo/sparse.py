"""Sparse QUBO weight matrices.

The paper's GPU implementation stores ``W`` dense (16-bit entries in
global memory), but two of its three benchmark families are *sparse*:
G-set graphs have average degree ≈ 5–50, so a dense 10 000² matrix
spends 800 MB on mostly zeros.  :class:`SparseQubo` stores the
off-diagonal weights in CSR form plus a dense diagonal, and provides
the same energy/delta operations with per-flip cost O(degree) instead
of O(n):

- ``energy(x)``                    — O(nnz)
- ``delta_vector(x)``              — O(nnz)
- ``update_delta_after_flip``      — O(degree(k))  (vs Eq. 16's O(n))

The bulk engine (:class:`repro.gpusim.engine.BulkSearchEngine`) accepts
a :class:`SparseQubo` directly and switches its batched flip kernel to
scatter-adds over the touched columns only.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy import sparse as sp

from repro.qubo.matrix import QuboMatrix
from repro.utils.validation import check_bit_vector, check_index


class SparseQubo:
    """A symmetric integer QUBO in CSR form (off-diagonal) + diagonal.

    Parameters
    ----------
    offdiag:
        Square scipy sparse matrix of the off-diagonal weights; must be
        symmetric with an empty diagonal.
    diag:
        Dense length-n integer vector of ``W_ii``.

    Use :meth:`from_dense`, :meth:`from_qubo`, or :meth:`from_graph_terms`
    rather than the raw constructor where possible.
    """

    __slots__ = ("_csr", "_diag", "name")

    def __init__(
        self,
        offdiag: sp.spmatrix,
        diag: np.ndarray,
        *,
        name: str | None = None,
        check: bool = True,
    ) -> None:
        csr = sp.csr_array(offdiag)
        diag = np.ascontiguousarray(diag, dtype=np.int64)
        n = csr.shape[0]
        if check:
            if csr.shape[0] != csr.shape[1]:
                raise ValueError(f"offdiag must be square, got {csr.shape}")
            if diag.shape != (n,):
                raise ValueError(f"diag must have shape ({n},), got {diag.shape}")
            if not np.issubdtype(csr.dtype, np.integer):
                raise TypeError(f"weights must be integers, got dtype {csr.dtype}")
            if csr.diagonal().any():
                raise ValueError("offdiag must have an empty diagonal (use `diag`)")
            if (csr != csr.T).nnz != 0:
                raise ValueError("offdiag must be symmetric")
        csr = sp.csr_array(csr.astype(np.int64))
        csr.sum_duplicates()
        self._csr = csr
        self._diag = diag
        self.name = name or f"sparse-qubo-{n}"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, weights, *, name: str | None = None) -> "SparseQubo":
        """Build from a dense symmetric matrix or :class:`QuboMatrix`."""
        if isinstance(weights, QuboMatrix):
            W = weights.W
            name = name or weights.name
        else:
            W = np.asarray(weights)
        if W.ndim != 2 or W.shape[0] != W.shape[1]:
            raise ValueError(f"weights must be square, got shape {W.shape}")
        if not np.issubdtype(W.dtype, np.integer):
            raise TypeError(f"weights must be integers, got dtype {W.dtype}")
        if not np.array_equal(W, W.T):
            raise ValueError("weights must be symmetric")
        diag = np.diagonal(W).astype(np.int64)
        off = W.astype(np.int64).copy()
        np.fill_diagonal(off, 0)
        return cls(sp.csr_array(off), diag, name=name, check=False)

    # Alias kept for symmetry with QuboMatrix call sites.
    from_qubo = from_dense

    @classmethod
    def from_graph_terms(
        cls,
        n: int,
        diag: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        *,
        name: str | None = None,
    ) -> "SparseQubo":
        """Build from COO triplets of the *upper* off-diagonal weights.

        Each (row, col, val) with row < col contributes ``W_rc = W_cr =
        val``.  Duplicate pairs accumulate.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.int64)
        if not (rows.shape == cols.shape == vals.shape):
            raise ValueError("rows/cols/vals must have equal shapes")
        if rows.size and ((rows < 0).any() or (cols >= n).any() or (rows >= n).any() or (cols < 0).any()):
            raise IndexError("triplet index out of range")
        if (rows == cols).any():
            raise ValueError("triplets must be strictly off-diagonal")
        coo = sp.coo_array(
            (
                np.concatenate([vals, vals]),
                (np.concatenate([rows, cols]), np.concatenate([cols, rows])),
            ),
            shape=(n, n),
        )
        return cls(coo.tocsr(), np.asarray(diag, dtype=np.int64), name=name, check=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of bits."""
        return self._csr.shape[0]

    @property
    def diag(self) -> np.ndarray:
        """The dense diagonal ``W_ii`` (int64)."""
        return self._diag

    @property
    def csr(self) -> sp.csr_array:
        """The off-diagonal CSR matrix (int64)."""
        return self._csr

    @property
    def nnz(self) -> int:
        """Stored off-diagonal nonzeros (both triangles)."""
        return int(self._csr.nnz)

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint in bytes."""
        return (
            self._csr.data.nbytes
            + self._csr.indices.nbytes
            + self._csr.indptr.nbytes
            + self._diag.nbytes
        )

    def density(self) -> float:
        """Fraction of nonzero entries including the diagonal."""
        if self.n == 0:
            return 0.0
        nz = self.nnz + int(np.count_nonzero(self._diag))
        return nz / float(self.n * self.n)

    def weight_bits(self) -> int:
        """Smallest signed bit width holding every stored weight
        (mirrors :meth:`QuboMatrix.weight_bits`)."""
        lo = hi = 0
        if self._csr.data.size:
            lo = int(self._csr.data.min())
            hi = int(self._csr.data.max())
        if self._diag.size:
            lo = min(lo, int(self._diag.min()))
            hi = max(hi, int(self._diag.max()))
        bits = 1
        while not (-(2 ** (bits - 1)) <= lo and hi <= 2 ** (bits - 1) - 1):
            bits += 1
        return bits

    def is_weight16(self) -> bool:
        """Whether all weights fit the paper's 16-bit profile."""
        return self.weight_bits() <= 16

    def to_dense(self) -> QuboMatrix:
        """Materialize as a dense :class:`QuboMatrix` (beware memory)."""
        W = np.asarray(self._csr.todense(), dtype=np.int64)
        W[np.arange(self.n), np.arange(self.n)] = self._diag
        return QuboMatrix(W, copy=False, check=False, name=self.name)

    def __repr__(self) -> str:
        return (
            f"SparseQubo(name={self.name!r}, n={self.n}, nnz={self.nnz}, "
            f"density={self.density():.4f})"
        )

    # ------------------------------------------------------------------
    # Energy / delta operations
    # ------------------------------------------------------------------
    def energy(self, x: np.ndarray) -> int:
        """``E(X) = XᵀWX`` in O(nnz)."""
        xb = check_bit_vector(x, self.n, "x").astype(np.int64)
        coupling = int(xb @ (self._csr @ xb))
        return coupling + int(self._diag @ xb)

    def delta_vector(self, x: np.ndarray) -> np.ndarray:
        """All ``Δ_k(X)`` (Eq. 4) in O(nnz)."""
        xb = check_bit_vector(x, self.n, "x").astype(np.int64)
        row = self._csr @ xb  # Σ_{j≠k} W_kj x_j (diagonal is separate)
        inner = 2 * row + self._diag
        return (1 - 2 * xb) * inner

    def row(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """``(columns, values)`` of off-diagonal row ``k``."""
        check_index(k, self.n, "k")
        lo, hi = self._csr.indptr[k], self._csr.indptr[k + 1]
        return self._csr.indices[lo:hi], self._csr.data[lo:hi]

    def update_delta_after_flip(
        self, x: np.ndarray, delta: np.ndarray, k: int
    ) -> int:
        """Eq. (16) restricted to the neighbors of ``k`` — O(degree(k)).

        Same contract as :func:`repro.qubo.energy.update_delta_after_flip`:
        mutates ``x`` and ``delta`` in place, returns the applied Δ.
        """
        check_index(k, self.n, "k")
        if x.shape != (self.n,) or delta.shape != (self.n,):
            raise ValueError("x and delta must have length n")
        if delta.dtype != np.int64:
            raise TypeError(f"delta must be int64, got {delta.dtype}")
        applied = int(delta[k])
        cols, vals = self.row(k)
        sk = 1 - 2 * int(x[k])
        signs = (1 - 2 * x[cols].astype(np.int64)) * sk
        delta[cols] += 2 * vals * signs
        delta[k] = -applied
        x[k] ^= 1
        return applied


WeightsAny = Union[QuboMatrix, np.ndarray, SparseQubo]
