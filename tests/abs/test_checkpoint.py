"""Tests for engine/pool checkpointing."""

import math

import numpy as np
import pytest

from repro.abs.checkpoint import (
    CheckpointError,
    load_engine,
    load_pool,
    save_engine,
    save_pool,
)
from repro.ga.pool import SolutionPool
from repro.gpusim import BulkSearchEngine
from repro.qubo import QuboMatrix


@pytest.fixture
def problem():
    return QuboMatrix.random(32, seed=321)


class TestEngineCheckpoint:
    def test_resumed_run_is_bit_identical(self, problem, tmp_path, rng):
        """Interrupting + restoring must not change the trajectory."""
        eng = BulkSearchEngine(problem, 4, windows=np.array([2, 4, 8, 16]))
        eng.straight_to(rng.integers(0, 2, (4, 32), dtype=np.uint8))
        eng.local_steps(25)
        ckpt = tmp_path / "eng.npz"
        save_engine(eng, ckpt)

        # Reference: the uninterrupted run.
        eng.local_steps(40)

        resumed = load_engine(problem, ckpt)
        resumed.local_steps(40)
        assert np.array_equal(resumed.X, eng.X)
        assert np.array_equal(resumed.delta, eng.delta)
        assert np.array_equal(resumed.energy, eng.energy)
        assert np.array_equal(resumed.best_energy, eng.best_energy)
        assert np.array_equal(resumed.best_x, eng.best_x)
        assert resumed.counters == eng.counters

    def test_counters_restored(self, problem, tmp_path):
        eng = BulkSearchEngine(problem, 2)
        eng.local_steps(10)
        ckpt = tmp_path / "eng.npz"
        save_engine(eng, ckpt)
        resumed = load_engine(problem, ckpt)
        assert resumed.counters == eng.counters

    def test_sparse_weights_supported(self, tmp_path, rng):
        from repro.qubo import SparseQubo

        dense = QuboMatrix.random(24, seed=5)
        sq = SparseQubo.from_dense(dense)
        eng = BulkSearchEngine(sq, 3)
        eng.local_steps(15)
        ckpt = tmp_path / "eng.npz"
        save_engine(eng, ckpt)
        resumed = load_engine(sq, ckpt)
        resumed.validate()
        assert np.array_equal(resumed.X, eng.X)

    def test_dimension_mismatch_rejected(self, problem, tmp_path):
        eng = BulkSearchEngine(problem, 2)
        ckpt = tmp_path / "eng.npz"
        save_engine(eng, ckpt)
        other = QuboMatrix.random(16, seed=0)
        with pytest.raises(CheckpointError, match="n="):
            load_engine(other, ckpt)

    def test_wrong_file_rejected(self, problem, tmp_path):
        p = tmp_path / "junk.npz"
        np.savez(p, whatever=np.zeros(3))
        with pytest.raises(CheckpointError, match="engine checkpoint"):
            load_engine(problem, p)


class TestPoolCheckpoint:
    def test_roundtrip_with_infinite_energies(self, tmp_path):
        pool = SolutionPool(8, capacity=6)
        pool.seed_random(seed=0, count=3)  # +∞ entries
        pool.insert(np.ones(8, dtype=np.uint8), -42)
        p = tmp_path / "pool.npz"
        save_pool(pool, p)
        loaded = load_pool(p)
        assert len(loaded) == len(pool)
        assert loaded.best().energy == -42
        assert loaded.evaluated_fraction() == pool.evaluated_fraction()
        assert math.isinf(loaded.worst().energy)

    def test_empty_pool(self, tmp_path):
        pool = SolutionPool(4, capacity=3)
        p = tmp_path / "pool.npz"
        save_pool(pool, p)
        loaded = load_pool(p)
        assert len(loaded) == 0
        assert loaded.capacity == 3

    def test_sorted_order_preserved(self, tmp_path):
        pool = SolutionPool(4, capacity=8)
        for i, e in enumerate([5, -3, 9, 0]):
            x = np.array([(i >> k) & 1 for k in range(4)], dtype=np.uint8)
            pool.insert(x, e)
        p = tmp_path / "pool.npz"
        save_pool(pool, p)
        loaded = load_pool(p)
        assert loaded.energies() == pool.energies()

    def test_wrong_file_rejected(self, tmp_path):
        p = tmp_path / "junk.npz"
        np.savez(p, whatever=np.zeros(3))
        with pytest.raises(CheckpointError, match="pool checkpoint"):
            load_pool(p)
