"""Fixture backend: pure kernels, immutable module state only."""

from repro.backends.base import KernelBackend

_LIMIT = 64


class GoodBackend(KernelBackend):
    name = "good"

    def flip(self, state, k):
        state[k] ^= 1
        return _LIMIT
