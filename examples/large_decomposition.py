#!/usr/bin/env python3
"""Decomposition solving for problems beyond a device's capacity.

The paper's engine holds the whole problem per device (32 k-bit cap).
This example attacks a 5 000-vertex sparse Max-Cut (a G55-scale
instance) with the qbsolv-style outer loop: the incumbent's delta
bookkeeping picks promising 128-variable subproblems, each solved by a
short ABS run, improvements applied incrementally.

Run:  python examples/large_decomposition.py
"""

from __future__ import annotations

from repro.abs import DecompositionConfig, DecompositionSolver
from repro.problems import cut_value, maxcut_to_sparse_qubo, synthetic_gset
from repro.utils.plot import sparkline


def main() -> None:
    graph = synthetic_gset("G55")  # 5000 vertices, sparse
    qubo = maxcut_to_sparse_qubo(graph, name="G55")
    print(
        f"graph: {graph.number_of_nodes()} vertices, "
        f"{graph.number_of_edges()} edges; sparse QUBO: "
        f"{qubo.nbytes / 1e6:.2f} MB (dense would be "
        f"{qubo.n * qubo.n * 8 / 1e9:.1f} GB)"
    )

    config = DecompositionConfig(
        subproblem_size=128,
        iterations=30,
        selection="delta",
        inner_rounds=10,
        inner_blocks=16,
        inner_steps=32,
        seed=4,
    )
    result = DecompositionSolver(qubo, config).solve()

    cut = -result.best_energy
    print(f"best cut      : {cut} (verified {cut_value(graph, result.best_x)})")
    print(f"iterations    : {result.iterations} ({result.improvements} improving)")
    print(f"elapsed       : {result.elapsed:.3g} s")
    print(f"convergence   : {sparkline([e for _, e in result.history], width=48)}")


if __name__ == "__main__":
    main()
