"""Acceptance rules for the ``Accept`` hook in Algorithms 1–2.

The paper leaves ``Accept`` open ("depending on metaheuristics", Alg. 1)
and spells out the simulated-annealing rule Eq. (7).  These small rule
objects are shared by the naive/one-step searches and the SA baseline.
"""

from __future__ import annotations

import abc
import math

import numpy as np


class AcceptRule(abc.ABC):
    """Decides whether to accept a move with energy change ``delta_e``."""

    @abc.abstractmethod
    def accept(self, delta_e: int, rng: np.random.Generator) -> bool:
        """Return ``True`` to take the move."""

    def step(self) -> None:
        """Advance any internal schedule (no-op by default)."""


class AlwaysAccept(AcceptRule):
    """Accept every move (pure random walk)."""

    def accept(self, delta_e: int, rng: np.random.Generator) -> bool:
        return True


class DescentAccept(AcceptRule):
    """Accept only non-increasing moves (strict local descent)."""

    def accept(self, delta_e: int, rng: np.random.Generator) -> bool:
        return delta_e <= 0


class MetropolisAccept(AcceptRule):
    """The SA rule of Eq. (7): ``p = exp(−ΔE / (k_B·t))`` for ΔE > 0.

    ``temperature`` may be updated externally (by a cooling schedule)
    between steps; :meth:`step` is a hook the SA driver calls once per
    iteration.
    """

    def __init__(self, temperature: float, k_b: float = 1.0) -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        if k_b <= 0:
            raise ValueError(f"k_b must be positive, got {k_b}")
        self.temperature = float(temperature)
        self.k_b = float(k_b)

    def probability(self, delta_e: int) -> float:
        """Acceptance probability for an energy change of ``delta_e``."""
        if delta_e <= 0:
            return 1.0
        return math.exp(-delta_e / (self.k_b * self.temperature))

    def accept(self, delta_e: int, rng: np.random.Generator) -> bool:
        if delta_e <= 0:
            return True
        return rng.random() < self.probability(delta_e)
