"""TCP exchange transport: the Figure-5 buffers over socket streams.

Nothing in the host loop of :mod:`repro.abs.solver` cares whether a
device worker lives in another process or on another machine — the
exchange interface only moves bits.  This module is the third
transport behind ``AbsConfig.exchange`` (``"tcp"``): the host runs one
asyncio acceptor that multiplexes every device stream, each worker
opens a plain blocking socket, and the payloads are the *same*
bit-packed arrays the shm rings carry, wrapped in length-prefixed
binary frames.

Wire format (all integers little-endian; see ``docs/exchange.md`` for
the field tables)::

    frame   := magic "AB" | type u8 | pad u8 | payload_len u32 | crc32 u32 | payload
    HELLO   := worker_id i32 | incarnation i64
    TARGETS := generation i64 | epoch i64 | n_blocks i32 | n i32 | packbits payload
    RESULT  := worker_id i32 | incarnation i64 | count i32 | n i32
               | evaluated i64 | flips i64 | counters i64[K] | energies i64[count]
               | packbits rows
    EVENTS  := worker_id i32 | incarnation i64 | pickled event list

Framing is the transport's whole ordering story: TCP already
guarantees that bytes inside one connection arrive intact and in
order, so a decoded frame can never be torn or reordered — the only
failure left is *loss of the connection*, which drops any frames still
in flight.  The protocol is built so that loss is always safe:

- **Targets** are freshest-wins, exactly like the
  :class:`~repro.abs.exchange.TargetMailbox`: every batch carries a
  per-worker generation counter and the incarnation epoch it is meant
  for, the host remembers only the newest frame, and replays it when a
  worker (re)connects.  A worker accepts a batch only when its
  generation is newer than anything it has used and the epoch matches
  its own incarnation — a replayed or stale frame is skipped, never
  searched twice.
- **Results** are cumulative snapshots sent at most once: a send that
  fails mid-connection is *dropped*, not retried, so the host can
  never observe a duplicated or reordered result — only a gap, which
  the next round's (cumulative) snapshot closes.  This mirrors the
  suffix-loss semantics of a killed shm worker.

The interleaving explorer (:mod:`repro.analysis.interleave`) walks a
step-machine model of exactly these two streams — including
disconnects and the HELLO replay — and proves the freshness and FIFO
invariants; injected protocol bugs (accepting without the generation
filter, replaying stale generations, retrying result sends, frame
reorder) are each detected.

Workers are *elastic*: a worker may crash, reconnect, or join
mid-run.  The supervisor restart machinery is unchanged — a
replacement incarnation simply says HELLO on a fresh connection, and
the host stamps an ``exchange.reconnect`` telemetry event whenever a
worker slot is connected more than once.

Trust boundary: the acceptor binds loopback by default and the EVENTS
frame uses pickle (exactly like the ``queue`` transport's
``multiprocessing.Queue``), so the listener must only ever face
machines you would let run this process anyway.
"""

from __future__ import annotations

import pickle
import queue as queue_mod
import socket
import struct
import threading
import time
import zlib
from typing import Any

import numpy as np

from repro.abs.buffers import pack_solutions, packed_length, unpack_solutions
from repro.abs.exchange import (
    ENGINE_COUNTER_KEYS,
    WIRE_I64,
    WIRE_U8,
    ResultBatch,
    _new_stats,
)

__all__ = [
    "FrameError",
    "TcpHostTransport",
    "TcpWorkerEndpoint",
    "decode_frame",
    "decode_hello",
    "decode_result",
    "decode_targets",
    "encode_events",
    "encode_frame",
    "encode_hello",
    "encode_result",
    "encode_targets",
]


class FrameError(ValueError):
    """A frame that cannot be decoded (truncation, garbage, CRC, size).

    Raised instead of ever deserializing a damaged frame silently; a
    stream that produced one is poisoned and must be reconnected."""


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------

#: Two-byte frame preamble.  The magic plus CRC means random or
#: misaligned bytes fail loudly as :class:`FrameError` instead of
#: decoding into a plausible-looking payload.
FRAME_MAGIC = b"AB"

#: ``magic 2s | type u8 | pad u8 | payload_len u32 | crc32 u32``.
FRAME_HEADER = struct.Struct("<2sBxII")

#: Upper bound on one frame's payload; a length field beyond this is
#: garbage (or an attack), not a batch we would ever ship.
MAX_FRAME_PAYLOAD = 1 << 26

F_HELLO = 1
F_TARGETS = 2
F_RESULT = 3
F_EVENTS = 4
_FRAME_TYPES = frozenset({F_HELLO, F_TARGETS, F_RESULT, F_EVENTS})

_HELLO = struct.Struct("<iq")
_TARGETS_HEAD = struct.Struct("<qqii")
_RESULT_HEAD = struct.Struct("<iqiiqq")

#: Cumulative worker counters shipped in the fixed RESULT counter
#: vector, in wire order — the shm meta keys plus the tcp lane's own.
_WIRE_COUNTER_KEYS: tuple[str, ...] = ENGINE_COUNTER_KEYS + (
    "exchange.tcp.reconnects",
    "exchange.tcp.dropped_results",
)


def encode_frame(ftype: int, payload: bytes) -> bytes:
    """Wrap ``payload`` in a length-prefixed, CRC-protected frame."""
    if ftype not in _FRAME_TYPES:
        raise ValueError(f"unknown frame type {ftype!r}")
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise ValueError(f"payload of {len(payload)} bytes exceeds frame bound")
    header = FRAME_HEADER.pack(
        FRAME_MAGIC, ftype, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    )
    return header + payload


def decode_frame(
    data: "bytes | bytearray | memoryview", *, partial_ok: bool = False
) -> tuple[int, bytes, int] | None:
    """Decode one frame from the head of ``data``.

    Returns ``(type, payload, bytes_consumed)``.  With ``partial_ok``
    (the streaming path) an *incomplete but so-far-valid* prefix
    returns ``None`` — read more bytes and retry; without it,
    truncation raises.  Damaged bytes (bad magic, unknown type,
    oversized length, CRC mismatch) always raise :class:`FrameError`
    no matter how much data follows.
    """
    view = memoryview(data)
    if len(view) < FRAME_HEADER.size:
        if partial_ok and (
            len(view) < 2 or view[:2].tobytes() == FRAME_MAGIC[: len(view)]
        ):
            return None
        if partial_ok:
            raise FrameError(f"bad frame magic {view[:2].tobytes()!r}")
        raise FrameError(
            f"truncated frame header: {len(view)} of {FRAME_HEADER.size} bytes"
        )
    magic, ftype, length, crc = FRAME_HEADER.unpack_from(view)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if view[3] != 0:  # reserved pad byte: must be zero on the wire
        raise FrameError(f"nonzero reserved byte {view[3]}")
    if ftype not in _FRAME_TYPES:
        raise FrameError(f"unknown frame type {ftype}")
    if length > MAX_FRAME_PAYLOAD:
        raise FrameError(f"frame length {length} exceeds bound {MAX_FRAME_PAYLOAD}")
    total = FRAME_HEADER.size + length
    if len(view) < total:
        if partial_ok:
            return None
        raise FrameError(f"truncated frame payload: {len(view)} of {total} bytes")
    payload = view[FRAME_HEADER.size : total].tobytes()
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameError("frame CRC mismatch")
    return ftype, payload, total


def encode_hello(worker_id: int, incarnation: int) -> bytes:
    return encode_frame(F_HELLO, _HELLO.pack(worker_id, incarnation))


def decode_hello(payload: bytes) -> tuple[int, int]:
    if len(payload) != _HELLO.size:
        raise FrameError(f"HELLO payload is {len(payload)} bytes, want {_HELLO.size}")
    worker_id, incarnation = _HELLO.unpack(payload)
    return worker_id, incarnation


def encode_targets(generation: int, epoch: int, targets: np.ndarray) -> bytes:
    """One ``(B, n)`` target batch, bit-packed, stamped gen + epoch."""
    targets = np.ascontiguousarray(targets, dtype=WIRE_U8)
    if targets.ndim != 2:
        raise ValueError(f"targets must be 2-D, got shape {targets.shape}")
    n_blocks, n = targets.shape
    head = _TARGETS_HEAD.pack(generation, epoch, n_blocks, n)
    return encode_frame(F_TARGETS, head + pack_solutions(targets).tobytes())


def decode_targets(payload: bytes) -> tuple[int, int, np.ndarray]:
    """``(generation, epoch, unpacked (B, n) targets)``."""
    if len(payload) < _TARGETS_HEAD.size:
        raise FrameError(f"short TARGETS payload: {len(payload)} bytes")
    generation, epoch, n_blocks, n = _TARGETS_HEAD.unpack_from(payload)
    if n_blocks < 0 or n < 0:
        raise FrameError(f"negative TARGETS dimensions ({n_blocks}, {n})")
    body = payload[_TARGETS_HEAD.size :]
    expected = n_blocks * packed_length(n)
    if len(body) != expected:
        raise FrameError(
            f"TARGETS body is {len(body)} bytes, want {expected} "
            f"for shape ({n_blocks}, {n})"
        )
    packed = np.frombuffer(body, dtype=WIRE_U8).reshape(n_blocks, packed_length(n))
    return generation, epoch, unpack_solutions(packed, n)


def encode_result(
    worker_id: int,
    incarnation: int,
    energies: np.ndarray,
    x: np.ndarray,
    evaluated: int,
    flips: int,
    counters: dict[str, int],
) -> bytes:
    """One round's per-block bests + cumulative totals, bit-packed."""
    energies = np.ascontiguousarray(energies, dtype=WIRE_I64)
    x = np.ascontiguousarray(x, dtype=WIRE_U8)
    if x.ndim != 2 or x.shape[0] != len(energies):
        raise ValueError(
            f"x must be (len(energies), n), got {x.shape} for "
            f"{len(energies)} energies"
        )
    count, n = x.shape
    head = _RESULT_HEAD.pack(
        worker_id, incarnation, count, n, int(evaluated), int(flips)
    )
    cvec = np.array(
        [int(counters.get(key, 0)) for key in _WIRE_COUNTER_KEYS], dtype=WIRE_I64
    )
    return encode_frame(
        F_RESULT,
        head + cvec.tobytes() + energies.tobytes() + pack_solutions(x).tobytes(),
    )


def decode_result(payload: bytes) -> ResultBatch:
    if len(payload) < _RESULT_HEAD.size:
        raise FrameError(f"short RESULT payload: {len(payload)} bytes")
    worker_id, incarnation, count, n, evaluated, flips = _RESULT_HEAD.unpack_from(
        payload
    )
    if count < 0 or n < 0:
        raise FrameError(f"negative RESULT dimensions ({count}, {n})")
    k = len(_WIRE_COUNTER_KEYS)
    expected = _RESULT_HEAD.size + 8 * k + 8 * count + count * packed_length(n)
    if len(payload) != expected:
        raise FrameError(
            f"RESULT payload is {len(payload)} bytes, want {expected} "
            f"for count={count}, n={n}"
        )
    offset = _RESULT_HEAD.size
    cvec = np.frombuffer(payload, dtype=WIRE_I64, count=k, offset=offset)
    offset += 8 * k
    energies = np.frombuffer(
        payload, dtype=WIRE_I64, count=count, offset=offset
    ).copy()
    offset += 8 * count
    packed = np.frombuffer(payload, dtype=WIRE_U8, offset=offset).reshape(
        count, packed_length(n)
    )
    counters = {key: int(cvec[j]) for j, key in enumerate(_WIRE_COUNTER_KEYS)}
    return ResultBatch(
        worker_id=worker_id,
        incarnation=incarnation,
        energies=energies,
        x=unpack_solutions(packed, n),
        evaluated=int(evaluated),
        flips=int(flips),
        counters=counters,
    )


def encode_events(worker_id: int, incarnation: int, events: list) -> bytes:
    """Telemetry side channel: variable-sized, pickled, never search-critical."""
    return encode_frame(
        F_EVENTS, _HELLO.pack(worker_id, incarnation) + pickle.dumps(events)
    )


def decode_events(payload: bytes) -> tuple[int, int, list]:
    if len(payload) < _HELLO.size:
        raise FrameError(f"short EVENTS payload: {len(payload)} bytes")
    worker_id, incarnation = _HELLO.unpack_from(payload)
    try:
        events = pickle.loads(payload[_HELLO.size :])
    except Exception as exc:  # pickle raises a zoo of types on garbage
        raise FrameError(f"undecodable EVENTS payload: {exc}") from exc
    if not isinstance(events, list):
        raise FrameError(f"EVENTS payload is {type(events).__name__}, want list")
    return worker_id, incarnation, events


# ----------------------------------------------------------------------
# Host side
# ----------------------------------------------------------------------
class _EventBank:
    """Host-side synthetic worker events, shaped like a telemetry bus.

    The transport cannot reach the real :class:`TelemetryBus` (the
    solver owns it), so host-generated events ride the same
    ``event_bundles()`` relay the worker events use.  Exposing them
    through an ``emit()`` call keeps the event name a checkable string
    literal at its creation site, exactly like every bus emit."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: list[tuple[int, int, list]] = []  # guarded-by: _lock

    def emit(self, name: str, *, device: int, incarnation: int, **fields: Any) -> None:
        bundle = (device, incarnation, [(name, {"incarnation": incarnation, **fields})])
        with self._lock:
            self._pending.append(bundle)

    def append_bundle(self, bundle: tuple[int, int, list]) -> None:
        with self._lock:
            self._pending.append(bundle)

    def drain(self) -> list[tuple[int, int, list]]:
        with self._lock:
            out = self._pending
            self._pending = []
        return out


class _TcpTargetChannel:
    """Host-side handle for one worker's target stream + incarnation."""

    def __init__(self, transport: "TcpHostTransport", worker_id: int, epoch: int) -> None:
        self._transport = transport
        self._worker_id = int(worker_id)
        self._epoch = int(epoch)

    def put(self, targets: np.ndarray) -> None:
        self._transport._publish_targets(self._worker_id, self._epoch, targets)

    def get_nowait(self) -> Any:
        raise queue_mod.Empty  # the stream holds no host-side backlog


class TcpHostTransport:
    """Asyncio acceptor multiplexing every device worker's stream.

    The event loop runs on a daemon thread and owns all readers and
    writers; the solver's host loop talks to it through a thread-safe
    inbox (decoded results and connection notices) and
    ``loop.call_soon_threadsafe`` (target sends).  The freshest TARGETS
    frame per worker is cached and replayed on (re)connect, which is
    what makes workers elastic — a replacement or rejoining worker is
    current after one frame, exactly like re-attaching to a mailbox.
    """

    name = "tcp"

    # The acceptor thread (``_dispatch``) and the host loop
    # (``_publish_targets``/``poll``) both mutate these; the replay
    # cache was always locked, but the stats dict raced until the
    # lock-discipline rule flagged it — int += is not atomic across
    # threads and increments could be lost.
    GUARDED_BY = {"_latest": "_lock", "stats": "_lock"}

    def __init__(
        self,
        ctx: Any,
        n_workers: int,
        n_blocks: int,
        n: int,
        *,
        host: str = "127.0.0.1",
    ) -> None:
        import asyncio

        self._ctx = ctx
        self.n_workers = int(n_workers)
        self.n_blocks = int(n_blocks)
        self.n = int(n)
        self.stats = _new_stats()
        self.stats.update(
            {
                "exchange.tcp.connects": 0,
                "exchange.tcp.frames_to_device": 0,
                "exchange.tcp.frames_from_device": 0,
            }
        )
        self._lock = threading.Lock()
        self._inbox: queue_mod.Queue = queue_mod.Queue()
        self._events = _EventBank()
        self._gens = [0] * self.n_workers
        self._latest: list[bytes | None] = [None] * self.n_workers
        self._connects_by_worker = [0] * self.n_workers
        self._writers: dict[int, Any] = {}
        self._server: Any = None
        self._boot_error: OSError | None = None
        self.port = 0
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        self._thread = threading.Thread(
            target=self._serve,
            args=(host, started),
            name="tcp-exchange-host",
            daemon=True,
        )
        self._thread.start()
        started.wait(timeout=10.0)
        if self._boot_error is not None:
            raise self._boot_error
        if self.port == 0:
            raise OSError("tcp exchange acceptor failed to start")
        self._address = (host, self.port)

    # -- event-loop thread ------------------------------------------------
    def _serve(self, host: str, started: threading.Event) -> None:
        import asyncio

        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            try:
                self._server = await asyncio.start_server(
                    self._handle_conn, host, 0
                )
                self.port = self._server.sockets[0].getsockname()[1]
            except OSError as exc:
                self._boot_error = exc
            finally:
                started.set()

        try:
            self._loop.run_until_complete(boot())
            if self._server is not None:
                self._loop.run_forever()
                # Stopped: cancel leftover connection handlers so the
                # loop closes quietly instead of warning about them.
                pending = asyncio.all_tasks(self._loop)
                for task in pending:
                    task.cancel()
                if pending:
                    self._loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
        finally:
            started.set()  # no-op when boot already set it
            try:
                self._loop.close()
            except RuntimeError:  # pragma: no cover - close raced a stop
                pass

    async def _handle_conn(self, reader: Any, writer: Any) -> None:
        """One worker stream: HELLO binds it to a slot, then frames flow."""
        buf = bytearray()
        worker_id: int | None = None
        try:
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    break
                buf += chunk
                while True:
                    frame = decode_frame(buf, partial_ok=True)
                    if frame is None:
                        break
                    ftype, payload, consumed = frame
                    del buf[:consumed]
                    worker_id = self._dispatch(ftype, payload, writer, worker_id)
        except (FrameError, ConnectionError, OSError):
            pass  # poisoned or dropped stream: the worker will reconnect
        finally:
            if worker_id is not None and self._writers.get(worker_id) is writer:
                del self._writers[worker_id]
            writer.close()

    def _dispatch(
        self, ftype: int, payload: bytes, writer: Any, worker_id: int | None
    ) -> int | None:
        if ftype == F_HELLO:
            wid, winc = decode_hello(payload)
            if not 0 <= wid < self.n_workers:
                raise FrameError(f"HELLO from unknown worker {wid}")
            self._writers[wid] = writer
            with self._lock:
                replay = self._latest[wid]
            if replay is not None:
                # Replay the freshest batch so a (re)joining worker is
                # current immediately; its gen/epoch filter discards
                # the frame if it already used it or it is not for its
                # incarnation.
                writer.write(replay)
            # Count the connect here on the acceptor thread, not in
            # poll(): a restarted worker's connect can sit behind a
            # backlog of RESULT frames, and if the run finishes first
            # the reconnect would never be recorded.  ``_events`` is
            # already fed from this thread (F_EVENTS below).
            with self._lock:
                self.stats["exchange.tcp.connects"] += 1
            self._connects_by_worker[wid] += 1
            if self._connects_by_worker[wid] > 1:
                # A worker slot connected again (crash, drop, or an
                # elastic rejoin): surface it through the same event
                # relay the worker events use, so the solver stamps
                # the device id and filters stale incarnations.
                self._events.emit(
                    "exchange.reconnect",
                    device=wid,
                    incarnation=winc,
                    connects=self._connects_by_worker[wid],
                )
            return wid
        if ftype == F_RESULT:
            batch = decode_result(payload)
            self._inbox.put(("result", batch, len(payload)))
            return worker_id
        if ftype == F_EVENTS:
            wid, winc, events = decode_events(payload)
            if events:
                self._events.append_bundle((wid, winc, events))
            return worker_id
        raise FrameError(f"unexpected frame type {ftype} on the host side")

    def _send_to_worker(self, worker_id: int, frame: bytes) -> None:
        writer = self._writers.get(worker_id)
        if writer is not None:
            try:
                writer.write(frame)
            except (ConnectionError, OSError):  # pragma: no cover - racing close
                pass

    # -- host-loop thread -------------------------------------------------
    def _publish_targets(self, worker_id: int, epoch: int, targets: np.ndarray) -> None:
        self._gens[worker_id] += 1
        frame = encode_targets(self._gens[worker_id], epoch, targets)
        with self._lock:
            self._latest[worker_id] = frame
            self.stats["exchange.targets_published"] += 1
            self.stats["exchange.packs"] += 1
            self.stats["exchange.tcp.frames_to_device"] += 1
            self.stats["exchange.bytes_to_device"] += len(frame)
        self._loop.call_soon_threadsafe(self._send_to_worker, worker_id, frame)

    def make_target_channel(self, worker_id: int, incarnation: int) -> Any:
        # The stream and generation counter survive restarts; only the
        # epoch changes, so a replacement skips its predecessor's
        # batches exactly like a mailbox re-bind.
        return _TcpTargetChannel(self, worker_id, incarnation)

    def rebind_channel(self, worker_id: int, incarnation: int, channel: Any) -> Any:
        # Same surviving stream under a fresh epoch (warm-fleet re-arm).
        return self.make_target_channel(worker_id, incarnation)

    def worker_ref(self, worker_id: int, incarnation: int, channel: Any) -> tuple:
        return ("tcp", self._address)

    def poll(self, timeout: float) -> ResultBatch | None:
        try:
            _, batch, nbytes = self._inbox.get(timeout=timeout)
        except queue_mod.Empty:
            return None
        with self._lock:
            self.stats["exchange.results_consumed"] += 1
            self.stats["exchange.unpacks"] += 1
            self.stats["exchange.tcp.frames_from_device"] += 1
            self.stats["exchange.bytes_from_device"] += nbytes
        return batch

    def event_bundles(self) -> list[tuple[int, int, list]]:
        return self._events.drain()

    def queue_depths(self, worker_id: int, channel: Any) -> tuple[int, int]:
        # Targets are freshest-wins (no backlog, same -1 sentinel as
        # the mailbox); the result depth is the undrained inbox.
        return (-1, self._inbox.qsize())

    def describe(self) -> dict[str, int | str]:
        pn = packed_length(self.n)
        k = len(_WIRE_COUNTER_KEYS)
        return {
            "transport": self.name,
            "workers": self.n_workers,
            "ring_slots": 0,
            "target_slot_bytes": _TARGETS_HEAD.size + self.n_blocks * pn,
            "result_slot_bytes": _RESULT_HEAD.size
            + 8 * k
            + self.n_blocks * 8
            + self.n_blocks * pn,
            "port": self.port,
        }

    def drain(self) -> None:
        try:
            while True:
                self._inbox.get_nowait()
        except queue_mod.Empty:
            pass

    def close(self) -> None:
        def _shutdown() -> None:
            for writer in list(self._writers.values()):
                writer.close()
            self._writers.clear()
            if self._server is not None:
                self._server.close()
            self._loop.stop()

        try:
            self._loop.call_soon_threadsafe(_shutdown)
        except RuntimeError:  # loop already closed
            return
        self._thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Reconnect backoff bounds (seconds): quick first retry, capped so an
#: absent host is polled a few times a second, not hammered.
_BACKOFF_FIRST = 0.05
_BACKOFF_MAX = 0.5

#: Socket receive timeouts: ``fetch_targets(wait=False)`` peeks, the
#: lockstep wait path blocks in short slices so ``stop_evt`` is honored.
_PEEK_TIMEOUT = 0.002
_WAIT_TIMEOUT = 0.05


class TcpWorkerEndpoint:
    """Worker side of the tcp transport: one blocking loopback socket.

    Connection loss is survivable at every call: ``fetch_targets`` and
    ``publish`` transparently reconnect with exponential backoff, say
    HELLO (which makes the host replay the freshest target batch), and
    carry on.  See the module docstring for why a dropped RESULT frame
    is dropped for good rather than retried.
    """

    def __init__(
        self,
        address: tuple[str, int],
        worker_id: int,
        incarnation: int,
        stop_evt: Any,
    ) -> None:
        self._address = (str(address[0]), int(address[1]))
        self._worker_id = int(worker_id)
        self._incarnation = int(incarnation)
        self._stop_evt = stop_evt
        self._sock: socket.socket | None = None
        self._buf = bytearray()
        self._last_gen = 0
        self._latest_targets: np.ndarray | None = None
        self._connects = 0
        self._reconnects = 0
        self._dropped_results = 0
        self._connect()

    # -- connection management --------------------------------------------
    def _connect(self) -> bool:
        backoff = _BACKOFF_FIRST
        while not self._stop_evt.is_set():
            try:
                sock = socket.create_connection(self._address, timeout=2.0)
            except OSError:
                time.sleep(backoff)
                backoff = min(backoff * 2, _BACKOFF_MAX)
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(_WAIT_TIMEOUT)
            self._sock = sock
            self._buf.clear()
            self._connects += 1
            if self._connects > 1:
                self._reconnects += 1
            try:
                sock.sendall(encode_hello(self._worker_id, self._incarnation))
            except OSError:
                self._drop()
                continue
            return True
        return False

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close best-effort
                pass
            self._sock = None
        self._buf.clear()

    def _recv_once(self, timeout: float) -> bool:
        """One receive + frame parse; ``False`` means the stream died."""
        assert self._sock is not None
        try:
            self._sock.settimeout(timeout)
            chunk = self._sock.recv(1 << 16)
        except socket.timeout:
            return True
        except OSError:
            return False
        if not chunk:
            return False  # orderly EOF: host closed (or is restarting us)
        self._buf += chunk
        while True:
            try:
                frame = decode_frame(self._buf, partial_ok=True)
            except FrameError:
                return False  # poisoned stream: reconnect resyncs it
            if frame is None:
                return True
            ftype, payload, consumed = frame
            del self._buf[:consumed]
            if ftype != F_TARGETS:
                continue  # host → worker only carries targets
            try:
                gen, epoch, targets = decode_targets(payload)
            except FrameError:
                return False
            # Freshest-wins with the mailbox's exact filter: replayed,
            # out-of-date, or other-incarnation batches are skipped.
            if gen > self._last_gen and epoch == self._incarnation:
                self._last_gen = gen
                self._latest_targets = targets

    # -- exchange interface -----------------------------------------------
    def rearm(self, token: int) -> None:
        """Adopt a new epoch token (warm-fleet job switch).

        The host's generation counter keeps running across jobs, so
        ``_last_gen`` stays; any buffered batch decoded under the old
        epoch is discarded so the next fetch can only return targets
        published for the new job.
        """
        self._incarnation = int(token)
        self._latest_targets = None

    def fetch_targets(self, *, wait: bool) -> np.ndarray | None:
        while True:
            if self._stop_evt.is_set():
                return None
            if self._sock is None and not self._connect():
                return None
            if not self._recv_once(_WAIT_TIMEOUT if wait else _PEEK_TIMEOUT):
                self._drop()
                continue
            if self._latest_targets is not None:
                targets = self._latest_targets
                self._latest_targets = None
                return targets
            if not wait:
                return None

    def publish(
        self,
        energies: np.ndarray,
        x: np.ndarray,
        evaluated: int,
        flips: int,
        counters: dict[str, int],
        events: list,
    ) -> bool:
        wire_counters = dict(counters)
        wire_counters["exchange.tcp.reconnects"] = self._reconnects
        wire_counters["exchange.tcp.dropped_results"] = self._dropped_results
        data = encode_result(
            self._worker_id,
            self._incarnation,
            energies,
            x,
            int(evaluated),
            int(flips),
            wire_counters,
        )
        if events:
            data += encode_events(self._worker_id, self._incarnation, events)
        if self._sock is None and not self._connect():
            return False
        try:
            assert self._sock is not None
            self._sock.sendall(data)
        except OSError:
            # At-most-once: the totals are cumulative, so the next
            # round's snapshot covers this one — retrying here is the
            # only way the host could ever see a duplicate.
            self._dropped_results += 1
            self._drop()
        return True

    def close(self) -> None:
        self._drop()
