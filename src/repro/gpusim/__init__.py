"""A CUDA-like device substrate, in NumPy.

The paper runs each search as one CUDA block on an NVIDIA RTX 2080 Ti;
no GPU is available here, so this package simulates the relevant
behaviour at two levels:

- **Resource model** (:mod:`.device`, :mod:`.occupancy`, :mod:`.memory`)
  — streaming-multiprocessor / thread / register / shared-memory
  accounting for Turing-class devices, reproducing exactly the
  bits-per-thread → threads-per-block → active-blocks arithmetic of the
  paper's Table 2 and its 32 k-bit / 16-bit-weight capacity claims.
- **Execution model** (:mod:`.engine`) — a *bulk engine* that runs B
  independent Algorithm 4/5 searches as one batched NumPy computation,
  each "CUDA block" being one row of the batched state.  It is
  bit-for-bit equivalent to the scalar reference searches (tested).
- **Timing model** (:mod:`.timing`) — an analytic search-rate model
  calibrated against the paper's published Table 2, used to reproduce
  the *shape* of the throughput results that raw Python cannot reach.
"""

from repro.gpusim.device import RTX_2080_TI, TESLA_V100, DeviceSpec, get_device
from repro.gpusim.engine import BulkSearchEngine
from repro.gpusim.memory import BlockMemoryPlan, plan_block_memory
from repro.gpusim.occupancy import (
    Occupancy,
    compute_occupancy,
    sweep_bits_per_thread,
    valid_bits_per_thread,
)
from repro.gpusim.timing import ThroughputModel, calibrated_model

__all__ = [
    "DeviceSpec",
    "RTX_2080_TI",
    "TESLA_V100",
    "get_device",
    "Occupancy",
    "compute_occupancy",
    "sweep_bits_per_thread",
    "valid_bits_per_thread",
    "BlockMemoryPlan",
    "plan_block_memory",
    "BulkSearchEngine",
    "ThroughputModel",
    "calibrated_model",
]
