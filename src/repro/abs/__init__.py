"""The Adaptive Bulk Search framework (paper §3, Figure 5).

A CPU **host** runs the genetic algorithm over a sorted solution pool
and writes *target solutions* into a target buffer; **devices**
(simulated GPUs) pull targets, run a straight search followed by a bulk
local search in every block, and push each block's best solution back
through a solution buffer.  Host and devices never synchronize
directly — they exchange data only through the buffers, so devices keep
searching at full rate even when the host lags.

Two execution modes are provided by :class:`~repro.abs.solver.AdaptiveBulkSearch`:

- ``"sync"`` — everything in one process, rounds interleaved
  deterministically.  Reproducible; used by tests and TTS benchmarks.
- ``"process"`` — one OS process per simulated GPU (the multi-GPU
  configuration of Figure 5), weights shared via shared memory,
  targets/solutions exchanged through the :mod:`repro.abs.exchange`
  transport (bit-packed shared-memory rings by default; a
  ``multiprocessing.Queue`` fallback via ``exchange="queue"``).  Used
  by the Figure 8 scaling benchmark.
"""

from repro.abs.adaptive import VariantController, WindowAdapter
from repro.abs.checkpoint import load_engine, load_pool, save_engine, save_pool
from repro.abs.config import AbsConfig, resolve_windows
from repro.abs.decompose import (
    DecompositionConfig,
    DecompositionResult,
    DecompositionSolver,
)
from repro.abs.buffers import SolutionBuffer, TargetBuffer
from repro.abs.device import DeviceSimulator
from repro.abs.exchange import (
    EXCHANGE_NAMES,
    ResultBatch,
    SolutionRing,
    TargetMailbox,
    resolve_exchange,
)
from repro.abs.fleet import WorkerFleet, WorkerJob, decode_token, encode_token
from repro.abs.host import Host
from repro.abs.result import SolveResult
from repro.abs.solver import AdaptiveBulkSearch
from repro.abs.supervisor import WorkerAction, WorkerSupervisor
from repro.abs.variants import (
    SearchVariant,
    available_variants,
    get_variant,
    register_variant,
    resolve_fleet,
)

__all__ = [
    "WindowAdapter",
    "VariantController",
    "SearchVariant",
    "available_variants",
    "get_variant",
    "register_variant",
    "resolve_fleet",
    "DecompositionSolver",
    "DecompositionConfig",
    "DecompositionResult",
    "save_engine",
    "load_engine",
    "save_pool",
    "load_pool",
    "AbsConfig",
    "resolve_windows",
    "TargetBuffer",
    "SolutionBuffer",
    "EXCHANGE_NAMES",
    "resolve_exchange",
    "TargetMailbox",
    "SolutionRing",
    "ResultBatch",
    "DeviceSimulator",
    "Host",
    "SolveResult",
    "AdaptiveBulkSearch",
    "WorkerAction",
    "WorkerSupervisor",
    "WorkerFleet",
    "WorkerJob",
    "encode_token",
    "decode_token",
]
