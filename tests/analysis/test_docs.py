"""docs-check: the documentation suite must stay link- and flag-clean.

Runs the :mod:`repro.analysis.docscheck` checker against the actual
repository docs (the tier-1 wiring of ``make docs-check``), plus unit
coverage of each defect class on synthetic trees.
"""

from pathlib import Path

import pytest

from repro.analysis.docscheck import check_repo, main

pytestmark = pytest.mark.analysis

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRepositoryDocs:
    def test_repo_docs_are_clean(self):
        findings = check_repo(REPO_ROOT)
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_docs_map_exists_and_links_every_page(self):
        index = (REPO_ROOT / "docs" / "index.md").read_text()
        for page in sorted((REPO_ROOT / "docs").glob("*.md")):
            if page.name == "index.md":
                continue
            assert f"({page.name})" in index, f"docs/index.md misses {page.name}"

    def test_main_exit_code_clean(self, capsys):
        assert main([str(REPO_ROOT)]) == 0
        assert "OK" in capsys.readouterr().out


def _write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


class TestDefectClasses:
    def test_broken_relative_link(self, tmp_path):
        _write(tmp_path, "README.md", "[gone](docs/missing.md)\n")
        findings = check_repo(tmp_path)
        assert len(findings) == 1
        assert "broken link" in findings[0].message
        assert findings[0].path == "README.md"

    def test_good_links_anchors_and_urls_pass(self, tmp_path):
        _write(tmp_path, "docs/other.md", "x\n")
        _write(
            tmp_path,
            "docs/index.md",
            "[ok](other.md) [up](../README.md) [a](#sec) [w](https://e.org)\n",
        )
        _write(tmp_path, "README.md", "[map](docs/index.md#top)\n")
        assert check_repo(tmp_path) == []

    def test_unknown_subcommand_in_fence(self, tmp_path):
        _write(tmp_path, "README.md", "```bash\npython -m repro frobnicate x\n```\n")
        findings = check_repo(tmp_path)
        assert len(findings) == 1
        assert "unknown CLI subcommand 'frobnicate'" in findings[0].message

    def test_stale_flag_in_fence(self, tmp_path):
        # The pre-rename spelling: `analyze` took over landscape's flags.
        _write(
            tmp_path,
            "README.md",
            "```bash\npython -m repro analyze inst.qubo --walk-steps 64\n```\n",
        )
        findings = check_repo(tmp_path)
        assert any("--walk-steps" in f.message for f in findings)

    def test_valid_commands_pass(self, tmp_path):
        _write(
            tmp_path,
            "README.md",
            "```bash\n"
            "python -m repro landscape inst.qubo --walk-steps 64\n"
            "REPRO_BACKEND=bitplane python -m repro solve inst.qubo --rounds 3\n"
            "abs-solve solve inst.qubo --backend bitplane | tee out.txt\n"
            "python -m repro solve inst.qubo \\\n    --blocks 8 --seed 7\n"
            "```\n",
        )
        assert check_repo(tmp_path) == []

    def test_module_invocations_are_not_subcommand_checked(self, tmp_path):
        _write(
            tmp_path,
            "README.md",
            "```bash\npython -m repro.telemetry.schema run.jsonl\n"
            "python -m repro.analysis.docscheck\n```\n",
        )
        assert check_repo(tmp_path) == []

    def test_commands_outside_fences_ignored(self, tmp_path):
        _write(tmp_path, "README.md", "Run `python -m repro frobnicate` someday.\n")
        assert check_repo(tmp_path) == []

    def test_unknown_make_target_in_fence(self, tmp_path):
        _write(tmp_path, "Makefile", "test:\n\tpytest\n")
        _write(tmp_path, "README.md", "```bash\nmake ship-it\n```\n")
        findings = check_repo(tmp_path)
        assert len(findings) == 1
        assert "make target 'ship-it'" in findings[0].message

    def test_unknown_make_target_in_inline_code(self, tmp_path):
        _write(tmp_path, "Makefile", "test:\n\tpytest\n")
        _write(tmp_path, "README.md", "Run `make chek` before pushing.\n")
        findings = check_repo(tmp_path)
        assert len(findings) == 1
        assert "make target 'chek'" in findings[0].message

    def test_known_targets_prose_and_flags_pass(self, tmp_path):
        _write(
            tmp_path,
            "Makefile",
            ".PHONY: test check\ntest:\n\tpytest\ncheck: test\n\ttrue\n",
        )
        _write(
            tmp_path,
            "README.md",
            "Make sure to make the solver fast.\n"   # prose: not matched
            "Run `make check` or:\n"
            "```bash\nmake -j4 test\nmake check   # explains make bars in a comment\n```\n",
        )
        assert check_repo(tmp_path) == []

    def test_no_makefile_skips_target_check(self, tmp_path):
        _write(tmp_path, "README.md", "```bash\nmake anything\n```\n")
        assert check_repo(tmp_path) == []

    def test_main_reports_and_fails(self, tmp_path, capsys):
        _write(tmp_path, "README.md", "[gone](nope.md)\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr()
        assert "README.md:1" in out.out
        assert "1 problem(s)" in out.err
