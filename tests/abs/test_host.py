"""Tests for the host loop (§3.1)."""

import math

import numpy as np
import pytest

from repro.abs.buffers import StoredSolution
from repro.abs.host import Host
from repro.utils.rng import RngFactory


def sols(*pairs):
    return [
        StoredSolution(e, np.array(x, dtype=np.uint8)) for e, x in pairs
    ]


class TestHost:
    def test_pool_seeded_at_infinite_energy(self):
        """§3.1 Step 1: initial energies are +∞ (never computed)."""
        host = Host(8, 6, rng_factory=RngFactory(1))
        assert len(host.pool) == 6
        assert host.pool.evaluated_fraction() == 0.0
        assert math.isinf(host.best_energy)

    def test_initial_targets_come_from_pool(self):
        host = Host(8, 4, rng_factory=RngFactory(1))
        targets = host.initial_targets(6)
        assert len(targets) == 6
        keys = {p.x.tobytes() for p in host.pool}
        assert all(t.tobytes() in keys for t in targets)

    def test_initial_targets_validation(self):
        host = Host(8, 4, rng_factory=RngFactory(1))
        with pytest.raises(ValueError):
            host.initial_targets(0)

    def test_absorb_updates_best_and_pool(self):
        host = Host(8, 4, rng_factory=RngFactory(2))
        a = [1, 0, 0, 0, 1, 1, 0, 1]
        b = [0, 1, 0, 0, 1, 0, 1, 1]
        # Ensure the probe vectors aren't already seeded.
        import numpy as np

        assert not host.pool.contains(np.array(a, dtype=np.uint8))
        assert not host.pool.contains(np.array(b, dtype=np.uint8))
        inserted = host.absorb(sols((-3, a), (-9, b)))
        assert inserted == 2
        assert host.best_energy == -9
        assert host.pool.best().energy == -9
        assert host.absorbed == 2

    def test_absorb_duplicate_not_inserted_but_best_kept(self):
        host = Host(8, 4, rng_factory=RngFactory(2))
        a = [1, 0, 0, 0, 1, 1, 0, 1]
        host.absorb(sols((-3, a)))
        inserted = host.absorb(sols((-3, a)))
        assert inserted == 0
        assert host.best_energy == -3

    def test_best_survives_pool_eviction(self):
        """The incumbent is tracked outside the pool: even if eviction
        pressure pushes its entry out later, best_energy/x remain."""
        host = Host(4, 2, rng_factory=RngFactory(3))
        host.absorb(sols((-50, [1, 1, 1, 1])))
        host.absorb(sols((-60, [1, 1, 1, 0]), (-70, [1, 1, 0, 0])))
        assert host.best_energy == -70
        assert np.array_equal(host.best_x, [1, 1, 0, 0])

    def test_make_targets_counts(self):
        host = Host(8, 4, rng_factory=RngFactory(4))
        assert len(host.make_targets(5)) == 5

    def test_host_never_computes_energy(self):
        """Whatever the devices report is trusted verbatim: the host has
        no access to the weight matrix at all."""
        host = Host(4, 4, rng_factory=RngFactory(5))
        assert not hasattr(host, "W")
        host.absorb(sols((123456, [1, 0, 1, 0])))  # plausible or not
        assert host.best_energy == 123456
