"""Fixture: disciplined RNG use (seeded generators only)."""

import numpy as np


def draw(seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=8)
