"""Algorithm 3 — local search with O(n) search efficiency.

Starts from the all-zero vector (``E(0) = 0``, ``Δ_i(0) = W_ii``) and
walks to the requested initial solution ``x0`` by flipping its set bits,
maintaining the full delta vector with Eq. (16) at O(n) per flip.  The
subsequent random walk keeps updating the delta vector the same way, so
every evaluated solution costs O(n) (Lemma 3).

Unlike Algorithm 4, each step here only *learns* the energy of the one
solution it moves to — the full neighbor scan is the O(1) refinement.
"""

from __future__ import annotations

import numpy as np

from repro.qubo.matrix import WeightsLike
from repro.qubo.state import SearchState
from repro.search.accept import AcceptRule, DescentAccept
from repro.search.base import LocalSearch, SearchRecord
from repro.utils.rng import SeedLike


def advance_to(state: SearchState, target: np.ndarray) -> tuple[int, int, np.ndarray, int]:
    """Walk ``state`` to ``target`` by flipping each differing bit.

    This is the "repeat … until X = X′" prefix shared by Algorithms
    3–4: each flip uses the O(n) Eq. (16) update and evaluates the
    solution it lands on.  Returns ``(ops, evaluated, best_x, best_e)``
    tracked along the way.
    """
    n = state.n
    best_x = state.x.copy()
    best_e = state.energy
    ops = 0
    evaluated = 0
    for k in np.flatnonzero(state.x ^ target):
        state.flip(int(k))
        ops += n
        evaluated += 1
        if state.energy < best_e:
            best_e = state.energy
            best_x = state.x.copy()
    return ops, evaluated, best_x, best_e


class DeltaLocalSearch(LocalSearch):
    """Algorithm 3: maintained delta vector, accepted-move random walk."""

    name = "delta vector (Alg. 3)"

    def __init__(self, accept: AcceptRule | None = None) -> None:
        self.accept_rule = accept or DescentAccept()

    def run(
        self,
        weights: WeightsLike,
        x0: np.ndarray,
        steps: int,
        seed: SeedLike = None,
        *,
        record_history: bool = False,
    ) -> SearchRecord:
        W, x_target, rng = self._prepare(weights, x0, steps, seed)
        n = W.shape[0]

        state = SearchState.zeros(W)
        ops, evaluated, best_x, best_e = advance_to(state, x_target)
        evaluated += 1  # E(0) = 0 is known for free but is a solution
        history: list[int] = []
        flips = state.flips

        for _ in range(steps):
            k = int(rng.integers(n))
            d = int(state.delta[k])  # already maintained: O(1) read
            evaluated += 1
            if self.accept_rule.accept(d, rng):
                state.flip(k)  # Eq. (16): O(n)
                ops += n
                if state.energy < best_e:
                    best_e = state.energy
                    best_x = state.x.copy()
            self.accept_rule.step()
            if record_history:
                history.append(best_e)

        return SearchRecord(
            best_x=best_x,
            best_energy=best_e,
            final_x=state.x.copy(),
            final_energy=state.energy,
            steps=steps,
            flips=state.flips,
            evaluated=evaluated,
            ops=ops,
            history=history,
        )
