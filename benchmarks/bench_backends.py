"""Backend shoot-out — numpy reference vs numba JIT vs bit-plane C kernels.

Measures ``local_steps`` throughput (the dominant hot path of a solve)
for every *actually available* kernel backend at several ``(n, B)``
operating points, including the acceptance point ``n=1024, B=256``
where the ``bitplane`` backend must clear **10×** the numpy reference.
Results land in ``benchmarks/results/BENCH_backends.json`` with
per-point flip rates and the speedup of each backend over numpy.

Fallbacks are a hard bench failure, never a measurement: a backend
whose factory degrades (no numba, no C compiler) is resolved through
:func:`benchmarks.conftest.resolve_backend_strict`, listed under
``"unavailable"`` in the JSON with the reason, and records **no
points** — and ``bitplane`` specifically is required to be available,
so a machine that silently lost its C compiler fails the bench instead
of publishing numpy numbers under the bitplane name.

The ``graycode`` backend is measured too (engine kernels inherited
from numpy, so ~1×) and additionally benched at its real job: the
``graycode_exact`` section times exhaustive enumeration states/s and
cross-checks the optimum against ``repro.search.exact.solve_exact``.

Runnable both ways::

    pytest benchmarks/bench_backends.py
    PYTHONPATH=src python benchmarks/bench_backends.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.backends import available_backends
from repro.backends.graycode import graycode_minimum
from repro.gpusim import BulkSearchEngine
from repro.qubo import QuboMatrix
from repro.search.exact import solve_exact
from repro.utils.tables import Table

try:  # standalone execution has no package context for conftest
    from benchmarks.conftest import (
        FULL,
        RESULTS_DIR,
        BackendUnavailable,
        resolve_backend_strict,
    )
except ImportError:  # pragma: no cover - `python benchmarks/bench_backends.py`
    import os
    import sys

    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import BackendUnavailable, resolve_backend_strict  # type: ignore

    FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")
    RESULTS_DIR = Path(__file__).parent / "results"

_POINTS = (
    # (n, B, steps) — small, medium, and the acceptance point.
    (256, 64, 60),
    (512, 128, 40),
    (1024, 256, 30),
)
if FULL:
    _POINTS += ((2048, 512, 20),)

#: The bitplane backend must beat numpy by at least this factor on the
#: n=1024 acceptance point (ISSUE 6 gate).
BITPLANE_MIN_SPEEDUP = 10.0

#: Gray-code enumeration size for the exact-finisher section (2^18
#: states — sub-second, large enough for a stable states/s figure).
_GRAYCODE_N = 18


def _measure(backend, requested: str, n: int, blocks: int, steps: int) -> dict:
    """One timed ``local_steps`` run with an already-resolved backend."""
    problem = QuboMatrix.random(n, seed=n)
    eng = BulkSearchEngine(
        problem, blocks, windows=16, offsets=np.zeros(blocks, dtype=np.int64),
        backend=backend,
    )
    eng.local_steps(4)  # warm-up (JIT / C compile happened at prepare time)
    t0 = time.perf_counter()
    eng.local_steps(steps)
    elapsed = time.perf_counter() - t0
    return {
        "requested": requested,
        "resolved": backend.name,
        "fallback": bool(backend.fallback_from),
        "elapsed_s": round(elapsed, 6),
        "flips": blocks * steps,
        "flips_per_s": round(blocks * steps / elapsed, 1),
        "final_energy_checksum": int(eng.energy.sum()),
    }


def _bench_graycode_exact() -> dict:
    """Time exhaustive Gray-code enumeration and cross-check the optimum."""
    problem = QuboMatrix.random(_GRAYCODE_N, seed=_GRAYCODE_N)
    reference = solve_exact(problem.W)
    t0 = time.perf_counter()
    solution = graycode_minimum(problem)
    elapsed = time.perf_counter() - t0
    return {
        "n": _GRAYCODE_N,
        "evaluated": solution.evaluated,
        "elapsed_s": round(elapsed, 6),
        "states_per_s": round(solution.evaluated / elapsed, 1),
        "energy": solution.energy,
        "agrees_with_solve_exact": solution.energy == reference.energy,
    }


def run_bench() -> dict:
    available: dict[str, object] = {}
    unavailable: dict[str, str] = {}
    for name in available_backends():
        try:
            available[name] = resolve_backend_strict(name)
        except BackendUnavailable as exc:
            unavailable[name] = str(exc)
    points = []
    for n, blocks, steps in _POINTS:
        measurements = {
            name: _measure(backend, name, n, blocks, steps)
            for name, backend in available.items()
        }
        ref_rate = measurements["numpy"]["flips_per_s"]
        checksums = {m["final_energy_checksum"] for m in measurements.values()}
        point = {
            "n": n,
            "blocks": blocks,
            "steps": steps,
            "backends": measurements,
            "speedup_vs_numpy": {
                name: round(m["flips_per_s"] / ref_rate, 3)
                for name, m in measurements.items()
            },
            # All backends must land on the same state; a diverging
            # checksum means the bench timed two *different* searches.
            "identical_results": len(checksums) == 1,
        }
        points.append(point)
    payload = {
        "bench": "backends",
        "full_scale": FULL,
        "registered": list(available_backends()),
        "measured": sorted(available),
        "unavailable": unavailable,
        "points": points,
        "graycode_exact": _bench_graycode_exact(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_backends.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return payload


def _render(payload: dict) -> str:
    table = Table(
        ["n", "B", "backend", "resolved", "flips/s", "speedup vs numpy"],
        title="Kernel-backend throughput (local_steps)",
    )
    for point in payload["points"]:
        for name, m in sorted(point["backends"].items()):
            table.add_row(
                [
                    point["n"],
                    point["blocks"],
                    name,
                    m["resolved"],
                    f"{m['flips_per_s']:,.0f}",
                    f"{point['speedup_vs_numpy'][name]:.2f}x",
                ]
            )
    lines = [table.render()]
    for name, reason in sorted(payload["unavailable"].items()):
        lines.append(f"unavailable: {name} — {reason}")
    g = payload["graycode_exact"]
    lines.append(
        f"graycode exact: n={g['n']}, {g['states_per_s']:,.0f} states/s, "
        f"agrees_with_solve_exact={g['agrees_with_solve_exact']}"
    )
    return "\n".join(lines)


def test_bench_backends(report):
    payload = run_bench()
    # The bit-plane backend is this repo's own code, not an optional
    # third-party JIT: it falling back means the bench machine (or a
    # regression) broke it — fail, don't record numpy numbers for it.
    assert "bitplane" in payload["measured"], (
        "bitplane backend unavailable: "
        + payload["unavailable"].get("bitplane", "not registered")
    )
    for point in payload["points"]:
        assert point["identical_results"], (
            f"backends diverged at n={point['n']}, B={point['blocks']}"
        )
        for name, m in point["backends"].items():
            assert not m["fallback"], (
                f"{name} recorded a fallback point at n={point['n']} — "
                "strict resolution should have excluded it"
            )
    accept = next(p for p in payload["points"] if p["n"] == 1024)
    speedup = accept["speedup_vs_numpy"]["bitplane"]
    assert speedup >= BITPLANE_MIN_SPEEDUP, (
        f"bitplane speedup {speedup:.2f}x at n=1024 is below the "
        f"{BITPLANE_MIN_SPEEDUP:.0f}x acceptance gate"
    )
    assert payload["graycode_exact"]["agrees_with_solve_exact"]
    report("Backend throughput", _render(payload))


if __name__ == "__main__":
    print(_render(run_bench()))
    print(f"\nwrote {RESULTS_DIR / 'BENCH_backends.json'}")
