# Developer conveniences for the ABS reproduction.

.PHONY: install test test-fast test-process test-backends test-exchange test-tcp test-analysis test-diverse test-service analyze docs-check lint check bench bench-full bench-exchange bench-cluster bench-service bench-list trace-demo examples clean

install:
	pip install -e .[test]

test:
	pytest tests/

test-fast:              ## skip the slow example subprocess smoke tests
	pytest tests/ --ignore=tests/integration/test_examples.py

test-process:           ## only the multiprocessing (worker supervision) tests
	pytest -m process tests/

test-backends:          ## backend suite on all lanes: as-installed, then with numba/cc masked
	pytest tests/backends -q
	REPRO_NO_NUMBA=1 REPRO_NO_CC=1 pytest tests/backends -q

test-exchange:          ## exchange + process suites on both transports: shm rings, then Queue fallback
	REPRO_EXCHANGE=shm pytest -m "exchange_shm or process" tests/ -q
	REPRO_EXCHANGE=queue pytest -m "exchange_shm or process" tests/ -q

test-tcp:               ## tcp transport lane: codec, fault injection, determinism (auto-skips where loopback binds are forbidden)
	pytest -m tcp tests/ -q
	REPRO_EXCHANGE=tcp pytest -m "exchange_shm or process" tests/ -q

test-analysis:          ## static-analyzer + interleaving-explorer suite
	PYTHONPATH=src pytest -m analysis tests/

test-diverse:           ## Diverse-ABS suite: niched pool + variant fleet + controller
	PYTHONPATH=src pytest -m diverse tests/

test-service:           ## warm-fleet solver service: queue, cache, re-arm, determinism
	PYTHONPATH=src pytest -m service tests/

analyze:                ## project-invariant lint + exhaustive seqlock/SPSC + service-lifecycle race check
	PYTHONPATH=src python -m repro analyze --interleave

docs-check:             ## validate doc links + CLI examples against the live parser
	PYTHONPATH=src python -m repro.analysis.docscheck

lint: analyze           ## analyze, then ruff/mypy when installed (pip install -e .[lint])
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests benchmarks; \
		else echo "ruff not installed -- skipped (pip install -e .[lint])"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy; \
		else echo "mypy not installed -- skipped (pip install -e .[lint])"; fi

check: docs-check       ## the full static gate: ruff/mypy (when installed) + docs + analyzer at warning threshold + shallow interleave
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests benchmarks; \
		else echo "ruff not installed -- skipped (pip install -e .[lint])"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy; \
		else echo "mypy not installed -- skipped (pip install -e .[lint])"; fi
	PYTHONPATH=src python -m repro analyze --fail-on warning
	PYTHONPATH=src python -m repro analyze --interleave --interleave-depth 4 --fail-on warning

bench:                  ## reduced-scale: regenerates every paper table/figure
	pytest benchmarks/ --benchmark-only

bench-full:             ## full instance lists (minutes to hours)
	REPRO_FULL=1 pytest benchmarks/ --benchmark-only

bench-exchange:         ## host-side exchange + GA hot-path speedup (Figure 5 rings)
	pytest benchmarks/bench_exchange.py -q

bench-cluster:          ## round throughput: N socket workers (tcp) vs shm -> BENCH_cluster.json
	pytest benchmarks/bench_cluster.py -q

bench-service:          ## warm fleet vs cold one-shot jobs/sec + cache hits -> BENCH_service.json
	pytest benchmarks/bench_service.py -q

bench-list:             ## list benchmark artifacts (canonical home: benchmarks/results/)
	@ls -1 benchmarks/results/BENCH_*.json 2>/dev/null || echo "no artifacts yet -- run make bench (writes benchmarks/results/BENCH_<name>.json)"

trace-demo:             ## traced solve + schema validation of the JSONL trace
	PYTHONPATH=src python -m repro random 96 /tmp/abs-trace-demo.qubo --seed 7
	PYTHONPATH=src python -m repro solve /tmp/abs-trace-demo.qubo --rounds 12 --blocks 8 \
		--adapt --seed 7 --trace-out /tmp/abs-trace-demo.jsonl --log-level info
	PYTHONPATH=src python -m repro trace /tmp/abs-trace-demo.jsonl

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
