"""Gray-code exact backend: exhaustive enumeration for small QUBOs.

An ABS device kernel can afford exhaustive search only when the whole
state fits in registers; on the host the same trick is practical up to
``n ≤ 30`` by walking all ``2^n`` assignments in *Gray-code order*, so
consecutive states differ in exactly one bit and each energy follows
from its predecessor by one Eq. 16 single-flip update
(``ΔE = s_k (W_kk + 2 Σ_{j≠k} W_kj x_j)``) instead of a full ``x^T W x``
evaluation.  To keep the walk vectorized, the variables are split into
``n_low + b_high = n``: one shared Gray walk over the low bits advances
``2^b_high`` lanes — one per frozen high-bit pattern — in lockstep, so
every NumPy operation touches ``2^b_high`` elements and the Python loop
runs only ``2^n_low`` times.

:func:`graycode_minimum` is used two ways:

- as the **exact finisher** of the decomposition outer loop
  (``DecompositionConfig.exact_below``): subproblems at or below the
  threshold are solved to proven optimality instead of by a cold inner
  ABS run;
- as the **ground-truth oracle** of the differential-equivalence suite:
  registering :class:`GraycodeBackend` pins every heuristic backend's
  best-energy trajectory against a provably exact answer for small n.

:class:`GraycodeBackend` inherits the reference engine kernels
unchanged — running the engine under ``--backend graycode`` behaves
exactly like ``numpy`` — because the backend's value is the enumerator
and the registry plumbing (config/CLI/env selection, differential-suite
auto-pinning), not a different step kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.backends.numpy_backend import NumpyBackend

__all__ = [
    "MAX_GRAYCODE_BITS",
    "GraycodeBackend",
    "GraycodeSolution",
    "graycode_minimum",
]

#: Hard cap on exhaustive enumeration: 2^30 states is ~1 s-scale work
#: per 2^15-lane block sweep; beyond that the walk stops being a
#: "finisher" and becomes the workload.
MAX_GRAYCODE_BITS = 30


@dataclass(frozen=True)
class GraycodeSolution:
    """A proven-optimal assignment from exhaustive Gray-code search."""

    x: np.ndarray
    energy: int
    evaluated: int


def graycode_minimum(weights: Any) -> GraycodeSolution:
    """Exact minimum of ``E(x) = x^T W x`` by Gray-code enumeration.

    ``weights`` is a dense symmetric int weight matrix (array-like, or
    anything exposing one as ``.W`` such as :class:`QuboMatrix`) with
    ``1 ≤ n ≤ MAX_GRAYCODE_BITS``.  All ``2^n`` states are visited;
    ties resolve to the first minimum in enumeration order.
    """
    W = np.ascontiguousarray(np.asarray(getattr(weights, "W", weights)), dtype=np.int64)
    if W.ndim != 2 or W.shape[0] != W.shape[1]:
        raise ValueError(f"weights must be a square matrix, got shape {W.shape}")
    n = int(W.shape[0])
    if n < 1:
        raise ValueError("weights must be non-empty")
    if n > MAX_GRAYCODE_BITS:
        raise ValueError(
            f"graycode enumeration is capped at n <= {MAX_GRAYCODE_BITS}, got n={n}"
        )
    if not np.array_equal(W, W.T):
        raise ValueError("weights must be symmetric")
    diag = np.diagonal(W).copy()

    # Lanes: every pattern of the b_high high bits gets one vector lane;
    # a single shared Gray walk over the n_low low bits advances all
    # lanes in lockstep.
    b_high = n // 2
    n_low = n - b_high
    lanes = 1 << b_high
    blk = np.arange(lanes, dtype=np.int64)
    Xh = np.zeros((lanes, n), dtype=np.int64)
    for j in range(b_high):
        Xh[:, n_low + j] = (blk >> j) & 1

    energy = ((Xh @ W) * Xh).sum(axis=1)  # per-lane E of the all-low-zeros state
    v = Xh @ W[:, :n_low]  # v[b, k] = Σ_j x_j W[j, k] over the current state
    Wlow = W[:n_low, :n_low].copy()
    np.fill_diagonal(Wlow, 0)
    diag_low = diag[:n_low]

    x_low = np.zeros(n_low, dtype=np.int64)
    best_energy = energy.copy()
    best_t = np.zeros(lanes, dtype=np.int64)
    steps = 1 << n_low
    for t in range(1, steps):
        k = (t & -t).bit_length() - 1  # Gray code flips bit ctz(t) at step t
        s = 1 - 2 * int(x_low[k])
        energy += s * (diag_low[k] + 2 * v[:, k])
        better = energy < best_energy
        if better.any():
            best_energy[better] = energy[better]
            best_t[better] = t
        v += s * Wlow[k]
        x_low[k] ^= 1

    lane = int(best_energy.argmin())
    gray = best_t[lane] ^ (best_t[lane] >> 1)  # step t's state is gray(t)
    x = np.zeros(n, dtype=np.uint8)
    for j in range(n_low):
        x[j] = (gray >> j) & 1
    for j in range(b_high):
        x[n_low + j] = (lane >> j) & 1
    return GraycodeSolution(x=x, energy=int(best_energy[lane]), evaluated=lanes * steps)


class GraycodeBackend(NumpyBackend):
    """Registry wrapper for the exact enumerator.

    Engine kernels are inherited from the NumPy reference verbatim;
    selecting ``graycode`` via config/CLI/env is always safe.  The
    exact machinery lives in :func:`graycode_minimum`.
    """

    name = "graycode"
