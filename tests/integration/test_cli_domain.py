"""CLI integration tests for the domain subcommands (maxcut / tsp)."""

import numpy as np
import pytest

from repro.cli import main
from repro.problems import random_graph, save_gset


class TestMaxcutCommand:
    def test_catalog_name(self, capsys):
        rc = main(["maxcut", "G1", "--time-limit", "0.5", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best cut" in out
        assert "800 vertices" in out

    def test_sparse_flag(self, capsys):
        rc = main(["maxcut", "G1", "--sparse", "--time-limit", "0.5", "--seed", "1"])
        assert rc == 0

    def test_gset_file(self, tmp_path, capsys):
        g = random_graph(40, 120, weighted=True, seed=3)
        p = tmp_path / "tiny.gset"
        save_gset(g, p)
        rc = main(["maxcut", str(p), "--time-limit", "0.3", "--seed", "2"])
        assert rc == 0
        assert "40 vertices" in capsys.readouterr().out

    def test_unknown_name(self, capsys):
        rc = main(["maxcut", "G999", "--time-limit", "0.1"])
        assert rc == 2
        assert "catalog" in capsys.readouterr().err


class TestTspCommand:
    def test_catalog_instance_with_slack(self, capsys):
        rc = main(
            ["tsp", "ulysses16", "--slack", "0.15", "--time-limit", "20",
             "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert "exact optimum" in out
        assert rc == 0
        assert "tour length" in out

    def test_tsplib_file(self, tmp_path, capsys):
        p = tmp_path / "sq.tsp"
        p.write_text(
            "NAME: sq\nDIMENSION: 5\nEDGE_WEIGHT_TYPE: EUC_2D\n"
            "NODE_COORD_SECTION\n1 0 0\n2 10 0\n3 10 10\n4 0 10\n5 5 5\nEOF\n"
        )
        rc = main(["tsp", str(p), "--slack", "0.1", "--time-limit", "10", "--seed", "1"])
        assert rc == 0
        assert "5 cities" in capsys.readouterr().out

    def test_unknown_instance(self, capsys):
        rc = main(["tsp", "atlantis9", "--time-limit", "0.1"])
        assert rc == 2
