"""Time-to-solution measurement (paper §4, Table 1).

TTS is the wall-clock time until the solver first reaches a target
energy; the paper reports the average of ten measurements.  Each repeat
uses a distinct seed, so the average reflects the stochastic search,
not one lucky trajectory.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from repro.abs.config import AbsConfig
from repro.abs.solver import AdaptiveBulkSearch
from repro.qubo.matrix import WeightsLike


@dataclass(frozen=True)
class TtsResult:
    """Aggregated time-to-solution over repeats."""

    times: tuple[float, ...]       # per-successful-repeat seconds
    successes: int
    repeats: int
    target_energy: int
    best_energies: tuple[int, ...]

    @property
    def success_rate(self) -> float:
        """Fraction of repeats that reached the target."""
        return self.successes / self.repeats if self.repeats else 0.0

    @property
    def mean_time(self) -> float:
        """Mean TTS over successful repeats (NaN if none succeeded)."""
        if not self.times:
            return math.nan
        return sum(self.times) / len(self.times)

    @property
    def min_time(self) -> float:
        """Fastest successful repeat (NaN if none)."""
        return min(self.times) if self.times else math.nan


def time_to_solution(
    weights: WeightsLike,
    target_energy: int,
    config: AbsConfig,
    *,
    repeats: int = 10,
    mode: str = "sync",
) -> TtsResult:
    """Measure TTS for ``target_energy`` over ``repeats`` seeded runs.

    The provided ``config`` supplies everything but the target and the
    per-repeat seed; its ``time_limit`` acts as the per-run timeout
    (unreached targets count as failures, not infinite times).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if config.time_limit is None and config.max_rounds is None:
        raise ValueError(
            "config needs a time_limit or max_rounds as the per-repeat timeout"
        )
    times: list[float] = []
    bests: list[int] = []
    successes = 0
    base_seed = config.seed if config.seed is not None else 0
    for r in range(repeats):
        cfg = dataclasses.replace(
            config, target_energy=int(target_energy), seed=base_seed + 7919 * r
        )
        result = AdaptiveBulkSearch(weights, cfg).solve(mode)
        bests.append(result.best_energy)
        if result.reached_target and result.time_to_target is not None:
            successes += 1
            times.append(result.time_to_target)
    return TtsResult(
        times=tuple(times),
        successes=successes,
        repeats=repeats,
        target_energy=int(target_energy),
        best_energies=tuple(bests),
    )
