"""Tests for the spin-glass generators."""

import numpy as np
import pytest

from repro.problems.spin_glass import (
    edwards_anderson,
    ground_state_energy_bound,
    sherrington_kirkpatrick,
)
from repro.qubo import energy
from repro.qubo.ising import bits_to_spins
from repro.search import solve_exact


class TestSherringtonKirkpatrick:
    def test_energy_equivalence_qubo_vs_ising(self):
        model, qubo, constant = sherrington_kirkpatrick(10, seed=1)
        rng = np.random.default_rng(0)
        for _ in range(10):
            x = rng.integers(0, 2, 10, dtype=np.uint8)
            assert model.energy(bits_to_spins(x)) == pytest.approx(
                energy(qubo, x) + constant
            )

    def test_pm1_couplings(self):
        model, _, _ = sherrington_kirkpatrick(8, seed=2, couplings="pm1")
        off = model.J[np.triu_indices(8, 1)]
        assert set(np.unique(off)) <= {-1.0, 1.0}

    def test_gaussian_couplings_spread(self):
        model, _, _ = sherrington_kirkpatrick(
            30, seed=3, couplings="gaussian", scale=100
        )
        off = model.J[np.triu_indices(30, 1)]
        assert np.abs(off).max() > 100  # Gaussian tail reached past 1σ
        assert len(np.unique(off)) > 10

    def test_no_external_field(self):
        model, _, _ = sherrington_kirkpatrick(6, seed=4)
        assert not model.h.any()

    def test_spin_flip_symmetry(self):
        """With h = 0, E(s) == E(−s): the ground state is doubly
        degenerate in QUBO terms."""
        model, qubo, constant = sherrington_kirkpatrick(8, seed=5)
        sol = solve_exact(qubo)
        flipped = 1 - sol.x
        assert energy(qubo, flipped) == sol.energy
        assert sol.degeneracy >= 2

    def test_ground_state_above_trivial_bound(self):
        model, qubo, constant = sherrington_kirkpatrick(10, seed=6)
        sol = solve_exact(qubo)
        assert sol.energy + constant >= ground_state_energy_bound(model) - 1e-9

    def test_deterministic(self):
        a = sherrington_kirkpatrick(12, seed=7)[1]
        b = sherrington_kirkpatrick(12, seed=7)[1]
        assert a == b

    @pytest.mark.parametrize(
        "kwargs", [{"n": 1}, {"n": 4, "couplings": "cauchy"}, {"n": 4, "scale": 0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            sherrington_kirkpatrick(**kwargs)


class TestEdwardsAnderson:
    def test_lattice_structure(self):
        model, _, _ = edwards_anderson(4, 5, seed=1)
        # Torus: every spin couples to exactly 4 neighbours.
        degrees = (model.J != 0).sum(axis=1)
        assert (degrees <= 4).all()
        assert degrees.mean() > 3.5  # rare ±1 cancellations aside

    def test_energy_equivalence(self):
        model, qubo, constant = edwards_anderson(3, 3, seed=2)
        rng = np.random.default_rng(0)
        for _ in range(8):
            x = rng.integers(0, 2, 9, dtype=np.uint8)
            assert model.energy(bits_to_spins(x)) == pytest.approx(
                energy(qubo, x) + constant
            )

    def test_frustration_exists(self):
        """A ±J glass is (almost surely) frustrated: the ground state
        cannot satisfy every coupling, so it sits strictly above the
        trivial bound."""
        model, qubo, constant = edwards_anderson(4, 4, seed=3)
        sol = solve_exact(qubo)
        assert sol.energy + constant > ground_state_energy_bound(model)

    def test_abs_solves_ea_glass(self):
        from repro.api import solve

        model, qubo, constant = edwards_anderson(4, 4, seed=4)
        opt = solve_exact(qubo).energy
        res = solve(qubo, target_energy=opt, max_rounds=400, seed=5)
        assert res.best_energy == opt

    def test_validation(self):
        with pytest.raises(ValueError):
            edwards_anderson(1, 5)
