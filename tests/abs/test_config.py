"""Tests for AbsConfig and window resolution."""

import numpy as np
import pytest

from repro.abs.config import AbsConfig, resolve_windows


class TestResolveWindows:
    def test_scalar_broadcast(self):
        w = resolve_windows(8, 4, 100)
        assert np.array_equal(w, [8, 8, 8, 8])

    def test_spread_is_ladder(self):
        w = resolve_windows("spread", 16, 1024)
        assert len(w) == 16
        assert len(set(w.tolist())) > 1
        assert w.min() >= 1 and w.max() <= 1024

    def test_spread_small_problem(self):
        w = resolve_windows("spread", 4, 8)
        assert (w <= 8).all() and (w >= 1).all()

    def test_explicit_sequence(self):
        w = resolve_windows([1, 2, 3], 3, 10)
        assert np.array_equal(w, [1, 2, 3])

    def test_sequence_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            resolve_windows([1, 2], 3, 10)

    def test_out_of_range_values(self):
        with pytest.raises(ValueError):
            resolve_windows(0, 2, 10)
        with pytest.raises(ValueError):
            resolve_windows([1, 11], 2, 10)

    def test_unknown_string(self):
        with pytest.raises(ValueError, match="spread"):
            resolve_windows("chaos", 2, 10)

    def test_invalid_block_count(self):
        with pytest.raises(ValueError):
            resolve_windows(4, 0, 10)


class TestAbsConfig:
    def test_defaults_with_stop_criterion(self):
        cfg = AbsConfig(max_rounds=10)
        assert cfg.total_blocks == cfg.n_gpus * cfg.blocks_per_gpu

    def test_requires_some_stop_criterion(self):
        with pytest.raises(ValueError, match="stopping"):
            AbsConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_gpus": 0, "max_rounds": 1},
            {"blocks_per_gpu": 0, "max_rounds": 1},
            {"local_steps": -1, "max_rounds": 1},
            {"pool_capacity": 0, "max_rounds": 1},
            {"time_limit": 0.0},
            {"max_rounds": 0},
            {"max_worker_restarts": -1, "max_rounds": 1},
            {"worker_stall_timeout": 0.0, "max_rounds": 1},
            {"worker_stall_timeout": -2.0, "max_rounds": 1},
            {"start_method": "thread", "max_rounds": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AbsConfig(**kwargs)

    def test_target_energy_alone_is_enough(self):
        AbsConfig(target_energy=-100)

    def test_supervision_defaults(self):
        cfg = AbsConfig(max_rounds=1)
        assert cfg.max_worker_restarts == 2
        assert cfg.worker_stall_timeout is None
        assert cfg.start_method is None

    @pytest.mark.parametrize("method", [None, "fork", "spawn", "forkserver"])
    def test_start_method_accepts_known_values(self, method):
        AbsConfig(max_rounds=1, start_method=method)
