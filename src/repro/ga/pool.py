"""The host's solution pool (paper §2.2.1, §3.1).

The pool holds up to ``capacity`` solutions, kept **sorted by energy**
and **pairwise distinct**.  Both invariants come straight from the
paper: sortedness enables O(log m) binary-search insertion, and
distinctness staves off premature convergence when an extremely good
solution would otherwise flood the population.

With ``min_distance`` ≥ 2 the distinctness invariant strengthens into
the Diverse-ABS admission policy (arXiv:2207.03069 §III): pooled
solutions stay pairwise at least ``min_distance`` bit flips apart.  A
candidate inside an existing entry's Hamming ball ("niche") is rejected
unless it beats the best energy in that ball, in which case it replaces
every entry it is close to.  Distances are XOR/popcount over the same
``np.packbits`` keys the exchange rings ship, so the batch insert path
still serializes each candidate exactly once.

Energies of freshly seeded random solutions are ``+∞`` "in the sense
that they are not computed" (§3.1 Step 1) — the host never evaluates
the energy function; real energies only ever arrive from devices.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.telemetry.bus import NULL_BUS, NullBus, TelemetryBus
from repro.utils.rng import SeedLike, as_generator, random_bits
from repro.utils.validation import check_bit_vector


def pack_key(xb: np.ndarray) -> bytes:
    """Hashable bit-packed identity of a bit vector (``⌈n/8⌉`` bytes).

    The same packed form the exchange rings ship
    (:func:`repro.abs.buffers.pack_solutions`), so batch inserts of
    ring payloads never re-serialize per row.
    """
    return np.packbits(xb).tobytes()


@dataclass(frozen=True)
class PoolEntry:
    """One pooled solution; ``energy`` is ``math.inf`` until evaluated."""

    energy: float
    x: np.ndarray

    def key(self) -> bytes:
        """Hashable identity of the bit vector."""
        return pack_key(self.x)


class SolutionPool:
    """Sorted, duplicate-free, bounded pool of solutions.

    Parameters
    ----------
    n:
        Bits per solution.
    capacity:
        Maximum number of pooled solutions (the paper's ``m``).
    min_distance:
        Diversity radius ``d_min`` of the Diverse-ABS admission policy.
        ``0``/``1`` (default) keep the paper's plain distinctness —
        bit-for-bit the pre-diversity behaviour.  With ``d_min`` ≥ 2,
        pooled entries stay pairwise ≥ ``d_min`` apart: a candidate
        within ``d_min − 1`` flips of existing entries is rejected
        (``pool.rejected_diverse``) unless its energy beats every such
        neighbour, in which case it replaces all of them.
    bus:
        Optional telemetry bus; insert outcomes feed the session
        counters ``pool.inserted`` / ``pool.rejected_duplicate`` /
        ``pool.rejected_worse`` / ``pool.rejected_diverse`` (no events
        — the host emits those).

    Notes
    -----
    Insertion uses :func:`bisect.bisect_left` on the energy array —
    the paper's O(log m) binary search — then scans the (typically
    tiny) equal-energy span for an identical bit vector.  A set of
    bit-vector digests backs an O(1) duplicate fast path; the niche
    check XOR/popcounts the candidate's packed key against the cached
    packed rows (O(m·n/8) bytes touched, m ≤ capacity).
    """

    def __init__(
        self,
        n: int,
        capacity: int,
        *,
        min_distance: int = 0,
        bus: TelemetryBus | NullBus | None = None,
    ) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if min_distance < 0:
            raise ValueError(f"min_distance must be >= 0, got {min_distance}")
        self.n = int(n)
        self.capacity = int(capacity)
        self.min_distance = int(min_distance)
        self._bus = bus if bus is not None else NULL_BUS
        self._energies: list[float] = []
        self._solutions: list[np.ndarray] = []
        # Packed-bytes key per entry, kept position-aligned with
        # _solutions so eviction pops the cached key instead of
        # re-serializing the evicted vector.  The uint8 views in
        # _packed alias the same bytes (np.frombuffer is zero-copy), so
        # the niche distance check costs no extra serialization.
        self._entry_keys: list[bytes] = []
        self._packed: list[np.ndarray] = []
        self._keys: set[bytes] = set()
        #: Monotone counters for diagnostics.
        self.inserted = 0
        self.rejected_duplicate = 0
        self.rejected_worse = 0
        self.rejected_diverse = 0

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def seed_random(self, seed: SeedLike = None, count: int | None = None) -> int:
        """Fill with up to ``count`` random distinct solutions at E = +∞.

        Returns the number actually added (collisions are retried a
        bounded number of times, so for tiny ``n`` fewer may fit).
        """
        rng = as_generator(seed)
        want = self.capacity if count is None else count
        added = 0
        attempts = 0
        while added < want and attempts < 20 * want + 20:
            attempts += 1
            x = random_bits(rng, self.n)
            if self.insert(x, math.inf):
                added += 1
        return added

    def insert(self, x: np.ndarray, energy: float) -> bool:
        """Insert ``(x, energy)``; returns ``True`` if the pool changed.

        Rejects exact duplicates (same bits) and, when the pool is full,
        anything not better than the current worst.  When accepted into
        a full pool, the worst entry is evicted (§2.2.1).
        """
        xb = check_bit_vector(x, self.n, "x")
        return self._insert_keyed(xb, pack_key(xb), float(energy))

    def insert_batch(self, X: np.ndarray, energies: np.ndarray) -> int:
        """Insert ``k`` solutions at once; returns the number inserted.

        Semantically identical to ``k`` sequential :meth:`insert` calls
        in row order (same eviction decisions, same counters) — but the
        duplicate keys for all rows come from a single ``np.packbits``
        call over the whole matrix, which is what makes absorbing a
        device round O(1) serialization calls instead of O(B).
        """
        X = np.ascontiguousarray(X, dtype=np.uint8)
        if X.ndim != 2 or X.shape[1] != self.n:
            raise ValueError(
                f"X must have shape (k, {self.n}), got {X.shape}"
            )
        energies = np.asarray(energies)
        if energies.shape != (X.shape[0],):
            raise ValueError(
                f"energies must have shape ({X.shape[0]},), got {energies.shape}"
            )
        if X.size and (X > 1).any():
            raise ValueError("X must contain only 0/1 values")
        packed = np.packbits(X, axis=1) if X.shape[0] else X
        inserted = 0
        for i in range(X.shape[0]):
            if self._insert_keyed(X[i], packed[i].tobytes(), float(energies[i])):
                inserted += 1
        return inserted

    def _insert_keyed(self, xb: np.ndarray, key: bytes, energy: float) -> bool:
        if key in self._keys:
            self.rejected_duplicate += 1
            self._bus.counters.inc("pool.rejected_duplicate")
            return False
        if self.min_distance > 1 and self._energies:
            near = self._near_indices(key)
            if near.size:
                # The candidate sits inside one or more niches; it is
                # admitted only by beating every close entry, and then
                # replaces all of them (keeping pairwise separation).
                if energy >= min(self._energies[i] for i in near):
                    self.rejected_diverse += 1
                    self._bus.counters.inc("pool.rejected_diverse")
                    return False
                for i in sorted(map(int, near), reverse=True):
                    self._evict(i)
        if len(self._energies) >= self.capacity:
            if energy >= self._energies[-1]:
                self.rejected_worse += 1
                self._bus.counters.inc("pool.rejected_worse")
                return False
            self._evict(len(self._energies) - 1)
        pos = bisect.bisect_left(self._energies, energy)
        self._energies.insert(pos, float(energy))
        stored = xb.copy()
        stored.setflags(write=False)
        self._solutions.insert(pos, stored)
        self._entry_keys.insert(pos, key)
        self._packed.insert(pos, np.frombuffer(key, dtype=np.uint8))
        self._keys.add(key)
        self.inserted += 1
        self._bus.counters.inc("pool.inserted")
        return True

    def _evict(self, pos: int) -> None:
        self._solutions.pop(pos)
        self._energies.pop(pos)
        self._packed.pop(pos)
        self._keys.discard(self._entry_keys.pop(pos))

    def _near_indices(self, key: bytes) -> np.ndarray:
        """Sorted positions of entries closer than ``min_distance``.

        XOR/popcount over the cached ``np.packbits`` rows — the PR 6
        bit-plane idiom (:func:`repro.backends.bitplane
        .hamming_distances`) on the pool's own packed keys.  Exact
        duplicates never reach this check (the key set catches them).
        """
        cand = np.frombuffer(key, dtype=np.uint8)
        diff = np.bitwise_xor(np.stack(self._packed), cand)
        dists = np.bitwise_count(diff).sum(axis=1, dtype=np.int64)
        return np.flatnonzero(dists < self.min_distance)

    def contains(self, x: np.ndarray) -> bool:
        """Whether an identical bit vector is pooled."""
        return pack_key(check_bit_vector(x, self.n, "x")) in self._keys

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._energies)

    def __iter__(self) -> Iterator[PoolEntry]:
        for e, x in zip(self._energies, self._solutions):
            yield PoolEntry(e, x)

    def __getitem__(self, rank: int) -> PoolEntry:
        """Entry at sorted position ``rank`` (0 = best)."""
        return PoolEntry(self._energies[rank], self._solutions[rank])

    def best(self) -> PoolEntry:
        """The lowest-energy entry; raises :class:`IndexError` if empty."""
        if not self._energies:
            raise IndexError("pool is empty")
        return self[0]

    def worst(self) -> PoolEntry:
        """The highest-energy entry; raises :class:`IndexError` if empty."""
        if not self._energies:
            raise IndexError("pool is empty")
        return self[len(self._energies) - 1]

    def energies(self) -> list[float]:
        """Sorted energies (copy)."""
        return list(self._energies)

    def as_matrix(self) -> np.ndarray:
        """All pooled solutions as one ``(len, n)`` uint8 matrix (copy).

        Rows are in sorted-energy order (row 0 = best) — the batched
        target generator fancy-indexes parents straight out of this.
        """
        if not self._solutions:
            return np.zeros((0, self.n), dtype=np.uint8)
        return np.stack(self._solutions)

    def finite_energy_range(self) -> tuple[float, float] | None:
        """``(best, worst)`` over entries with real energies.

        ``None`` while the pool holds only unevaluated (``+∞``) seeds.
        The span ``worst - best`` is the *pool energy spread* — the
        diversity signal the ``host.absorb`` telemetry event reports.
        """
        finite = [e for e in self._energies if math.isfinite(e)]
        if not finite:
            return None
        return finite[0], finite[-1]

    def mean_pairwise_distance(self) -> float | None:
        """Mean Hamming distance over all pooled pairs (``None`` if < 2).

        The diversity signal of Diverse ABS: with niching on, this
        stays bounded below by ``min_distance``; with it off, it
        collapses as the fleet converges.  Computed on the packed keys
        (XOR + popcount), so it costs O(m²·n/8) bytes — m is the pool
        capacity, not the problem size.
        """
        m = len(self._packed)
        if m < 2:
            return None
        packed = np.stack(self._packed)
        total = 0
        for i in range(m - 1):
            diff = np.bitwise_xor(packed[i + 1 :], packed[i])
            total += int(np.bitwise_count(diff).sum())
        return total / (m * (m - 1) // 2)

    def evaluated_fraction(self) -> float:
        """Share of entries with a real (non-∞) energy."""
        if not self._energies:
            return 0.0
        finite = sum(1 for e in self._energies if math.isfinite(e))
        return finite / len(self._energies)

    # ------------------------------------------------------------------
    # Invariants (used by property-based tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert sortedness, distinctness, capacity, and key caching.

        With ``min_distance`` ≥ 2 the distinctness assertion tightens
        to pairwise min-Hamming separation.
        """
        assert (
            len(self._energies)
            == len(self._solutions)
            == len(self._entry_keys)
            == len(self._packed)
            == len(self._keys)
        )
        assert len(self._energies) <= self.capacity
        assert all(
            self._energies[i] <= self._energies[i + 1]
            for i in range(len(self._energies) - 1)
        ), "pool energies not sorted"
        assert len({s.tobytes() for s in self._solutions}) == len(
            self._solutions
        ), "pool contains duplicate solutions"
        assert all(
            cached == pack_key(s)
            for cached, s in zip(self._entry_keys, self._solutions)
        ), "cached entry keys out of sync with solutions"
        assert all(
            cached == row.tobytes()
            for cached, row in zip(self._entry_keys, self._packed)
        ), "cached packed rows out of sync with entry keys"
        assert set(self._entry_keys) == self._keys
        if self.min_distance > 1 and len(self._packed) > 1:
            packed = np.stack(self._packed)
            for i in range(len(self._packed) - 1):
                diff = np.bitwise_xor(packed[i + 1 :], packed[i])
                dists = np.bitwise_count(diff).sum(axis=1, dtype=np.int64)
                assert int(dists.min()) >= self.min_distance, (
                    "pool entries closer than min_distance"
                )

    def __repr__(self) -> str:
        best = self._energies[0] if self._energies else None
        return (
            f"SolutionPool(n={self.n}, size={len(self)}/{self.capacity}, "
            f"best={best})"
        )
