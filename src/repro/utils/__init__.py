"""Shared utilities: seeded RNG management, timing, table rendering, logging.

Nothing in here is QUBO-specific; these helpers keep the rest of the
package deterministic (explicit :class:`numpy.random.Generator` plumbing,
no global RNG state) and make benchmark output uniform.
"""

from repro.utils.rng import RngFactory, as_generator, spawn
from repro.utils.tables import Table, render_table
from repro.utils.timer import Stopwatch, format_duration
from repro.utils.validation import (
    check_bit_vector,
    check_index,
    check_positive,
    check_probability,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn",
    "Table",
    "render_table",
    "Stopwatch",
    "format_duration",
    "check_bit_vector",
    "check_index",
    "check_positive",
    "check_probability",
]
