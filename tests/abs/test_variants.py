"""Tests for the Diverse-ABS variant registry, device tabu polish, and
fleet-mode solver integration."""

import numpy as np
import pytest

from repro.abs import (
    AbsConfig,
    AdaptiveBulkSearch,
    available_variants,
    get_variant,
    register_variant,
    resolve_fleet,
)
from repro.abs.device import DeviceSimulator
from repro.abs.variants import (
    DEFAULT_FLEET,
    SearchVariant,
    resolve_variant_list,
)
from repro.ga import GaConfig
from repro.qubo import QuboMatrix, energy

pytestmark = pytest.mark.diverse


class TestRegistry:
    def test_builtins_registered(self):
        names = available_variants()
        for name in DEFAULT_FLEET:
            assert name in names

    def test_get_unknown_raises_with_listing(self):
        with pytest.raises(ValueError, match="ladder"):
            get_variant("no-such-variant")

    def test_register_and_fetch(self):
        v = SearchVariant(name="t-reg", description="test-only")
        register_variant(v)
        try:
            assert get_variant("t-reg") is v
        finally:
            from repro.abs import variants as mod

            del mod._REGISTRY["t-reg"]

    def test_register_overwrites_previous(self):
        from repro.abs import variants as mod

        original = get_variant("ladder")
        try:
            replacement = SearchVariant(name="ladder", description="shadow")
            register_variant(replacement)
            assert get_variant("ladder") is replacement
        finally:
            mod._REGISTRY["ladder"] = original

    def test_resolve_variant_list_cycles(self):
        fleet = resolve_variant_list("ladder,hot", 5)
        assert [v.name for v in fleet] == ["ladder", "hot", "ladder", "hot", "ladder"]

    def test_resolve_fleet_alias(self):
        fleet = resolve_fleet("fleet", len(DEFAULT_FLEET))
        assert tuple(v.name for v in fleet) == DEFAULT_FLEET

    def test_resolve_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            resolve_fleet("", 4)
        with pytest.raises(ValueError):
            resolve_fleet("ladder", 0)

    def test_resolve_sequence(self):
        fleet = resolve_fleet(["tabu", "greedy"], 2)
        assert [v.name for v in fleet] == ["tabu", "greedy"]


class TestSearchVariant:
    def test_validation(self):
        with pytest.raises(ValueError):
            SearchVariant(name="", description="x")
        with pytest.raises(ValueError):
            SearchVariant(name="x", description="y", local_steps=-1)
        with pytest.raises(ValueError):
            SearchVariant(name="x", description="y", tabu_steps=-1)
        with pytest.raises(ValueError):
            SearchVariant(name="x", description="y", tabu_tenure=0)

    def test_effective_fallbacks(self):
        v = SearchVariant(name="x", description="inherit-everything")
        assert v.effective_local_steps(32) == 32
        assert v.effective_scan(True) is True
        base = GaConfig()
        assert v.effective_ga(base) is base

    def test_effective_overrides(self):
        ga = GaConfig(p_mutation=0.7, p_crossover=0.2)
        v = SearchVariant(
            name="x", description="y", local_steps=9, scan_neighbors=False, ga=ga
        )
        assert v.effective_local_steps(32) == 9
        assert v.effective_scan(True) is False
        assert v.effective_ga(GaConfig()) is ga

    def test_windows_greedy_is_full_n(self):
        v = SearchVariant(name="x", description="y", window="greedy")
        w = v.windows(4, n_blocks=3, n=24)
        assert np.array_equal(w, np.full(3, 24, dtype=np.int64))

    def test_windows_int_clamped(self):
        v = SearchVariant(name="x", description="y", window=100)
        assert v.windows(4, n_blocks=2, n=16).max() == 16
        v0 = SearchVariant(name="x2", description="y", window=1)
        assert v0.windows(4, n_blocks=2, n=16).min() == 1

    def test_windows_default_inherits(self):
        v = SearchVariant(name="x", description="y")
        base = v.windows(4, n_blocks=6, n=32)
        assert base.shape == (6,)
        assert (base >= 1).all() and (base <= 32).all()


class TestDeviceTabuPolish:
    def test_tabu_polish_never_worsens_best(self):
        q = QuboMatrix.random(24, seed=5)
        plain = DeviceSimulator(q, 4, windows=8, local_steps=8)
        tabu = DeviceSimulator(q, 4, windows=8, local_steps=8, tabu_steps=32)
        rng = np.random.default_rng(1)
        targets = rng.integers(0, 2, (4, 24), dtype=np.uint8)
        e_plain, _ = plain.round(targets.copy())
        e_tabu, xs = tabu.round(targets.copy())
        assert e_tabu.min() <= e_plain.min()
        assert tabu.tabu_steps_done > 0
        b = int(e_tabu.argmin())
        assert e_tabu[b] == energy(q, xs[b])

    def test_set_tabu_validation(self):
        q = QuboMatrix.random(8, seed=0)
        dev = DeviceSimulator(q, 2, windows=4, local_steps=4)
        with pytest.raises(ValueError):
            dev.set_tabu(-1)
        dev.set_tabu(0)
        assert dev._tabu is None


class TestSolverIntegration:
    def test_variants_sync_deterministic(self):
        q = QuboMatrix.random(40, seed=6)
        cfg = AbsConfig(
            n_gpus=2, blocks_per_gpu=4, local_steps=8, max_rounds=8,
            seed=12, variants="fleet",
        )
        a = AdaptiveBulkSearch(q, cfg).solve("sync")
        b = AdaptiveBulkSearch(q, cfg).solve("sync")
        assert a.best_energy == b.best_energy
        assert np.array_equal(a.best_x, b.best_x)
        assert a.best_energy == energy(q, a.best_x)

    def test_variants_with_diversity_and_adapt(self):
        q = QuboMatrix.random(40, seed=7)
        cfg = AbsConfig(
            n_gpus=4, blocks_per_gpu=4, local_steps=8, max_rounds=10,
            seed=13, variants="fleet", diversity_min_dist=6,
            variant_adapt=True, variant_adapt_period=2,
        )
        res = AdaptiveBulkSearch(q, cfg).solve("sync")
        assert res.best_energy == energy(q, res.best_x)
        assert res.counters["variant.tabu_steps"] > 0
        assert "adapt.variant_reassignments" in res.counters

    def test_unknown_variant_rejected_at_config(self):
        with pytest.raises(ValueError, match="nope"):
            AbsConfig(max_rounds=1, variants="ladder,nope")

    def test_variant_adapt_requires_variants(self):
        with pytest.raises(ValueError):
            AbsConfig(max_rounds=1, variant_adapt=True)

    def test_variant_adapt_is_sync_only(self):
        q = QuboMatrix.random(16, seed=8)
        cfg = AbsConfig(
            n_gpus=2, blocks_per_gpu=2, local_steps=4, max_rounds=2,
            seed=1, variants="fleet", variant_adapt=True,
        )
        with pytest.raises(ValueError, match="sync"):
            AdaptiveBulkSearch(q, cfg).solve("process")

    def test_fleet_changes_search_but_not_correctness(self):
        q = QuboMatrix.random(32, seed=9)
        base_cfg = AbsConfig(
            n_gpus=2, blocks_per_gpu=4, local_steps=8, max_rounds=6, seed=2,
        )
        fleet_cfg = AbsConfig(
            n_gpus=2, blocks_per_gpu=4, local_steps=8, max_rounds=6, seed=2,
            variants="fleet",
        )
        base = AdaptiveBulkSearch(q, base_cfg).solve("sync")
        fleet = AdaptiveBulkSearch(q, fleet_cfg).solve("sync")
        assert base.best_energy == energy(q, base.best_x)
        assert fleet.best_energy == energy(q, fleet.best_x)
