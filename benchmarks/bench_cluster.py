"""Cluster-transport benchmark: N socket workers vs shm (PR 8).

The tcp transport exists so the device fleet can outgrow one host's
cores; before it earns that job it must not fall off a cliff against
the shm rings *on* one host.  This benchmark runs the real
process-mode solver — supervisor, GA host loop, device engines — over
both transports at matched configurations and records round
throughput (exchange rounds absorbed per second of wall clock) for a
growing local worker fleet.

Loopback TCP pays a syscall + framing + copy tax the shm rings don't,
but a round's cost is dominated by the device search itself, so the
recorded throughput ratio stays near 1 on one box — which is the
point: sharding the fleet over sockets costs little even before a
second host enters the picture.

Results land in ``benchmarks/results/BENCH_cluster.json``.

Runnable both ways::

    pytest benchmarks/bench_cluster.py
    PYTHONPATH=src python benchmarks/bench_cluster.py
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path

from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.qubo import QuboMatrix
from repro.utils.tables import Table

try:  # standalone execution has no package context for conftest
    from benchmarks.conftest import FULL, RESULTS_DIR
except ImportError:  # pragma: no cover - `python benchmarks/bench_cluster.py`
    import os

    FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")
    RESULTS_DIR = Path(__file__).parent / "results"

#: (n, blocks_per_gpu, local_steps, max_rounds) for every fleet size.
_SHAPE = (256, 16, 32, 24)
_FLEETS = (1, 2, 4)
if FULL:
    _FLEETS += (8,)


def _loopback_available() -> bool:
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
            s.bind(("127.0.0.1", 0))
        return True
    except OSError:
        return False


def _measure(exchange: str, n_gpus: int) -> dict:
    n, blocks, steps, rounds = _SHAPE
    q = QuboMatrix.random(n, seed=99)
    cfg = AbsConfig(
        n_gpus=n_gpus,
        blocks_per_gpu=blocks,
        local_steps=steps,
        max_rounds=rounds * n_gpus,  # keep per-worker rounds comparable
        time_limit=120.0,
        seed=7,
        exchange=exchange,
    )
    t0 = time.perf_counter()
    res = AdaptiveBulkSearch(q, cfg).solve("process")
    elapsed = time.perf_counter() - t0
    return {
        "elapsed_s": round(elapsed, 6),
        "rounds": res.rounds,
        "rounds_per_s": round(res.rounds / elapsed, 3),
        "best_energy": int(res.best_energy),
    }


def run_bench() -> dict:
    n, blocks, steps, rounds = _SHAPE
    points = []
    for n_gpus in _FLEETS:
        shm = _measure("shm", n_gpus)
        tcp = _measure("tcp", n_gpus)
        points.append(
            {
                "workers": n_gpus,
                "shm": shm,
                "tcp": tcp,
                "tcp_vs_shm_throughput": round(
                    tcp["rounds_per_s"] / shm["rounds_per_s"], 3
                ),
            }
        )
    payload = {
        "bench": "cluster",
        "full_scale": FULL,
        "shape": {
            "n": n,
            "blocks_per_gpu": blocks,
            "local_steps": steps,
            "rounds_per_worker": rounds,
        },
        "points": points,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_cluster.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return payload


def _render(payload: dict) -> str:
    table = Table(
        ["workers", "shm rounds/s", "tcp rounds/s", "tcp/shm"],
        title="Round throughput: socket fleet vs shm rings",
    )
    for p in payload["points"]:
        table.add_row(
            [
                p["workers"],
                f"{p['shm']['rounds_per_s']:.2f}",
                f"{p['tcp']['rounds_per_s']:.2f}",
                f"{p['tcp_vs_shm_throughput']:.2f}x",
            ]
        )
    return table.render()


def test_bench_cluster(report):
    import pytest

    if not _loopback_available():  # pragma: no cover - sandbox guard
        pytest.skip("loopback sockets unavailable in this sandbox")
    payload = run_bench()
    report("Cluster transport (tcp vs shm)", _render(payload))
    for p in payload["points"]:
        # Both lanes completed their round budget and made progress.
        assert p["shm"]["rounds"] > 0 and p["tcp"]["rounds"] > 0
        assert p["tcp"]["best_energy"] < 0
        assert p["tcp_vs_shm_throughput"] > 0


if __name__ == "__main__":  # pragma: no cover
    print(_render(run_bench()))
