"""Tests for convergence-trace analysis."""

import math

import pytest

from repro.metrics.trace import anytime_auc, mean_trace, time_to_threshold, value_at

HISTORY = [(0.1, 100.0), (0.5, 60.0), (1.0, 30.0), (2.0, 30.0), (3.0, 10.0)]


class TestTimeToThreshold:
    def test_exact_hit(self):
        assert time_to_threshold(HISTORY, 30.0) == 1.0

    def test_between_levels(self):
        assert time_to_threshold(HISTORY, 50.0) == 1.0

    def test_immediately_met(self):
        assert time_to_threshold(HISTORY, 100.0) == 0.1

    def test_never_met(self):
        assert time_to_threshold(HISTORY, 5.0) is None

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            time_to_threshold([(1.0, 5.0), (0.5, 4.0)], 0.0)


class TestValueAt:
    def test_before_first_checkpoint(self):
        assert value_at(HISTORY, 0.05) == math.inf

    def test_at_checkpoints(self):
        assert value_at(HISTORY, 0.5) == 60.0
        assert value_at(HISTORY, 2.5) == 30.0
        assert value_at(HISTORY, 99.0) == 10.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            value_at(HISTORY, -1.0)


class TestAnytimeAuc:
    def test_simple_rectangle(self):
        h = [(0.0, 10.0), (1.0, 10.0)]
        assert anytime_auc(h, 1.0) == pytest.approx(10.0)

    def test_step_down(self):
        h = [(0.0, 10.0), (1.0, 0.0)]
        # 10 for the first second, 0 afterwards.
        assert anytime_auc(h, 2.0) == pytest.approx(10.0)

    def test_baseline_shift(self):
        h = [(0.0, 10.0), (1.0, 10.0)]
        assert anytime_auc(h, 1.0, baseline=10.0) == pytest.approx(0.0)

    def test_truncation_at_t_end(self):
        h = [(0.0, 10.0), (5.0, 0.0)]
        assert anytime_auc(h, 2.0) == pytest.approx(20.0)

    def test_better_solver_has_lower_auc(self):
        fast = [(0.0, 100.0), (0.1, 0.0)]
        slow = [(0.0, 100.0), (0.9, 0.0)]
        assert anytime_auc(fast, 1.0) < anytime_auc(slow, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            anytime_auc([], 1.0)
        with pytest.raises(ValueError, match="precedes"):
            anytime_auc([(1.0, 5.0)], 0.5)


class TestMeanTrace:
    def test_mean_of_two(self):
        a = [(0.0, 10.0)]
        b = [(0.0, 20.0)]
        assert mean_trace([a, b], [0.0, 1.0]) == [15.0, 15.0]

    def test_warmup_is_inf(self):
        a = [(1.0, 10.0)]
        assert mean_trace([a], [0.5]) == [math.inf]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_trace([], [0.0])
