"""Warm-fleet solver service: amortize cold-start across QUBO jobs.

One-shot ``AdaptiveBulkSearch.solve("process")`` pays process spawn,
transport allocation, shared-memory weight publication, and backend
weight preparation on every call.  :class:`SolverService` pays them
once: a persistent :class:`~repro.abs.fleet.WorkerFleet` is re-armed
per job through an epoch-token handshake, prepared weights and shm
segments are cached across jobs, and deterministic seeded repeats are
answered from a determinism-keyed result cache.  See
``docs/service.md``.
"""

from repro.service.config import ServiceConfig
from repro.service.core import SolverService

__all__ = ["ServiceConfig", "SolverService"]
