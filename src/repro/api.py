"""One-call convenience API.

:func:`solve` wraps the full ABS pipeline for users who just want the
best bit vector for a weight matrix; :func:`solve_ising` accepts an
Ising model (the paper's framing: QUBO ⇔ ground state of an Ising
model) and returns spins.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.abs.config import AbsConfig, WindowSpec
from repro.abs.result import SolveResult
from repro.abs.solver import AdaptiveBulkSearch
from repro.ga.host import GaConfig
from repro.qubo.ising import IsingModel, ising_to_qubo, bits_to_spins
from repro.telemetry import NullBus, TelemetryBus, make_bus


def solve(
    weights,
    *,
    time_limit: float | None = None,
    max_rounds: int | None = None,
    target_energy: int | None = None,
    n_gpus: int = 1,
    blocks_per_gpu: int = 32,
    local_steps: int = 32,
    window: WindowSpec = "spread",
    backend: str | None = None,
    pool_capacity: int = 64,
    ga: GaConfig | None = None,
    scan_neighbors: bool = True,
    adapt_windows: bool = False,
    adapt_period: int = 4,
    adapt_fraction: float = 0.25,
    seed: int | None = None,
    mode: str = "sync",
    max_worker_restarts: int = 2,
    worker_stall_timeout: float | None = None,
    start_method: str | None = None,
    exchange: str | None = None,
    pipeline: bool = False,
    lockstep: bool = False,
    diversity_min_dist: int = 0,
    variants: str | None = None,
    variant_adapt: bool = False,
    variant_adapt_period: int = 8,
    telemetry: TelemetryBus | NullBus | None = None,
    trace_out: Union[str, Path, None] = None,
    log_level: str | None = None,
) -> SolveResult:
    """Solve a QUBO with Adaptive Bulk Search in one call.

    ``weights`` may be a :class:`~repro.qubo.matrix.QuboMatrix`, a dense
    symmetric integer ndarray, or a :class:`~repro.qubo.sparse.SparseQubo`.
    At least one stopping criterion (``time_limit`` / ``max_rounds`` /
    ``target_energy``) must be given; when none is, a 2-second budget is
    applied.

    ``backend`` picks the engine's kernel backend (``"numpy"`` — the
    reference — or ``"numba"``, which JIT-fuses the hot local-search
    loop and silently degrades to ``"numpy"`` with a one-time warning
    when numba is not installed; ``None`` consults the
    ``REPRO_BACKEND`` environment variable).  Backend choice never
    changes the result of a seeded solve — every backend is pinned
    step-for-step to the same search (see ``docs/backends.md``).

    ``pool_capacity``, ``ga`` (a :class:`~repro.ga.host.GaConfig`),
    ``scan_neighbors``, ``adapt_period`` and ``adapt_fraction`` expose
    the remaining host-side knobs; every :class:`AbsConfig` field is
    reachable from here (the ``config-plumbing`` rule of ``python -m
    repro analyze`` enforces it).

    In ``mode="process"`` the worker processes are supervised: a dead
    (or, with ``worker_stall_timeout`` set, silent) worker is restarted
    up to ``max_worker_restarts`` times and the solve degrades onto the
    survivors after that — see
    :class:`~repro.abs.supervisor.WorkerSupervisor` and the
    ``workers_restarted`` / ``workers_lost`` fields of the result.
    ``start_method`` picks the multiprocessing start method (default:
    ``fork`` where available).  ``exchange`` picks the host↔worker
    transport: ``"shm"`` (default — the paper's Figure-5 preallocated
    buffers as bit-packed shared-memory rings), ``"queue"`` (the
    pickling ``multiprocessing.Queue`` fallback), or ``"tcp"``
    (length-prefixed frames over loopback sockets, workers join and
    leave elastically); ``None`` consults ``REPRO_EXCHANGE``.  ``pipeline=True`` double-buffers GA targets so
    host generation overlaps worker rounds; ``lockstep=True`` makes
    workers block for fresh targets each round (deterministic
    single-worker runs).  Transport choice never changes a seeded
    search's results; ``pipeline`` trades one round of target freshness
    for latency — see ``docs/exchange.md``.

    Diverse ABS (arXiv:2207.03069; see ``docs/algorithms.md``):
    ``diversity_min_dist`` turns on Hamming-niched pool admission
    (candidates closer than this to an existing entry must beat their
    niche's energy to enter; ``0`` keeps the base policy bit-for-bit);
    ``variants`` assigns heterogeneous per-device search recipes by
    name (comma-separated, cycled over devices — ``"fleet"`` is the
    stock ladder/hot/greedy/tabu mix); ``variant_adapt`` lets a device
    migrate from a stagnating variant to an improving one every
    ``variant_adapt_period`` sweeps (sync mode only).

    Observability (all optional, off by default; see
    ``docs/observability.md``): pass a ``telemetry`` bus you own, or let
    this function build one — ``trace_out`` writes a schema'd JSONL
    trace, ``log_level`` (``"info"``/``"debug"``) logs progress to
    stderr.  A bus built here is closed before returning; a caller-
    provided ``telemetry`` bus is left open (its sinks are yours).
    Telemetry never changes the search: a seeded run returns the same
    result with it on or off.

    >>> from repro import QuboMatrix
    >>> from repro.api import solve
    >>> res = solve(QuboMatrix.random(64, seed=0), max_rounds=20, seed=1)
    >>> res.best_energy <= 0
    True
    """
    if time_limit is None and max_rounds is None and target_energy is None:
        time_limit = 2.0
    config = AbsConfig(
        n_gpus=n_gpus,
        blocks_per_gpu=blocks_per_gpu,
        local_steps=local_steps,
        window=window,
        backend=backend,
        pool_capacity=pool_capacity,
        ga=ga if ga is not None else GaConfig(),
        scan_neighbors=scan_neighbors,
        adapt_windows=adapt_windows,
        adapt_period=adapt_period,
        adapt_fraction=adapt_fraction,
        target_energy=target_energy,
        time_limit=time_limit,
        max_rounds=max_rounds,
        seed=seed,
        max_worker_restarts=max_worker_restarts,
        worker_stall_timeout=worker_stall_timeout,
        start_method=start_method,
        exchange=exchange,
        pipeline=pipeline,
        lockstep=lockstep,
        diversity_min_dist=diversity_min_dist,
        variants=variants,
        variant_adapt=variant_adapt,
        variant_adapt_period=variant_adapt_period,
    )
    owns_bus = telemetry is None and (trace_out is not None or log_level is not None)
    if telemetry is None:
        telemetry = make_bus(trace_out, log_level)
    try:
        return AdaptiveBulkSearch(weights, config, telemetry=telemetry).solve(mode)
    finally:
        if owns_bus:
            telemetry.close()


@dataclass(frozen=True)
class IsingResult:
    """Ising-view of a solve: spins and Hamiltonian value."""

    spins: np.ndarray
    hamiltonian: float
    qubo_result: SolveResult


def solve_ising(model: IsingModel, **solve_kwargs) -> IsingResult:
    """Find a low-energy spin state of an Ising model via ABS.

    The model is converted losslessly to QUBO (§1's equivalence),
    solved, and the result mapped back: ``spins = 2x − 1`` and
    ``hamiltonian = model.energy(spins)`` (offset included).  Accepts
    the same keyword arguments as :func:`solve`.
    """
    qubo, constant = ising_to_qubo(model)
    result = solve(qubo, **solve_kwargs)
    spins = bits_to_spins(result.best_x)
    return IsingResult(
        spins=spins,
        hamiltonian=float(result.best_energy + constant),
        qubo_result=result,
    )
