"""Failure injection against the persistent warm fleet.

The satellite cases from the ISSUE: a job cancelled mid-round, and a
worker dying while a queued job is in flight — the supervisor's
replacement must re-arm with the *current* job frame, never its dead
predecessor's.
"""

import os

import pytest

import repro.abs.fleet as fleet_mod
from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.qubo import QuboMatrix, energy
from repro.service import SolverService
from repro.telemetry import MemorySink, TelemetryBus

pytestmark = [pytest.mark.service, pytest.mark.process, pytest.mark.timeout(120)]


@pytest.fixture
def problem():
    return QuboMatrix.random(24, seed=321)


def lockstep_cfg(seed, **overrides):
    kwargs = dict(
        n_gpus=1,
        blocks_per_gpu=6,
        local_steps=8,
        pool_capacity=16,
        max_rounds=8,
        seed=seed,
        exchange="shm",
        lockstep=True,
    )
    kwargs.update(overrides)
    return AbsConfig(**kwargs)


def fingerprint(res):
    return (res.best_energy, res.best_x.tobytes(), res.rounds, res.sweeps)


class TestCancelMidRound:
    def test_cancel_running_job_returns_partial_result(self, problem):
        # An effectively unbounded job; cancellation is the only way out.
        cfg = lockstep_cfg(seed=1, max_rounds=2_000_000)
        with SolverService() as svc:
            jid = svc.submit(problem, cfg)
            while True:
                snap = svc.status(jid)
                assert snap["status"] in ("queued", "running")
                if snap.get("rounds") or snap["status"] == "running":
                    break
            assert svc.cancel(jid)
            partial = svc.result(jid, timeout=60)
            assert svc.status(jid)["status"] == "cancelled"
            assert partial.rounds < 2_000_000
            assert partial.best_energy == energy(problem, partial.best_x)
            # The truncated result must not enter the result cache: a
            # later identical submission would get it as a DONE hit.
            assert not svc._result_cache

            # The fleet must come back clean: the next job is still
            # bit-identical to its cold one-shot.
            follow_cfg = lockstep_cfg(seed=9)
            followed = svc.result(svc.submit(problem, follow_cfg), timeout=120)
        one_shot = AdaptiveBulkSearch(problem, follow_cfg).solve("process")
        assert fingerprint(followed) == fingerprint(one_shot)


class TestWorkerDeathWithJobInFlight:
    def test_replacement_rearms_with_current_frame(self, problem, monkeypatch):
        """First incarnation consumes its job frame and dies *before
        acking* — the frame dies with it.  The supervisor's replacement
        must be handed the current job at spawn and finish it, and the
        result must still match the cold one-shot bit for bit."""
        real = fleet_mod._fleet_worker_main

        def frame_eating_worker(worker_id, incarnation, control, *rest):
            if incarnation == 0:
                control.get(timeout=30)  # swallow the job frame
                os._exit(11)
            return real(worker_id, incarnation, control, *rest)

        monkeypatch.setattr(fleet_mod, "_fleet_worker_main", frame_eating_worker)
        cfg = lockstep_cfg(seed=42)
        with SolverService() as svc:
            served = svc.result(svc.submit(problem, cfg), timeout=120)
        one_shot = AdaptiveBulkSearch(problem, cfg).solve("process")
        assert served.workers_restarted == 1
        assert fingerprint(served) == fingerprint(one_shot)

    def test_worker_killed_between_jobs(self, problem):
        """Kill the idle worker after job A; job B's arm handshake must
        detect the death, restart, and arm the replacement with job B
        (a predecessor-frame re-arm would ack job A's sequence and time
        the handshake out)."""
        cfg_a = lockstep_cfg(seed=1)
        cfg_b = lockstep_cfg(seed=2)
        with SolverService() as svc:
            svc.result(svc.submit(problem, cfg_a), timeout=120)
            for proc in svc._fleet.supervisor.all_processes:
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=10)
            served = svc.result(svc.submit(problem, cfg_b), timeout=120)
        one_shot = AdaptiveBulkSearch(problem, cfg_b).solve("process")
        assert served.workers_restarted == 1
        assert fingerprint(served) == fingerprint(one_shot)


class TestFleetRebuild:
    def test_fleet_failure_marks_job_failed_and_rebuilds(self, problem, monkeypatch):
        """Every incarnation dying exhausts the restart budget: the job
        fails, the broken fleet is dropped, and the next job gets a
        fresh fleet (patch removed) and still matches its one-shot."""
        real = fleet_mod._fleet_worker_main
        sink = MemorySink()
        bus = TelemetryBus([sink])

        def suicidal_worker(*args, **kwargs):
            os._exit(11)

        cfg = lockstep_cfg(seed=5, max_worker_restarts=1)
        with SolverService(telemetry=bus) as svc:
            monkeypatch.setattr(fleet_mod, "_fleet_worker_main", suicidal_worker)
            doomed = svc.submit(problem, cfg)
            with pytest.raises(RuntimeError):
                svc.result(doomed, timeout=120)
            assert svc.status(doomed)["status"] == "failed"
            assert svc._fleet is None  # torn down, not left half-dead

            monkeypatch.setattr(fleet_mod, "_fleet_worker_main", real)
            healed = svc.result(svc.submit(problem, cfg), timeout=120)
        one_shot = AdaptiveBulkSearch(problem, cfg).solve("process")
        assert fingerprint(healed) == fingerprint(one_shot)
        assert bus.counters.snapshot()["service.fleet_spawns"] == 2
