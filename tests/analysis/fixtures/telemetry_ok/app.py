"""Fixture emitter matching telemetry_ok/schema.py exactly."""


def run(bus, name):
    bus.emit("demo.event", value=1)
    bus.counters.inc("demo.count")
    bus.counters.inc(f"demo.{name}.ns", 5)
