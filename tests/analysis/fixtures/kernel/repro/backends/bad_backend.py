"""Fixture backend breaking all three purity constraints."""

from repro.backends.base import KernelBackend
from repro.telemetry import make_bus

_CACHE = {}


class BadBackend(KernelBackend):
    name = "bad"

    def flip(self, bus, state, k):
        _CACHE[k] = state[k]
        bus.counters.inc("engine.flips")
        state[k] ^= 1

    def reset(self):
        global _CACHE
        _CACHE = {}
