"""Fixture: tcp frame layout leaking outside the transport module."""

import struct

from repro.abs.tcp import FRAME_HEADER, FRAME_MAGIC


def handcrafted_frame(payload):
    # Packing a frame by hand instead of calling encode_frame.
    return FRAME_HEADER.pack(FRAME_MAGIC, 3, len(payload), 0) + payload


def rederived_layout():
    # Re-deriving the wire format locally is just as bad.
    _RESULT_HEAD = struct.Struct("<iqiiqq")
    return _RESULT_HEAD.size
