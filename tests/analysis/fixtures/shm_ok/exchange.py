"""Fixture protocol module mirroring the real store ordering."""

import numpy as np

_H_SEQ = 0
_H_EPOCH = 1


class GoodMailbox:
    def publish(self, payload, epoch):
        gen = int(self._header[_H_SEQ]) + 1
        self._slots[gen % 2, :] = payload
        self._header[_H_EPOCH] = epoch
        self._header[_H_SEQ] = gen
        return gen

    def fetch(self, last_gen):
        while True:
            gen = int(self._header[_H_SEQ])
            if gen <= last_gen:
                return None
            payload = self._slots[gen % 2].copy()
            if int(self._header[_H_SEQ]) != gen:
                continue
            return gen, payload


class GoodRing:
    def write(self, energies, packed):
        head = int(self._header[_H_SEQ])
        s = head % self.slots
        self._energies[s, :] = energies
        self._packed[s, :] = packed
        self._header[_H_SEQ] = head + 1

    def consume(self):
        tail = int(self._header[_H_EPOCH])
        s = tail % self.slots
        record = (self._energies[s].copy(), self._packed[s].copy())
        self._header[_H_EPOCH] = tail + 1
        return record
