"""Configuration for the ABS solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

import numpy as np

from repro.ga.host import GaConfig

WindowSpec = Union[int, str, Sequence[int]]


def resolve_windows(spec: WindowSpec, n_blocks: int, n: int) -> np.ndarray:
    """Expand a window specification into per-block ``l`` values.

    - an ``int`` applies to every block;
    - ``"spread"`` assigns log-spaced windows between 2 and
      ``max(16, n // 4)`` — the parallel-tempering-style temperature
      ladder the paper suggests ("we can set a different temperature
      for each search", §2.1);
    - a sequence gives explicit per-block values (length must be
      ``n_blocks``).
    """
    if n_blocks < 1:
        raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
    if isinstance(spec, str):
        if spec != "spread":
            raise ValueError(f"unknown window spec {spec!r} (use an int, 'spread', or a sequence)")
        hi = min(n, max(16, n // 4))
        lo = min(2, hi)
        vals = np.unique(
            np.round(np.geomspace(lo, hi, num=min(n_blocks, 8))).astype(np.int64)
        )
        return vals[np.arange(n_blocks) % len(vals)]
    if isinstance(spec, (int, np.integer)):
        if not (1 <= spec <= n):
            raise ValueError(f"window must be in [1, {n}], got {spec}")
        return np.full(n_blocks, int(spec), dtype=np.int64)
    arr = np.asarray(spec, dtype=np.int64)
    if arr.shape != (n_blocks,):
        raise ValueError(f"window sequence must have length {n_blocks}, got {arr.shape}")
    if (arr < 1).any() or (arr > n).any():
        raise ValueError(f"window values must be in [1, {n}]")
    return arr.copy()


@dataclass
class AbsConfig:
    """All tunables of the ABS framework.

    Attributes
    ----------
    n_gpus:
        Simulated devices (processes in ``"process"`` mode).
    blocks_per_gpu:
        Simultaneous searches per device (the paper runs 68–1088 per
        GPU; the NumPy engine defaults lower since each block costs
        Python-side memory bandwidth).
    local_steps:
        Forced flips per block between target refreshes (§3.2 Step 4b:
        "a local search from T with the fixed number of flips").
    window:
        Figure-2 selection window: int, ``"spread"``, or per-block list.
    backend:
        Kernel backend name for the bulk engine (``"numpy"``,
        ``"numba"``, or any name registered with
        :func:`repro.backends.register_backend`).  ``None`` (default)
        consults the ``REPRO_BACKEND`` environment variable and falls
        back to ``"numpy"``.  Backend choice never changes the search
        result — only kernel speed (``numba`` degrades to ``numpy``
        with a warning when numba is not installed).
    pool_capacity:
        Host solution-pool size ``m``.
    ga:
        Genetic-operator mix.
    scan_neighbors:
        Track the incumbent over all n neighbors per flip (Algorithm 4's
        inner check) rather than visited solutions only.
    adapt_windows:
        Enable the paper's future-work automatic per-block tuning:
        every ``adapt_period`` rounds, underperforming blocks adopt
        (perturbed) window sizes from the best-performing blocks.
    adapt_period, adapt_fraction:
        Adaptation cadence and the share of blocks replaced each time
        (see :class:`repro.abs.adaptive.WindowAdapter`).
    target_energy:
        Stop as soon as the best energy reaches this value (≤).
    time_limit:
        Wall-clock budget in seconds.
    max_rounds:
        Round-count budget (sync mode; in process mode it bounds the
        host's polling loop).
    seed:
        Root seed for every random stream in the run.
    max_worker_restarts:
        Process mode only: restart budget *per worker* for the
        supervision layer (see :mod:`repro.abs.supervisor`).  A worker
        whose process dies (or stalls past ``worker_stall_timeout``) is
        replaced up to this many times, each replacement rehydrated
        with fresh GA targets from the current pool; after that the
        worker is marked lost and the solve degrades onto the
        survivors.  0 disables restarts.
    worker_stall_timeout:
        Process mode only: seconds a worker may go without shipping a
        result before it is treated as unhealthy.  ``None`` (default)
        disables stall detection — process *death* is always detected.
    start_method:
        Multiprocessing start method for process mode: ``"fork"``,
        ``"spawn"``, ``"forkserver"``, or ``None`` (default) to pick
        ``"fork"`` where the platform offers it and fall back to the
        platform default elsewhere.  Worker arguments stay picklable,
        so ``"spawn"`` works on platforms without ``fork`` (and is the
        safe choice in threaded parents).
    exchange:
        Process mode only: the host↔worker transport.  ``"shm"`` (the
        default) exchanges targets and solutions through preallocated
        bit-packed shared-memory rings — the paper's Figure-5 buffers
        (:mod:`repro.abs.exchange`); ``"queue"`` is the pickling
        ``multiprocessing.Queue`` fallback; ``"tcp"`` frames the same
        bit-packed payloads over loopback sockets (:mod:`repro.abs.tcp`)
        so workers can join and leave elastically.  ``None`` consults
        the ``REPRO_EXCHANGE`` environment variable, then defaults to
        ``"shm"``.  Transport choice never changes the search result.
    pipeline:
        Process mode only: double-buffer GA targets — the host
        prepares the *next* target batch for a worker right after
        absorbing its round, so GA generation for round ``i + 1``
        overlaps the worker's execution of round ``i`` and a fresh
        result is answered with a pre-generated batch instantly.
        Targets are generated from a pool state one round staler,
        which the paper's asynchronous-tolerance argument already
        licenses.  Off by default.
    diversity_min_dist:
        Diverse-ABS pool admission (arXiv:2207.03069): reject a
        candidate whose Hamming distance to some pool entry is below
        this value unless it beats its niche's best energy (in which
        case the near entries are evicted).  ``0`` (default) and ``1``
        keep the base paper's duplicate-only policy bit-for-bit.
    variants:
        Diverse-ABS heterogeneous fleet: a comma-separated string or
        sequence of registered search-variant names
        (:mod:`repro.abs.variants`), cycled over the devices; the
        string ``"fleet"`` expands to the stock
        ladder/hot/greedy/tabu mix.  ``None`` (default) runs every
        device with the single base recipe, exactly as before.
    variant_adapt:
        Enable the variant-level adaptive controller: every
        ``variant_adapt_period`` sweeps a device migrates from the
        variant whose energies stagnate to the one improving fastest
        (sync mode only — process-mode fleets stay static).  Requires
        ``variants``.
    variant_adapt_period:
        Sweeps between variant-reallocation decisions.
    lockstep:
        Process mode only: after each result, a worker *blocks* until
        the host publishes fresh targets instead of reusing its
        previous ones.  This removes the timing dependence of
        free-running workers, making single-worker process runs
        bit-identical to sync mode — used by the cross-transport
        determinism tests.  Off by default (the paper's workers never
        block).
    """

    n_gpus: int = 1
    blocks_per_gpu: int = 32
    local_steps: int = 32
    window: WindowSpec = "spread"
    backend: str | None = None
    pool_capacity: int = 64
    ga: GaConfig = field(default_factory=GaConfig)
    scan_neighbors: bool = True
    adapt_windows: bool = False
    adapt_period: int = 4
    adapt_fraction: float = 0.25
    target_energy: int | None = None
    time_limit: float | None = None
    max_rounds: int | None = None
    seed: int | None = None
    max_worker_restarts: int = 2
    worker_stall_timeout: float | None = None
    start_method: str | None = None
    exchange: str | None = None
    pipeline: bool = False
    lockstep: bool = False
    diversity_min_dist: int = 0
    variants: str | Sequence[str] | None = None
    variant_adapt: bool = False
    variant_adapt_period: int = 8

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {self.n_gpus}")
        if self.blocks_per_gpu < 1:
            raise ValueError(f"blocks_per_gpu must be >= 1, got {self.blocks_per_gpu}")
        if self.local_steps < 0:
            raise ValueError(f"local_steps must be >= 0, got {self.local_steps}")
        if self.pool_capacity < 1:
            raise ValueError(f"pool_capacity must be >= 1, got {self.pool_capacity}")
        if self.adapt_period < 1:
            raise ValueError(f"adapt_period must be >= 1, got {self.adapt_period}")
        if not (0.0 < self.adapt_fraction <= 0.5):
            raise ValueError(
                f"adapt_fraction must be in (0, 0.5], got {self.adapt_fraction}"
            )
        if self.time_limit is not None and self.time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {self.time_limit}")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts must be >= 0, got {self.max_worker_restarts}"
            )
        if self.worker_stall_timeout is not None and self.worker_stall_timeout <= 0:
            raise ValueError(
                f"worker_stall_timeout must be positive, got {self.worker_stall_timeout}"
            )
        if self.backend is not None:
            from repro.backends import available_backends

            if self.backend not in available_backends():
                raise ValueError(
                    f"unknown backend {self.backend!r} "
                    f"(registered: {', '.join(available_backends())})"
                )
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(
                "start_method must be None, 'fork', 'spawn', or 'forkserver', "
                f"got {self.start_method!r}"
            )
        if self.exchange is not None:
            from repro.abs.exchange import EXCHANGE_NAMES

            if self.exchange not in EXCHANGE_NAMES:
                raise ValueError(
                    f"exchange must be None or one of {EXCHANGE_NAMES}, "
                    f"got {self.exchange!r}"
                )
        if self.diversity_min_dist < 0:
            raise ValueError(
                f"diversity_min_dist must be >= 0, got {self.diversity_min_dist}"
            )
        if self.variant_adapt_period < 1:
            raise ValueError(
                f"variant_adapt_period must be >= 1, got {self.variant_adapt_period}"
            )
        if self.variants is not None:
            from repro.abs.variants import resolve_fleet

            # Validates every name (raises ValueError on unknown ones).
            resolve_fleet(self.variants, self.n_gpus)
        elif self.variant_adapt:
            raise ValueError("variant_adapt requires variants to be set")
        if (
            self.target_energy is None
            and self.time_limit is None
            and self.max_rounds is None
        ):
            raise ValueError(
                "no stopping criterion: set target_energy, time_limit, or max_rounds"
            )

    @property
    def total_blocks(self) -> int:
        """Searches running concurrently across all devices."""
        return self.n_gpus * self.blocks_per_gpu
