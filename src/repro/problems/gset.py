"""The G-set Max-Cut benchmark: file format + synthetic catalog.

Real G-set files (Ye, Stanford) are one header line ``n m`` followed by
``m`` lines ``u v w`` with 1-indexed vertices; :func:`load_gset` parses
them, so genuine instances drop in when available.

Because this environment has no network access, :data:`GSET_CATALOG`
provides **seeded synthetic analogues** of the eight instances in the
paper's Table 1(a): same vertex count, same family (uniform random vs
planar-like), same weight type (+1 vs ±1), and edge counts matching the
published G-set instances.  They are *not* the real graphs — target cut
values for benchmarks are therefore expressed relative to the best cut
found by a calibration run, mirroring the paper's use of
"99 %/95 % of best-known" targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

import networkx as nx

from repro.problems.maxcut import random_graph, toroidal_graph

PathLike = Union[str, Path]


class GsetFormatError(ValueError):
    """Raised for malformed G-set files."""


def load_gset(path: PathLike) -> nx.Graph:
    """Parse a G-set file into a 0-indexed weighted graph."""
    path = Path(path)
    lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
    if not lines:
        raise GsetFormatError(f"{path}: empty file")
    head = lines[0].split()
    if len(head) != 2:
        raise GsetFormatError(f"{path}: header must be 'n m', got {lines[0]!r}")
    try:
        n, m = int(head[0]), int(head[1])
    except ValueError as exc:
        raise GsetFormatError(f"{path}: non-integer header {lines[0]!r}") from exc
    if len(lines) - 1 != m:
        raise GsetFormatError(
            f"{path}: header claims {m} edges but file has {len(lines) - 1}"
        )
    g = nx.Graph(name=path.stem)
    g.add_nodes_from(range(n))
    for lineno, line in enumerate(lines[1:], start=2):
        parts = line.split()
        if len(parts) != 3:
            raise GsetFormatError(f"{path}:{lineno}: expected 'u v w', got {line!r}")
        u, v, w = int(parts[0]), int(parts[1]), int(parts[2])
        if not (1 <= u <= n and 1 <= v <= n):
            raise GsetFormatError(f"{path}:{lineno}: vertex out of range 1..{n}")
        g.add_edge(u - 1, v - 1, weight=w)
    return g


def save_gset(graph: nx.Graph, path: PathLike) -> None:
    """Write a graph in G-set format (1-indexed)."""
    n = graph.number_of_nodes()
    lines = [f"{n} {graph.number_of_edges()}"]
    for u, v, data in graph.edges(data=True):
        lines.append(f"{u + 1} {v + 1} {int(data.get('weight', 1))}")
    Path(path).write_text("\n".join(lines) + "\n")


@dataclass(frozen=True)
class GsetSpec:
    """Recipe for one synthetic G-set analogue."""

    name: str
    n: int
    family: str          # "random" | "planar"
    weighted: bool       # ±1 weights if True, all +1 otherwise
    n_edges: int         # matches the published instance's edge count
    seed: int


#: Synthetic analogues of the Table 1(a) instances.  Sizes, families,
#: and weight types follow Table 1(a); edge counts follow the published
#: G-set instances for the dense random family (G1/G6: 19 176 edges,
#: G22/G27: 19 990) and the sparse large ones (G55: 12 498, G70: 9 999),
#: while the planar family uses near-maximal planar density (≲ 3n − 6,
#: realized as a torus grid with diagonals).  Seeds are fixed so every
#: run sees the same graphs.
GSET_CATALOG: dict[str, GsetSpec] = {
    "G1": GsetSpec("G1", 800, "random", False, 19_176, seed=101),
    "G6": GsetSpec("G6", 800, "random", True, 19_176, seed=106),
    "G22": GsetSpec("G22", 2000, "random", False, 19_990, seed=122),
    "G27": GsetSpec("G27", 2000, "random", True, 19_990, seed=127),
    "G35": GsetSpec("G35", 2000, "planar", False, 5_800, seed=135),
    "G39": GsetSpec("G39", 2000, "planar", True, 5_800, seed=139),
    "G55": GsetSpec("G55", 5000, "random", False, 12_498, seed=155),
    "G70": GsetSpec("G70", 10_000, "random", False, 9_999, seed=170),
}


def synthetic_gset(name: str) -> nx.Graph:
    """Build the seeded synthetic analogue of a Table 1(a) instance."""
    try:
        spec = GSET_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown G-set analogue {name!r}; available: {sorted(GSET_CATALOG)}"
        ) from None
    if spec.family == "random":
        g = random_graph(
            spec.n, spec.n_edges, weighted=spec.weighted, seed=spec.seed, name=spec.name
        )
    else:
        # Torus dimensions ≈ square; tune the diagonal fraction so the
        # edge count comes out close to the published one (the base
        # torus has 2·n edges; each diagonal adds one more).
        import math

        rows = int(math.isqrt(spec.n))
        while spec.n % rows:
            rows -= 1
        cols = spec.n // rows
        base = 2 * spec.n
        frac = max(0.0, min(1.0, (spec.n_edges - base) / spec.n))
        g = toroidal_graph(
            rows,
            cols,
            weighted=spec.weighted,
            diagonal_fraction=frac,
            seed=spec.seed,
            name=spec.name,
        )
    return g
