"""Synthetic random QUBO problems (paper §4.1.3).

Every weight is uniform in the signed 16-bit range
``[−32768, 32767]``; matrices are dense and, as the paper observes,
such instances are comparatively easy.  :data:`RANDOM_CATALOG` fixes
one seeded instance per Table 1(c)/Table 2 size so benchmarks are
repeatable.  (The paper's exact instances are not published, so
best-known targets are re-derived by calibration runs; see
``benchmarks/bench_table1c_random.py``.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qubo.matrix import WEIGHT16_MAX, WEIGHT16_MIN, QuboMatrix
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class RandomSpec:
    """Recipe for one catalog instance."""

    name: str
    n: int
    seed: int


RANDOM_CATALOG: dict[str, RandomSpec] = {
    "R1k": RandomSpec("R1k", 1024, seed=1024),
    "R2k": RandomSpec("R2k", 2048, seed=2048),
    "R4k": RandomSpec("R4k", 4096, seed=4096),
    "R8k": RandomSpec("R8k", 8192, seed=8192),
    "R16k": RandomSpec("R16k", 16384, seed=16384),
    "R32k": RandomSpec("R32k", 32768, seed=32768),
}


def random_qubo(n: int, seed: SeedLike = None, *, name: str | None = None) -> QuboMatrix:
    """A dense random instance with 16-bit weights (§4.1.3)."""
    q = QuboMatrix.random(
        n,
        seed,
        low=WEIGHT16_MIN,
        high=WEIGHT16_MAX,
        dtype="int32",
        name=name or f"random16-{n}",
    )
    return q


def catalog_instance(name: str) -> QuboMatrix:
    """Materialize a :data:`RANDOM_CATALOG` entry.

    Beware of memory for the largest entries: ``R32k`` is a dense
    32768² int32 array (4 GiB) — benchmark harnesses only build the
    big sizes when explicitly asked.
    """
    try:
        spec = RANDOM_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown random instance {name!r}; available: {sorted(RANDOM_CATALOG)}"
        ) from None
    return random_qubo(spec.n, spec.seed, name=spec.name)
