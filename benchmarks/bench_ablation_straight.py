"""Ablation — straight search vs cold restart (§2.2.2).

The straight search exists so a GA target handoff costs O(Hamming
distance · n) bookkeeping instead of an O(n²) re-evaluation.  This
bench quantifies both sides:

- **bookkeeping** — operations to adopt a new target, straight search
  vs recomputing the delta vector from scratch;
- **search quality** — the straight-search walk *is itself* a local
  search (it can discover improvements mid-walk for free), so the best
  energy after straight+local is at least as good as re-init+local at
  equal flip budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import FULL
from repro.qubo import QuboMatrix, SearchState
from repro.search import straight_search
from repro.utils.rng import as_generator
from repro.utils.tables import Table

_N = 1024 if FULL else 512
_HANDOFFS = 64 if FULL else 32


def test_ablation_straight_vs_restart(benchmark, report):
    q = QuboMatrix.random(_N, seed=_N)
    rng = as_generator(7)

    # Typical GA targets differ from the current solution in a fraction
    # of the bits (mutation: n/16 flips; crossover: ~n/4 on average for
    # pool-mates).  Use a spread of Hamming distances.
    distances = [_N // 64, _N // 16, _N // 4, _N // 2]
    table = Table(
        [
            "handoff Hamming dist", "straight ops", "restart ops",
            "ratio (restart/straight)", "straight best ≤ restart best",
        ],
        title=f"Straight search vs cold restart, n={_N} ({_HANDOFFS} handoffs each)",
    )
    for dist in distances:
        straight_ops = 0
        restart_ops = 0
        straight_best = 0
        restart_best = 0
        state = SearchState.from_bits(q, rng.integers(0, 2, _N, dtype=np.uint8))
        for _ in range(_HANDOFFS):
            target = state.x.copy()
            flip_at = rng.choice(_N, size=dist, replace=False)
            target[flip_at] ^= 1
            # Straight: O(dist · n) and tracks bests along the way.
            _, be, flips = straight_search(state, target, scan_neighbors=True)
            straight_ops += flips * _N
            straight_best = min(straight_best, be)
            # Restart: recompute E and Δ from scratch at the target.
            fresh = SearchState.from_bits(q, target)
            restart_ops += _N * _N
            restart_best = min(restart_best, fresh.energy + int(fresh.delta.min()))
        table.add_row(
            [
                dist,
                straight_ops,
                restart_ops,
                f"{restart_ops / straight_ops:.1f}x",
                "yes" if straight_best <= restart_best else "NO",
            ]
        )
        # The paper's point: for realistic handoffs (dist « n) the
        # bookkeeping saving is large.
        if dist <= _N // 4:
            assert restart_ops > straight_ops
        assert straight_best <= restart_best

    report(
        "Ablation straight search",
        table.render()
        + "\n\nStraight search replaces an O(n²) re-initialization with "
        "O(dist·n) and finds improvements mid-walk for free.",
    )

    state = SearchState.zeros(q)
    target = as_generator(1).integers(0, 2, _N, dtype=np.uint8)

    def _one_handoff():
        s = state.copy()
        straight_search(s, target)

    benchmark(_one_handoff)
