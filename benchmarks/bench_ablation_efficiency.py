"""Ablation — the search-efficiency ladder (Lemmas 1–3, Theorem 1).

Measures operations-per-evaluated-solution for Algorithms 1–4 across
problem sizes and verifies the claimed asymptotics empirically:

- Algorithm 1 scales ∝ n² (doubling n quadruples the cost),
- Algorithm 2 scales ∝ n for large step counts,
- Algorithm 3 scales ∝ n,
- Algorithm 4 is exactly 1 op/solution at every size.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL
from repro.metrics.efficiency import measure_efficiency
from repro.qubo import QuboMatrix
from repro.search import (
    BulkLocalSearch,
    DeltaLocalSearch,
    NaiveLocalSearch,
    OneStepLocalSearch,
)
from repro.search.accept import AlwaysAccept
from repro.utils.tables import Table

_SIZES = (64, 128, 256, 512) if FULL else (64, 128, 256)
_STEPS = 512 if FULL else 256


def test_ablation_search_efficiency(benchmark, report):
    algorithms = [
        NaiveLocalSearch(AlwaysAccept()),
        OneStepLocalSearch(AlwaysAccept()),
        DeltaLocalSearch(AlwaysAccept()),
        BulkLocalSearch(),
    ]
    weights = {n: QuboMatrix.random(n, seed=n) for n in _SIZES}
    points = measure_efficiency(algorithms, weights, steps=_STEPS, seed=0)

    table = Table(
        ["algorithm", *[f"n={n}" for n in _SIZES], "expected"],
        title="Measured search efficiency (ops / evaluated solution)",
    )
    expected = {
        algorithms[0].name: "Θ(n²)",
        algorithms[1].name: "Θ(n + n²/m)",
        algorithms[2].name: "Θ(n)",
        algorithms[3].name: "Θ(1)",
    }
    by_algo: dict[str, dict[int, float]] = {}
    for p in points:
        by_algo.setdefault(p.algorithm, {})[p.n] = p.efficiency
    for name, effs in by_algo.items():
        table.add_row([name, *[f"{effs[n]:.2f}" for n in _SIZES], expected[name]])

    report("Ablation efficiency ladder", table.render())

    naive = by_algo[algorithms[0].name]
    delta = by_algo[algorithms[2].name]
    bulk = by_algo[algorithms[3].name]
    # Quadratic: ratio across a 2× size step is 4×.
    assert naive[128] / naive[64] == pytest.approx(4.0, rel=0.05)
    # Linear: ratio is 2× (loose tolerance: rejected moves cost nothing).
    assert 1.4 < delta[128] / delta[64] < 2.6
    # Constant: exactly 1 at every size (Theorem 1).
    for n in _SIZES:
        assert bulk[n] == pytest.approx(1.0, abs=0.01)

    benchmark(
        lambda: measure_efficiency([BulkLocalSearch()], {64: weights[64]}, steps=64)
    )
