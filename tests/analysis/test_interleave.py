"""The exchange-protocol interleaving explorer: proof and anti-proof.

Three layers:

1. the real protocols pass *exhaustively* at depth ≥ 6 for all four
   structures — the shm mailbox/ring and the tcp target/result
   streams (the ISSUE acceptance bar, well under the 60 s budget);
2. the step machines are pinned byte-for-byte against the real
   ``publish``/``write`` methods and cross-validated by running the
   real ``fetch``/``consume`` over machine-written memory — so the
   explorer exercises the actual protocol, not a drifted model of it;
3. every injected protocol bug is detected — the checker is not
   vacuous.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abs.exchange import _H_EPOCH, _H_SEQ
from repro.analysis.interleave import (
    _EPOCH,
    _MailboxWriter,
    _RingProducer,
    _mailbox_payload,
    _ring_energy,
    _ring_packed,
    explore_mailbox,
    explore_ring,
    explore_tcp_results,
    explore_tcp_targets,
    make_mailbox,
    make_ring,
    run_all,
)
from repro.abs.buffers import unpack_solutions

pytestmark = pytest.mark.analysis


# -- 1. exhaustive passes ---------------------------------------------------

@pytest.mark.timeout(60)
def test_mailbox_depth6_exhaustive_no_violations():
    report = explore_mailbox(depth=6)
    assert report.ok, report.violations
    assert report.depth == 6
    # exhaustiveness sanity: the graph is far larger than any sampled run
    assert report.states > 10_000
    assert report.terminals > 0
    assert report.elapsed < 60


@pytest.mark.timeout(60)
def test_ring_depth6_exhaustive_no_violations_with_wraparound():
    report = explore_ring(depth=6, slots=2)  # depth > slots forces wraparound
    assert report.ok, report.violations
    assert report.states > 1_000
    assert report.terminals > 0
    assert report.elapsed < 60


@pytest.mark.timeout(60)
def test_tcp_streams_depth6_exhaustive_no_violations():
    """Target freshness + result FIFO hold across every interleaving of
    sends, receives, and up to two connection losses."""
    targets = explore_tcp_targets(depth=6)
    assert targets.ok, targets.violations
    assert targets.states > 1_000 and targets.terminals > 0
    results = explore_tcp_results(depth=6)
    assert results.ok, results.violations
    assert results.states > 1_000 and results.terminals > 0


@pytest.mark.timeout(60)
def test_run_all_covers_all_structures():
    reports = run_all(depth=6)
    assert [r.structure for r in reports] == [
        "TargetMailbox", "SolutionRing", "TcpTargetStream", "TcpResultStream",
    ]
    assert all(r.ok for r in reports)


# -- 2. the machines ARE the protocol --------------------------------------

def _drain(actor):
    while not actor.done():
        actor.step()


def test_mailbox_writer_machine_matches_real_publish_bytes():
    machine_box, real_box = make_mailbox(), make_mailbox()
    writer = _MailboxWriter(machine_box, depth=3)
    for gen in range(1, 4):
        while writer.op < gen:
            writer.step()
        b0, b1 = _mailbox_payload(gen)
        targets = unpack_solutions(
            np.array([[b0, b1]], dtype=np.uint8), real_box.n
        )
        assert real_box.publish(targets, epoch=_EPOCH) == gen
        assert bytes(machine_box._shm.data) == bytes(real_box._shm.data)


def test_real_fetch_reads_machine_written_mailbox():
    box = make_mailbox()
    _drain(_MailboxWriter(box, depth=3))
    got = box.fetch(last_gen=0, epoch=_EPOCH)
    assert got is not None
    gen, targets = got
    assert gen == 3
    b0, b1 = _mailbox_payload(3)
    expected = unpack_solutions(np.array([[b0, b1]], dtype=np.uint8), box.n)
    np.testing.assert_array_equal(targets, expected)
    assert box.fetch(last_gen=3, epoch=_EPOCH) is None
    assert box.fetch(last_gen=0, epoch=_EPOCH + 1) is None  # epoch filter


def test_ring_producer_machine_matches_real_write_bytes():
    machine_ring, real_ring = make_ring(), make_ring()
    producer = _RingProducer(machine_ring, depth=2)
    for i in range(1, 3):
        while producer.op < i:
            producer.step()
        real_ring.write(
            [i],
            np.array([_ring_energy(i)], dtype=np.int64),
            np.array([[_ring_packed(i)]], dtype=np.uint8),
        )
        assert bytes(machine_ring._shm.data) == bytes(real_ring._shm.data)


def test_real_consume_reads_machine_written_ring():
    ring = make_ring()
    _drain(_RingProducer(ring, depth=2))
    assert int(ring._header[_H_SEQ]) == 2
    for i in range(1, 3):
        record = ring.consume()
        assert record is not None
        meta, energies, packed = record
        assert int(meta[0]) == i
        assert int(energies[0]) == _ring_energy(i)
        assert int(packed[0, 0]) == _ring_packed(i)
    assert ring.consume() is None
    assert int(ring._header[_H_EPOCH]) == 2


# -- 3. injected bugs are caught -------------------------------------------

@pytest.mark.timeout(60)
@pytest.mark.parametrize("bug", ["seq_first", "no_recheck"])
def test_mailbox_bugs_detected(bug):
    report = explore_mailbox(depth=4, bug=bug)
    assert not report.ok
    assert any("torn mailbox read" in v for v in report.violations)
    assert any("schedule:" in v for v in report.violations)  # repro recipe


@pytest.mark.timeout(60)
@pytest.mark.parametrize("bug", ["early_head", "no_full_check"])
def test_ring_bugs_detected(bug):
    report = explore_ring(depth=4, bug=bug)
    assert not report.ok
    assert any(
        "torn ring record" in v or "ring FIFO broken" in v
        for v in report.violations
    )


@pytest.mark.timeout(60)
@pytest.mark.parametrize("bug", ["no_gen_filter", "resend_stale"])
def test_tcp_target_bugs_detected(bug):
    report = explore_tcp_targets(depth=4, bug=bug)
    assert not report.ok
    assert any(
        "tcp target freshness broken" in v or "corrupt tcp target frame" in v
        for v in report.violations
    )
    assert any("schedule:" in v for v in report.violations)  # repro recipe


@pytest.mark.timeout(60)
@pytest.mark.parametrize("bug", ["dup_resend", "reorder"])
def test_tcp_result_bugs_detected(bug):
    report = explore_tcp_results(depth=4, bug=bug)
    assert not report.ok
    assert any("tcp result FIFO broken" in v for v in report.violations)
