"""Warm worker fleets: reusable process-mode plumbing for many solves.

Process mode pays a substantial fixed cost before the first round runs:
spawning one OS process per simulated GPU, allocating the exchange
transport (shared-memory mailboxes/rings, queues, or a TCP listener),
copying the weight matrix into shared memory, and letting each worker's
kernel backend prepare the weights.  For a single ``solve()`` that cost
is unavoidable; for a *service* running many jobs it is pure waste —
the paper's host/device split has no per-problem worker state beyond
the weights and the GA targets, so the same fleet can be re-armed with
a new problem instead of being torn down and respawned.

This module factors the fleet lifecycle out of
:class:`~repro.abs.solver.AdaptiveBulkSearch` so both callers share one
implementation:

- **one-shot** (``persistent=False``): exactly the classic
  ``solve("process")`` shape — the solver passes its own spawn
  callable, runs one job, and shuts the fleet down.  Wire behavior is
  bit-identical to the pre-fleet solver: job sequence number 0 makes
  every epoch token equal the plain incarnation number.
- **persistent** (``persistent=True``): workers run
  :func:`_fleet_worker_main`, a control loop that accepts ``JOB``
  frames over a per-worker control queue, re-arms the exchange endpoint
  under the new job's epoch token, and runs the standard device rounds
  until the next frame (or shutdown) arrives.  Spawn, transport, and
  backend-prepared weights all survive across jobs.

**Epoch tokens.**  The exchange layer already discards traffic whose
epoch does not match (that is how worker restarts skip a predecessor's
stale targets).  The fleet widens the epoch into a token::

    token = job_seq * JOB_STRIDE + incarnation

so one integer simultaneously identifies *which job* and *which
incarnation of the worker slot* produced a frame.  Cross-job traffic
(a result published microseconds before a re-arm) is filtered by the
host exactly like a stale incarnation's, and ``job_seq == 0`` keeps
one-shot solves on today's wire format.

**Re-arm handshake.**  ``arm_job`` rebinds every healthy worker's
target channel to the new token, delivers one ``WorkerJob`` frame per
worker, and waits until every healthy worker acknowledges the new job
sequence number.  The ack gate exists for the queue transport, where an
un-re-armed worker would *consume and discard* targets stamped with the
new epoch; shm mailboxes and TCP replay are idempotent but take the
same path for uniformity.  Workers that die mid-handshake are restarted
by the supervisor and re-armed at spawn with the *current* frame — a
replacement can never resurrect the previous job.
"""

from __future__ import annotations

import math
import queue as queue_mod
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.abs.adaptive import WindowAdapter
from repro.abs.buffers import SharedWeights
from repro.abs.config import AbsConfig
from repro.abs.device import DeviceSimulator
from repro.abs.exchange import (
    make_host_transport,
    open_worker_endpoint,
    resolve_exchange,
)
from repro.abs.host import Host
from repro.abs.result import SolveResult
from repro.abs.supervisor import WorkerSupervisor
from repro.telemetry.bus import NULL_BUS, NullBus, RelayBus, TelemetryBus

#: Epoch tokens pack ``(job_seq, incarnation)`` into one integer:
#: ``job_seq * JOB_STRIDE + incarnation``.  The stride bounds restarts
#: per job at ~1M — far beyond any restart budget — and keeps job 0
#: tokens numerically equal to bare incarnations (one-shot solves
#: produce exactly the pre-fleet wire traffic).
JOB_STRIDE = 1 << 20

#: Interval for worker control-queue polls and host ack polls.
_POLL_INTERVAL = 0.25

#: Sentinel control frame asking a persistent worker to exit cleanly.
_SHUTDOWN = "shutdown"


def encode_token(job_seq: int, incarnation: int) -> int:
    """Pack a job sequence number and an incarnation into one epoch."""
    if not 0 <= incarnation < JOB_STRIDE:
        raise ValueError(f"incarnation out of range: {incarnation}")
    return job_seq * JOB_STRIDE + incarnation


def decode_token(token: int) -> tuple[int, int]:
    """``token -> (job_seq, incarnation)``; inverse of :func:`encode_token`."""
    return divmod(int(token), JOB_STRIDE)


def _counter_snapshot(
    host: Host,
    engine_counters: dict[str, int],
    adapt_total: int,
    extra: dict[str, int] | None = None,
) -> dict[str, int]:
    """Per-run counter snapshot for :attr:`SolveResult.counters`.

    Derived from component state after the run finishes — available
    whether or not a telemetry bus was attached.  ``pool.inserted``
    includes the initial random seeding (Step 1 inserts at ``+∞``).
    """
    counts = host.ga_counts
    snap = {
        "host.solutions_absorbed": host.absorbed,
        "pool.inserted": host.pool.inserted,
        "pool.rejected_duplicate": host.pool.rejected_duplicate,
        "pool.rejected_worse": host.pool.rejected_worse,
        "pool.rejected_diverse": host.pool.rejected_diverse,
        "ga.mutation": counts["mutation"],
        "ga.crossover": counts["crossover"],
        "ga.copy": counts["copy"],
        "adapt.reassignments": adapt_total,
    }
    snap.update(engine_counters)
    if extra:
        snap.update(extra)
    return dict(sorted(snap.items()))


def _merge_counts(into: dict[str, int], add: dict[str, int]) -> None:
    for key, value in add.items():
        into[key] = into.get(key, 0) + int(value)


def _resolve_start_method(requested: str | None) -> str:
    """Pick the multiprocessing start method for process mode.

    ``None`` prefers ``"fork"`` (cheapest: workers inherit the parent
    image) where the platform offers it, otherwise the platform
    default.  An explicit request is validated against what the
    platform supports.
    """
    import multiprocessing as mp

    available = mp.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise ValueError(
                f"start method {requested!r} not available on this platform "
                f"(available: {available})"
            )
        return requested
    return "fork" if "fork" in available else mp.get_start_method()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerJob:
    """One job assignment, shipped to a persistent worker as a frame.

    Carries everything :func:`repro.abs.solver._worker_main` takes as
    spawn arguments, minus what the worker already owns (its id, its
    endpoint, the stop event).  ``job_seq`` rather than a full token:
    the worker combines it with its *own* incarnation number, so a
    frame delivered to a freshly restarted worker re-arms under the
    replacement's epoch, not its dead predecessor's.
    """

    job_seq: int
    weights_ref: tuple
    digest: str | None
    n_blocks: int
    windows: np.ndarray
    local_steps: int
    scan_neighbors: bool
    tabu_params: tuple
    backend: str | None
    adapt_params: tuple
    telemetry_enabled: bool
    lockstep: bool


class _StopProxy:
    """Stop event that also trips on a pending control frame.

    Handed to the exchange endpoint and the round loop in place of the
    real stop event: a worker blocked in a lockstep target wait, a
    full-ring publish, or the free-running round loop must notice a
    newly queued ``JOB`` frame and fall back to the control loop —
    otherwise re-arming a busy fleet could wait a full round (or, for
    a blocked worker, forever).  ``Queue.empty()`` is advisory under
    multiprocessing, which is fine here: a false negative only delays
    the trip until the next poll.
    """

    __slots__ = ("_stop", "_control")

    def __init__(self, stop_evt: Any, control: Any) -> None:
        self._stop = stop_evt
        self._control = control

    def is_set(self) -> bool:
        if self._stop.is_set():
            return True
        try:
            return not self._control.empty()
        except (OSError, ValueError):  # control queue torn down
            return True

    def wait(self, timeout: float | None = None) -> bool:
        # Endpoints only use is_set() in their wait loops, but mirror
        # the Event API for safety.
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.01)
        return True


def run_device_rounds(
    device: DeviceSimulator,
    endpoint: Any,
    adapter: WindowAdapter | None,
    relay: Any,
    stop_evt: Any,
    lockstep: bool,
    telemetry_enabled: bool,
) -> None:
    """The §3.2 device loop: fetch targets, run rounds, ship results.

    Shared verbatim between the one-shot worker entry point
    (:func:`repro.abs.solver._worker_main`) and the persistent
    :func:`_fleet_worker_main` — the *loop* is job-agnostic; only what
    wraps it (process-per-job vs frame-per-job) differs.  Returns when
    targets dry up in lockstep mode, a publish is refused (stop or ring
    full at stop), or ``stop_evt`` trips (which, for persistent
    workers, includes a pending control frame via :class:`_StopProxy`).
    """
    targets = endpoint.fetch_targets(wait=True)
    while targets is not None and not stop_evt.is_set():
        energies, xs = device.round(targets)
        wcounts = device.engine.counters.as_dict()
        wcounts["adapt.reassignments"] = (
            adapter.adaptations if adapter is not None else 0
        )
        wcounts["adapt.nonfinite_observations"] = (
            adapter.nonfinite_observations if adapter is not None else 0
        )
        wcounts["variant.tabu_steps"] = device.tabu_steps_done
        wevents = relay.drain() if telemetry_enabled else []
        shipped = endpoint.publish(
            energies,
            xs,
            device.evaluated,
            device.engine.counters.flips,
            wcounts,
            wevents,
        )
        if not shipped:  # stop requested while the ring was full
            break
        fresh = endpoint.fetch_targets(wait=lockstep)
        if fresh is not None:
            targets = fresh
        elif lockstep:  # stop requested while waiting for targets
            break


def _make_adapter(
    n: int, n_blocks: int, adapt_params: tuple, bus: Any
) -> WindowAdapter | None:
    adapt_enabled, adapt_period, adapt_fraction, adapt_seed = adapt_params
    if not adapt_enabled:
        return None
    return WindowAdapter(
        n,
        n_blocks,
        period=adapt_period,
        fraction=adapt_fraction,
        seed=adapt_seed,
        bus=bus,
    )


def _fleet_worker_main(
    worker_id: int,
    incarnation: int,
    control: Any,
    exchange_ref: tuple,
    stop_evt: Any,
    ack_q: Any,
    prepared_cache_size: int,
) -> None:
    """Persistent device-process entry point (module-level, picklable).

    Sits in a control loop: each ``WorkerJob`` frame re-arms the
    exchange endpoint under the job's epoch token, builds a *fresh*
    :class:`DeviceSimulator` (engines start from the canonical zero
    state — a service job must match a one-shot solve bit-for-bit), and
    runs :func:`run_device_rounds` until the next frame arrives.  What
    persists across jobs is exactly the expensive, state-free plumbing:
    the process itself, the exchange endpoint, attached shared-memory
    weight segments (keyed by segment descriptor — the host may evict
    and recreate a segment for the same problem), and backend
    ``PreparedWeights`` (keyed by ``(backend, digest)``; read-only
    kernel input, so reuse cannot couple searches).
    """
    proxy = _StopProxy(stop_evt, control)
    endpoint = open_worker_endpoint(
        exchange_ref,
        worker_id=worker_id,
        incarnation=incarnation,
        stop_evt=proxy,
    )
    shm_cache: OrderedDict[tuple, SharedWeights] = OrderedDict()
    prepared_cache: OrderedDict[tuple, object] = OrderedDict()
    try:
        while not stop_evt.is_set():
            try:
                frame = control.get(timeout=_POLL_INTERVAL)
            except queue_mod.Empty:
                continue
            except (OSError, ValueError):  # control queue torn down
                break
            if frame == _SHUTDOWN:
                break
            job: WorkerJob = frame
            kind, payload = job.weights_ref
            if kind == "shm":
                key = tuple(payload)
                shared = shm_cache.get(key)
                if shared is not None:
                    shm_cache.move_to_end(key)  # LRU, not FIFO
                else:
                    shared = SharedWeights.attach(payload)
                    shm_cache[key] = shared
                    while len(shm_cache) > max(1, prepared_cache_size * 2):
                        _, old = shm_cache.popitem(last=False)
                        old.close()
                weights: Any = shared.array
            else:
                weights = payload
            endpoint.rearm(encode_token(job.job_seq, incarnation))
            relay = RelayBus() if job.telemetry_enabled else NULL_BUS
            n = weights.n if hasattr(weights, "n") else weights.shape[0]
            adapter = _make_adapter(n, job.n_blocks, job.adapt_params, relay)
            tabu_steps, tabu_tenure = job.tabu_params
            ckey = (job.backend, job.digest)
            prepared = (
                prepared_cache.get(ckey) if job.digest is not None else None
            )
            if prepared is not None:
                prepared_cache.move_to_end(ckey)  # LRU, not FIFO
            device = DeviceSimulator(
                weights,
                job.n_blocks,
                windows=job.windows,
                local_steps=job.local_steps,
                scan_neighbors=job.scan_neighbors,
                adapter=adapter,
                backend=job.backend,
                bus=relay,
                device_id=worker_id,
                tabu_steps=tabu_steps,
                tabu_tenure=tabu_tenure,
                prepared=prepared,
            )
            if job.digest is not None and prepared is None:
                pw = device.engine.prepared
                if pw is not None:
                    prepared_cache[ckey] = pw
                    while len(prepared_cache) > max(1, prepared_cache_size):
                        prepared_cache.popitem(last=False)
            ack_q.put((worker_id, job.job_seq))
            run_device_rounds(
                device,
                endpoint,
                adapter,
                relay,
                proxy,
                job.lockstep,
                job.telemetry_enabled,
            )
    except (KeyboardInterrupt, BrokenPipeError):  # parent went away
        pass
    finally:
        endpoint.close()
        for shared in shm_cache.values():
            shared.close()


# ----------------------------------------------------------------------
# Host side
# ----------------------------------------------------------------------
class WorkerFleet:
    """Processes + exchange transport + supervisor, reusable across jobs.

    Parameters
    ----------
    n:
        Problem size in bits — part of the fleet geometry (transports
        size their mailboxes/rings from it).
    exchange:
        Transport name (``None`` resolves like ``AbsConfig.exchange``).
    n_workers, n_blocks:
        Fleet geometry: worker processes and blocks per worker.
    bus:
        Telemetry bus for supervisor events.  The service swaps in a
        per-job stamped view via :meth:`WorkerSupervisor` sharing.
    max_restarts, stall_timeout:
        Supervision policy.  For a persistent fleet the restart budget
        spans the fleet's *lifetime*, not one job (documented in
        ``docs/service.md``).
    start_method:
        Multiprocessing start method (``None``: platform preference).
    persistent:
        ``False``: the caller supplies its own spawn callable to
        :meth:`start` (classic one-shot solve).  ``True``: workers run
        :func:`_fleet_worker_main` and accept jobs via :meth:`arm_job`.
    prepared_cache_size:
        Per-worker cap on cached backend-prepared weights.
    weights_cache_size:
        Host-side cap on cached shared-memory weight segments.
    """

    def __init__(
        self,
        n: int,
        *,
        exchange: str | None = None,
        n_workers: int,
        n_blocks: int,
        bus: TelemetryBus | NullBus | None = None,
        max_restarts: int = 2,
        stall_timeout: float | None = None,
        start_method: str | None = None,
        persistent: bool = False,
        prepared_cache_size: int = 4,
        weights_cache_size: int = 8,
        arm_timeout: float = 30.0,
    ) -> None:
        from multiprocessing import get_context

        self.n = int(n)
        self.exchange = resolve_exchange(exchange)
        self.n_workers = int(n_workers)
        self.n_blocks = int(n_blocks)
        self.bus = bus if bus is not None else NULL_BUS
        self.ctx = get_context(_resolve_start_method(start_method))
        self.stop_evt = self.ctx.Event()
        self.transport = make_host_transport(
            self.exchange,
            self.ctx,
            n_workers=self.n_workers,
            n_blocks=self.n_blocks,
            n=self.n,
        )
        self.supervisor: WorkerSupervisor | None = None
        self._max_restarts = int(max_restarts)
        self._stall_timeout = stall_timeout
        self._persistent = bool(persistent)
        self._prepared_cache_size = int(prepared_cache_size)
        self._weights_cache_size = int(weights_cache_size)
        self._arm_timeout = float(arm_timeout)
        # One lock covers the state shared between the arming thread,
        # the supervise thread (whose restart callbacks land in
        # _spawn_persistent/_make_channel), and whichever thread calls
        # shutdown().  The weights cache and jobs_armed counter stay
        # unannotated: only the arming thread touches them.
        self._lock = threading.Lock()
        self._job_seq = 0  # guarded-by: _lock
        self._current_jobs: list[WorkerJob] | None = None  # guarded-by: _lock
        self._controls: dict[int, Any] = {}  # guarded-by: _lock
        self._all_controls: list[Any] = []  # guarded-by: _lock
        self._ack_q = self.ctx.Queue() if self._persistent else None
        #: problem digest -> host-side SharedWeights (LRU, owner).
        self._weights_cache: OrderedDict[str, SharedWeights] = OrderedDict()
        self._closed = False  # guarded-by: _lock
        #: Jobs run on this fleet (arm_job calls); spawns happen once.
        self.jobs_armed = 0

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def geometry(self) -> tuple[str, int, int, int]:
        """What must match for a fleet to be reused across jobs."""
        return (self.exchange, self.n_workers, self.n_blocks, self.n)

    @property
    def job_seq(self) -> int:
        """Sequence number of the current (or last armed) job."""
        with self._lock:
            return self._job_seq

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, spawn: Callable[[int, int, Any], Any] | None = None) -> None:
        """Spawn incarnation 0 of every worker.

        One-shot fleets pass their own ``spawn(worker_id, incarnation,
        channel)``; persistent fleets spawn :func:`_fleet_worker_main`
        and must not pass one.
        """
        if self.supervisor is not None:
            raise RuntimeError("fleet already started")
        if self._persistent:
            if spawn is not None:
                raise ValueError("persistent fleets spawn their own workers")
            spawn = self._spawn_persistent
        elif spawn is None:
            raise ValueError("one-shot fleets need a spawn callable")
        self.supervisor = WorkerSupervisor(
            self.n_workers,
            spawn,
            channel_factory=self._make_channel,
            max_restarts=self._max_restarts,
            stall_timeout=self._stall_timeout,
            bus=self.bus,
        )
        self.supervisor.start()
        if self._persistent and self.bus.enabled:
            self.bus.counters.inc("service.fleet_spawns")

    def _make_channel(self, worker_id: int, incarnation: int) -> Any:
        # Job 0 tokens equal bare incarnations: one-shot wire traffic is
        # bit-identical to the pre-fleet solver.  A restart mid-arm may
        # run this on the supervise thread, so the job_seq read locks.
        with self._lock:
            token = encode_token(self._job_seq, incarnation)
        return self.transport.make_target_channel(worker_id, token)

    def _spawn_persistent(
        self, worker_id: int, incarnation: int, channel: Any
    ) -> Any:
        control = self.ctx.Queue()
        with self._lock:
            self._controls[worker_id] = control
            self._all_controls.append(control)
            # A replacement spawned mid-job (or mid-handshake) re-arms
            # with the *current* frame — never its predecessor's job.
            frame = (
                self._current_jobs[worker_id]
                if self._current_jobs is not None
                else None
            )
            token = encode_token(self._job_seq, incarnation)
        if frame is not None:
            control.put(frame)
        p = self.ctx.Process(
            target=_fleet_worker_main,
            args=(
                worker_id,
                incarnation,
                control,
                self.transport.worker_ref(worker_id, token, channel),
                self.stop_evt,
                self._ack_q,
                self._prepared_cache_size,
            ),
            daemon=True,
        )
        p.start()
        return p

    # ------------------------------------------------------------------
    # Job management (persistent fleets)
    # ------------------------------------------------------------------
    def next_job_seq(self) -> int:
        """Reserve the next job sequence number (starts at 1)."""
        with self._lock:
            return self._job_seq + 1

    def weights_ref_for(
        self, weights: Any, digest: str | None
    ) -> tuple[tuple, bool]:
        """``(weights_ref, cache_hit)`` for a job's problem weights.

        Dense matrices go through host-owned shared-memory segments
        cached by problem digest — repeat submissions of the same
        problem skip the copy entirely.  Sparse problems are small and
        ship by pickling, exactly like the one-shot solver.
        """
        from repro.qubo.sparse import SparseQubo

        if isinstance(weights, SparseQubo):
            return ("sparse", weights), False
        if digest is not None:
            shared = self._weights_cache.get(digest)
            if shared is not None:
                self._weights_cache.move_to_end(digest)
                if self.bus.enabled:
                    self.bus.counters.inc("service.weights_cache_hits")
                return ("shm", shared.descriptor), True
        shared = SharedWeights.create(np.ascontiguousarray(weights, dtype=np.int64))
        # Undigested segments still enter the cache (under a unique key)
        # so shutdown unlinks them; they just can never be re-hit.
        self._weights_cache[digest or f"anon-{shared.descriptor[0]}"] = shared
        while len(self._weights_cache) > max(1, self._weights_cache_size):
            self._weights_cache.popitem(last=False)[1].unlink()
        return ("shm", shared.descriptor), False

    def arm_job(self, jobs: list[WorkerJob]) -> None:
        """Deliver one job frame per worker and wait for the ack gate.

        ``jobs`` is indexed by worker id and must share one
        ``job_seq`` (from :meth:`next_job_seq`).  On return every
        healthy worker has re-armed its endpoint under the new epoch
        token, so the caller may publish initial targets on any
        transport without racing an un-re-armed consumer.  Workers that
        die during the handshake are restarted and re-armed at spawn;
        the call fails only when no healthy worker remains or the
        timeout expires.
        """
        if not self._persistent:
            raise RuntimeError("arm_job needs a persistent fleet")
        if self.supervisor is None:
            raise RuntimeError("fleet not started")
        if len(jobs) != self.n_workers:
            raise ValueError(f"need {self.n_workers} jobs, got {len(jobs)}")
        job_seq = jobs[0].job_seq
        with self._lock:
            prev_seq = self._job_seq
        if job_seq <= prev_seq:
            raise ValueError(
                f"job_seq must advance: {job_seq} <= {prev_seq}"
            )
        if any(j.job_seq != job_seq for j in jobs):
            raise ValueError("all jobs in one arm must share a job_seq")
        # Flush the previous job's buffered event bundles under *its*
        # sequence before the epoch moves — e.g. a reconnect that
        # landed after that job's host loop stopped polling.
        self.relay_events(self.bus, prev_seq)
        with self._lock:
            self._job_seq = job_seq
            self._current_jobs = list(jobs)
        self.jobs_armed += 1
        sup = self.supervisor
        # Live workers keep their incarnation; only the channel epoch
        # moves to the new job's token.
        sup.rebind_channels(
            lambda wid, inc, _old: self.transport.rebind_channel(
                wid, encode_token(job_seq, inc), _old
            )
        )
        # Snapshot: a mid-handshake restart adds its own control entry
        # and self-arms with the frame set above, so missing it is fine.
        with self._lock:
            controls = dict(self._controls)
        for wid in sup.healthy_ids:
            controls[wid].put(jobs[wid])
        acked: set[int] = set()
        deadline = time.monotonic() + self._arm_timeout
        while True:
            sup.poll()  # deaths mid-handshake respawn with the frame
            healthy = set(sup.healthy_ids)
            if not healthy:
                raise RuntimeError(
                    "all ABS workers died before finishing "
                    f"(after {sup.workers_restarted} restarts)"
                )
            if healthy <= acked:
                if self.bus.enabled:
                    self.bus.counters.inc("service.fleet_rearms")
                return
            try:
                wid, jseq = self._ack_q.get(timeout=0.1)
            except queue_mod.Empty:
                pass
            else:
                if jseq == job_seq:
                    acked.add(wid)
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"fleet re-arm timed out after {self._arm_timeout:.0f}s "
                    f"(acked {sorted(acked)}, healthy {sorted(healthy)})"
                )

    def relay_events(self, bus: "TelemetryBus | NullBus", job_seq: int) -> None:
        """Re-emit buffered worker-side event bundles for ``job_seq``.

        Worker telemetry (``device.round``, ``engine.*``, ``adapt.*``)
        and host-transport synthetics (``exchange.reconnect``) ride the
        transport's side channel; re-emit them stamped with the worker
        id, but only for the worker's current incarnation *and this
        job* — a killed predecessor's (or a previous job's) buffered
        events would misattribute counters otherwise.
        """
        if not bus.enabled or self.supervisor is None:
            self.transport.event_bundles()  # discard, don't accumulate
            return
        for wid, winc, wevents in self.transport.event_bundles():
            wseq, inc = decode_token(winc)
            if wseq != job_seq or inc != self.supervisor.incarnation(wid):
                continue
            if self.supervisor.target_channel(wid) is None:  # lost
                continue
            for name, fields in wevents:
                payload = dict(fields)
                payload.setdefault("device", wid)
                bus.emit(name, **payload)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop workers, drain queues, tear the transport down."""
        # Atomic test-and-set: the service can race its own failure
        # teardown against close(), and only one caller may proceed to
        # join/terminate/unlink below.
        with self._lock:
            if self._closed:
                return
            self._closed = True
            controls = list(self._controls.values())
            last_seq = self._job_seq
        self.stop_evt.set()
        for control in controls:
            try:
                control.put(_SHUTDOWN)
            except (OSError, ValueError):
                pass
        procs = self.supervisor.all_processes if self.supervisor else []
        deadline = time.monotonic() + 5.0
        for p in procs:
            p.join(timeout=max(0.1, deadline - time.monotonic()))
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        # Workers are down, so every frame they ever sent has been
        # accepted: one last relay catches bundles that arrived after
        # the host loop stopped polling (a late reconnect, the final
        # round's device events).
        try:
            self.relay_events(self.bus, last_seq)
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        # Drain channels so queue feeder threads can exit, then tear
        # down the transport (unlinks the shm rings/mailboxes).
        channels = self.supervisor.all_channels if self.supervisor else []
        with self._lock:
            all_controls = list(self._all_controls)
        for ch in list(channels) + all_controls:
            try:
                while True:
                    ch.get_nowait()
            except (queue_mod.Empty, OSError, EOFError, AttributeError):
                pass
        if self._ack_q is not None:
            try:
                while True:
                    self._ack_q.get_nowait()
            except (queue_mod.Empty, OSError, EOFError):
                pass
        self.transport.drain()
        self.transport.close()
        for shared in self._weights_cache.values():
            shared.unlink()
        self._weights_cache.clear()

    def __enter__(self) -> "WorkerFleet":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# The host search loop (shared by one-shot solves and service jobs)
# ----------------------------------------------------------------------
@dataclass
class SearchOutcome:
    """What one run of :func:`run_search_rounds` produced."""

    rounds: int = 0
    sweeps: int = 0
    evaluated: int = 0
    flips: int = 0
    engine_counts: dict[str, int] = field(default_factory=dict)
    history: list[tuple[float, int]] = field(default_factory=list)
    time_to_target: float | None = None
    was_cancelled: bool = False


def run_search_rounds(
    cfg: AbsConfig,
    host: Host,
    fleet: WorkerFleet,
    watch: Any,
    *,
    bus: TelemetryBus | NullBus,
    met_target: Callable[[float], bool],
    job_seq: int = 0,
    cancelled: Callable[[], bool] | None = None,
) -> SearchOutcome:
    """Drive one job's host loop over an armed fleet (Figure 5 host).

    The fleet's workers must already be running the job identified by
    ``job_seq`` (one-shot: spawned with it; persistent: armed via
    :meth:`WorkerFleet.arm_job`).  Publishes initial targets, then
    polls results / supervises / answers with fresh GA targets until a
    stop criterion fires.  Frames from *other* jobs — a previous job's
    results still in flight after a re-arm — only feed the liveness
    clock; their solutions, counters, and events are dropped (absorbing
    a stale job's solution into a different problem's pool would be
    wrong, not merely stale).
    """
    transport = fleet.transport
    supervisor = fleet.supervisor
    out = SearchOutcome()
    rounds_by_worker = [0] * cfg.n_gpus
    prepared: list[np.ndarray | None] = [None] * cfg.n_gpus
    eval_by_worker = [0] * cfg.n_gpus
    flips_by_worker = [0] * cfg.n_gpus
    counts_by_worker: list[dict[str, int]] = [{} for _ in range(cfg.n_gpus)]
    banked_eval = 0
    banked_flips = 0
    banked_counts: dict[str, int] = {}

    def _bank(g: int) -> None:
        # Fold the defunct incarnation's cumulative totals into the
        # run accumulators and reset the per-worker latest slots for
        # the replacement (which restarts its counters from zero).
        nonlocal banked_eval, banked_flips
        banked_eval += eval_by_worker[g]
        banked_flips += flips_by_worker[g]
        eval_by_worker[g] = 0
        flips_by_worker[g] = 0
        _merge_counts(banked_counts, counts_by_worker[g])
        counts_by_worker[g] = {}

    def _supervise() -> None:
        for action in supervisor.poll():
            _bank(action.worker_id)
            if action.kind == "restart":
                # Rehydrate the replacement from the current pool:
                # Algorithm 5 walks it from the zero state to these
                # targets, so no other worker state needs recovery.
                # (The channel is the replacement's — for the shm
                # transport it publishes under the new epoch into
                # the same surviving mailbox.)
                ch = supervisor.target_channel(action.worker_id)
                if ch is not None:
                    ch.put(
                        host.make_targets(
                            cfg.blocks_per_gpu, device=action.worker_id
                        )
                    )
                    if cfg.pipeline:
                        prepared[action.worker_id] = host.make_targets(
                            cfg.blocks_per_gpu, device=action.worker_id
                        )

    def _relay_events() -> None:
        # See WorkerFleet.relay_events; the fleet also drains late
        # bundles at re-arm and shutdown so nothing is dropped.
        fleet.relay_events(bus, job_seq)

    targets = host.initial_targets(cfg.total_blocks)
    for g in range(cfg.n_gpus):
        ch = supervisor.target_channel(g)
        if ch is not None:
            lo = g * cfg.blocks_per_gpu
            ch.put(np.ascontiguousarray(targets[lo : lo + cfg.blocks_per_gpu]))
    if cfg.pipeline:
        for g in range(cfg.n_gpus):
            prepared[g] = host.make_targets(cfg.blocks_per_gpu, device=g)

    done = False
    while not done:
        _supervise()
        batch = transport.poll(timeout=0.25)
        if batch is None:
            if cancelled is not None and cancelled():
                out.was_cancelled = True
                break
            if cfg.time_limit is not None and watch.elapsed >= cfg.time_limit:
                break
            if supervisor.n_healthy == 0:
                raise RuntimeError(
                    "all ABS workers died before finishing "
                    f"(after {supervisor.workers_restarted} restarts)"
                )
            continue
        worker_id = batch.worker_id
        batch_seq, batch_inc = decode_token(batch.incarnation)
        if batch_seq != job_seq:
            # A previous job's result still in flight: proof of life,
            # nothing else — its solutions belong to another problem.
            supervisor.note_result(worker_id, batch_inc)
            continue
        out.rounds += 1
        rounds_by_worker[worker_id] += 1
        fresh_result = supervisor.note_result(worker_id, batch_inc)
        if fresh_result:
            if bus.enabled:
                # Session counters reconcile from the cumulative
                # worker snapshots: increment by the delta since
                # the previous report of this incarnation.
                prev = counts_by_worker[worker_id]
                for key, value in batch.counters.items():
                    delta = int(value) - int(prev.get(key, 0))
                    if delta:
                        bus.counters.inc(key, delta)
            eval_by_worker[worker_id] = batch.evaluated
            flips_by_worker[worker_id] = batch.flips
            counts_by_worker[worker_id] = batch.counters
        if bus.enabled:
            bus.counters.inc("host.rounds")
            if fresh_result:
                _relay_events()
            bus.emit(
                "worker.result",
                worker=worker_id,
                round=out.rounds,
                best_energy=int(batch.energies.min()),
                evaluated=batch.evaluated,
                flips=batch.flips,
            )
        if cfg.pipeline and prepared[worker_id] is not None:
            # Answer the result with the pre-generated batch
            # *before* absorbing — the worker's next round never
            # waits on host GA latency.
            ch = supervisor.target_channel(worker_id)
            if ch is not None:
                ch.put(prepared[worker_id])
                prepared[worker_id] = None
        host.absorb_batch(batch.energies, batch.x)
        if bus.enabled:
            bus.emit(
                "host.round",
                round=out.rounds,
                device=worker_id,
                best_energy=host.best_energy,
                pool_size=len(host.pool),
                elapsed=watch.elapsed,
            )
        if math.isfinite(host.best_energy):
            out.history.append((watch.elapsed, int(host.best_energy)))
        if met_target(host.best_energy):
            if out.time_to_target is None:
                out.time_to_target = watch.elapsed
            done = True
        elif cancelled is not None and cancelled():
            out.was_cancelled = True
            done = True
        elif cfg.time_limit is not None and watch.elapsed >= cfg.time_limit:
            done = True
        elif cfg.max_rounds is not None and out.rounds >= cfg.max_rounds:
            done = True
        elif cfg.pipeline:
            # Step 4, pipelined: this batch answers the *next*
            # result (targets one pool-state staler — the
            # asynchrony the paper already tolerates).
            if supervisor.target_channel(worker_id) is not None:
                prepared[worker_id] = host.make_targets(
                    cfg.blocks_per_gpu, device=worker_id
                )
        else:
            # Step 4: as many fresh targets as solutions arrived
            # — but never feed a channel nobody reads any more.
            ch = supervisor.target_channel(worker_id)
            if ch is not None:
                ch.put(host.make_targets(cfg.blocks_per_gpu, device=worker_id))
                if bus.enabled:
                    tq, rq = transport.queue_depths(worker_id, ch)
                    bus.emit(
                        "host.queue",
                        device=worker_id,
                        targets_queued=tq,
                        results_queued=rq,
                    )

    if bus.enabled:
        # Late bundles — e.g. a reconnect during the final round —
        # would otherwise be dropped with the run already decided.
        _relay_events()
    out.engine_counts = dict(banked_counts)
    for wcounts in counts_by_worker:
        _merge_counts(out.engine_counts, wcounts)
    out.evaluated = sum(eval_by_worker) + banked_eval
    out.flips = sum(flips_by_worker) + banked_flips
    healthy = supervisor.healthy_ids
    sweep_counts = [rounds_by_worker[g] for g in healthy] or rounds_by_worker
    out.sweeps = min(sweep_counts)
    return out


def assemble_process_result(
    cfg: AbsConfig,
    n: int,
    host: Host,
    outcome: SearchOutcome,
    elapsed: float,
    *,
    met_target: Callable[[float], bool],
    bus: TelemetryBus | NullBus,
    restarts: int,
    lost: int,
    transport_stats: dict[str, int],
    setup_ns: int = 0,
    search_ns: int = 0,
) -> SolveResult:
    """Build the :class:`SolveResult` for one process-mode run.

    ``restarts``/``lost``/``transport_stats`` are *per-job* numbers —
    the service diffs the fleet's lifetime totals against the values at
    job start so a long-lived fleet's history does not leak into every
    result.  ``setup_ns``/``search_ns`` land on the result (and the
    session counters when telemetry is on) but deliberately **not** in
    ``result.counters``: that snapshot is pinned bit-identical across
    runs, transports, and telemetry on/off, and wall-clock never is.
    """
    engine_counts = dict(outcome.engine_counts)
    adapt_total = int(engine_counts.pop("adapt.reassignments", 0))
    best_x = host.best_x if host.best_x is not None else np.zeros(n, np.uint8)
    best_e = int(host.best_energy) if math.isfinite(host.best_energy) else 0
    if bus.enabled:
        bus.counters.inc("solver.setup_ns", setup_ns)
        bus.counters.inc("solver.search_ns", search_ns)
    return SolveResult(
        best_x=best_x,
        best_energy=best_e,
        elapsed=elapsed,
        rounds=outcome.rounds,
        sweeps=outcome.sweeps,
        evaluated=outcome.evaluated,
        flips=outcome.flips,
        reached_target=met_target(host.best_energy),
        time_to_target=outcome.time_to_target,
        history=outcome.history,
        n_gpus=cfg.n_gpus,
        counters=_counter_snapshot(
            host,
            engine_counts,
            adapt_total,
            extra={
                "supervisor.restarts": restarts,
                "supervisor.workers_lost": lost,
                # Process-mode fleets are static; keep the key for
                # counter parity with sync-mode snapshots.
                "adapt.variant_reassignments": 0,
                **transport_stats,
            },
        ),
        workers_restarted=restarts,
        workers_lost=lost,
        pool_mean_distance=host.pool.mean_pairwise_distance(),
        setup_ns=setup_ns,
        search_ns=search_ns,
    )
