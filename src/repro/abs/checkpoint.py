"""Checkpointing: persist and restore engine and pool state.

Long solves (the paper's hard TSP instances, large decompositions)
benefit from restartability.  Because the bulk engine's entire state is
a handful of arrays and the walk is deterministic given that state, a
checkpoint-restored engine continues **bit-for-bit identically** to an
uninterrupted run — which the tests assert, making checkpointing safe
to use mid-experiment.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Union

import numpy as np

from repro.ga.pool import SolutionPool
from repro.gpusim.engine import BulkSearchEngine
from repro.qubo.matrix import WeightsLike

PathLike = Union[str, Path]

_ENGINE_MAGIC = "repro-engine-checkpoint"
_POOL_MAGIC = "repro-pool-checkpoint"


class CheckpointError(ValueError):
    """Raised for malformed or mismatched checkpoint files."""


def save_engine(engine: BulkSearchEngine, path: PathLike) -> None:
    """Write the engine's full mutable state as compressed ``.npz``.

    The weight matrix is *not* stored (it is immutable input); pass the
    same weights to :func:`load_engine`.
    """
    c = engine.counters
    np.savez_compressed(
        Path(path),
        magic=np.array(_ENGINE_MAGIC),
        n=np.array(engine.n),
        B=np.array(engine.B),
        X=engine.X,
        delta=engine.delta,
        energy=engine.energy,
        best_energy=engine.best_energy,
        best_x=engine.best_x,
        windows=engine.windows,
        offsets=engine.offsets,
        counters=np.array(
            [
                c.flips,
                c.evaluated,
                c.straight_flips,
                c.local_flips,
                c.straight_retirements,
                c.delta_updates,
            ],
            dtype=np.int64,
        ),
    )


def load_engine(weights: WeightsLike, path: PathLike) -> BulkSearchEngine:
    """Rebuild an engine from ``weights`` + a checkpoint.

    Raises :class:`CheckpointError` if the file is not an engine
    checkpoint or its dimensions do not match ``weights``.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        if str(data.get("magic", "")) != _ENGINE_MAGIC:
            raise CheckpointError(f"{path}: not an engine checkpoint")
        n = int(data["n"])
        B = int(data["B"])
        from repro.qubo.energy import weights_size

        w_n = weights_size(weights)
        if w_n != n:
            raise CheckpointError(
                f"{path}: checkpoint is for n={n}, weights have n={w_n}"
            )
        engine = BulkSearchEngine(
            weights, B, windows=data["windows"], offsets=data["offsets"]
        )
        engine.X[:] = data["X"]
        engine.delta[:] = data["delta"]
        engine.energy[:] = data["energy"]
        engine.best_energy[:] = data["best_energy"]
        engine.best_x[:] = data["best_x"]
        # Length 4 = pre-telemetry checkpoints (no retirement counter);
        # length 5 = pre-backend checkpoints (no delta_updates).
        stored = [int(v) for v in data["counters"]]
        c = engine.counters
        c.flips, c.evaluated, c.straight_flips, c.local_flips = stored[:4]
        c.straight_retirements = stored[4] if len(stored) > 4 else 0
        c.delta_updates = stored[5] if len(stored) > 5 else 0
    return engine


def save_pool(pool: SolutionPool, path: PathLike) -> None:
    """Write a solution pool as compressed ``.npz``.

    ``+∞`` energies (unevaluated seeds) are stored as NaN and restored
    as ``math.inf``.
    """
    entries = list(pool)
    energies = np.array(
        [math.nan if math.isinf(e.energy) else e.energy for e in entries],
        dtype=np.float64,
    )
    if entries:
        xs = np.stack([e.x for e in entries]).astype(np.uint8)
    else:
        xs = np.zeros((0, pool.n), dtype=np.uint8)
    np.savez_compressed(
        Path(path),
        magic=np.array(_POOL_MAGIC),
        n=np.array(pool.n),
        capacity=np.array(pool.capacity),
        energies=energies,
        xs=xs,
    )


def load_pool(path: PathLike) -> SolutionPool:
    """Rebuild a solution pool from a checkpoint."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        if str(data.get("magic", "")) != _POOL_MAGIC:
            raise CheckpointError(f"{path}: not a pool checkpoint")
        pool = SolutionPool(int(data["n"]), int(data["capacity"]))
        for e, x in zip(data["energies"], data["xs"]):
            pool.insert(x.astype(np.uint8), math.inf if math.isnan(e) else float(e))
    pool.check_invariants()
    return pool
