"""Device specifications for the simulated GPUs.

Numbers for the RTX 2080 Ti come from §3.2 of the paper (Turing,
compute capability 7.5): 68 SMs, 1024 resident threads (32 warps) per
SM, 64 K 32-bit registers per SM, 64 KB shared memory, 11 GB GDDR6.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Static resource description of one GPU.

    Attributes mirror the CUDA occupancy-relevant limits; anything the
    paper's implementation depends on is here.
    """

    name: str
    sm_count: int
    max_threads_per_sm: int
    max_threads_per_block: int
    warp_size: int
    registers_per_sm: int          # 32-bit registers
    shared_mem_per_sm: int         # bytes
    global_mem: int                # bytes
    compute_capability: str = ""

    def __post_init__(self) -> None:
        for field_name in (
            "sm_count",
            "max_threads_per_sm",
            "max_threads_per_block",
            "warp_size",
            "registers_per_sm",
            "shared_mem_per_sm",
            "global_mem",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.max_threads_per_block > self.max_threads_per_sm:
            raise ValueError(
                "max_threads_per_block cannot exceed max_threads_per_sm"
            )
        if self.max_threads_per_sm % self.warp_size:
            raise ValueError("max_threads_per_sm must be a warp multiple")

    @property
    def max_warps_per_sm(self) -> int:
        """Resident-warp limit per SM (32 for Turing)."""
        return self.max_threads_per_sm // self.warp_size

    @property
    def registers_per_thread_at_full_occupancy(self) -> int:
        """Registers each thread may use with every thread slot filled.

        64 K regs / 1024 threads = 64 on Turing — the figure the paper
        uses to bound bits-per-thread (hence the 32 k-bit limit).
        """
        return self.registers_per_sm // self.max_threads_per_sm


#: The paper's device (§3.2).
RTX_2080_TI = DeviceSpec(
    name="NVIDIA GeForce RTX 2080 Ti",
    sm_count=68,
    max_threads_per_sm=1024,
    max_threads_per_block=1024,
    warp_size=32,
    registers_per_sm=64 * 1024,
    shared_mem_per_sm=64 * 1024,
    global_mem=11 * 1024**3,
    compute_capability="7.5",
)

#: The device of the simulated-bifurcation comparison row (Table 3).
TESLA_V100 = DeviceSpec(
    name="NVIDIA Tesla V100-SXM2",
    sm_count=80,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    warp_size=32,
    registers_per_sm=64 * 1024,
    shared_mem_per_sm=96 * 1024,
    global_mem=16 * 1024**3,
    compute_capability="7.0",
)

_CATALOG = {spec.name: spec for spec in (RTX_2080_TI, TESLA_V100)}
_CATALOG["rtx2080ti"] = RTX_2080_TI
_CATALOG["v100"] = TESLA_V100


def get_device(name: str) -> DeviceSpec:
    """Look up a device by full or short name (case-insensitive short)."""
    if name in _CATALOG:
        return _CATALOG[name]
    key = name.lower().replace(" ", "").replace("-", "")
    for alias, spec in _CATALOG.items():
        if alias.lower().replace(" ", "").replace("-", "") == key:
            return spec
    raise KeyError(f"unknown device {name!r}; known: {sorted(_CATALOG)}")
