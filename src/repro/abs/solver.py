"""The top-level ABS solver: host + devices in sync or process mode.

``"sync"`` mode interleaves the host loop and device rounds in one
process — deterministic given a seed, and the mode every
time-to-solution benchmark uses.  ``"process"`` mode launches one OS
process per simulated GPU, mirroring the paper's multi-GPU deployment:
the weight matrix lives in shared memory (one copy, like GPU global
memory), targets flow host → device and solutions device → host through
queues, and nobody blocks on anybody — a device that sees no fresh
targets keeps searching from its current state, exactly the paper's
asynchronous tolerance.
"""

from __future__ import annotations

import math
import queue as queue_mod
import time
from multiprocessing import Event, Process, Queue, get_context

import numpy as np

from repro.abs.adaptive import WindowAdapter
from repro.abs.buffers import SharedWeights, StoredSolution
from repro.abs.config import AbsConfig, resolve_windows
from repro.abs.device import DeviceSimulator
from repro.abs.host import Host
from repro.abs.result import SolveResult
from repro.qubo.matrix import WeightsLike, as_weight_matrix
from repro.telemetry.bus import NULL_BUS, NullBus, TelemetryBus
from repro.utils.rng import RngFactory
from repro.utils.timer import Stopwatch


def _counter_snapshot(
    host: Host, engine_counters: dict[str, int], adapt_total: int
) -> dict[str, int]:
    """Per-run counter snapshot for :attr:`SolveResult.counters`.

    Derived from component state after the run finishes — available
    whether or not a telemetry bus was attached.  ``pool.inserted``
    includes the initial random seeding (Step 1 inserts at ``+∞``).
    """
    counts = host.generator.counts
    snap = {
        "host.solutions_absorbed": host.absorbed,
        "pool.inserted": host.pool.inserted,
        "pool.rejected_duplicate": host.pool.rejected_duplicate,
        "pool.rejected_worse": host.pool.rejected_worse,
        "ga.mutation": counts["mutation"],
        "ga.crossover": counts["crossover"],
        "ga.copy": counts["copy"],
        "adapt.reassignments": adapt_total,
    }
    snap.update(engine_counters)
    return dict(sorted(snap.items()))


def _merge_counts(into: dict[str, int], add: dict[str, int]) -> None:
    for key, value in add.items():
        into[key] = into.get(key, 0) + int(value)


class AdaptiveBulkSearch:
    """Adaptive Bulk Search over a QUBO instance.

    Example
    -------
    >>> from repro.qubo import QuboMatrix
    >>> from repro.abs import AdaptiveBulkSearch, AbsConfig
    >>> q = QuboMatrix.random(64, seed=0)
    >>> res = AdaptiveBulkSearch(q, AbsConfig(max_rounds=20, seed=1)).solve()
    >>> res.best_energy <= 0
    True
    """

    def __init__(
        self,
        weights: WeightsLike,
        config: AbsConfig | None = None,
        *,
        telemetry: TelemetryBus | NullBus | None = None,
    ) -> None:
        from repro.qubo.sparse import SparseQubo

        if isinstance(weights, SparseQubo):
            self.W: object = weights
            self.n = weights.n
        else:
            self.W = as_weight_matrix(weights)
            self.n = self.W.shape[0]
        if self.n < 1:
            raise ValueError("problem must have at least one bit")
        self.config = config or AbsConfig(max_rounds=100)
        #: Telemetry bus; :data:`~repro.telemetry.NULL_BUS` (all no-ops)
        #: unless the caller wires one in.  The solver never closes it —
        #: lifecycle belongs to whoever attached the sinks.
        self.bus = telemetry if telemetry is not None else NULL_BUS

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self, mode: str = "sync") -> SolveResult:
        """Run to a stopping criterion; returns the best found solution."""
        if mode == "sync":
            return self._solve_sync()
        if mode == "process":
            return self._solve_process()
        raise ValueError(f"unknown mode {mode!r} (use 'sync' or 'process')")

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _met_target(self, energy: float) -> bool:
        t = self.config.target_energy
        return t is not None and energy <= t

    def _device_windows(self, factory: RngFactory) -> list[np.ndarray]:
        """Per-device window arrays; devices get rotated ladders so the
        temperature spread differs across GPUs."""
        cfg = self.config
        base = resolve_windows(cfg.window, cfg.blocks_per_gpu, self.n)
        return [np.roll(base, g) for g in range(cfg.n_gpus)]

    @staticmethod
    def _stack_targets(targets: list[np.ndarray]) -> np.ndarray:
        return np.ascontiguousarray(np.stack(targets).astype(np.uint8))

    def _make_adapter(self, factory: RngFactory, g: int) -> WindowAdapter | None:
        cfg = self.config
        if not cfg.adapt_windows:
            return None
        return WindowAdapter(
            self.n,
            cfg.blocks_per_gpu,
            period=cfg.adapt_period,
            fraction=cfg.adapt_fraction,
            seed=factory.stream("adapt", g),
            bus=self.bus,
        )

    def _emit_start(self, mode: str) -> None:
        cfg = self.config
        self.bus.emit(
            "solve.start",
            mode=mode,
            n=self.n,
            n_gpus=cfg.n_gpus,
            blocks_per_gpu=cfg.blocks_per_gpu,
            local_steps=cfg.local_steps,
            pool_capacity=cfg.pool_capacity,
            seed=cfg.seed,
            adapt_windows=cfg.adapt_windows,
        )

    def _emit_end(self, result: SolveResult) -> None:
        self.bus.emit(
            "solve.end",
            best_energy=result.best_energy,
            rounds=result.rounds,
            elapsed=result.elapsed,
            evaluated=result.evaluated,
            flips=result.flips,
            reached_target=result.reached_target,
        )

    # ------------------------------------------------------------------
    # Sync mode
    # ------------------------------------------------------------------
    def _solve_sync(self) -> SolveResult:
        cfg = self.config
        bus = self.bus
        factory = RngFactory(cfg.seed)
        host = Host(self.n, cfg.pool_capacity, cfg.ga, rng_factory=factory, bus=bus)
        windows = self._device_windows(factory)
        devices = [
            DeviceSimulator(
                self.W,
                cfg.blocks_per_gpu,
                windows=windows[g],
                local_steps=cfg.local_steps,
                scan_neighbors=cfg.scan_neighbors,
                adapter=self._make_adapter(factory, g),
                bus=bus,
                device_id=g,
            )
            for g in range(cfg.n_gpus)
        ]

        if bus.enabled:
            self._emit_start("sync")
        watch = Stopwatch().start()
        targets = host.initial_targets(cfg.total_blocks)
        history: list[tuple[float, int]] = []
        rounds = 0
        flips = 0
        time_to_target: float | None = None
        done = False

        while not done:
            for g, device in enumerate(devices):
                lo = g * cfg.blocks_per_gpu
                batch = self._stack_targets(targets[lo : lo + cfg.blocks_per_gpu])
                sols = device.round(batch)
                host.absorb(sols)
                rounds += 1
                if bus.enabled:
                    bus.counters.inc("host.rounds")
                    bus.emit(
                        "host.round",
                        round=rounds,
                        device=g,
                        best_energy=host.best_energy,
                        pool_size=len(host.pool),
                        elapsed=watch.elapsed,
                    )
                if self._met_target(host.best_energy):
                    if time_to_target is None:
                        time_to_target = watch.elapsed
                    done = True
                    break
                if cfg.time_limit is not None and watch.elapsed >= cfg.time_limit:
                    done = True
                    break
                if cfg.max_rounds is not None and rounds >= cfg.max_rounds:
                    done = True
                    break
            if math.isfinite(host.best_energy):
                history.append((watch.elapsed, int(host.best_energy)))
            if not done:
                targets = host.make_targets(cfg.total_blocks)

        elapsed = watch.stop()
        evaluated = sum(d.evaluated for d in devices)
        flips = sum(d.engine.counters.flips for d in devices)
        engine_counts: dict[str, int] = {}
        for d in devices:
            _merge_counts(engine_counts, d.engine.counters.as_dict())
        adapt_total = sum(
            d.adapter.adaptations for d in devices if d.adapter is not None
        )
        best_x = host.best_x if host.best_x is not None else np.zeros(self.n, np.uint8)
        best_e = int(host.best_energy) if math.isfinite(host.best_energy) else 0
        result = SolveResult(
            best_x=best_x,
            best_energy=best_e,
            elapsed=elapsed,
            rounds=rounds,
            evaluated=evaluated,
            flips=flips,
            reached_target=self._met_target(host.best_energy),
            time_to_target=time_to_target,
            history=history,
            n_gpus=cfg.n_gpus,
            counters=_counter_snapshot(host, engine_counts, adapt_total),
        )
        if bus.enabled:
            self._emit_end(result)
        return result

    # ------------------------------------------------------------------
    # Process mode
    # ------------------------------------------------------------------
    def _solve_process(self) -> SolveResult:
        cfg = self.config
        bus = self.bus
        factory = RngFactory(cfg.seed)
        host = Host(self.n, cfg.pool_capacity, cfg.ga, rng_factory=factory, bus=bus)
        windows = self._device_windows(factory)

        from repro.qubo.sparse import SparseQubo

        ctx = get_context("fork")
        # Dense matrices go through shared memory (they are the bulk of
        # the footprint — the analogue of GPU global memory).  Sparse
        # problems are small; they ship to workers by pickling.
        if isinstance(self.W, SparseQubo):
            shared = None
            weights_ref = ("sparse", self.W)
        else:
            shared = SharedWeights.create(
                np.ascontiguousarray(self.W, dtype=np.int64)
            )
            weights_ref = ("shm", shared.descriptor)
        stop_evt = ctx.Event()
        result_q: Queue = ctx.Queue()
        target_qs: list[Queue] = [ctx.Queue() for _ in range(cfg.n_gpus)]
        procs: list[Process] = []
        watch = Stopwatch().start()
        history: list[tuple[float, int]] = []
        rounds = 0
        time_to_target: float | None = None
        eval_by_worker = [0] * cfg.n_gpus
        flips_by_worker = [0] * cfg.n_gpus
        # Latest cumulative counter dict reported by each worker.
        counts_by_worker: list[dict[str, int]] = [{} for _ in range(cfg.n_gpus)]

        if bus.enabled:
            self._emit_start("process")
        try:
            for g in range(cfg.n_gpus):
                p = ctx.Process(
                    target=_worker_main,
                    args=(
                        g,
                        weights_ref,
                        cfg.blocks_per_gpu,
                        windows[g],
                        cfg.local_steps,
                        cfg.scan_neighbors,
                        (
                            cfg.adapt_windows,
                            cfg.adapt_period,
                            cfg.adapt_fraction,
                            int(factory.stream("adapt-seed", g).integers(2**62)),
                        ),
                        target_qs[g],
                        result_q,
                        stop_evt,
                    ),
                    daemon=True,
                )
                p.start()
                procs.append(p)

            targets = host.initial_targets(cfg.total_blocks)
            for g in range(cfg.n_gpus):
                lo = g * cfg.blocks_per_gpu
                target_qs[g].put(
                    self._stack_targets(targets[lo : lo + cfg.blocks_per_gpu])
                )

            done = False
            while not done:
                try:
                    worker_id, energies, xs, evaluated, flips, wcounts = result_q.get(
                        timeout=0.25
                    )
                except queue_mod.Empty:
                    if cfg.time_limit is not None and watch.elapsed >= cfg.time_limit:
                        break
                    if not any(p.is_alive() for p in procs):
                        raise RuntimeError("all ABS workers died before finishing")
                    continue
                rounds += 1
                eval_by_worker[worker_id] = evaluated
                flips_by_worker[worker_id] = flips
                counts_by_worker[worker_id] = wcounts
                if bus.enabled:
                    bus.counters.inc("host.rounds")
                    bus.emit(
                        "worker.result",
                        worker=worker_id,
                        round=rounds,
                        best_energy=int(energies.min()),
                        evaluated=evaluated,
                        flips=flips,
                    )
                host.absorb(
                    StoredSolution(int(e), x) for e, x in zip(energies, xs)
                )
                if bus.enabled:
                    bus.emit(
                        "host.round",
                        round=rounds,
                        device=worker_id,
                        best_energy=host.best_energy,
                        pool_size=len(host.pool),
                        elapsed=watch.elapsed,
                    )
                if math.isfinite(host.best_energy):
                    history.append((watch.elapsed, int(host.best_energy)))
                if self._met_target(host.best_energy):
                    if time_to_target is None:
                        time_to_target = watch.elapsed
                    done = True
                elif cfg.time_limit is not None and watch.elapsed >= cfg.time_limit:
                    done = True
                elif cfg.max_rounds is not None and rounds >= cfg.max_rounds:
                    done = True
                else:
                    # Step 4: as many fresh targets as solutions arrived.
                    fresh = host.make_targets(cfg.blocks_per_gpu)
                    target_qs[worker_id].put(self._stack_targets(fresh))
                    if bus.enabled:
                        bus.emit(
                            "host.queue",
                            device=worker_id,
                            targets_queued=_safe_qsize(target_qs[worker_id]),
                            results_queued=_safe_qsize(result_q),
                        )
        finally:
            stop_evt.set()
            deadline = time.monotonic() + 5.0
            for p in procs:
                p.join(timeout=max(0.1, deadline - time.monotonic()))
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=1.0)
            # Drain queues so their feeder threads can exit.
            for q in (*target_qs, result_q):
                try:
                    while True:
                        q.get_nowait()
                except (queue_mod.Empty, OSError, EOFError):
                    pass
            if shared is not None:
                shared.unlink()

        elapsed = watch.stop()
        engine_counts: dict[str, int] = {}
        adapt_total = 0
        for wcounts in counts_by_worker:
            adapt_total += int(wcounts.pop("adapt.reassignments", 0))
            _merge_counts(engine_counts, wcounts)
        best_x = host.best_x if host.best_x is not None else np.zeros(self.n, np.uint8)
        best_e = int(host.best_energy) if math.isfinite(host.best_energy) else 0
        result = SolveResult(
            best_x=best_x,
            best_energy=best_e,
            elapsed=elapsed,
            rounds=rounds,
            evaluated=sum(eval_by_worker),
            flips=sum(flips_by_worker),
            reached_target=self._met_target(host.best_energy),
            time_to_target=time_to_target,
            history=history,
            n_gpus=cfg.n_gpus,
            counters=_counter_snapshot(host, engine_counts, adapt_total),
        )
        if bus.enabled:
            self._emit_end(result)
        return result


def _safe_qsize(q: "Queue") -> int:
    """``Queue.qsize`` is approximate and unimplemented on some
    platforms (macOS); report -1 rather than crash the host loop."""
    try:
        return q.qsize()
    except (NotImplementedError, OSError):
        return -1


def _worker_main(
    worker_id: int,
    weights_ref: tuple,
    n_blocks: int,
    windows: np.ndarray,
    local_steps: int,
    scan_neighbors: bool,
    adapt_params: tuple,
    target_q: "Queue",
    result_q: "Queue",
    stop_evt: "Event",
) -> None:
    """Device-process entry point (module-level for picklability).

    ``weights_ref`` is ``("shm", descriptor)`` for a dense matrix in
    shared memory or ``("sparse", SparseQubo)`` shipped by pickle.
    Runs rounds forever: refresh targets if any are queued (otherwise
    keep the previous ones — the device never idles), run Steps 3–5,
    ship the per-block bests with cumulative counters.
    """
    kind, payload = weights_ref
    if kind == "shm":
        shared = SharedWeights.attach(payload)
        weights = shared.array
    else:
        shared = None
        weights = payload
    adapt_enabled, adapt_period, adapt_fraction, adapt_seed = adapt_params
    adapter = (
        WindowAdapter(
            weights.n if hasattr(weights, "n") else weights.shape[0],
            n_blocks,
            period=adapt_period,
            fraction=adapt_fraction,
            seed=adapt_seed,
        )
        if adapt_enabled
        else None
    )
    try:
        device = DeviceSimulator(
            weights,
            n_blocks,
            windows=windows,
            local_steps=local_steps,
            scan_neighbors=scan_neighbors,
            adapter=adapter,
        )
        targets: np.ndarray | None = None
        while targets is None and not stop_evt.is_set():
            try:
                targets = target_q.get(timeout=0.1)
            except queue_mod.Empty:
                continue
        while not stop_evt.is_set():
            sols = device.round(targets)
            energies = np.fromiter(
                (s.energy for s in sols), dtype=np.int64, count=len(sols)
            )
            xs = np.stack([s.x for s in sols])
            wcounts = device.engine.counters.as_dict()
            wcounts["adapt.reassignments"] = (
                adapter.adaptations if adapter is not None else 0
            )
            result_q.put(
                (
                    worker_id,
                    energies,
                    xs,
                    device.evaluated,
                    device.engine.counters.flips,
                    wcounts,
                )
            )
            try:
                while True:  # keep only the freshest queued targets
                    targets = target_q.get_nowait()
            except queue_mod.Empty:
                pass
    except (KeyboardInterrupt, BrokenPipeError):  # parent went away
        pass
    finally:
        if shared is not None:
            shared.close()
