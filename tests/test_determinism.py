"""Golden determinism tests.

These pin the exact outputs of seeded runs.  Their purpose is to catch
*accidental* changes to any random stream or algorithmic detail — a
refactor that alters results silently would otherwise look green.  If
one of these fails after an intentional behaviour change, regenerate
the golden values (each test says how) and update them deliberately.

NumPy guarantees stream stability for a given ``Generator`` /
``SeedSequence``, so these values are stable across platforms and
supported NumPy versions.
"""

import numpy as np

from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.qubo import QuboMatrix
from repro.search import BulkLocalSearch, WindowMinDeltaPolicy


class TestGoldenValues:
    def test_random_matrix_checksum(self):
        """QuboMatrix.random(16, seed=1) is pinned by its weight sum.

        Regenerate: ``int(QuboMatrix.random(16, seed=1).W.sum())``.
        """
        q = QuboMatrix.random(16, seed=1)
        assert int(q.W.sum()) == 211969

    def test_bulk_search_trajectory(self):
        """A seeded Algorithm-4 walk is pinned by its final energy.

        Regenerate: run the exact call below and read the record.
        """
        q = QuboMatrix.random(32, seed=2)
        rec = BulkLocalSearch(WindowMinDeltaPolicy(4)).run(
            q, np.zeros(32, dtype=np.uint8), steps=100, seed=3
        )
        assert rec.final_energy == int(
            __import__("repro.qubo.energy", fromlist=["energy"]).energy(
                q, rec.final_x
            )
        )
        golden_best = rec.best_energy
        rec2 = BulkLocalSearch(WindowMinDeltaPolicy(4)).run(
            q, np.zeros(32, dtype=np.uint8), steps=100, seed=3
        )
        assert rec2.best_energy == golden_best
        assert np.array_equal(rec.final_x, rec2.final_x)

    def test_solver_golden_energy(self):
        """A fully seeded sync solve is bit-stable.

        Regenerate: run the call below twice and compare — then pin the
        observed value here.
        """
        q = QuboMatrix.random(24, seed=4)
        cfg = AbsConfig(blocks_per_gpu=8, local_steps=16, max_rounds=10, seed=5)
        first = AdaptiveBulkSearch(q, cfg).solve("sync")
        second = AdaptiveBulkSearch(q, cfg).solve("sync")
        assert first.best_energy == second.best_energy
        assert first.evaluated == second.evaluated
        assert np.array_equal(first.best_x, second.best_x)

    def test_rng_factory_streams_pinned(self):
        """Named streams are part of the public reproducibility contract.

        Regenerate: ``RngFactory(0).stream("ga").integers(1000)``.
        """
        from repro.utils.rng import RngFactory

        assert int(RngFactory(0).stream("ga").integers(1000)) == 935
        assert int(RngFactory(0).stream("worker", 3).integers(1000)) == 596
