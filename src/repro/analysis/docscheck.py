"""Documentation consistency checker (``make docs-check``).

Docs rot in two characteristic ways: relative links break when files
move, and CLI examples keep flags that the parser renamed (the
``analyze`` → ``landscape`` rename left exactly such fossils).  This
checker walks ``README.md`` and ``docs/*.md`` and verifies:

1. **Links** — every relative markdown link target outside a code
   fence resolves to an existing file (fragments are stripped first;
   ``http(s)://``, ``mailto:`` and pure-``#`` anchors are skipped).
   This covers the ``docs/index.md`` documentation map and all
   cross-references between docs pages.
2. **CLI examples** — inside code fences, every ``python -m repro
   <subcommand>`` / ``abs-solve <subcommand>`` invocation names a real
   subcommand, and every ``--flag`` it shows exists on that
   subcommand's parser (or as a global flag).  The inventory is built
   live from ``repro.cli.build_parser()``, so a flag rename breaks the
   docs build instead of the reader.
3. **Make targets** — every ``make <target>`` shown in a code fence or
   inline code span names a target defined in the repository
   ``Makefile``.  The target list is parsed from the Makefile itself,
   so renaming or dropping a target breaks the docs build too.  Prose
   mentions outside code markup ("make sure", "make the solver…") are
   never matched.

Run as a module (``python -m repro.analysis.docscheck [root]``) or via
``make docs-check``; the tier-1 suite runs :func:`check_repo` against
the repository in ``tests/analysis/test_docs.py``.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["DocFinding", "check_file", "check_repo", "main"]


@dataclass(frozen=True)
class DocFinding:
    """One documentation defect, printable as ``path:line: message``."""

    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


#: Markdown inline link: ``[text](target)``.  Targets with spaces are
#: not used in this repo; titles (``(target "title")``) are split off.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: A documented CLI invocation.  The lookahead after ``repro`` keeps
#: ``python -m repro.telemetry.schema``-style module invocations (which
#: have their own argv contract) out of subcommand checking.
_CMD_RE = re.compile(r"(?:python3?\s+-m\s+repro(?=\s)|\babs-solve\b)\s+(.+)")

_SKIP_SCHEMES = ("http://", "https://", "mailto:")

#: ``make <target>`` with the target in command position.  A leading
#: ``[A-Za-z0-9]`` keeps flags (``make -j4``) from matching; prose is
#: filtered upstream by only scanning fences and inline code spans.
_MAKE_RE = re.compile(r"\bmake\s+([A-Za-z0-9][A-Za-z0-9_.-]*)")

#: Inline code span in prose: `` `make test` ``.
_CODE_SPAN_RE = re.compile(r"`([^`]+)`")

#: A Makefile rule header: ``target: prerequisites``.  Special targets
#: (``.PHONY``) and pattern rules (``%.o``) are excluded by the
#: character class.
_MAKE_RULE_RE = re.compile(r"^([A-Za-z0-9][A-Za-z0-9_.-]*)\s*:")

#: Shell metacharacters that end the repro command's own argv.
_SHELL_BREAKS = ("|", ">", ">>", "<", "&&", ";", "2>", "2>&1")


def _cli_inventory() -> dict[str, set[str]]:
    """``{subcommand: allowed option strings (incl. globals)}``, live."""
    from repro.cli import build_parser

    parser = build_parser()
    global_opts: set[str] = set()
    subcommands: dict[str, set[str]] = {}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                opts: set[str] = set()
                for sub_action in sub._actions:
                    opts.update(sub_action.option_strings)
                subcommands[name] = opts
        else:
            global_opts.update(action.option_strings)
    return {name: opts | global_opts for name, opts in subcommands.items()}


def _iter_logical_lines(text: str):
    """Yield ``(first_lineno, joined_line, in_fence)`` with backslash
    continuations folded so multi-line CLI examples check as one."""
    in_fence = False
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            i += 1
            continue
        first = i + 1
        joined = line
        while in_fence and joined.rstrip().endswith("\\") and i + 1 < len(lines):
            joined = joined.rstrip()[:-1] + " " + lines[i + 1].strip()
            i += 1
        yield first, joined, in_fence
        i += 1


def _check_link(target: str, base: Path, root: Path) -> str | None:
    if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
        return None
    path_part = target.split("#", 1)[0]
    if not path_part:
        return None
    resolved = (root / path_part[1:]) if path_part.startswith("/") else (base / path_part)
    if not resolved.exists():
        return f"broken link: {target!r} does not resolve"
    return None


def _makefile_targets(root: Path) -> set[str] | None:
    """Rule names defined in ``root/Makefile``; ``None`` when absent."""
    makefile = root / "Makefile"
    if not makefile.exists():
        return None
    targets: set[str] = set()
    for raw in makefile.read_text(encoding="utf-8").splitlines():
        if raw.startswith(("\t", " ", "#")):
            continue
        match = _MAKE_RULE_RE.match(raw)
        if match:
            targets.add(match.group(1))
    return targets


def _check_make_mentions(
    line: str, in_fence: bool, targets: set[str]
) -> list[str]:
    """Unknown ``make <target>`` mentions in command-looking text."""
    if in_fence:
        # strip trailing shell comments: `make foo  # explains make bars`
        scopes = [re.split(r"(?:^|\s)#", line, maxsplit=1)[0]]
    else:
        scopes = [m.group(1) for m in _CODE_SPAN_RE.finditer(line)]
    problems = []
    for scope in scopes:
        for match in _MAKE_RE.finditer(scope):
            target = match.group(1)
            if target not in targets:
                problems.append(
                    f"make target {target!r} is not defined in the Makefile"
                )
    return problems


def _check_command(rest: str, inventory: dict[str, set[str]]) -> list[str]:
    tokens = []
    for token in rest.split():
        if token in _SHELL_BREAKS or token.startswith("#"):
            break
        tokens.append(token)
    positional = [t for t in tokens if not t.startswith("-")]
    if not positional:
        return ["CLI example names no subcommand"]
    sub = positional[0]
    if sub not in inventory:
        return [
            f"unknown CLI subcommand {sub!r} "
            f"(valid: {', '.join(sorted(inventory))})"
        ]
    allowed = inventory[sub]
    problems = []
    for token in tokens:
        if not token.startswith("--"):
            continue
        flag = token.split("=", 1)[0]
        if flag not in allowed:
            problems.append(
                f"flag {flag!r} is not accepted by subcommand {sub!r}"
            )
    return problems


def check_file(
    path: Path,
    root: Path,
    inventory: dict[str, set[str]],
    make_targets: set[str] | None = None,
) -> list[DocFinding]:
    """All findings for one markdown file."""
    findings: list[DocFinding] = []
    rel = str(path.relative_to(root))
    text = path.read_text(encoding="utf-8")
    for lineno, line, in_fence in _iter_logical_lines(text):
        if in_fence:
            match = _CMD_RE.search(line)
            if match:
                for message in _check_command(match.group(1), inventory):
                    findings.append(DocFinding(rel, lineno, message))
        else:
            for match in _LINK_RE.finditer(line):
                message = _check_link(match.group(1), path.parent, root)
                if message:
                    findings.append(DocFinding(rel, lineno, message))
        if make_targets is not None:
            for message in _check_make_mentions(line, in_fence, make_targets):
                findings.append(DocFinding(rel, lineno, message))
    return findings


def check_repo(root: Path | str = ".") -> list[DocFinding]:
    """Check ``README.md`` and every ``docs/*.md`` under ``root``."""
    root = Path(root).resolve()
    targets = []
    readme = root / "README.md"
    if readme.exists():
        targets.append(readme)
    targets.extend(sorted((root / "docs").glob("*.md")))
    inventory = _cli_inventory()
    make_targets = _makefile_targets(root)
    findings: list[DocFinding] = []
    for path in targets:
        findings.extend(check_file(path, root, inventory, make_targets))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.docscheck",
        description="validate doc links and CLI examples against the parser",
    )
    parser.add_argument(
        "root", nargs="?", default=".", help="repository root (default: .)"
    )
    args = parser.parse_args(argv)
    findings = check_repo(args.root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"docs-check: {len(findings)} problem(s)", file=sys.stderr)
        return 1
    print("OK: doc links and CLI examples are consistent")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
