"""Adaptive per-block search-parameter tuning (paper §5, future work).

The paper closes with: *"an application-agnostic universal QUBO solver
can be considered.  To this end, each CUDA block would perform
different algorithms and possibly they are changed automatically."*

This module implements that idea for the one knob the Figure-2 policy
exposes — the selection-window size ``l`` (the temperature analogue).
A :class:`WindowAdapter` watches each block's per-round best energy
and, every ``period`` rounds, reassigns the windows of the worst
blocks:

1. blocks are ranked by their mean round-best energy over the period;
2. the bottom ``fraction`` of blocks each adopt the window of a random
   top-``fraction`` block, multiplied or divided by 2 (clamped to
   ``[1, n]``) so the ladder keeps exploring neighbouring temperatures;
3. counters reset and the next period begins.

The adaptation is deterministic given its RNG stream, so solver runs
remain reproducible by seed.

:class:`VariantController` applies the same feedback loop one level
up for Diverse ABS (arXiv:2207.03069): whole devices migrate between
registered search-variant recipes (:mod:`repro.abs.variants`) when one
variant's energies improve strictly faster than another's.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.telemetry.bus import NULL_BUS, NullBus, TelemetryBus
from repro.utils.rng import SeedLike, as_generator


class WindowAdapter:
    """Evolves per-block window sizes toward what is currently working.

    Parameters
    ----------
    n:
        Problem size (windows are clamped to ``[1, n]``).
    n_blocks:
        Number of blocks whose windows are managed.
    period:
        Rounds between adaptations.
    fraction:
        Share of blocks replaced (and imitated) per adaptation.
    seed:
        RNG stream for donor selection and perturbation direction.
    bus:
        Optional telemetry bus; each adaptation emits one
        ``adapt.windows`` event (the window-size trajectory).
    """

    def __init__(
        self,
        n: int,
        n_blocks: int,
        *,
        period: int = 4,
        fraction: float = 0.25,
        seed: SeedLike = None,
        bus: TelemetryBus | NullBus | None = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if n_blocks < 1:
            raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if not (0.0 < fraction <= 0.5):
            raise ValueError(f"fraction must be in (0, 0.5], got {fraction}")
        self.n = int(n)
        self.B = int(n_blocks)
        self.period = int(period)
        self.fraction = float(fraction)
        self._rng = as_generator(seed)
        self._bus = bus if bus is not None else NULL_BUS
        self._sums = np.zeros(self.B, dtype=np.float64)
        self._rounds = 0
        #: Total window reassignments performed (diagnostics).
        self.adaptations = 0
        #: Non-finite per-block energies seen (and excluded) by
        #: :meth:`observe` — surfaced as ``adapt.nonfinite_observations``.
        self.nonfinite_observations = 0

    def observe(self, round_best: np.ndarray) -> None:
        """Record each block's best energy for the finished round.

        Non-finite entries (NaN/±inf — e.g. a block that has not
        evaluated anything yet) are excluded from the ranking sums: a
        single NaN would otherwise poison ``_sums`` permanently and
        ``argsort`` would rank that block arbitrarily forever after.
        Affected entries are replaced by the round's worst *finite*
        energy (so the block ranks as a loser, not as garbage) and
        counted in :attr:`nonfinite_observations`; a round with no
        finite energy at all is skipped entirely.
        """
        rb = np.asarray(round_best, dtype=np.float64)
        if rb.shape != (self.B,):
            raise ValueError(f"round_best must have shape ({self.B},), got {rb.shape}")
        finite = np.isfinite(rb)
        if not finite.all():
            bad = int(self.B - finite.sum())
            self.nonfinite_observations += bad
            if self._bus.enabled:
                self._bus.counters.inc("adapt.nonfinite_observations", bad)
            if not finite.any():
                return
            rb = np.where(finite, rb, rb[finite].max())
        self._sums += rb
        self._rounds += 1

    @property
    def ready(self) -> bool:
        """Whether a full period has been observed."""
        return self._rounds >= self.period

    def adapt(self, windows: np.ndarray) -> np.ndarray:
        """Return the adapted copy of ``windows`` and reset the period.

        Call only when :attr:`ready`; raises otherwise.
        """
        if not self.ready:
            raise RuntimeError(
                f"adapt() called after {self._rounds}/{self.period} rounds"
            )
        w = np.asarray(windows, dtype=np.int64).copy()
        if w.shape != (self.B,):
            raise ValueError(f"windows must have shape ({self.B},), got {w.shape}")
        # Winners (imitated) and losers (replaced) must never overlap:
        # with k > B // 2 the same rank would be selected as a donor
        # *and* have its window overwritten in the same period.  B = 1
        # therefore adapts nothing (k = 0) — the period still resets.
        k = min(max(1, int(self.B * self.fraction)), self.B // 2)
        if k == 0:
            self._sums.fill(0.0)
            self._rounds = 0
            return w
        order = np.argsort(self._sums)  # ascending mean energy = best first
        winners = order[:k]
        losers = order[-k:]
        donors = self._rng.choice(winners, size=k, replace=True)
        factors = self._rng.choice((0.5, 1.0, 2.0), size=k)
        new = np.clip((w[donors] * factors).astype(np.int64), 1, self.n)
        w[losers] = np.maximum(new, 1)
        self.adaptations += k
        self._sums.fill(0.0)
        self._rounds = 0
        bus = self._bus
        if bus.enabled:
            bus.counters.inc("adapt.reassignments", k)
            bus.emit(
                "adapt.windows",
                reassigned=k,
                window_min=int(w.min()),
                window_max=int(w.max()),
                window_mean=float(w.mean()),
            )
        return w

    def maybe_adapt(self, windows: np.ndarray) -> np.ndarray | None:
        """``adapt`` if a period has elapsed, else ``None``."""
        if not self.ready:
            return None
        return self.adapt(windows)


class VariantController:
    """Device-level variant reallocation for Diverse ABS.

    The same feedback idea as :class:`WindowAdapter`, lifted one level
    up: instead of blocks trading window sizes inside a device, whole
    *devices* trade search-variant recipes across the fleet.  The
    controller watches each device's per-round best energy (the same
    signal the ``device.round`` telemetry stamps), groups it by the
    device's current variant, and every ``period`` sweeps compares
    each variant's mean energy against its mean over the *previous*
    window.  When one variant is improving strictly faster than
    another, a single device migrates from the stagnating variant to
    the improving one — never the stagnating variant's last device, so
    the fleet stays heterogeneous (the whole point of Diverse ABS).

    The controller is RNG-free: rankings, tie-breaks, and the choice
    of which device migrates (the worst-performing device of the
    stagnating variant) are all deterministic, so seeded runs stay
    reproducible.

    Parameters
    ----------
    assignment:
        Initial variant name per device (length = fleet size); the
        live assignment is readable at :attr:`assignment`.
    period:
        Sweeps (full passes over all devices) between reallocation
        decisions.
    bus:
        Optional telemetry bus: each migration emits one
        ``adapt.variant`` event and bumps
        ``adapt.variant_reassignments``.
    """

    def __init__(
        self,
        assignment: Sequence[str],
        *,
        period: int = 8,
        bus: TelemetryBus | NullBus | None = None,
    ) -> None:
        if not assignment:
            raise ValueError("assignment must name at least one device")
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.assignment = [str(name) for name in assignment]
        self.n_devices = len(self.assignment)
        self.period = int(period)
        self._bus = bus if bus is not None else NULL_BUS
        self._sums = np.zeros(self.n_devices, dtype=np.float64)
        self._counts = np.zeros(self.n_devices, dtype=np.int64)
        self._sweeps = 0
        self._prev_means: dict[str, float] | None = None
        #: Total device migrations performed (diagnostics).
        self.reassignments = 0
        #: Non-finite energies excluded by :meth:`observe`.
        self.nonfinite_observations = 0

    def observe(self, device: int, round_best: float) -> None:
        """Record ``device``'s best energy for its finished round."""
        if not (0 <= device < self.n_devices):
            raise ValueError(
                f"device must be in [0, {self.n_devices}), got {device}"
            )
        if not math.isfinite(round_best):
            self.nonfinite_observations += 1
            if self._bus.enabled:
                self._bus.counters.inc("adapt.nonfinite_observations")
            return
        self._sums[device] += float(round_best)
        self._counts[device] += 1

    def _variant_means(self) -> dict[str, float]:
        by_variant: dict[str, list[float]] = {}
        for g, name in enumerate(self.assignment):
            if self._counts[g]:
                by_variant.setdefault(name, []).append(
                    self._sums[g] / self._counts[g]
                )
        return {
            name: float(np.mean(means)) for name, means in by_variant.items()
        }

    def end_sweep(self) -> tuple[int, str, str] | None:
        """Close one fleet sweep; migrate a device if a period elapsed.

        Returns ``(device, from_variant, to_variant)`` when a device
        migrated, else ``None``.  The first full period only baselines
        the per-variant means — migrations need a previous window to
        measure improvement against.
        """
        self._sweeps += 1
        if self._sweeps < self.period:
            return None
        means = self._variant_means()
        prev = self._prev_means
        self._prev_means = means
        move = None
        if prev is not None:
            move = self._migrate(means, prev)
        self._sums.fill(0.0)
        self._counts.fill(0)
        self._sweeps = 0
        return move

    def _migrate(
        self, means: dict[str, float], prev: dict[str, float]
    ) -> tuple[int, str, str] | None:
        # Improvement = how much the variant's mean energy *dropped*
        # since the previous window; only variants measured in both
        # windows can be compared.
        improvement = {
            name: prev[name] - mean
            for name, mean in means.items()
            if name in prev
        }
        if len(improvement) < 2:
            return None
        # Deterministic tie-break: variant name orders equal scores.
        ranked = sorted(improvement.items(), key=lambda kv: (-kv[1], kv[0]))
        best_name, best_gain = ranked[0]
        worst_name, worst_gain = ranked[-1]
        if not (best_gain > worst_gain):
            return None
        members = [g for g, v in enumerate(self.assignment) if v == worst_name]
        if len(members) < 2:  # never extinguish a variant
            return None
        # Migrate the stagnating variant's worst device (highest mean
        # energy; ties resolve to the lowest device id).
        device = max(
            members, key=lambda g: (self._sums[g] / max(self._counts[g], 1), -g)
        )
        self.assignment[device] = best_name
        self.reassignments += 1
        bus = self._bus
        if bus.enabled:
            bus.counters.inc("adapt.variant_reassignments")
            bus.emit(
                "adapt.variant",
                device=int(device),
                from_variant=worst_name,
                to_variant=best_name,
            )
        return int(device), worst_name, best_name
