"""Tests for the simulated-annealing baseline."""

import numpy as np
import pytest

from repro.qubo import QuboMatrix, energy
from repro.search import (
    GeometricSchedule,
    LinearSchedule,
    SimulatedAnnealing,
    solve_exact,
)


class TestSchedules:
    def test_geometric_decreases(self):
        s = GeometricSchedule(t0=10.0, rate=0.9)
        temps = [s.temperature(i, 100) for i in range(10)]
        assert all(temps[i] > temps[i + 1] for i in range(9))

    def test_geometric_floor(self):
        s = GeometricSchedule(t0=1.0, rate=0.5, t_min=0.1)
        assert s.temperature(1000, 1000) == 0.1

    @pytest.mark.parametrize("kwargs", [
        {"t0": 0}, {"t0": 1, "rate": 0}, {"t0": 1, "rate": 1.5}, {"t0": 1, "t_min": 0},
    ])
    def test_geometric_validation(self, kwargs):
        with pytest.raises(ValueError):
            GeometricSchedule(**kwargs)

    def test_linear_endpoints(self):
        s = LinearSchedule(t0=10.0, t_end=1.0)
        assert s.temperature(0, 100) == 10.0
        assert s.temperature(99, 100) == pytest.approx(1.0)

    def test_linear_single_step(self):
        assert LinearSchedule(5.0, 1.0).temperature(0, 1) == 5.0

    def test_linear_validation(self):
        with pytest.raises(ValueError):
            LinearSchedule(t0=1.0, t_end=2.0)
        with pytest.raises(ValueError):
            LinearSchedule(t0=-1.0)


class TestSimulatedAnnealing:
    def test_finds_optimum_on_small(self):
        q = QuboMatrix.random(12, seed=17)
        opt = solve_exact(q).energy
        rng = np.random.default_rng(0)
        x0 = rng.integers(0, 2, 12, dtype=np.uint8)
        rec = SimulatedAnnealing().run(q, x0, steps=5000, seed=3)
        assert rec.best_energy == opt

    def test_best_matches_x(self, medium_qubo, rng):
        x0 = rng.integers(0, 2, medium_qubo.n, dtype=np.uint8)
        rec = SimulatedAnnealing().run(medium_qubo, x0, 1000, seed=1)
        assert rec.best_energy == energy(medium_qubo, rec.best_x)

    def test_improves_over_start(self, medium_qubo, rng):
        x0 = rng.integers(0, 2, medium_qubo.n, dtype=np.uint8)
        rec = SimulatedAnnealing().run(medium_qubo, x0, 2000, seed=2)
        assert rec.best_energy < energy(medium_qubo, x0)

    def test_explicit_schedule_used(self, medium_qubo, rng):
        x0 = rng.integers(0, 2, medium_qubo.n, dtype=np.uint8)
        sched = GeometricSchedule(t0=1e-9, rate=1.0, t_min=1e-9)
        rec = SimulatedAnnealing(schedule=sched).run(medium_qubo, x0, 500, seed=4)
        # At ~zero temperature SA degenerates to descent: final == best
        # once a local minimum is reached.
        assert rec.best_energy <= energy(medium_qubo, x0)

    def test_invalid_kb(self):
        with pytest.raises(ValueError):
            SimulatedAnnealing(k_b=0)

    def test_reproducible(self, medium_qubo, rng):
        x0 = rng.integers(0, 2, medium_qubo.n, dtype=np.uint8)
        a = SimulatedAnnealing().run(medium_qubo, x0, 500, seed=9)
        b = SimulatedAnnealing().run(medium_qubo, x0, 500, seed=9)
        assert a.best_energy == b.best_energy
        assert np.array_equal(a.final_x, b.final_x)
