"""Tests for kernel memory placement."""

import pytest

from repro.gpusim.device import RTX_2080_TI
from repro.gpusim.memory import plan_block_memory


class TestPlanBlockMemory:
    def test_paper_capacity_32k_fits(self):
        """32 k bits at 16-bit weights fit the RTX 2080 Ti (§3.2)."""
        plan = plan_block_memory(32768, 32)
        assert plan.weight_bytes == 32768 * 32768 * 2  # 2 GiB
        assert plan.fits(RTX_2080_TI, n_slots=68)

    def test_shared_memory_holds_packed_best(self):
        plan = plan_block_memory(1024, 16)
        # 1024 bits packed = 128 bytes, + two int64 energies.
        assert plan.shared_bytes_per_block == 128 + 16

    def test_registers_match_occupancy(self):
        plan = plan_block_memory(2048, 16)
        assert plan.registers_per_thread == plan.occupancy.registers_per_thread

    def test_shared_memory_overflow_detected(self):
        # A hypothetical giant block count at large n would blow the
        # 64 KB shared budget; verify fits() notices via blocks_per_sm.
        plan = plan_block_memory(32768, 32)
        # 32768/8 + 16 = 4112 bytes/block, 1 block/SM fits easily.
        assert plan.fits(RTX_2080_TI)

    def test_global_memory_limit_respected(self):
        plan = plan_block_memory(32768, 32, weight_bytes_per_entry=8)
        # 8-byte weights need 8 GiB — still fits 11 GB without slots,
        assert plan.fits(RTX_2080_TI, n_slots=0)
        # but an absurd number of buffer slots pushes it over.
        assert not plan.fits(RTX_2080_TI, n_slots=400_000)

    def test_invalid_config_propagates(self):
        with pytest.raises(ValueError):
            plan_block_memory(4096, 1)  # 4096 threads/block impossible

    def test_slot_bytes(self):
        plan = plan_block_memory(64, 2)
        assert plan.slot_bytes == 64 // 8 + 8
