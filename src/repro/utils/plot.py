"""Tiny ASCII plotting helpers for examples and benchmark reports.

Terminal-friendly substitutes for matplotlib (not available offline):
a unicode sparkline for convergence traces and a labelled scatter/line
chart for e.g. the Figure 8 scaling curve.
"""

from __future__ import annotations

import math
from typing import Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Render ``values`` as a one-line unicode sparkline.

    Values are min-max normalized; NaNs render as spaces.  When
    ``width`` is given, the series is resampled to that many columns.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if len(vals) > width:
            step = len(vals) / width
            vals = [vals[min(int(i * step), len(vals) - 1)] for i in range(width)]
    finite = [v for v in vals if math.isfinite(v)]
    if not finite:
        return " " * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in vals:
        if not math.isfinite(v):
            chars.append(" ")
        elif span == 0:
            chars.append(_SPARK_LEVELS[0])
        else:
            idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
            chars.append(_SPARK_LEVELS[idx])
    return "".join(chars)


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 60,
    height: int = 12,
    title: str | None = None,
    marker: str = "*",
) -> str:
    """Render an (x, y) series as a coarse ASCII chart with axis labels."""
    if len(xs) != len(ys):
        raise ValueError(f"xs and ys must have equal length ({len(xs)} vs {len(ys)})")
    if not xs:
        return title or ""
    if width < 8 or height < 3:
        raise ValueError("width must be >= 8 and height >= 3")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = marker
    lines: list[str] = []
    if title:
        lines.append(title)
    label_hi = f"{y_hi:.4g}"
    label_lo = f"{y_lo:.4g}"
    pad = max(len(label_hi), len(label_lo))
    for r, row in enumerate(grid):
        label = label_hi if r == 0 else (label_lo if r == height - 1 else "")
        lines.append(f"{label:>{pad}} |{''.join(row)}")
    lines.append(f"{'':>{pad}} +{'-' * width}")
    x_axis = f"{x_lo:.4g}".ljust(width - 8) + f"{x_hi:.4g}"
    lines.append(f"{'':>{pad}}  {x_axis}")
    return "\n".join(lines)
