"""Exhaustive job-lifecycle model checker for the solver service.

:mod:`repro.analysis.interleave` proves the *wire-level* exchange
structures safe; the last real concurrency bug lived one layer up, in
:class:`repro.service.core.SolverService`'s thread-level state machine
— a cancelled job's partial result raced into the result cache (found
in the PR-9 review).  This module gives that layer the same treatment:
the submit/cancel/dispatch/run/cache-insert/close transitions are
re-expressed as :class:`~repro.analysis.interleave._Actor` step
machines over a tiny byte region, where **one step is one lock
region** of the real code (everything inside one ``with self._cond:``
block is a single atomic step; separate acquisitions are separate
steps, so every cross-lock-region race the real threads can produce is
in the explored graph).  A memoized DFS then walks the entire product
state graph and checks, after every step:

- **no poisoned cache**: the result cache never holds a partial
  (cancellation-truncated) result, and a cache hit never serves one;
- **no result-less DONE**: a job in DONE status always has a result;
- **no lost queue slot**: the ``_queued`` counter equals the number of
  jobs in QUEUED status in every reachable state (``max_queue``
  admission control depends on this);
- **no double dispatch**: a job is claimed by the dispatcher at most
  once, and never after shutdown.

The model is pinned against the real service two ways: the step
machines mirror ``service/core.py`` lock regions line for line (each
actor docstring cites its method), and the test suite drives a *real*
``SolverService`` through the schedules the model explores —
queued-cancel, running-cancel, resubmit-after-cancel, close-drain —
asserting the same invariants on the real object
(``tests/analysis/test_lifecycle.py``).

**What is modeled**: two jobs sharing one determinism key (the
resubmission scenario that makes cache poisoning observable), one
dispatcher, a canceller, and a closer.  **What is not**: fleet
arm/teardown, failure paths, priorities (the heap scan is FIFO here —
priority ordering is a liveness property, not a safety one), and
``result()`` waiters (their blocking is ``done_evt``, checked by the
service tests).

Injected bugs (``bug=...``) prove the checker detects what it claims
to; each is a realistic regression with a reconstructed schedule:

- ``pr9_cancel_cache`` — the PR-9 review bug, re-injected: the cache
  insert does not consult the cancellation flag at all;
- ``cache_insert_before_status_check`` — the insert consults a stale
  cancellation snapshot taken at claim time instead of re-reading
  under the lock (the refactor the current single-read code forbids);
- ``queue_count_leak`` — cancelling a queued job forgets to decrement
  the queued counter, silently shrinking ``max_queue`` capacity;
- ``dispatch_after_shutdown`` — ``close()`` forgets to drain the heap,
  so the dispatcher can claim (and run) a job after shutdown.
"""

from __future__ import annotations

from repro.analysis.interleave import (
    InterleaveReport,
    InterleaveViolation,
    _Actor,
    _explore,
)

__all__ = [
    "SERVICE_BUGS",
    "explore_service",
]

#: Injected-bug identifiers accepted by :func:`explore_service`.
SERVICE_BUGS = (
    "pr9_cancel_cache",
    "cache_insert_before_status_check",
    "queue_count_leak",
    "dispatch_after_shutdown",
)

#: Jobs in the model.  Both share one determinism key, so job 1 can
#: cache-hit (or be poisoned by) what job 0 inserted.
_NJOBS = 2

#: Per-job record layout (stride bytes per job, starting at job*_JSTRIDE).
_J_STATUS = 0    # 0 none, 1 queued, 2 running, 3 done, 4 cancelled
_J_INHEAP = 1    # a heap entry exists (stays 1, stale, after queued-cancel)
_J_CANCEL = 2    # cancel_evt
_J_RESULT = 3    # 0 none, 1 full, 2 partial (truncated at cancellation)
_J_DISPATCH = 4  # times the dispatcher claimed this job
_J_CACHEHIT = 5  # served from the result cache
_JSTRIDE = 6

#: Globals after the job records.
_G_QUEUED = _NJOBS * _JSTRIDE      # the service's _queued counter
_G_CLOSED = _G_QUEUED + 1
_G_CACHE = _G_CLOSED + 1           # 0 empty, 1 full result, 2 partial
_REGION = _G_CACHE + 1

_NONE, _QUEUED, _RUNNING, _DONE, _CANCELLED = range(5)


def _job(region: bytearray, j: int, off: int) -> int:
    return region[j * _JSTRIDE + off]


def _set(region: bytearray, j: int, off: int, value: int) -> None:
    region[j * _JSTRIDE + off] = value


def _check_invariants(region: bytearray, where: str) -> None:
    """The four safety properties, asserted after every atomic step."""
    if region[_G_CACHE] == 2:
        raise InterleaveViolation(
            f"result cache holds a partial (cancelled) result after {where}"
        )
    queued = sum(
        1 for j in range(_NJOBS) if _job(region, j, _J_STATUS) == _QUEUED
    )
    if region[_G_QUEUED] != queued:
        raise InterleaveViolation(
            f"lost queue slot after {where}: _queued={region[_G_QUEUED]} "
            f"but {queued} job(s) are in QUEUED status"
        )
    for j in range(_NJOBS):
        if (
            _job(region, j, _J_STATUS) == _DONE
            and _job(region, j, _J_RESULT) == 0
        ):
            raise InterleaveViolation(
                f"job {j} is DONE without a result after {where}"
            )
        if _job(region, j, _J_DISPATCH) > 1:
            raise InterleaveViolation(
                f"job {j} dispatched {_job(region, j, _J_DISPATCH)} times "
                f"after {where}"
            )


class _Submitter(_Actor):
    """``SolverService.submit``: one lock region — admit, record the
    job, push the heap entry, bump the queued counter.  Op ``j``
    submits job ``j``; submission against a closed service is the
    real code's ``RuntimeError`` (a no-op here)."""

    name = "submit"

    def __init__(self, region: bytearray, bug: str | None = None) -> None:
        super().__init__(_NJOBS, bug)
        self.region = region

    def step(self) -> None:
        r, j = self.region, self.op
        if r[_G_CLOSED]:
            self._end_op("closed")
            return
        _set(r, j, _J_STATUS, _QUEUED)
        _set(r, j, _J_INHEAP, 1)
        r[_G_QUEUED] += 1
        _check_invariants(r, f"submit({j})")
        self._end_op(j)


class _Canceller(_Actor):
    """``SolverService.cancel``: one lock region.  A queued job leaves
    the queue immediately (its heap entry stays, stale); a running job
    only gets its flag set.  Op ``j`` cancels job ``j``."""

    name = "cancel"

    def __init__(self, region: bytearray, bug: str | None = None) -> None:
        super().__init__(_NJOBS, bug)
        self.region = region

    def step(self) -> None:
        r, j = self.region, self.op
        status = _job(r, j, _J_STATUS)
        if status == _QUEUED:
            _set(r, j, _J_CANCEL, 1)
            if self.bug != "queue_count_leak":
                r[_G_QUEUED] -= 1
            _set(r, j, _J_STATUS, _CANCELLED)
            _check_invariants(r, f"cancel({j})")
            self._end_op(True)
            return
        if status == _RUNNING:
            _set(r, j, _J_CANCEL, 1)
            _check_invariants(r, f"cancel({j})")
            self._end_op(True)
            return
        _check_invariants(r, f"cancel({j})")
        self._end_op(False)


class _Dispatcher(_Actor):
    """The dispatcher thread: ``_dispatch_loop`` claim +
    ``_run_job``, one pc per lock region of the real code.

    - pc 0 — *claim* (``_dispatch_loop``'s ``with self._cond``):
      pop heap entries in FIFO order, skipping stale ones, until a
      QUEUED job is found; mark it RUNNING and decrement the counter.
      Spins (no state change) while nothing is claimable; exits once
      closed with an empty backlog.
    - pc 1 — *cache check* (``_run_job``'s first ``with self._lock``):
      a hit finishes the job DONE with the cached result.
    - pc 2 — *the solve* (outside any lock): the result is partial iff
      the cancellation flag was raised before/during the run.
    - pc 3 — *insert + finish* (``_run_job``'s final
      ``with self._cond``): read the cancellation flag once; insert
      into the cache only when clear; status follows the same read.
      The injected bugs split or stale-read exactly this step.
    """

    name = "dispatch"

    def __init__(self, region: bytearray, bug: str | None = None) -> None:
        super().__init__(_NJOBS, bug)
        self.region = region

    def step(self) -> None:
        r, loc = self.region, self.locals
        if self.pc == 0:
            claimed = -1
            for j in range(_NJOBS):
                if not _job(r, j, _J_INHEAP):
                    continue
                if _job(r, j, _J_STATUS) != _QUEUED:
                    _set(r, j, _J_INHEAP, 0)  # stale entry: pop and skip
                    continue
                _set(r, j, _J_INHEAP, 0)
                _set(r, j, _J_STATUS, _RUNNING)
                r[_G_QUEUED] -= 1
                _set(r, j, _J_DISPATCH, _job(r, j, _J_DISPATCH) + 1)
                claimed = j
                break
            if claimed < 0:
                if r[_G_CLOSED]:
                    self.op = self.depth  # dispatcher thread exits
                    self.pc = 0
                    _check_invariants(r, "dispatcher-exit")
                    return
                _check_invariants(r, "dispatch-wait")
                return  # cond.wait: spin until something is claimable
            if r[_G_CLOSED]:
                raise InterleaveViolation(
                    f"job {claimed} dispatched after shutdown"
                )
            loc["j"] = claimed
            # cache_insert_before_status_check: the buggy refactor
            # snapshots the cancellation flag here, at claim time.
            loc["snap"] = _job(r, claimed, _J_CANCEL)
            _check_invariants(r, f"claim({claimed})")
            self.pc = 1
        elif self.pc == 1:
            j = loc["j"]
            if r[_G_CACHE]:
                if r[_G_CACHE] == 2:
                    raise InterleaveViolation(
                        f"cache hit served job {j} a partial result"
                    )
                _set(r, j, _J_CACHEHIT, 1)
                _set(r, j, _J_RESULT, 1)
                _set(r, j, _J_STATUS, _DONE)
                _check_invariants(r, f"cache-hit({j})")
                loc.pop("j"), loc.pop("snap")
                self._end_op("hit")
                return
            self.pc = 2
        elif self.pc == 2:
            j = loc["j"]
            _set(r, j, _J_RESULT, 2 if _job(r, j, _J_CANCEL) else 1)
            self.pc = 3
        elif self.pc == 3:
            j = loc.pop("j")
            snap = loc.pop("snap")
            if self.bug == "pr9_cancel_cache":
                insert_ok = True  # no cancellation check at all
            elif self.bug == "cache_insert_before_status_check":
                insert_ok = not snap  # stale claim-time snapshot
            else:
                insert_ok = not _job(r, j, _J_CANCEL)
            if insert_ok:
                r[_G_CACHE] = _job(r, j, _J_RESULT)
            cancelled = _job(r, j, _J_CANCEL)
            _set(r, j, _J_STATUS, _CANCELLED if cancelled else _DONE)
            _check_invariants(r, f"finish({j})")
            self._end_op("ran")


class _Closer(_Actor):
    """``SolverService.close``: one lock region — mark closed, drain
    the heap (cancelling every still-queued job), flag the running
    job.  ``bug='dispatch_after_shutdown'`` forgets the drain."""

    name = "close"

    def __init__(self, region: bytearray, bug: str | None = None) -> None:
        super().__init__(1, bug)
        self.region = region

    def step(self) -> None:
        r = self.region
        r[_G_CLOSED] = 1
        if self.bug != "dispatch_after_shutdown":
            for j in range(_NJOBS):
                if not _job(r, j, _J_INHEAP):
                    continue
                _set(r, j, _J_INHEAP, 0)
                if _job(r, j, _J_STATUS) == _QUEUED:
                    _set(r, j, _J_CANCEL, 1)
                    r[_G_QUEUED] -= 1
                    _set(r, j, _J_STATUS, _CANCELLED)
        for j in range(_NJOBS):
            if _job(r, j, _J_STATUS) == _RUNNING:
                _set(r, j, _J_CANCEL, 1)
        _check_invariants(r, "close")
        self._end_op("closed")


def explore_service(bug: str | None = None) -> InterleaveReport:
    """Exhaustively explore the service job lifecycle's state graph.

    Two same-key jobs, one dispatcher, a canceller, and a closer —
    every interleaving of every schedule.  Depth is structural (each
    actor's op count is fixed by the scenario), so there is no depth
    parameter to tune; the whole graph is a few thousand states.
    """
    if bug is not None and bug not in SERVICE_BUGS:
        raise ValueError(
            f"unknown service bug {bug!r} (known: {', '.join(SERVICE_BUGS)})"
        )
    region = bytearray(_REGION)
    actors: list[_Actor] = [
        _Submitter(region),
        _Dispatcher(region, bug=bug),
        _Canceller(region, bug=bug),
        _Closer(region, bug=bug),
    ]
    name = f"ServiceLifecycle(bug={bug})" if bug else "ServiceLifecycle"
    return _explore(name, _NJOBS, region, actors)
