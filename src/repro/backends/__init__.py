"""Pluggable kernel backends for the bulk engine.

The hot kernels of :class:`~repro.gpusim.engine.BulkSearchEngine` —
the Eq. (16) dense flip, the sparse scatter flip, Figure 2's windowed
min-Δ selection, best-neighbour tracking, and the Algorithm 5 straight-
search mask/argmin — live behind the :class:`KernelBackend` interface
so execution substrates can be swapped without touching the search
semantics:

- ``numpy`` — the vectorized reference implementation (always
  available; ground truth for the differential-equivalence suite);
- ``numba`` — optional JIT backend with fused multi-step kernels that
  eliminate the per-step Python loop in ``local_steps``.  Falls back to
  ``numpy`` (with a one-time warning and a ``backend.fallback``
  telemetry event) when numba is not importable.
- ``bitplane`` — packed uint64 bit-plane state with runtime-compiled C
  kernels (``cc -O3 -fwrapv``): the whole ``run_local_steps`` batch is
  one C call, with XOR/popcount Hamming helpers for straight-search
  distances.  Falls back to ``numpy`` exactly like ``numba`` when no C
  compiler is available (or ``REPRO_NO_CC`` is set).
- ``graycode`` — exact Gray-code enumerator for ``n ≤ 30``
  (:func:`~repro.backends.graycode.graycode_minimum`): the ground-truth
  oracle of the differential suite and the decomposition loop's exact
  finisher.  Engine kernels are inherited from ``numpy``.

Selection flows through :attr:`AbsConfig.backend <repro.abs.config.AbsConfig>`,
``repro.solve(backend=...)``, the CLI ``--backend`` flag, or the
``REPRO_BACKEND`` environment variable; unset, the default is
``numpy``.  A future CuPy/GPU backend plugs into the same seam via
:func:`register_backend` — every registered backend is automatically
pinned step-for-step to the scalar references by
``tests/backends/test_equivalence.py``.

See ``docs/backends.md`` for the interface contract and a
how-to-add-a-backend walkthrough.
"""

from __future__ import annotations

import os
from typing import Callable, Union

from repro.backends.base import KernelBackend, PreparedWeights
from repro.backends.bitplane import cc_available, make_bitplane_backend
from repro.backends.graycode import GraycodeBackend, graycode_minimum
from repro.backends.numba_backend import make_numba_backend, numba_available
from repro.backends.numpy_backend import NumpyBackend

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Default backend when neither call site nor environment names one.
DEFAULT_BACKEND = "numpy"

BackendSpec = Union[str, KernelBackend, None]

_REGISTRY: dict[str, Callable[[], KernelBackend]] = {}


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register ``factory`` under ``name`` (overwrites re-registrations).

    The factory must return a ready :class:`KernelBackend`; it may
    return a *different* backend than requested to express graceful
    degradation (set ``fallback_from`` on the instance so telemetry can
    report the substitution).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (registration ≠ importability:
    ``numba`` is always listed and falls back when not importable)."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> KernelBackend:
    """Construct a fresh backend instance for ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r} (registered: {', '.join(available_backends())})"
        ) from None
    return factory()


def resolve_backend(spec: BackendSpec = None) -> KernelBackend:
    """Resolve a backend from a name, an instance, or the environment.

    Precedence: an explicit :class:`KernelBackend` instance is used
    as-is; an explicit name is looked up in the registry; ``None``
    consults :data:`BACKEND_ENV_VAR` and finally defaults to
    :data:`DEFAULT_BACKEND`.
    """
    if isinstance(spec, KernelBackend):
        return spec
    if spec is not None and not isinstance(spec, str):
        raise TypeError(
            f"backend must be a name, a KernelBackend, or None, got {type(spec).__name__}"
        )
    name = spec or os.environ.get(BACKEND_ENV_VAR, "") or DEFAULT_BACKEND
    return get_backend(name)


register_backend("numpy", NumpyBackend)
register_backend("numba", make_numba_backend)
register_backend("bitplane", make_bitplane_backend)
register_backend("graycode", GraycodeBackend)

__all__ = [
    "KernelBackend",
    "PreparedWeights",
    "NumpyBackend",
    "GraycodeBackend",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backends",
    "cc_available",
    "get_backend",
    "graycode_minimum",
    "make_bitplane_backend",
    "make_numba_backend",
    "numba_available",
    "register_backend",
    "resolve_backend",
]
