"""QUBO model core: weight matrices, the energy function, and the
incremental (difference) computation identities from Section 2 of the
paper.

The central objects are:

- :class:`~repro.qubo.matrix.QuboMatrix` — a validated symmetric integer
  weight matrix ``W`` defining ``E(X) = XᵀWX`` (Eq. 1).
- :class:`~repro.qubo.state.SearchState` — a solution ``X`` together with
  its energy ``E(X)`` and the full delta vector ``Δ_k(X)`` (Eq. 4),
  supporting the O(n) per-flip update of Eq. (6)/(16) that yields the
  paper's O(1) search efficiency.
- :mod:`~repro.qubo.ising` — lossless QUBO ↔ Ising conversions.
"""

from repro.qubo.energy import (
    delta_single,
    delta_vector,
    energy,
    energy_batch,
    phi,
    update_delta_after_flip,
)
from repro.qubo.ising import IsingModel, ising_to_qubo, qubo_to_ising
from repro.qubo.matrix import QuboMatrix, as_weight_matrix
from repro.qubo.sparse import SparseQubo
from repro.qubo.state import SearchState

__all__ = [
    "QuboMatrix",
    "SparseQubo",
    "as_weight_matrix",
    "SearchState",
    "IsingModel",
    "qubo_to_ising",
    "ising_to_qubo",
    "energy",
    "energy_batch",
    "delta_vector",
    "delta_single",
    "update_delta_after_flip",
    "phi",
]
