"""CLI observability flags: --trace-out / --log-level and `trace`."""

import json

import pytest

from repro.cli import main
from repro.telemetry import validate_trace


@pytest.fixture
def instance(tmp_path):
    path = tmp_path / "small.qubo"
    assert main(["random", "24", str(path), "--seed", "3"]) == 0
    return path


def _solve_args(instance, extra=()):
    return [
        "solve", str(instance),
        "--rounds", "4", "--blocks", "4", "--seed", "11",
        *extra,
    ]


class TestTraceOut:
    def test_solve_writes_valid_trace(self, instance, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        rc = main(_solve_args(instance, ["--trace-out", str(trace)]))
        assert rc == 0
        counts = validate_trace(trace)
        assert counts["solve.start"] == 1
        assert counts["solve.end"] == 1
        assert counts["host.round"] == 4
        assert str(trace) in capsys.readouterr().out

    def test_trace_subcommand_validates(self, instance, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main(_solve_args(instance, ["--trace-out", str(trace)]))
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event": "made.up", "t": 0.0, "seq": 1}\n')
        assert main(["trace", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_trace_matches_untraced_result(self, instance, tmp_path, capsys):
        """--trace-out must not change the reported best energy."""
        main(_solve_args(instance))
        plain = capsys.readouterr().out
        trace = tmp_path / "run.jsonl"
        main(_solve_args(instance, ["--trace-out", str(trace)]))
        traced = capsys.readouterr().out
        best_plain = [l for l in plain.splitlines() if "energy" in l.lower()]
        best_traced = [l for l in traced.splitlines() if "energy" in l.lower()]
        assert best_plain == best_traced
        end = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if '"solve.end"' in line
        ][0]
        assert str(end["best_energy"]) in " ".join(best_plain)


class TestLogLevel:
    def test_info_emits_progress_to_stderr(self, instance, capsys):
        rc = main(_solve_args(instance, ["--log-level", "info"]))
        assert rc == 0
        err = capsys.readouterr().err
        assert "repro.telemetry" in err
        assert "best=" in err

    def test_bad_level_rejected(self, instance):
        with pytest.raises(SystemExit):
            main(_solve_args(instance, ["--log-level", "shout"]))
