"""Ablation — local steps per round (device ↔ host feedback cadence).

§3.2 Step 4b fixes the number of flips per local search between target
refreshes.  The knob trades:

- **short rounds** — fast GA feedback (the pool improves often) but
  more straight-search transitions and host traffic;
- **long rounds** — blocks run free longer (cheap) but recombine less.

This bench sweeps ``local_steps`` at fixed wall-clock using the sweep
harness and reports quality + rate; the expected shape is an interior
plateau (very short rounds waste time on transitions, very long rounds
starve the GA).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL
from repro.abs.config import AbsConfig
from repro.metrics.sweep import best_point, render_sweep, sweep
from repro.problems.random_qubo import random_qubo

_N = 512 if FULL else 256
_BUDGET_S = 3.0 if FULL else 1.2
_GRID = [4, 16, 64, 256, 1024]


def test_ablation_local_steps(benchmark, report):
    qubo = random_qubo(_N, seed=_N)
    base = AbsConfig(
        blocks_per_gpu=16,
        pool_capacity=32,
        time_limit=_BUDGET_S,
        seed=1,
    )
    points = sweep(qubo, base, {"local_steps": _GRID}, repeats=2)
    text = render_sweep(
        points,
        title=(
            f"local_steps sweep, n={_N}, {_BUDGET_S:.1f} s budget "
            "(best of 2 seeds per point)"
        ),
    )
    winner = best_point(points)
    report(
        "Ablation local steps",
        text
        + f"\n\nWinner: local_steps={winner.params['local_steps']}.  Short "
        "rounds pay straight-search transitions, long rounds starve the GA; "
        "the sweet spot sits in between.",
    )

    by_steps = {p.params["local_steps"]: p.result.best_energy for p in points}
    best_e = winner.result.best_energy
    # Shape: the interior of the grid is never dominated by both extremes
    # simultaneously — i.e. some interior point is within 0.5 % of the best.
    interior_best = min(by_steps[s] for s in _GRID[1:-1])
    assert interior_best <= best_e + 0.005 * abs(best_e)

    cfg = AbsConfig(
        blocks_per_gpu=16, pool_capacity=32, local_steps=64, max_rounds=2, seed=2
    )
    from repro.abs import AdaptiveBulkSearch

    benchmark(lambda: AdaptiveBulkSearch(qubo, cfg).solve("sync"))
