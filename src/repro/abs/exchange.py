"""Shared-memory host↔device exchange rings (paper Figure 5, §3.3).

In the paper the target buffer and the solution buffer are preallocated
arrays in GPU global memory; a *global counter* advanced by the devices
tells the host how many solutions have been stored, and the host polls
it with ``cudaMemcpyAsync`` without ever stopping the kernels.  This
module is the process-mode realization of those buffers:

- :class:`TargetMailbox` — a double-buffered target slot per worker in
  ``multiprocessing.shared_memory``.  The host *publishes* a whole
  ``(B, n)`` target batch (bit-packed) under a seqlock: payload first,
  then the generation counter.  A worker *fetches* the freshest
  generation without locks; a torn read is detected by re-reading the
  counter and retried.  Like the paper's target buffer, only the
  newest batch matters — a slow worker simply skips generations.
- :class:`SolutionRing` — a single-producer single-consumer ring of
  result records per worker.  Each slot carries the per-block best
  energies, the bit-packed best solutions, and the worker's cumulative
  counters; ``head``/``tail`` are the global counters of Figure 5.
  The producer blocks (briefly, with a stall counter) only when the
  host has fallen a full ring behind.
- :class:`ShmHostTransport` / :class:`QueueHostTransport` — two of the
  three process-mode transports behind ``AbsConfig.exchange``.  They
  present one interface to the solver (per-worker target channels with
  ``put``, a ``poll`` for the next :class:`ResultBatch`, byte/stall
  statistics); the queue flavour is the pre-ring fallback that ships
  pickled arrays through ``multiprocessing.Queue``.  The third
  transport (``"tcp"``, :mod:`repro.abs.tcp`) carries the same packed
  payloads over length-prefixed socket frames so device workers can
  live on other hosts; it is imported lazily from the factory below.
- :func:`open_worker_endpoint` — the worker-side counterpart, built
  from a picklable ``worker_ref``.

Solutions cross the boundary bit-packed (:func:`~repro.abs.buffers.
pack_solutions`, 8× smaller) — the analogue of the paper packing 32
solution bits per register word.  Telemetry events are variable-sized
Python objects, so they take a side queue and only when telemetry is
enabled; the search path never depends on them.

Correctness notes: the seqlock writer never touches the slot it last
published (generation ``g`` lives in slot ``g % 2``), so a reader that
saw a stable generation counter read a consistent payload.  The ring
is strictly SPSC — the producer owns ``head``, the consumer ``tail``.
Worker restarts (see :mod:`repro.abs.supervisor`) reuse the same
segments: the mailbox stamps each publish with an *epoch* (the worker
incarnation it is meant for) so a replacement ignores its
predecessor's targets, and every ring record carries the producer's
incarnation so the host can tell stale results from fresh ones.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.abs.buffers import pack_solutions, packed_length, unpack_solutions

if TYPE_CHECKING:  # runtime import is lazy — tcp imports this module
    from repro.abs.tcp import TcpHostTransport, TcpWorkerEndpoint

#: Transport names accepted by ``AbsConfig.exchange`` / ``REPRO_EXCHANGE``.
EXCHANGE_NAMES = ("shm", "queue", "tcp")

#: Explicit wire dtypes for everything that crosses a process or host
#: boundary (shm ring/mailbox views, tcp frame payloads).  Pinned
#: little-endian so the wire format is identical on every platform —
#: a bare ``np.int64`` view would silently flip byte order on a
#: big-endian host and corrupt every mixed-endian shm attach or tcp
#: stream.  ``tests/abs/test_exchange.py`` pins these against golden
#: bytes.
WIRE_I64 = np.dtype("<i8")
WIRE_U8 = np.dtype("u1")

#: Result slots per worker ring.  The host absorbs much faster than a
#: worker produces, so a short ring suffices; a full ring only means
#: the producer naps (counted in ``exchange.publish_stalls``).
DEFAULT_RING_SLOTS = 4

#: Cumulative worker counters shipped in the fixed-width ring meta
#: record, in wire order.  Keep in lock-step with
#: ``EngineCounters.as_dict`` plus the adapter and variant totals.
ENGINE_COUNTER_KEYS = (
    "engine.flips",
    "engine.evaluated",
    "engine.delta_updates",
    "engine.straight_flips",
    "engine.local_flips",
    "engine.straight_retirements",
    "adapt.reassignments",
    "adapt.nonfinite_observations",
    "variant.tabu_steps",
)

# Ring meta record layout (int64 slots).
_META_SLOTS = 16
_M_INCARNATION = 0
_M_COUNT = 1
_M_EVALUATED = 2
_M_FLIPS = 3
_M_COUNTERS = 4  # ..., one slot per ENGINE_COUNTER_KEYS entry
_M_PUBLISH_STALLS = _M_COUNTERS + len(ENGINE_COUNTER_KEYS)
_M_TARGET_WAITS = _M_PUBLISH_STALLS + 1
assert _M_TARGET_WAITS < _META_SLOTS

# Mailbox/ring header layout (int64 slots).
_HEADER_SLOTS = 4
_H_SEQ = 0  # mailbox: generation counter; ring: head (producer-owned)
_H_EPOCH = 1  # mailbox: incarnation of the latest publish; ring: tail

#: Seconds slept while polling a counter that has not moved.
_POLL_SLEEP = 0.0005


def resolve_exchange(value: str | None) -> str:
    """Resolve the process-mode transport name.

    Explicit config beats the ``REPRO_EXCHANGE`` environment variable;
    unset, the default is ``"shm"`` (the Figure-5 rings).
    """
    if value is None:
        value = os.environ.get("REPRO_EXCHANGE") or "shm"
    if value not in EXCHANGE_NAMES:
        raise ValueError(
            f"unknown exchange transport {value!r} "
            f"(use one of: {', '.join(EXCHANGE_NAMES)})"
        )
    return value


@dataclass
class ResultBatch:
    """One worker round's results, as handed to the host loop.

    ``energies`` is the per-block best energy vector, ``x`` the matching
    ``(B, n)`` unpacked solution matrix; ``evaluated`` / ``flips`` /
    ``counters`` are the worker's *cumulative* totals for its current
    incarnation (the host reconciles deltas).
    """

    worker_id: int
    incarnation: int
    energies: np.ndarray
    x: np.ndarray
    evaluated: int
    flips: int
    counters: dict[str, int] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Shared-memory primitives
# ----------------------------------------------------------------------
class _ShmRegion:
    """Create/attach/close/unlink plumbing shared by mailbox and ring."""

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Detach this process's mapping."""
        # Views into shm.buf must be dropped before close(); subclasses
        # override _release_views for that.
        self._release_views()
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; also closes)."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked
                pass

    def _release_views(self) -> None:  # pragma: no cover - overridden
        pass


class TargetMailbox(_ShmRegion):
    """Double-buffered target batch in shared memory (host → worker).

    Layout: an int64 header ``[generation, epoch, …]`` followed by two
    bit-packed ``(n_blocks, ⌈n/8⌉)`` payload slots.  Generation ``g``
    is published into slot ``g % 2``, so the slot of the *current*
    generation is never overwritten by the next publish — the seqlock
    reader only needs to re-check the generation counter after copying
    the payload.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        n_blocks: int,
        n: int,
        owner: bool,
    ) -> None:
        super().__init__(shm, owner)
        self.n_blocks = int(n_blocks)
        self.n = int(n)
        self._packed_n = packed_length(n)
        self._header = np.ndarray((_HEADER_SLOTS,), dtype=WIRE_I64, buffer=shm.buf)
        self._slots = np.ndarray(
            (2, self.n_blocks, self._packed_n),
            dtype=WIRE_U8,
            buffer=shm.buf,
            offset=_HEADER_SLOTS * 8,
        )

    def _release_views(self) -> None:
        self._header = None  # type: ignore[assignment]
        self._slots = None  # type: ignore[assignment]

    @staticmethod
    def _size(n_blocks: int, n: int) -> int:
        return _HEADER_SLOTS * 8 + 2 * n_blocks * packed_length(n)

    @classmethod
    def create(cls, n_blocks: int, n: int) -> "TargetMailbox":
        shm = shared_memory.SharedMemory(create=True, size=cls._size(n_blocks, n))
        box = cls(shm, n_blocks, n, owner=True)
        box._header[:] = 0
        return box

    @property
    def descriptor(self) -> tuple[str, int, int]:
        """Picklable handle: ``(name, n_blocks, n)``."""
        return (self.name, self.n_blocks, self.n)

    @classmethod
    def attach(cls, descriptor: tuple[str, int, int]) -> "TargetMailbox":
        name, n_blocks, n = descriptor
        return cls(shared_memory.SharedMemory(name=name), n_blocks, n, owner=False)

    @property
    def generation(self) -> int:
        """Latest published generation (0 before the first publish)."""
        return int(self._header[_H_SEQ])

    def publish(self, targets: np.ndarray, epoch: int) -> int:
        """Host side: publish a fresh ``(n_blocks, n)`` target batch.

        ``epoch`` is the worker incarnation the batch is meant for;
        a replacement worker skips batches published for its
        predecessor.  Returns the new generation number.
        """
        targets = np.asarray(targets, dtype=WIRE_U8)
        if targets.shape != (self.n_blocks, self.n):
            raise ValueError(
                f"targets must have shape ({self.n_blocks}, {self.n}), "
                f"got {targets.shape}"
            )
        gen = int(self._header[_H_SEQ]) + 1
        self._slots[gen % 2, :, :] = pack_solutions(targets)
        self._header[_H_EPOCH] = int(epoch)
        # The generation counter is written last: a reader that sees it
        # knows the payload (in the other slot than the previous
        # generation's) is complete.
        self._header[_H_SEQ] = gen
        return gen

    def fetch(self, last_gen: int, epoch: int) -> tuple[int, np.ndarray] | None:
        """Worker side: the freshest batch newer than ``last_gen``.

        Returns ``(generation, targets)`` or ``None`` when nothing new
        has been published for this ``epoch``.  Lock-free: a read that
        races a publish is detected by the generation counter changing
        and retried.
        """
        while True:
            gen = int(self._header[_H_SEQ])
            if gen <= last_gen or gen == 0:
                return None
            pub_epoch = int(self._header[_H_EPOCH])
            payload = self._slots[gen % 2].copy()
            if int(self._header[_H_SEQ]) != gen:
                continue  # torn read: a newer publish landed mid-copy
            if pub_epoch != epoch:
                # Published for another incarnation (stale targets from
                # before a restart): not ours, and nothing newer yet.
                return None
            return gen, unpack_solutions(payload, self.n)


class SolutionRing(_ShmRegion):
    """SPSC result ring in shared memory (worker → host).

    Layout: an int64 header ``[head, tail, …]`` followed by ``slots``
    fixed-size records, each ``(meta int64[16], energies int64[B],
    packed uint8[B × ⌈n/8⌉])``.  ``head`` is advanced only by the
    producer (after the record is fully written), ``tail`` only by the
    consumer — the paper's global counter, split per direction.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        n_blocks: int,
        n: int,
        slots: int,
        owner: bool,
    ) -> None:
        super().__init__(shm, owner)
        self.n_blocks = int(n_blocks)
        self.n = int(n)
        self.slots = int(slots)
        self._packed_n = packed_length(n)
        offset = _HEADER_SLOTS * 8
        self._header = np.ndarray((_HEADER_SLOTS,), dtype=WIRE_I64, buffer=shm.buf)
        self._meta = np.ndarray(
            (self.slots, _META_SLOTS), dtype=WIRE_I64, buffer=shm.buf, offset=offset
        )
        offset += self.slots * _META_SLOTS * 8
        self._energies = np.ndarray(
            (self.slots, self.n_blocks), dtype=WIRE_I64, buffer=shm.buf, offset=offset
        )
        offset += self.slots * self.n_blocks * 8
        self._packed = np.ndarray(
            (self.slots, self.n_blocks, self._packed_n),
            dtype=WIRE_U8,
            buffer=shm.buf,
            offset=offset,
        )

    def _release_views(self) -> None:
        self._header = None  # type: ignore[assignment]
        self._meta = None  # type: ignore[assignment]
        self._energies = None  # type: ignore[assignment]
        self._packed = None  # type: ignore[assignment]

    @staticmethod
    def _size(n_blocks: int, n: int, slots: int) -> int:
        return (
            _HEADER_SLOTS * 8
            + slots * _META_SLOTS * 8
            + slots * n_blocks * 8
            + slots * n_blocks * packed_length(n)
        )

    @classmethod
    def create(
        cls, n_blocks: int, n: int, slots: int = DEFAULT_RING_SLOTS
    ) -> "SolutionRing":
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        shm = shared_memory.SharedMemory(
            create=True, size=cls._size(n_blocks, n, slots)
        )
        ring = cls(shm, n_blocks, n, slots, owner=True)
        ring._header[:] = 0
        return ring

    @property
    def descriptor(self) -> tuple[str, int, int, int]:
        """Picklable handle: ``(name, n_blocks, n, slots)``."""
        return (self.name, self.n_blocks, self.n, self.slots)

    @classmethod
    def attach(cls, descriptor: tuple[str, int, int, int]) -> "SolutionRing":
        name, n_blocks, n, slots = descriptor
        return cls(
            shared_memory.SharedMemory(name=name), n_blocks, n, slots, owner=False
        )

    def backlog(self) -> int:
        """Records written but not yet consumed."""
        return int(self._header[_H_SEQ]) - int(self._header[_H_EPOCH])

    def is_full(self) -> bool:
        return self.backlog() >= self.slots

    def write(
        self,
        meta_values: "np.ndarray | list[int]",
        energies: np.ndarray,
        packed: np.ndarray,
    ) -> None:
        """Producer side: store one record and advance ``head``.

        The caller must have checked :meth:`is_full` (SPSC: only this
        process writes ``head``, so the check cannot race).
        """
        head = int(self._header[_H_SEQ])
        if head - int(self._header[_H_EPOCH]) >= self.slots:
            raise RuntimeError("ring full — call is_full() before write()")
        s = head % self.slots
        meta = self._meta[s]
        meta[:] = 0
        meta[: len(meta_values)] = meta_values
        self._energies[s, :] = energies
        self._packed[s, :, :] = packed
        self._header[_H_SEQ] = head + 1  # record complete → visible

    def consume(self) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Consumer side: the oldest unread record, or ``None``.

        Returns copies of ``(meta, energies, packed)`` and advances
        ``tail``, freeing the slot for the producer.
        """
        tail = int(self._header[_H_EPOCH])
        if int(self._header[_H_SEQ]) == tail:
            return None
        s = tail % self.slots
        record = (
            self._meta[s].copy(),
            self._energies[s].copy(),
            self._packed[s].copy(),
        )
        self._header[_H_EPOCH] = tail + 1
        return record


# ----------------------------------------------------------------------
# Host-side transports
# ----------------------------------------------------------------------
class _QueueTargetChannel:
    """Host-side handle for one worker's target queue (queue transport).

    Batches are stamped with the channel's epoch (the worker incarnation
    — or, under a warm fleet, the job token) so the worker endpoint can
    drop batches published for a predecessor or a previous job, exactly
    like the mailbox and tcp epoch filters.
    """

    def __init__(self, raw: Any, epoch: int, stats: dict[str, int]) -> None:
        self.raw = raw
        self._epoch = int(epoch)
        self._stats = stats

    def put(self, targets: np.ndarray) -> None:
        targets = np.ascontiguousarray(targets, dtype=WIRE_U8)
        self.raw.put((self._epoch, targets))
        self._stats["exchange.targets_published"] += 1
        self._stats["exchange.bytes_to_device"] += targets.nbytes

    def get_nowait(self) -> Any:
        """Drain helper (final-cleanup only)."""
        return self.raw.get_nowait()


class _MailboxTargetChannel:
    """Host-side handle for one worker's mailbox + incarnation epoch."""

    def __init__(
        self, mailbox: TargetMailbox, epoch: int, stats: dict[str, int]
    ) -> None:
        self._mailbox = mailbox
        self._epoch = int(epoch)
        self._stats = stats

    def put(self, targets: np.ndarray) -> None:
        self._mailbox.publish(targets, self._epoch)
        self._stats["exchange.targets_published"] += 1
        self._stats["exchange.packs"] += 1
        self._stats["exchange.bytes_to_device"] += (
            self._mailbox.n_blocks * packed_length(self._mailbox.n)
        )

    def get_nowait(self) -> Any:
        raise queue_mod.Empty  # mailboxes hold no backlog to drain


def _new_stats() -> dict[str, int]:
    return {
        "exchange.targets_published": 0,
        "exchange.results_consumed": 0,
        "exchange.bytes_to_device": 0,
        "exchange.bytes_from_device": 0,
        "exchange.packs": 0,
        "exchange.unpacks": 0,
    }


class QueueHostTransport:
    """The fallback transport: pickled arrays through ``mp.Queue``.

    This is the pre-ring wire format, kept selectable
    (``exchange="queue"`` / ``REPRO_EXCHANGE=queue``) as the baseline
    the benchmark compares against and as a refuge on platforms where
    POSIX shared memory misbehaves.
    """

    name = "queue"

    def __init__(self, ctx: Any, n_workers: int, n_blocks: int, n: int) -> None:
        self._ctx = ctx
        self.n_workers = int(n_workers)
        self.n_blocks = int(n_blocks)
        self.n = int(n)
        self.stats = _new_stats()
        self._result_q = ctx.Queue()
        self._pending_events: list[tuple[int, int, list]] = []

    def make_target_channel(self, worker_id: int, incarnation: int) -> Any:
        return _QueueTargetChannel(self._ctx.Queue(), incarnation, self.stats)

    def rebind_channel(self, worker_id: int, incarnation: int, channel: Any) -> Any:
        # Re-arm in place (warm fleet): the live worker keeps its bound
        # queue, so only the epoch changes — unlike a restart, which
        # spawns a replacement around a fresh queue.
        return _QueueTargetChannel(channel.raw, incarnation, self.stats)

    def worker_ref(self, worker_id: int, incarnation: int, channel: Any) -> tuple:
        return ("queue", channel.raw, self._result_q)

    def poll(self, timeout: float) -> ResultBatch | None:
        try:
            msg = self._result_q.get(timeout=timeout)
        except queue_mod.Empty:
            return None
        (worker_id, incarnation, energies, xs, evaluated, flips, wcounts, wevents) = msg
        self.stats["exchange.results_consumed"] += 1
        self.stats["exchange.bytes_from_device"] += energies.nbytes + xs.nbytes
        if wevents:
            self._pending_events.append((worker_id, incarnation, wevents))
        return ResultBatch(
            worker_id=worker_id,
            incarnation=incarnation,
            energies=energies,
            x=xs,
            evaluated=int(evaluated),
            flips=int(flips),
            counters=dict(wcounts),
        )

    def event_bundles(self) -> list[tuple[int, int, list]]:
        out = self._pending_events
        self._pending_events = []
        return out

    def queue_depths(self, worker_id: int, channel: Any) -> tuple[int, int]:
        return (_safe_qsize(channel.raw), _safe_qsize(self._result_q))

    def describe(self) -> dict[str, int | str]:
        return {
            "transport": self.name,
            "workers": self.n_workers,
            "ring_slots": 0,
            "target_slot_bytes": self.n_blocks * self.n,
            "result_slot_bytes": self.n_blocks * (self.n + 8),
        }

    def drain(self) -> None:
        """Empty the result queue so its feeder thread can exit."""
        _drain_queue(self._result_q)

    def close(self) -> None:
        pass


class ShmHostTransport:
    """The default transport: Figure-5 rings in shared memory."""

    name = "shm"

    def __init__(
        self,
        ctx: Any,
        n_workers: int,
        n_blocks: int,
        n: int,
        *,
        ring_slots: int = DEFAULT_RING_SLOTS,
    ) -> None:
        self._ctx = ctx
        self.n_workers = int(n_workers)
        self.n_blocks = int(n_blocks)
        self.n = int(n)
        self.ring_slots = int(ring_slots)
        self.stats = _new_stats()
        self._mailboxes = [TargetMailbox.create(n_blocks, n) for _ in range(n_workers)]
        self._rings = [
            SolutionRing.create(n_blocks, n, ring_slots) for _ in range(n_workers)
        ]
        # Telemetry events are variable-sized Python objects; they take
        # a side queue (used only when telemetry is enabled) so the
        # fixed-size rings stay search-only.
        self._events_q = ctx.Queue()
        self._pending_events: list[tuple[int, int, list]] = []
        self._rr = 0  # round-robin fairness cursor over worker rings

    def make_target_channel(self, worker_id: int, incarnation: int) -> Any:
        # Rings and mailboxes survive restarts — the replacement binds
        # to the same segments; the epoch keeps stale targets out.
        return _MailboxTargetChannel(
            self._mailboxes[worker_id], incarnation, self.stats
        )

    def rebind_channel(self, worker_id: int, incarnation: int, channel: Any) -> Any:
        # Same surviving mailbox under a fresh epoch (warm-fleet re-arm).
        return self.make_target_channel(worker_id, incarnation)

    def worker_ref(self, worker_id: int, incarnation: int, channel: Any) -> tuple:
        return (
            "shm",
            self._mailboxes[worker_id].descriptor,
            self._rings[worker_id].descriptor,
            self._events_q,
        )

    def _drain_events(self) -> None:
        try:
            while True:
                self._pending_events.append(self._events_q.get_nowait())
        except queue_mod.Empty:
            pass

    def poll(self, timeout: float) -> ResultBatch | None:
        deadline = time.monotonic() + timeout
        n = self.n_workers
        while True:
            self._drain_events()
            for i in range(n):
                w = (self._rr + 1 + i) % n
                record = self._rings[w].consume()
                if record is None:
                    continue
                self._rr = w
                meta, energies, packed = record
                count = int(meta[_M_COUNT])
                xs = unpack_solutions(packed[:count], self.n)
                counters = {
                    key: int(meta[_M_COUNTERS + j])
                    for j, key in enumerate(ENGINE_COUNTER_KEYS)
                }
                counters["exchange.publish_stalls"] = int(meta[_M_PUBLISH_STALLS])
                counters["exchange.target_waits"] = int(meta[_M_TARGET_WAITS])
                self.stats["exchange.results_consumed"] += 1
                self.stats["exchange.unpacks"] += 1
                self.stats["exchange.bytes_from_device"] += (
                    energies.nbytes + packed.nbytes
                )
                return ResultBatch(
                    worker_id=w,
                    incarnation=int(meta[_M_INCARNATION]),
                    energies=energies[:count],
                    x=xs,
                    evaluated=int(meta[_M_EVALUATED]),
                    flips=int(meta[_M_FLIPS]),
                    counters=counters,
                )
            if time.monotonic() >= deadline:
                return None
            time.sleep(_POLL_SLEEP)

    def event_bundles(self) -> list[tuple[int, int, list]]:
        self._drain_events()
        out = self._pending_events
        self._pending_events = []
        return out

    def queue_depths(self, worker_id: int, channel: Any) -> tuple[int, int]:
        # A mailbox holds exactly the latest batch — there is no target
        # backlog to report; -1 marks "not a queue" (same sentinel as
        # platforms without qsize).
        return (-1, self._rings[worker_id].backlog())

    def describe(self) -> dict[str, int | str]:
        pn = packed_length(self.n)
        return {
            "transport": self.name,
            "workers": self.n_workers,
            "ring_slots": self.ring_slots,
            "target_slot_bytes": self.n_blocks * pn,
            "result_slot_bytes": _META_SLOTS * 8
            + self.n_blocks * 8
            + self.n_blocks * pn,
        }

    def drain(self) -> None:
        _drain_queue(self._events_q)

    def close(self) -> None:
        for box in self._mailboxes:
            box.unlink()
        for ring in self._rings:
            ring.unlink()


def make_host_transport(
    name: str, ctx: Any, *, n_workers: int, n_blocks: int, n: int
) -> "QueueHostTransport | ShmHostTransport | TcpHostTransport":
    """Instantiate the host side of the named transport."""
    if name == "queue":
        return QueueHostTransport(ctx, n_workers, n_blocks, n)
    if name == "shm":
        return ShmHostTransport(ctx, n_workers, n_blocks, n)
    if name == "tcp":
        # Imported lazily: the tcp module depends on this one for the
        # shared wire pieces (ResultBatch, counters, wire dtypes).
        from repro.abs.tcp import TcpHostTransport

        return TcpHostTransport(ctx, n_workers, n_blocks, n)
    raise ValueError(f"unknown exchange transport {name!r}")


# ----------------------------------------------------------------------
# Worker-side endpoints
# ----------------------------------------------------------------------
class QueueWorkerEndpoint:
    """Worker side of the queue transport."""

    def __init__(
        self,
        target_q: Any,
        result_q: Any,
        worker_id: int,
        incarnation: int,
        stop_evt: Any,
    ) -> None:
        self._target_q = target_q
        self._result_q = result_q
        self._worker_id = int(worker_id)
        self._incarnation = int(incarnation)
        self._stop_evt = stop_evt

    def fetch_targets(self, *, wait: bool) -> np.ndarray | None:
        """The freshest queued target batch (drains older ones).

        Batches stamped with a different epoch — published for a
        predecessor incarnation or a previous warm-fleet job — are
        dropped.  With ``wait`` the call blocks until a matching batch
        arrives or the stop event fires (lockstep mode); otherwise it
        returns ``None`` when nothing matching is queued — the device
        keeps its previous targets.
        """
        targets: np.ndarray | None = None
        try:
            while True:
                epoch, payload = self._target_q.get_nowait()
                if epoch == self._incarnation:
                    targets = payload
        except queue_mod.Empty:
            pass
        if targets is not None or not wait:
            return targets
        while not self._stop_evt.is_set():
            try:
                epoch, payload = self._target_q.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            if epoch == self._incarnation:
                return payload
        return None

    def rearm(self, token: int) -> None:
        """Adopt a new epoch token (warm-fleet job switch).

        Queued batches stamped with the old token are dropped by the
        epoch filter above; results publish under the new token from
        here on.
        """
        self._incarnation = int(token)

    def publish(
        self,
        energies: np.ndarray,
        x: np.ndarray,
        evaluated: int,
        flips: int,
        counters: dict[str, int],
        events: list,
    ) -> bool:
        self._result_q.put(
            (
                self._worker_id,
                self._incarnation,
                energies,
                x,
                int(evaluated),
                int(flips),
                counters,
                events,
            )
        )
        return True

    def close(self) -> None:
        pass


class ShmWorkerEndpoint:
    """Worker side of the shared-memory transport."""

    def __init__(
        self,
        mailbox_desc: tuple,
        ring_desc: tuple,
        events_q: Any,
        worker_id: int,
        incarnation: int,
        stop_evt: Any,
    ) -> None:
        self._mailbox = TargetMailbox.attach(mailbox_desc)
        self._ring = SolutionRing.attach(ring_desc)
        self._events_q = events_q
        self._worker_id = int(worker_id)
        self._incarnation = int(incarnation)
        self._stop_evt = stop_evt
        self._last_gen = 0
        self._publish_stalls = 0
        self._target_waits = 0

    def fetch_targets(self, *, wait: bool) -> np.ndarray | None:
        got = self._mailbox.fetch(self._last_gen, self._incarnation)
        if got is None and wait:
            waited = False
            while got is None and not self._stop_evt.is_set():
                if not waited:
                    self._target_waits += 1
                    waited = True
                time.sleep(0.001)
                got = self._mailbox.fetch(self._last_gen, self._incarnation)
        if got is None:
            return None
        self._last_gen, targets = got
        return targets

    def rearm(self, token: int) -> None:
        """Adopt a new epoch token (warm-fleet job switch).

        The mailbox generation counter keeps running across jobs, so
        ``_last_gen`` stays; only the epoch filter changes.
        """
        self._incarnation = int(token)

    def publish(
        self,
        energies: np.ndarray,
        x: np.ndarray,
        evaluated: int,
        flips: int,
        counters: dict[str, int],
        events: list,
    ) -> bool:
        stalled = False
        while self._ring.is_full():
            if self._stop_evt.is_set():
                return False
            if not stalled:
                self._publish_stalls += 1
                stalled = True
            time.sleep(0.001)
        meta = np.zeros(_META_SLOTS, dtype=WIRE_I64)
        meta[_M_INCARNATION] = self._incarnation
        meta[_M_COUNT] = len(energies)
        meta[_M_EVALUATED] = int(evaluated)
        meta[_M_FLIPS] = int(flips)
        for j, key in enumerate(ENGINE_COUNTER_KEYS):
            meta[_M_COUNTERS + j] = int(counters.get(key, 0))
        meta[_M_PUBLISH_STALLS] = self._publish_stalls
        meta[_M_TARGET_WAITS] = self._target_waits
        self._ring.write(
            meta, np.asarray(energies, dtype=WIRE_I64), pack_solutions(x)
        )
        if events:
            self._events_q.put((self._worker_id, self._incarnation, events))
        return True

    def close(self) -> None:
        self._mailbox.close()
        self._ring.close()


def open_worker_endpoint(
    ref: tuple, *, worker_id: int, incarnation: int, stop_evt: Any
) -> "QueueWorkerEndpoint | ShmWorkerEndpoint | TcpWorkerEndpoint":
    """Build the worker-side endpoint from a picklable ``worker_ref``."""
    kind = ref[0]
    if kind == "queue":
        return QueueWorkerEndpoint(ref[1], ref[2], worker_id, incarnation, stop_evt)
    if kind == "shm":
        return ShmWorkerEndpoint(
            ref[1], ref[2], ref[3], worker_id, incarnation, stop_evt
        )
    if kind == "tcp":
        from repro.abs.tcp import TcpWorkerEndpoint

        return TcpWorkerEndpoint(
            ref[1], worker_id=worker_id, incarnation=incarnation, stop_evt=stop_evt
        )
    raise ValueError(f"unknown worker endpoint kind {kind!r}")


# ----------------------------------------------------------------------
# Small shared helpers
# ----------------------------------------------------------------------
def _safe_qsize(q: Any) -> int:
    """``Queue.qsize`` is approximate and unimplemented on some
    platforms (macOS); report -1 rather than crash the host loop."""
    try:
        return q.qsize()
    except (NotImplementedError, OSError):
        return -1


def _drain_queue(q: Any) -> None:
    try:
        while True:
            q.get_nowait()
    except (queue_mod.Empty, OSError, EOFError):
        pass
