"""Mutable search state: a solution, its energy, and its delta vector.

A :class:`SearchState` is the CPU-side analogue of what one CUDA block
keeps in its register file in the paper's implementation (§3.2): the
current bit vector ``X``, the tracked energy ``E(X)``, and ``Δ_i(X)``
for every ``i``.  Flipping a bit costs O(n) and keeps all three
consistent, which is precisely the mechanism behind the paper's O(1)
search efficiency (Theorem 1): each O(n) step exposes the energies of
all ``n`` Hamming-1 neighbors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.qubo.energy import (
    delta_vector,
    energy,
    update_delta_after_flip,
    weights_size,
)
from repro.qubo.matrix import QuboMatrix, WeightsLike, as_weight_matrix
from repro.utils.validation import check_bit_vector, check_index


def _canonical_weights(weights):
    """Dense ndarray view, or the SparseQubo itself — whatever the
    energy-module dispatch functions accept."""
    from repro.qubo.sparse import SparseQubo

    if isinstance(weights, SparseQubo):
        return weights
    return as_weight_matrix(weights)


class SearchState:
    """A QUBO solution with incrementally maintained energy and deltas.

    Parameters
    ----------
    weights:
        The problem's weight matrix (shared, never copied).
    x:
        Initial bit vector (copied).
    energy_value, delta:
        Optional known energy/delta for ``x``; when omitted they are
        computed from scratch at O(n²).

    Attributes
    ----------
    x : numpy.ndarray
        Current bit vector (uint8, owned by the state).
    energy : int
        ``E(x)``, maintained incrementally.
    delta : numpy.ndarray
        ``Δ_k(x)`` for all k (int64), maintained incrementally.
    flips : int
        Number of flips applied so far (each one evaluates ``n``
        neighbor solutions, per Definition 1).
    """

    __slots__ = ("_W", "x", "energy", "delta", "flips")

    def __init__(
        self,
        weights: WeightsLike,
        x: np.ndarray,
        *,
        energy_value: Optional[int] = None,
        delta: Optional[np.ndarray] = None,
    ) -> None:
        self._W = _canonical_weights(weights)
        n = weights_size(self._W)
        self.x = check_bit_vector(x, n).copy()
        if (energy_value is None) != (delta is None):
            raise ValueError("energy_value and delta must be given together")
        if energy_value is None:
            self.energy = energy(self._W, self.x)
            self.delta = delta_vector(self._W, self.x)
        else:
            self.energy = int(energy_value)
            d = np.asarray(delta)
            if d.shape != (n,):
                raise ValueError(f"delta must have shape ({n},), got {d.shape}")
            self.delta = d.astype(np.int64).copy()
        self.flips = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, weights: WeightsLike) -> "SearchState":
        """The all-zero start state the paper initializes devices with.

        ``E(0) = 0`` and ``Δ_i(0) = W_ii``, so no O(n²) evaluation is
        ever needed (§2.1, §3.2 Step 1).
        """
        W = _canonical_weights(weights)
        from repro.qubo.sparse import SparseQubo

        n = weights_size(W)
        diag = W.diag if isinstance(W, SparseQubo) else np.diagonal(W)
        return cls(
            W,
            np.zeros(n, dtype=np.uint8),
            energy_value=0,
            delta=diag.astype(np.int64),
        )

    @classmethod
    def from_bits(cls, weights: WeightsLike, x: np.ndarray) -> "SearchState":
        """Full O(n²) initialization from an arbitrary bit vector."""
        return cls(weights, x)

    def copy(self) -> "SearchState":
        """An independent copy sharing only the (read-only) weights."""
        clone = SearchState(
            self._W, self.x, energy_value=self.energy, delta=self.delta
        )
        clone.flips = self.flips
        return clone

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of bits."""
        return weights_size(self._W)

    @property
    def weights(self):
        """The shared weight matrix (dense ndarray or SparseQubo)."""
        return self._W

    def flip(self, k: int) -> int:
        """Flip bit ``k`` with the O(n) Eq. (16) update.

        Returns the applied energy change ``Δ_k``.
        """
        check_index(k, self.n, "k")
        applied = update_delta_after_flip(self._W, self.x, self.delta, k)
        self.energy += applied
        self.flips += 1
        return applied

    def neighbor_energies(self) -> np.ndarray:
        """Energies of all ``n`` Hamming-1 neighbors: ``E + Δ`` (Eq. 5)."""
        return self.energy + self.delta

    def best_neighbor(self) -> tuple[int, int]:
        """``(k, E(flip_k))`` for the lowest-energy neighbor (greedy)."""
        k = int(np.argmin(self.delta))
        return k, self.energy + int(self.delta[k])

    def hamming_to(self, other: np.ndarray) -> int:
        """Hamming distance from the current solution to ``other``."""
        ob = check_bit_vector(other, self.n, "other")
        return int(np.count_nonzero(self.x ^ ob))

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Recompute energy and deltas from scratch and compare.

        Raises :class:`AssertionError` on any inconsistency.  O(n²);
        intended for tests and debugging, never for hot paths.
        """
        e = energy(self._W, self.x)
        d = delta_vector(self._W, self.x)
        assert e == self.energy, f"tracked energy {self.energy} != actual {e}"
        assert np.array_equal(d, self.delta), "tracked delta vector diverged"

    def __repr__(self) -> str:
        return (
            f"SearchState(n={self.n}, energy={self.energy}, flips={self.flips})"
        )
