"""Wall-clock measurement helpers used by the TTS and throughput harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper's tables do (3 sig figs, s/ms/µs)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.3g} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g} ms"
    return f"{seconds * 1e6:.3g} µs"


@dataclass
class Stopwatch:
    """A restartable stopwatch with split support.

    ``Stopwatch`` accumulates elapsed time across ``start``/``stop``
    pairs, which lets the solver exclude setup (problem generation,
    buffer allocation) from the time-to-solution it reports.
    """

    _started_at: float | None = field(default=None, repr=False)
    _accumulated: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or resume) the watch.  Idempotent while running."""
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Pause the watch and return the total elapsed seconds so far."""
        if self._started_at is not None:
            self._accumulated += time.perf_counter() - self._started_at
            self._started_at = None
        return self._accumulated

    def reset(self) -> None:
        """Zero the watch (stops it if running)."""
        self._started_at = None
        self._accumulated = 0.0

    @property
    def running(self) -> bool:
        """Whether the watch is currently accumulating time."""
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds, including the in-progress span if running."""
        total = self._accumulated
        if self._started_at is not None:
            total += time.perf_counter() - self._started_at
        return total

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
