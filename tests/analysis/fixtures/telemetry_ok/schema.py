"""Fixture schema: one event, one counter, one pattern — all emitted."""

EVENT_SCHEMAS = {
    "demo.event": None,
}

COUNTER_NAMES = frozenset({"demo.count"})

COUNTER_PATTERNS = ("demo.*.ns",)
