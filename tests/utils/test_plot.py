"""Tests for the ASCII plotting helpers."""

import math

import pytest

from repro.utils.plot import line_chart, sparkline


class TestSparkline:
    def test_monotone_series_uses_full_range(self):
        s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert s[0] == "▁" and s[-1] == "█"
        assert len(s) == 8

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_renders_space(self):
        s = sparkline([1.0, math.nan, 2.0])
        assert s[1] == " "

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_resampled_width(self):
        s = sparkline(list(range(100)), width=10)
        assert len(s) == 10

    def test_width_shorter_series_unchanged(self):
        assert len(sparkline([1, 2], width=10)) == 2

    def test_bad_width(self):
        with pytest.raises(ValueError):
            sparkline([1], width=0)


class TestLineChart:
    def test_corners_plotted(self):
        out = line_chart([0, 10], [0, 100], width=20, height=5, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "100" in lines[1]  # top label
        assert "*" in lines[1]
        assert "*" in lines[5]  # bottom row has the low point

    def test_axis_labels(self):
        out = line_chart([2, 8], [1, 3], width=20, height=4)
        assert "2" in out.splitlines()[-1]
        assert "8" in out.splitlines()[-1]

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            line_chart([1], [1, 2])

    def test_empty(self):
        assert line_chart([], [], title="empty") == "empty"

    def test_degenerate_sizes(self):
        with pytest.raises(ValueError):
            line_chart([1], [1], width=2)

    def test_flat_series_ok(self):
        out = line_chart([0, 1, 2], [5, 5, 5], width=10, height=3)
        assert "*" in out
