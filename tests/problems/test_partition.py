"""Tests for number partitioning → QUBO."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.problems.partition import decode_partition, partition_to_qubo
from repro.qubo import energy
from repro.search import solve_exact


class TestIdentity:
    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=10),
        st.integers(0, 2**31 - 1),
    )
    def test_energy_plus_offset_is_squared_difference(self, values, seed):
        vals = np.array(values, dtype=np.int64)
        q, offset = partition_to_qubo(vals)
        x = np.random.default_rng(seed).integers(0, 2, len(vals), dtype=np.uint8)
        _, _, diff = decode_partition(vals, x)
        assert energy(q, x) + offset == diff * diff


class TestGroundState:
    def test_perfect_partition_found(self):
        vals = np.array([3, 1, 1, 2, 2, 1], dtype=np.int64)  # sums to 10
        q, offset = partition_to_qubo(vals)
        sol = solve_exact(q)
        assert sol.energy + offset == 0  # 5 vs 5 exists

    def test_odd_total_best_difference_is_one(self):
        vals = np.array([2, 2, 3], dtype=np.int64)  # total 7
        q, offset = partition_to_qubo(vals)
        sol = solve_exact(q)
        assert sol.energy + offset == 1


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            partition_to_qubo(np.array([], dtype=np.int64))

    def test_floats_rejected(self):
        with pytest.raises(TypeError):
            partition_to_qubo(np.array([1.5]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            partition_to_qubo(np.array([-1, 2]))

    def test_decode(self):
        vals = np.array([5, 7, 3], dtype=np.int64)
        s0, s1, diff = decode_partition(vals, np.array([1, 0, 1], dtype=np.uint8))
        assert (s0, s1, diff) == (7, 8, 1)
