"""Tests for the multi-process ABS solver (the multi-GPU simulation).

The worker-death scenarios are deterministic without wall-clock races:
the surviving (or restarted) worker is *gated* on a supervision
telemetry event — it only starts searching once the host has provably
detected and handled the failure, so every assertion about
``workers_lost`` / ``workers_restarted`` is exact.
"""

import glob
import multiprocessing
import os
import time

import numpy as np
import pytest

import repro.abs.solver as solver_mod
from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.qubo import QuboMatrix, energy
from repro.search import solve_exact
from repro.telemetry import MemorySink, TelemetryBus

pytestmark = [pytest.mark.process, pytest.mark.timeout(60)]


@pytest.fixture
def small():
    return QuboMatrix.random(16, seed=909)


class _SetOnEvent:
    """Telemetry sink that sets a multiprocessing event on a given name."""

    def __init__(self, name, evt):
        self.name = name
        self.evt = evt

    def handle(self, event):
        if event.name == self.name:
            self.evt.set()


class TestSolveProcess:
    def test_reaches_exact_optimum(self, small):
        opt = solve_exact(small).energy
        cfg = AbsConfig(
            n_gpus=2,
            blocks_per_gpu=8,
            local_steps=16,
            pool_capacity=16,
            target_energy=opt,
            time_limit=30.0,
            seed=13,
        )
        res = AdaptiveBulkSearch(small, cfg).solve("process")
        assert res.reached_target
        assert res.best_energy == opt

    def test_result_self_consistent(self, small):
        cfg = AbsConfig(max_rounds=6, blocks_per_gpu=4, time_limit=30.0, seed=1)
        res = AdaptiveBulkSearch(small, cfg).solve("process")
        assert res.best_energy == energy(small, res.best_x)
        assert res.evaluated > 0
        assert res.rounds >= 1

    def test_time_limit_honoured(self, small):
        cfg = AbsConfig(time_limit=0.5, blocks_per_gpu=4, seed=2)
        res = AdaptiveBulkSearch(small, cfg).solve("process")
        assert res.elapsed < 10.0

    def test_multi_worker_counters_aggregate(self, small):
        cfg = AbsConfig(
            n_gpus=2, blocks_per_gpu=4, max_rounds=8, time_limit=30.0, seed=3
        )
        res = AdaptiveBulkSearch(small, cfg).solve("process")
        assert res.n_gpus == 2
        assert res.evaluated > 0
        assert res.flips > 0

    def test_no_shared_memory_leak(self, small):
        before = set(glob.glob("/dev/shm/*"))
        cfg = AbsConfig(max_rounds=4, blocks_per_gpu=4, time_limit=30.0, seed=4)
        AdaptiveBulkSearch(small, cfg).solve("process")
        after = set(glob.glob("/dev/shm/*"))
        assert after <= before  # nothing new left behind

    def test_healthy_run_reports_no_restarts(self, small):
        cfg = AbsConfig(max_rounds=4, blocks_per_gpu=4, time_limit=30.0, seed=6)
        res = AdaptiveBulkSearch(small, cfg).solve("process")
        assert res.workers_restarted == 0
        assert res.workers_lost == 0
        assert res.counters["supervisor.restarts"] == 0
        assert res.counters["supervisor.workers_lost"] == 0


class TestStartMethod:
    def test_spawn_start_method_roundtrip(self, small):
        """Worker arguments stay picklable, so ``spawn`` must work."""
        cfg = AbsConfig(
            blocks_per_gpu=4,
            local_steps=8,
            max_rounds=2,
            time_limit=30.0,
            seed=8,
            start_method="spawn",
        )
        res = AdaptiveBulkSearch(small, cfg).solve("process")
        assert res.best_energy == energy(small, res.best_x)
        assert res.rounds >= 1

    def test_unknown_start_method_rejected_by_config(self):
        with pytest.raises(ValueError, match="start_method"):
            AbsConfig(max_rounds=1, start_method="thread")


class TestWorkerSupervision:
    """Kill workers mid-solve; the run must degrade or recover."""

    def test_one_dead_worker_solve_completes_degraded(self, small, monkeypatch):
        """One of two workers dies before producing anything: the host
        marks it lost (budget 0) and the survivor finishes the solve —
        no hang, and nothing is ever queued to the dead worker."""
        ctx = multiprocessing.get_context("fork")
        degraded = ctx.Event()
        real_worker = solver_mod._worker_main

        def flaky_worker(worker_id, incarnation, *rest):
            if worker_id == 1:
                os._exit(17)
            degraded.wait()  # survivor starts once the loss is handled
            real_worker(worker_id, incarnation, *rest)

        monkeypatch.setattr(solver_mod, "_worker_main", flaky_worker)
        sink = MemorySink()
        bus = TelemetryBus([sink, _SetOnEvent("supervisor.degrade", degraded)])
        cfg = AbsConfig(
            n_gpus=2,
            blocks_per_gpu=4,
            local_steps=8,
            max_rounds=6,
            max_worker_restarts=0,
            time_limit=60.0,
            seed=21,
        )
        res = AdaptiveBulkSearch(small, cfg, telemetry=bus).solve("process")
        assert res.workers_lost == 1
        assert res.workers_restarted == 0
        assert res.rounds >= 1
        assert res.best_energy == energy(small, res.best_x)
        # Every result came from the survivor…
        workers = {e.fields["worker"] for e in sink.named("worker.result")}
        assert workers == {0}
        # …and the host never fed the dead worker's queue (bounded-queue
        # guarantee: targets only flow to healthy workers).
        fed = {e.fields["device"] for e in sink.named("host.queue")}
        assert 1 not in fed
        degrade = sink.named("supervisor.degrade")
        assert len(degrade) == 1
        assert degrade[0].fields["worker"] == 1
        assert degrade[0].fields["exitcode"] == 17

    def test_restarted_worker_contributes_results(self, small, monkeypatch):
        """A worker that dies on its first incarnation is restarted and
        rehydrated with pool targets; every result of the run comes from
        the replacement (the other worker deliberately idles)."""
        ctx = multiprocessing.get_context("fork")
        restarted = ctx.Event()
        real_worker = solver_mod._worker_main

        def flaky_worker(worker_id, incarnation, *rest):
            stop_evt = rest[-3]  # (…, worker_ref, stop_evt, enabled, lockstep)
            if worker_id == 1 and incarnation == 0:
                os._exit(9)
            if worker_id == 0:
                # Contribute nothing; prove the replacement carries the run.
                while not stop_evt.is_set():
                    time.sleep(0.01)
                return
            restarted.wait()
            real_worker(worker_id, incarnation, *rest)

        monkeypatch.setattr(solver_mod, "_worker_main", flaky_worker)
        sink = MemorySink()
        bus = TelemetryBus([sink, _SetOnEvent("supervisor.restart", restarted)])
        cfg = AbsConfig(
            n_gpus=2,
            blocks_per_gpu=4,
            local_steps=8,
            max_rounds=4,
            max_worker_restarts=1,
            time_limit=60.0,
            seed=22,
        )
        res = AdaptiveBulkSearch(small, cfg, telemetry=bus).solve("process")
        assert res.workers_restarted == 1
        assert res.workers_lost == 0
        assert res.rounds == cfg.max_rounds
        # All results were produced by the restarted worker 1.
        workers = {e.fields["worker"] for e in sink.named("worker.result")}
        assert workers == {1}
        restart = sink.named("supervisor.restart")
        assert len(restart) == 1
        assert restart[0].fields["worker"] == 1
        assert restart[0].fields["incarnation"] == 1
        assert restart[0].fields["reason"] == "died"
        # The run snapshot carries the supervision outcome too.
        assert res.counters["supervisor.restarts"] == 1
        assert res.counters["supervisor.workers_lost"] == 0
