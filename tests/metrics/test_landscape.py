"""Tests for the energy-landscape estimators."""

import math

import numpy as np
import pytest

from repro.metrics.landscape import (
    descent_statistics,
    escape_radius,
    fitness_distance_correlation,
    local_minimum_fraction,
    random_walk_autocorrelation,
)
from repro.qubo import QuboMatrix
from repro.search import solve_exact


class TestAutocorrelation:
    def test_flat_landscape_fully_correlated(self):
        q = QuboMatrix.zeros(16)
        res = random_walk_autocorrelation(q, steps=200, max_lag=4, seed=0)
        assert res.rho1 == pytest.approx(1.0)
        assert math.isinf(res.correlation_length)

    def test_random_instance_decorrelates(self):
        q = QuboMatrix.random(64, seed=1)
        res = random_walk_autocorrelation(q, steps=3000, max_lag=16, seed=0)
        assert 0.0 < res.rho1 < 1.0
        # ρ must decay with lag (allowing estimation noise).
        assert res.rho[8] < res.rho1
        assert res.correlation_length > 0

    def test_larger_n_smoother_walk(self):
        """One flip changes a 1/n fraction of the solution, so bigger
        instances have higher lag-1 correlation."""
        small = random_walk_autocorrelation(
            QuboMatrix.random(32, seed=2), steps=4000, seed=0
        )
        large = random_walk_autocorrelation(
            QuboMatrix.random(256, seed=2), steps=4000, seed=0
        )
        assert large.rho1 > small.rho1

    def test_deterministic(self):
        q = QuboMatrix.random(32, seed=3)
        a = random_walk_autocorrelation(q, steps=500, seed=7)
        b = random_walk_autocorrelation(q, steps=500, seed=7)
        assert np.array_equal(a.rho, b.rho)

    def test_validation(self):
        q = QuboMatrix.random(8, seed=0)
        with pytest.raises(ValueError):
            random_walk_autocorrelation(q, steps=10, max_lag=20)
        with pytest.raises(ValueError):
            random_walk_autocorrelation(q, steps=100, max_lag=0)


class TestLocalMinimumFraction:
    def test_zero_matrix_everything_is_minimum(self):
        assert local_minimum_fraction(QuboMatrix.zeros(10), samples=50) == 1.0

    def test_negative_diagonal_no_random_minima(self):
        # W = −I: the unique minimum is all-ones; a random solution is a
        # minimum only if it IS all-ones (any 0 bit has Δ = −1 < 0).
        W = -np.eye(12, dtype=np.int64)
        frac = local_minimum_fraction(QuboMatrix(W), samples=100, seed=0)
        assert frac < 0.05

    def test_fraction_in_range(self):
        q = QuboMatrix.random(24, seed=4)
        frac = local_minimum_fraction(q, samples=100, seed=1)
        assert 0.0 <= frac <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            local_minimum_fraction(QuboMatrix.zeros(4), samples=0)


class TestDescentStatistics:
    def test_endpoints_are_local_minima_energies(self):
        from repro.qubo.energy import delta_vector

        q = QuboMatrix.random(20, seed=6)
        stats = descent_statistics(q, descents=10, seed=0)
        assert stats.endpoints.shape == (10,)
        assert stats.best <= stats.mean

    def test_convex_landscape_single_endpoint(self):
        W = -np.eye(12, dtype=np.int64)
        stats = descent_statistics(QuboMatrix(W), descents=15, seed=1)
        assert stats.distinct_endpoints == 1
        assert stats.best == -12
        assert stats.relative_spread == 0.0

    def test_endpoints_reach_reasonable_energies(self):
        q = QuboMatrix.random(16, seed=7)
        opt = solve_exact(q).energy
        stats = descent_statistics(q, descents=20, seed=2)
        assert stats.best >= opt  # descents can't beat the optimum
        assert stats.best <= 0.5 * opt  # but land deep (energies < 0)

    def test_zero_matrix_spread(self):
        stats = descent_statistics(QuboMatrix.zeros(8), descents=5, seed=0)
        assert stats.relative_spread == 0.0

    def test_deterministic(self):
        q = QuboMatrix.random(16, seed=8)
        a = descent_statistics(q, descents=8, seed=3)
        b = descent_statistics(q, descents=8, seed=3)
        assert np.array_equal(a.endpoints, b.endpoints)

    def test_validation(self):
        with pytest.raises(ValueError):
            descent_statistics(QuboMatrix.zeros(4), descents=0)


class TestEscapeRadius:
    def test_radius_one_when_delta_negative(self):
        W = -np.eye(6, dtype=np.int64)
        x = np.zeros(6, dtype=np.uint8)  # every flip improves
        assert escape_radius(QuboMatrix(W), x) == 1

    def test_none_at_global_optimum_small(self):
        q = QuboMatrix.random(10, seed=9)
        opt_x = solve_exact(q).x
        r = escape_radius(q, opt_x)
        assert r is None or r is not None  # well-defined; but specifically:
        assert escape_radius(q, opt_x, max_radius=1) is None

    def test_radius_two_detected(self):
        # E = x0 + x1 − 3·x0·x1: flipping either bit alone from (0,0)
        # costs +1, flipping both gains −1 → escape radius exactly 2.
        q = QuboMatrix.from_terms(2, linear={0: 1, 1: 1}, quadratic={(0, 1): -3})
        x = np.zeros(2, dtype=np.uint8)
        assert escape_radius(q, x) == 2

    def test_descent_endpoints_never_radius_one(self):
        q = QuboMatrix.random(16, seed=10)
        ds = descent_statistics(q, descents=8, seed=0)
        for i in range(8):
            assert escape_radius(q, ds.endpoint_bits[i], max_radius=1) is None

    def test_pair_identity_against_brute_force(self):
        from repro.qubo.energy import energy

        q = QuboMatrix.random(8, seed=11)
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, 8, dtype=np.uint8)
        r = escape_radius(q, x)
        e0 = energy(q, x)
        best2 = min(
            energy(q, np.bitwise_xor(x, _mask(8, i, j)))
            for i in range(8)
            for j in range(8)
            if i != j
        )
        best1 = min(
            energy(q, np.bitwise_xor(x, _mask(8, i))) for i in range(8)
        )
        if best1 < e0:
            assert r == 1
        elif best2 < e0:
            assert r == 2
        else:
            assert r is None

    def test_sparse_backend(self):
        from repro.qubo import SparseQubo

        q = QuboMatrix.random(12, seed=12)
        sq = SparseQubo.from_dense(q)
        x = np.random.default_rng(1).integers(0, 2, 12, dtype=np.uint8)
        assert escape_radius(q, x) == escape_radius(sq, x)

    def test_bad_radius(self):
        with pytest.raises(ValueError):
            escape_radius(QuboMatrix.zeros(4), np.zeros(4, dtype=np.uint8), max_radius=3)


def _mask(n, *idx):
    m = np.zeros(n, dtype=np.uint8)
    for i in idx:
        m[i] = 1
    return m


class TestFitnessDistanceCorrelation:
    def test_convex_landscape_high_fdc(self):
        # W = −I: E(X) = −popcount, optimal at all-ones; distance to
        # all-ones = n − popcount, so E and distance correlate perfectly.
        W = -np.eye(16, dtype=np.int64)
        q = QuboMatrix(W)
        ref = np.ones(16, dtype=np.uint8)
        fdc = fitness_distance_correlation(q, ref, samples=150, seed=0)
        assert fdc == pytest.approx(1.0)

    def test_random_instance_weak_fdc(self):
        q = QuboMatrix.random(24, seed=5)
        ref = solve_exact(q).x
        fdc = fitness_distance_correlation(q, ref, samples=200, seed=1)
        assert -1.0 <= fdc <= 1.0

    def test_flat_landscape_returns_zero(self):
        q = QuboMatrix.zeros(8)
        ref = np.zeros(8, dtype=np.uint8)
        assert fitness_distance_correlation(q, ref, samples=50, seed=0) == 0.0

    def test_validation(self):
        q = QuboMatrix.zeros(4)
        with pytest.raises(ValueError):
            fitness_distance_correlation(q, np.zeros(4, dtype=np.uint8), samples=1)
        with pytest.raises(ValueError):
            fitness_distance_correlation(q, np.zeros(5, dtype=np.uint8))
