"""Tests for the host↔device exchange buffers."""

import numpy as np
import pytest

from repro.abs.buffers import SharedWeights, SolutionBuffer, TargetBuffer


class TestTargetBuffer:
    def test_write_matrix_and_read(self):
        buf = TargetBuffer(4, 8)
        T = np.random.default_rng(0).integers(0, 2, (4, 8), dtype=np.uint8)
        buf.write(T)
        assert buf.version == 1
        assert np.array_equal(buf.read_all(), T)
        assert np.array_equal(buf.read(2), T[2])

    def test_slot_wraparound_read(self):
        buf = TargetBuffer(4, 8)
        T = np.random.default_rng(0).integers(0, 2, (4, 8), dtype=np.uint8)
        buf.write(T)
        assert np.array_equal(buf.read(6), T[2])  # 6 mod 4

    def test_write_fewer_vectors_wraps_fill(self):
        buf = TargetBuffer(4, 3)
        a = np.array([1, 0, 0], dtype=np.uint8)
        b = np.array([0, 1, 0], dtype=np.uint8)
        buf.write([a, b])
        all_slots = buf.read_all()
        assert np.array_equal(all_slots[0], a)
        assert np.array_equal(all_slots[2], a)  # wrapped
        assert np.array_equal(all_slots[3], b)

    def test_version_counts_writes(self):
        buf = TargetBuffer(2, 4)
        T = np.zeros((2, 4), dtype=np.uint8)
        buf.write(T)
        buf.write(T)
        assert buf.version == 2

    def test_shape_validation(self):
        buf = TargetBuffer(2, 4)
        with pytest.raises(ValueError):
            buf.write(np.zeros((3, 4), dtype=np.uint8))

    def test_empty_write_rejected(self):
        with pytest.raises(ValueError):
            TargetBuffer(2, 4).write([])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TargetBuffer(0, 4)
        with pytest.raises(ValueError):
            TargetBuffer(2, 0)

    def test_read_returns_copy(self):
        buf = TargetBuffer(1, 3)
        buf.write(np.ones((1, 3), dtype=np.uint8))
        got = buf.read(0)
        got[0] = 0
        assert buf.read(0)[0] == 1


class TestSolutionBuffer:
    def test_store_and_drain(self):
        buf = SolutionBuffer(4)
        buf.store(-5, np.array([1, 0, 1, 0], dtype=np.uint8))
        buf.store(-7, np.array([0, 1, 1, 0], dtype=np.uint8))
        assert buf.counter == 2
        assert len(buf) == 2
        sols = buf.drain()
        assert [s.energy for s in sols] == [-5, -7]
        assert len(buf) == 0
        assert buf.counter == 2  # counter is monotone, not reset

    def test_stored_copy_isolated(self):
        buf = SolutionBuffer(2)
        x = np.array([1, 0], dtype=np.uint8)
        buf.store(0, x)
        x[0] = 0
        assert buf.drain()[0].x[0] == 1

    def test_length_validation(self):
        buf = SolutionBuffer(3)
        with pytest.raises(ValueError):
            buf.store(0, np.zeros(2, dtype=np.uint8))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SolutionBuffer(0)


class TestSharedWeights:
    def test_create_attach_roundtrip(self):
        W = np.arange(16, dtype=np.int64).reshape(4, 4)
        owner = SharedWeights.create(W)
        try:
            other = SharedWeights.attach(owner.descriptor)
            try:
                assert np.array_equal(other.array, W)
                # Writes propagate (shared segment, not a copy).
                other.array[0, 0] = 99
                assert owner.array[0, 0] == 99
            finally:
                other.close()
        finally:
            owner.unlink()

    def test_unlink_idempotent(self):
        owner = SharedWeights.create(np.zeros((2, 2), dtype=np.int64))
        owner.unlink()
        owner.unlink()  # must not raise

    def test_descriptor_contents(self):
        owner = SharedWeights.create(np.zeros((3, 2), dtype=np.int32))
        try:
            name, shape, dtype = owner.descriptor
            assert shape == (3, 2) and dtype == "int32"
            assert isinstance(name, str)
        finally:
            owner.unlink()
