"""Tests for graph coloring → QUBO."""

import networkx as nx
import numpy as np
import pytest

from repro.problems.coloring import (
    coloring_to_qubo,
    count_violations,
    decode_coloring,
    is_proper_coloring,
)
from repro.qubo import energy
from repro.search import solve_exact


def encode(assignment, colors):
    n = len(assignment)
    x = np.zeros(n * colors, dtype=np.uint8)
    for v, c in enumerate(assignment):
        x[v * colors + c] = 1
    return x


class TestEnergyIdentity:
    def test_proper_coloring_hits_ground_offset(self):
        g = nx.cycle_graph(6)  # 2-colourable
        qubo, offset = coloring_to_qubo(g, 2)
        x = encode([0, 1, 0, 1, 0, 1], 2)
        assert energy(qubo, x) + offset == 0

    def test_monochromatic_edge_costs_penalty(self):
        g = nx.path_graph(2)
        qubo, offset = coloring_to_qubo(g, 2, penalty=4)
        bad = encode([1, 1], 2)
        assert energy(qubo, bad) + offset == 4

    def test_violation_accounting_general(self):
        g = nx.cycle_graph(5)
        k, A = 3, 2
        qubo, offset = coloring_to_qubo(g, k, penalty=A)
        rng = np.random.default_rng(0)
        for _ in range(30):
            x = rng.integers(0, 2, 5 * k, dtype=np.uint8)
            onehot, mono = count_violations(g, x, k)
            assert energy(qubo, x) + offset == A * (onehot + mono)


class TestGroundStates:
    def test_exact_solver_2colors_even_cycle(self):
        g = nx.cycle_graph(4)
        qubo, offset = coloring_to_qubo(g, 2)
        sol = solve_exact(qubo)
        assert sol.energy + offset == 0
        assignment = decode_coloring(sol.x, 4, 2)
        assert assignment is not None
        assert is_proper_coloring(g, assignment)

    def test_odd_cycle_needs_three_colors(self):
        g = nx.cycle_graph(5)
        q2, off2 = coloring_to_qubo(g, 2)
        assert solve_exact(q2).energy + off2 > 0  # infeasible with 2
        q3, off3 = coloring_to_qubo(g, 3)
        sol = solve_exact(q3)
        assert sol.energy + off3 == 0
        assignment = decode_coloring(sol.x, 5, 3)
        assert is_proper_coloring(g, assignment)


class TestDecoding:
    def test_decode_invalid_returns_none(self):
        assert decode_coloring(np.zeros(6, dtype=np.uint8), 3, 2) is None

    def test_decode_roundtrip(self):
        assignment = [2, 0, 1]
        assert decode_coloring(encode(assignment, 3), 3, 3) == assignment

    def test_is_proper_validation(self):
        with pytest.raises(ValueError, match="entries"):
            is_proper_coloring(nx.path_graph(3), [0, 1])


class TestValidation:
    def test_bad_colors(self):
        with pytest.raises(ValueError):
            coloring_to_qubo(nx.path_graph(2), 0)

    @pytest.mark.parametrize("penalty", [1, 3, 0, -2])
    def test_penalty_must_be_even_positive(self, penalty):
        with pytest.raises(ValueError, match="even"):
            coloring_to_qubo(nx.path_graph(2), 2, penalty=penalty)

    def test_self_loop(self):
        g = nx.Graph()
        g.add_nodes_from(range(2))
        g.add_edge(0, 0)
        with pytest.raises(ValueError, match="self-loop"):
            coloring_to_qubo(g, 2)

    def test_non_contiguous_nodes(self):
        g = nx.Graph()
        g.add_nodes_from([3, 4])
        with pytest.raises(ValueError, match="0..n-1"):
            coloring_to_qubo(g, 2)
