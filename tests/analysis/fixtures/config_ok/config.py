"""Fixture config: two fields, both plumbed everywhere."""

from dataclasses import dataclass


@dataclass
class AbsConfig:
    alpha: int = 1
    beta: float = 0.5
