"""Property-based invariants over random operation interleavings.

hypothesis generates arbitrary sequences of the engine's public
operations — ``straight_to`` (Algorithm 5), ``local_steps``
(Algorithm 4), ``set_state``, ``reset_best`` — and after every sequence
the suite checks the invariants no interleaving may break:

- the maintained ``energy``/``delta`` agree with an O(n²) from-scratch
  recompute (:func:`tests.helpers.engine_check.assert_engine_valid`);
- ``best_energy`` is genuinely achieved by ``best_x``;
- counters are monotone, internally consistent, and reconcile exactly
  with the telemetry bus's session counters.

Skips gracefully (via ``importorskip``) when hypothesis is absent.
"""

import warnings

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.backends import available_backends, resolve_backend  # noqa: E402
from repro.gpusim import BulkSearchEngine  # noqa: E402
from repro.qubo import QuboMatrix, SparseQubo, energy as qubo_energy  # noqa: E402
from repro.telemetry import TelemetryBus  # noqa: E402
from tests.helpers.engine_check import assert_engine_valid  # noqa: E402

N = 20
B = 3
_INT64_MAX = np.iinfo(np.int64).max

# One op = (kind, payload-seed).  Payloads are derived deterministically
# from the seed so hypothesis shrinks to readable sequences.
_op = st.tuples(
    st.sampled_from(["straight", "local", "set_state", "reset_best"]),
    st.integers(min_value=0, max_value=2**16),
)


def _dense_problem():
    return QuboMatrix.random(N, seed=777)


def _sparse_problem():
    return SparseQubo.from_dense(QuboMatrix.random(N, seed=778).W)


def _backend(name):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return resolve_backend(name)


def _apply(eng, op, payload):
    rng = np.random.default_rng(payload)
    if op == "straight":
        eng.straight_to(
            rng.integers(0, 2, (B, N), dtype=np.uint8),
            scan_neighbors=bool(payload % 2),
        )
    elif op == "local":
        eng.local_steps(int(payload % 9))  # 0..8 forced flips
    elif op == "set_state":
        eng.set_state(int(payload % B), rng.integers(0, 2, N, dtype=np.uint8))
    else:
        eng.reset_best()


def _counter_tuple(c):
    return (
        c.flips,
        c.evaluated,
        c.delta_updates,
        c.straight_flips,
        c.local_flips,
        c.straight_retirements,
    )


@pytest.mark.parametrize("backend_name", available_backends())
class TestInterleavingInvariants:
    @given(ops=st.lists(_op, min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_state_always_recomputes(self, backend_name, ops):
        """validate()'s from-scratch recompute agrees after any sequence."""
        eng = BulkSearchEngine(
            _dense_problem(), B, windows=np.array([2, 5, 13]),
            backend=_backend(backend_name),
        )
        for op, payload in ops:
            _apply(eng, op, payload)
        trace = " -> ".join(op for op, _ in ops)
        assert_engine_valid(eng, context=trace)

    @given(ops=st.lists(_op, min_size=1, max_size=10))
    @settings(max_examples=15, deadline=None)
    def test_sparse_state_always_recomputes(self, backend_name, ops):
        eng = BulkSearchEngine(
            _sparse_problem(), B, windows=7, backend=_backend(backend_name)
        )
        for op, payload in ops:
            _apply(eng, op, payload)
        assert_engine_valid(eng, context=" -> ".join(op for op, _ in ops))

    @given(ops=st.lists(_op, min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_best_is_achieved_and_counters_monotone(self, backend_name, ops):
        problem = _dense_problem()
        eng = BulkSearchEngine(problem, B, backend=_backend(backend_name))
        prev = _counter_tuple(eng.counters)
        for op, payload in ops:
            _apply(eng, op, payload)
            cur = _counter_tuple(eng.counters)
            assert all(a <= b for a, b in zip(prev, cur)), (
                f"counter went backwards across {op!r}: {prev} -> {cur}"
            )
            prev = cur
        c = eng.counters
        assert c.straight_flips + c.local_flips == c.flips
        assert c.evaluated == c.flips * N  # exposure semantics, dense
        assert c.delta_updates == c.flips * N  # dense: writes == exposure
        for b in range(B):
            if eng.best_energy[b] < _INT64_MAX:
                assert eng.best_energy[b] == qubo_energy(problem, eng.best_x[b])

    @given(ops=st.lists(_op, min_size=1, max_size=10))
    @settings(max_examples=15, deadline=None)
    def test_counters_reconcile_with_bus(self, backend_name, ops):
        """Session counters on an attached bus must equal the engine's
        own counters — the same contract the solver pipeline relies on
        (tests/telemetry/test_reconciliation.py), held at engine level
        under arbitrary interleavings."""
        bus = TelemetryBus()
        eng = BulkSearchEngine(
            _dense_problem(), B, backend=_backend(backend_name), bus=bus
        )
        for op, payload in ops:
            _apply(eng, op, payload)
        session = bus.counters.snapshot()
        for key, value in eng.counters.as_dict().items():
            assert session.get(key, 0) == value, key

    @given(ops=st.lists(_op, min_size=1, max_size=10))
    @settings(max_examples=10, deadline=None)
    def test_telemetry_never_changes_the_walk(self, backend_name, ops):
        """The timing instrumentation is observation-only: the same
        sequence with and without a bus lands on identical state."""
        quiet = BulkSearchEngine(_dense_problem(), B, backend=_backend(backend_name))
        loud = BulkSearchEngine(
            _dense_problem(), B, backend=_backend(backend_name), bus=TelemetryBus()
        )
        for op, payload in ops:
            _apply(quiet, op, payload)
            _apply(loud, op, payload)
        assert np.array_equal(quiet.X, loud.X)
        assert np.array_equal(quiet.delta, loud.delta)
        assert np.array_equal(quiet.energy, loud.energy)
        assert np.array_equal(quiet.best_energy, loud.best_energy)
        assert _counter_tuple(quiet.counters) == _counter_tuple(loud.counters)
