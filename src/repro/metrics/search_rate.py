"""Search-rate measurement (Definition 1 over wall-clock time).

The search rate is the number of evaluated solutions per second — the
metric of the paper's Table 2 and Figure 8 (and of the FPGA system it
compares against).  :func:`measure_engine_rate` measures the bulk
engine alone (the device kernel, as Table 2 does);
:func:`measure_solver_rate` measures the full ABS stack including host
GA and buffer traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abs.config import AbsConfig
from repro.abs.solver import AdaptiveBulkSearch
from repro.gpusim.engine import BulkSearchEngine
from repro.qubo.matrix import WeightsLike
from repro.utils.timer import Stopwatch


@dataclass(frozen=True)
class RateMeasurement:
    """A measured search rate."""

    evaluated: int
    elapsed: float
    n_blocks: int
    n: int

    @property
    def rate(self) -> float:
        """Solutions per second."""
        if self.elapsed <= 0:
            return 0.0
        return self.evaluated / self.elapsed

    @property
    def flips_per_second(self) -> float:
        """Flip rate (each flip evaluates ``n`` solutions)."""
        return self.rate / self.n


def measure_engine_rate(
    weights: WeightsLike,
    n_blocks: int,
    *,
    steps: int = 256,
    warmup_steps: int = 16,
    window: int = 16,
) -> RateMeasurement:
    """Measure the raw bulk-engine rate for one device configuration.

    Runs ``warmup_steps`` unmeasured local steps first (first-touch
    allocation and cache warm-up), then times ``steps`` steps.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if warmup_steps < 0:
        raise ValueError(f"warmup_steps must be >= 0, got {warmup_steps}")
    engine = BulkSearchEngine(weights, n_blocks, windows=window)
    if warmup_steps:
        engine.local_steps(warmup_steps)
    before = engine.counters.evaluated
    watch = Stopwatch().start()
    engine.local_steps(steps)
    elapsed = watch.stop()
    return RateMeasurement(
        evaluated=engine.counters.evaluated - before,
        elapsed=elapsed,
        n_blocks=n_blocks,
        n=engine.n,
    )


def measure_solver_rate(
    weights: WeightsLike,
    config: AbsConfig,
    *,
    mode: str = "process",
) -> RateMeasurement:
    """Measure the end-to-end ABS rate (host + devices + buffers)."""
    solver = AdaptiveBulkSearch(weights, config)
    result = solver.solve(mode)
    return RateMeasurement(
        evaluated=result.evaluated,
        elapsed=result.elapsed,
        n_blocks=config.total_blocks,
        n=solver.n,
    )
