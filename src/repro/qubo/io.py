"""Reading and writing QUBO instances.

Three interchange formats are supported:

- **Coordinate text** (``.qubo``) — a qbsolv-compatible sparse format:
  comment lines start with ``c``, a single header line
  ``p qubo 0 <n> <nDiagonals> <nElements>`` precedes the data, and each
  data line is ``i j value``.  Diagonal lines (``i == j``) carry
  ``W_ii``; off-diagonal lines (written once per unordered pair with
  ``i < j``) carry the *combined* coefficient ``W_ij + W_ji = 2·W_ij``,
  matching qbsolv's convention that the file stores the coefficient of
  the product ``x_i·x_j``.
- **JSON** (``.json``) — dense or sparse with metadata (name, comments).
- **NumPy** (``.npy``) — the raw dense array.
- **Sparse NumPy** (``.npz``) — CSR components + diagonal for
  :class:`~repro.qubo.sparse.SparseQubo` instances.

Coordinate files can also be loaded directly into the sparse backend
with :func:`load_qubo_sparse` — no dense materialization, so
G-set-scale instances load in O(edges) memory.

All loaders validate symmetry/integrality via the target class.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Union

import numpy as np

from repro.qubo.matrix import QuboMatrix, as_weight_matrix

PathLike = Union[str, Path]


class QuboFormatError(ValueError):
    """Raised when an instance file is malformed."""


# ---------------------------------------------------------------------------
# Canonical digests
# ---------------------------------------------------------------------------

#: Version tag mixed into every digest so the canonicalization can evolve
#: without old digests silently colliding with new ones.
_DIGEST_VERSION = b"repro-digest-v1"


def _weights_payload(weights) -> bytes:
    """The canonical byte representation of a problem's weights.

    Dense problems hash as little-endian C-order int64 bytes plus the
    shape; sparse problems hash their CSR components plus the diagonal.
    The encoding is explicit about endianness and layout so the same
    matrix digests identically on every platform.
    """
    from repro.qubo.sparse import SparseQubo

    if isinstance(weights, SparseQubo):
        csr = weights.csr
        return b"|".join(
            (
                b"sparse",
                str(weights.n).encode("ascii"),
                np.ascontiguousarray(csr.indptr, dtype="<i8").tobytes(),
                np.ascontiguousarray(csr.indices, dtype="<i8").tobytes(),
                np.ascontiguousarray(csr.data, dtype="<i8").tobytes(),
                np.ascontiguousarray(weights.diag, dtype="<i8").tobytes(),
            )
        )
    W = as_weight_matrix(weights)
    return b"|".join(
        (
            b"dense",
            str(W.shape[0]).encode("ascii"),
            np.ascontiguousarray(W, dtype="<i8").tobytes(),
        )
    )


def problem_digest(weights) -> str:
    """Stable SHA-256 hex digest of a QUBO problem's weights.

    Identical matrices — whether passed as :class:`QuboMatrix`, raw
    ndarray, or :class:`~repro.qubo.sparse.SparseQubo` with the same
    dense equivalent *representation* — digest identically for the same
    storage kind; names and metadata never participate.  This is the
    cache key the warm-fleet service uses for prepared-weights reuse
    (see ``docs/service.md``).
    """
    h = hashlib.sha256(_DIGEST_VERSION)
    h.update(b"|problem|")
    h.update(_weights_payload(weights))
    return h.hexdigest()


def _canonical_json(value: Any) -> str:
    """JSON with sorted keys and ndarray/tuple normalization."""

    def _default(obj: Any) -> Any:
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        return str(obj)

    return json.dumps(value, sort_keys=True, default=_default, separators=(",", ":"))


def run_digest(weights, config, seed: int | None = None, *, extra: dict | None = None) -> str:
    """Stable SHA-256 hex digest of one ``(problem, config, seed)`` run.

    ``config`` is canonicalized via :func:`dataclasses.asdict` (nested
    dataclasses included) and serialized as sorted-key JSON, so two
    configs with equal field values always digest identically.  ``seed``
    defaults to ``config.seed`` and overrides it in the hashed payload
    when given explicitly.  ``extra`` folds additional run context (for
    example the solve mode) into the key.

    A seeded solve is a pure function of this digest — the property the
    service's result cache relies on to return cached
    :class:`~repro.abs.result.SolveResult` objects bit-for-bit.
    """
    if not dataclasses.is_dataclass(config):
        raise TypeError(
            f"config must be a dataclass (e.g. AbsConfig), got {type(config).__name__}"
        )
    cfg_dict = dataclasses.asdict(config)
    cfg_dict["seed"] = cfg_dict.get("seed") if seed is None else int(seed)
    if extra:
        cfg_dict["__extra__"] = dict(extra)
    h = hashlib.sha256(_DIGEST_VERSION)
    h.update(b"|run|")
    h.update(problem_digest(weights).encode("ascii"))
    h.update(b"|")
    h.update(_canonical_json(cfg_dict).encode("utf-8"))
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Coordinate (.qubo) format
# ---------------------------------------------------------------------------

def save_qubo(matrix: QuboMatrix, path: PathLike, *, comment: str | None = None) -> None:
    """Write ``matrix`` in qbsolv-style coordinate format."""
    W = matrix.W
    n = matrix.n
    diag_idx = np.flatnonzero(np.diagonal(W))
    iu, ju = np.triu_indices(n, k=1)
    mask = W[iu, ju] != 0
    iu, ju = iu[mask], ju[mask]
    lines: list[str] = []
    if comment:
        for c_line in comment.splitlines():
            lines.append(f"c {c_line}")
    lines.append(f"c name: {matrix.name}")
    lines.append(f"p qubo 0 {n} {len(diag_idx)} {len(iu)}")
    for i in diag_idx:
        lines.append(f"{i} {i} {int(W[i, i])}")
    for i, j in zip(iu, ju):
        lines.append(f"{i} {j} {2 * int(W[i, j])}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_qubo(path: PathLike) -> QuboMatrix:
    """Load a coordinate-format instance written by :func:`save_qubo`
    (or by qbsolv)."""
    path = Path(path)
    n: int | None = None
    name = path.stem
    entries: list[tuple[int, int, int]] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("c"):
            rest = line[1:].strip()
            if rest.startswith("name:"):
                name = rest[len("name:"):].strip()
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) < 4 or parts[1].lower() != "qubo":
                raise QuboFormatError(
                    f"{path}:{lineno}: bad problem line {line!r}"
                )
            try:
                n = int(parts[3])
            except ValueError as exc:
                raise QuboFormatError(
                    f"{path}:{lineno}: bad node count in {line!r}"
                ) from exc
            continue
        parts = line.split()
        if len(parts) != 3:
            raise QuboFormatError(f"{path}:{lineno}: expected 'i j value', got {line!r}")
        try:
            i, j, v = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError as exc:
            raise QuboFormatError(f"{path}:{lineno}: non-integer entry {line!r}") from exc
        entries.append((i, j, v))
    if n is None:
        raise QuboFormatError(f"{path}: missing 'p qubo' header line")
    W = np.zeros((n, n), dtype=np.int64)
    for i, j, v in entries:
        if not (0 <= i < n and 0 <= j < n):
            raise QuboFormatError(f"{path}: index ({i},{j}) out of range [0,{n})")
        if i == j:
            W[i, i] += v
        else:
            if v % 2:
                raise QuboFormatError(
                    f"{path}: off-diagonal combined coefficient {v} for ({i},{j}) "
                    "is odd; cannot split into a symmetric integer matrix"
                )
            W[i, j] += v // 2
            W[j, i] += v // 2
    return QuboMatrix(W, copy=False, check=True, name=name)


def load_qubo_sparse(path: PathLike):
    """Load a coordinate-format instance directly as a SparseQubo.

    Never materializes the dense matrix: memory is O(entries), so this
    is the loader to use for big sparse instances.
    """
    from repro.qubo.sparse import SparseQubo

    path = Path(path)
    n: int | None = None
    name = path.stem
    rows: list[int] = []
    cols: list[int] = []
    vals: list[int] = []
    diag: dict[int, int] = {}
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("c"):
            rest = line[1:].strip()
            if rest.startswith("name:"):
                name = rest[len("name:"):].strip()
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) < 4 or parts[1].lower() != "qubo":
                raise QuboFormatError(f"{path}:{lineno}: bad problem line {line!r}")
            n = int(parts[3])
            continue
        parts = line.split()
        if len(parts) != 3:
            raise QuboFormatError(f"{path}:{lineno}: expected 'i j value', got {line!r}")
        try:
            i, j, v = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError as exc:
            raise QuboFormatError(f"{path}:{lineno}: non-integer entry {line!r}") from exc
        if i == j:
            diag[i] = diag.get(i, 0) + v
        else:
            if v % 2:
                raise QuboFormatError(
                    f"{path}: off-diagonal combined coefficient {v} for "
                    f"({i},{j}) is odd; cannot split symmetrically"
                )
            rows.append(min(i, j))
            cols.append(max(i, j))
            vals.append(v // 2)
    if n is None:
        raise QuboFormatError(f"{path}: missing 'p qubo' header line")
    for i in diag:
        if not (0 <= i < n):
            raise QuboFormatError(f"{path}: index ({i},{i}) out of range [0,{n})")
    for i, j in zip(rows, cols):
        if not (0 <= i < n and 0 <= j < n):
            raise QuboFormatError(f"{path}: index ({i},{j}) out of range [0,{n})")
    diag_vec = np.zeros(n, dtype=np.int64)
    for i, v in diag.items():
        diag_vec[i] = v
    return SparseQubo.from_graph_terms(
        n,
        diag_vec,
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.int64),
        name=name,
    )


def save_sparse_npz(sparse, path: PathLike) -> None:
    """Write a :class:`~repro.qubo.sparse.SparseQubo` as compressed .npz."""
    path = Path(path)
    csr = sparse.csr
    np.savez_compressed(
        path,
        format=np.array("repro-sparse-qubo"),
        n=np.array(sparse.n),
        name=np.array(sparse.name),
        data=csr.data,
        indices=csr.indices,
        indptr=csr.indptr,
        diag=sparse.diag,
    )


def load_sparse_npz(path: PathLike):
    """Load a :class:`~repro.qubo.sparse.SparseQubo` from .npz."""
    from scipy import sparse as sp

    from repro.qubo.sparse import SparseQubo

    path = Path(path)
    with np.load(path, allow_pickle=False) as payload:
        if str(payload.get("format", "")) != "repro-sparse-qubo":
            raise QuboFormatError(f"{path}: not a repro-sparse-qubo archive")
        n = int(payload["n"])
        csr = sp.csr_array(
            (payload["data"], payload["indices"], payload["indptr"]), shape=(n, n)
        )
        return SparseQubo(csr, payload["diag"], name=str(payload["name"]))


# ---------------------------------------------------------------------------
# JSON format
# ---------------------------------------------------------------------------

def save_json(matrix: QuboMatrix, path: PathLike, *, metadata: dict | None = None) -> None:
    """Write ``matrix`` as JSON with optional metadata."""
    payload = {
        "format": "repro-qubo",
        "version": 1,
        "name": matrix.name,
        "n": matrix.n,
        "weights": matrix.W.tolist(),
        "metadata": metadata or {},
    }
    Path(path).write_text(json.dumps(payload))


def load_json(path: PathLike) -> QuboMatrix:
    """Load a JSON instance written by :func:`save_json`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise QuboFormatError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != "repro-qubo":
        raise QuboFormatError(f"{path}: not a repro-qubo JSON file")
    W = np.asarray(payload["weights"], dtype=np.int64)
    if W.shape != (payload["n"], payload["n"]):
        raise QuboFormatError(
            f"{path}: weights shape {W.shape} does not match n={payload['n']}"
        )
    return QuboMatrix(W, copy=False, check=True, name=payload.get("name"))


# ---------------------------------------------------------------------------
# NumPy format + dispatch
# ---------------------------------------------------------------------------

def save(matrix, path: PathLike) -> None:
    """Save, dispatching on extension (.qubo / .json / .npy / .npz).

    ``.npz`` stores a :class:`~repro.qubo.sparse.SparseQubo` (dense
    matrices are converted); the other formats require a dense
    :class:`QuboMatrix`.
    """
    from repro.qubo.sparse import SparseQubo

    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".npz":
        sparse = (
            matrix
            if isinstance(matrix, SparseQubo)
            else SparseQubo.from_dense(matrix)
        )
        save_sparse_npz(sparse, path)
        return
    if isinstance(matrix, SparseQubo):
        matrix = matrix.to_dense()
    if suffix == ".qubo":
        save_qubo(matrix, path)
    elif suffix == ".json":
        save_json(matrix, path)
    elif suffix == ".npy":
        np.save(path, matrix.W)
    else:
        raise QuboFormatError(
            f"unsupported extension {suffix!r} (use .qubo/.json/.npy/.npz)"
        )


def load(path: PathLike):
    """Load, dispatching on extension (.qubo / .json / .npy / .npz).

    ``.npz`` yields a :class:`~repro.qubo.sparse.SparseQubo`; the other
    formats yield a dense :class:`QuboMatrix`.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".qubo":
        return load_qubo(path)
    if suffix == ".json":
        return load_json(path)
    if suffix == ".npy":
        return QuboMatrix(np.load(path), copy=False, check=True, name=path.stem)
    if suffix == ".npz":
        return load_sparse_npz(path)
    raise QuboFormatError(
        f"unsupported extension {suffix!r} (use .qubo/.json/.npy/.npz)"
    )
