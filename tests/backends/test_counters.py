"""Pins for the ``evaluated`` vs ``delta_updates`` counter semantics.

Historically the sparse engine path reported ``evaluated`` as if every
flip wrote all ``n`` delta entries, conflating the paper's Definition-1
*neighbourhood exposure* (always ``flips × n`` — the live delta vector
exposes every neighbour's energy whether or not it was rewritten) with
the *work actually performed* (``degree(k) + 1`` writes per sparse
flip).  The fix keeps ``evaluated`` on the paper's semantics and adds
the honest ``delta_updates`` counter; these tests pin both exactly so
the distinction can't silently regress.
"""

import numpy as np
import pytest

from repro.gpusim import BulkSearchEngine
from repro.qubo import QuboMatrix, SparseQubo


@pytest.fixture
def dense():
    return QuboMatrix.random(30, seed=1234)


@pytest.fixture
def sparse():
    # A genuinely sparse instance: ring + a few chords.
    n = 30
    terms = [(i, (i + 1) % n, 3 + i) for i in range(n)]
    terms += [(i, (i + 7) % n, -5) for i in range(0, n, 5)]
    W = np.zeros((n, n), dtype=np.int64)
    for i, j, w in terms:
        W[i, j] += w
        W[j, i] += w
    W[np.arange(n), np.arange(n)] = np.arange(n) - 15
    return SparseQubo.from_dense(W)


def _degrees(sq: SparseQubo) -> np.ndarray:
    indptr = sq.csr.indptr
    return np.asarray(indptr[1:] - indptr[:-1], dtype=np.int64)


class TestDenseCounters:
    def test_evaluated_equals_delta_updates(self, dense):
        eng = BulkSearchEngine(dense, 3)
        eng.local_steps(20)
        c = eng.counters
        assert c.flips == 60
        assert c.evaluated == 60 * dense.n
        assert c.delta_updates == c.evaluated  # dense: writes == exposure


class TestSparseCounters:
    def test_straight_pin_exact(self, sparse, rng):
        """From zero, each set target bit is flipped exactly once, so
        delta_updates must equal Σ (degree(k) + 1) over those bits —
        order-independent, hence exactly predictable."""
        B = 4
        targets = rng.integers(0, 2, (B, sparse.n), dtype=np.uint8)
        eng = BulkSearchEngine(sparse, B)
        flips = eng.straight_to(targets)
        deg = _degrees(sparse)
        expected = sum(
            int((deg[targets[b].astype(bool)] + 1).sum()) for b in range(B)
        )
        c = eng.counters
        assert c.flips == flips == int(targets.sum())
        assert c.delta_updates == expected
        assert c.evaluated == flips * sparse.n  # exposure, not writes
        assert c.delta_updates < c.evaluated  # the whole point

    def test_local_steps_bounded_by_max_degree(self, sparse):
        eng = BulkSearchEngine(sparse, 2, windows=6)
        eng.local_steps(25)
        c = eng.counters
        max_per_flip = int(_degrees(sparse).max()) + 1
        assert c.evaluated == c.flips * sparse.n
        assert 0 < c.delta_updates <= c.flips * max_per_flip
        assert c.delta_updates < c.evaluated

    def test_dense_and_sparse_agree_on_everything_else(self, rng):
        """The honest counter is the *only* counter the representation
        may change; search-semantics counters stay identical."""
        dense = QuboMatrix.random(24, seed=9)
        sparse = SparseQubo.from_dense(dense.W)
        e_d = BulkSearchEngine(dense, 3, windows=5, offsets=np.zeros(3, dtype=np.int64))
        e_s = BulkSearchEngine(sparse, 3, windows=5, offsets=np.zeros(3, dtype=np.int64))
        targets = rng.integers(0, 2, (3, 24), dtype=np.uint8)
        for eng in (e_d, e_s):
            eng.straight_to(targets)
            eng.local_steps(30)
        d = e_d.counters.as_dict()
        s = e_s.counters.as_dict()
        d_updates = d.pop("engine.delta_updates")
        s_updates = s.pop("engine.delta_updates")
        assert d == s
        assert s_updates <= d_updates


class TestCountersSurface:
    def test_as_dict_exposes_delta_updates(self, dense):
        eng = BulkSearchEngine(dense, 1)
        eng.local_steps(2)
        snap = eng.counters.as_dict()
        assert snap["engine.delta_updates"] == 2 * dense.n
        assert set(snap) >= {
            "engine.flips",
            "engine.evaluated",
            "engine.delta_updates",
            "engine.straight_flips",
            "engine.local_flips",
            "engine.straight_retirements",
        }

    def test_solve_result_carries_delta_updates(self, dense):
        from repro.api import solve

        res = solve(dense, max_rounds=3, seed=0, blocks_per_gpu=4)
        assert "engine.delta_updates" in res.counters
        assert res.counters["engine.delta_updates"] == res.counters["engine.evaluated"]
