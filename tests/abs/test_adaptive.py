"""Tests for the adaptive window tuner (paper §5 future work)."""

import numpy as np
import pytest

from repro.abs import AbsConfig, AdaptiveBulkSearch, WindowAdapter
from repro.abs.device import DeviceSimulator
from repro.qubo import QuboMatrix


class TestWindowAdapter:
    def test_not_ready_before_period(self):
        a = WindowAdapter(64, 8, period=3, seed=0)
        a.observe(np.zeros(8))
        a.observe(np.zeros(8))
        assert not a.ready
        assert a.maybe_adapt(np.full(8, 16)) is None
        with pytest.raises(RuntimeError):
            a.adapt(np.full(8, 16))

    def test_adapt_replaces_worst_with_winner_derived(self):
        a = WindowAdapter(64, 8, period=1, fraction=0.25, seed=1)
        energies = np.array([-100, -90, -80, -70, -60, -50, -40, 10])
        a.observe(energies)
        windows = np.array([2, 4, 8, 16, 32, 64, 5, 7], dtype=np.int64)
        new = a.adapt(windows)
        k = 2  # 25 % of 8
        # Winners (lowest energy) keep their windows.
        assert np.array_equal(new[:6], windows[:6])
        # Losers got windows derived from winners' {2, 4} by ×{0.5,1,2}.
        allowed = {1, 2, 4, 8}
        assert set(new[6:].tolist()) <= allowed
        assert a.adaptations == k

    def test_windows_clamped_to_range(self):
        a = WindowAdapter(8, 4, period=1, fraction=0.5, seed=2)
        a.observe(np.array([-10, -9, 0, 1]))
        new = a.adapt(np.array([8, 8, 1, 1], dtype=np.int64))
        assert (new >= 1).all() and (new <= 8).all()

    def test_period_resets_after_adapt(self):
        a = WindowAdapter(64, 4, period=2, seed=3)
        a.observe(np.zeros(4))
        a.observe(np.zeros(4))
        a.adapt(np.full(4, 8))
        assert not a.ready

    def test_deterministic_by_seed(self):
        def run(seed):
            a = WindowAdapter(64, 8, period=1, seed=seed)
            a.observe(np.arange(8, dtype=float))
            return a.adapt(np.full(8, 16, dtype=np.int64))

        assert np.array_equal(run(5), run(5))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0, "n_blocks": 2},
            {"n": 4, "n_blocks": 0},
            {"n": 4, "n_blocks": 2, "period": 0},
            {"n": 4, "n_blocks": 2, "fraction": 0.0},
            {"n": 4, "n_blocks": 2, "fraction": 0.9},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WindowAdapter(**{"n": 4, "n_blocks": 2, **kwargs})

    def test_observe_shape_checked(self):
        a = WindowAdapter(16, 4, seed=0)
        with pytest.raises(ValueError):
            a.observe(np.zeros(5))


class TestDeviceIntegration:
    def test_device_adapts_windows_over_rounds(self):
        q = QuboMatrix.random(32, seed=1)
        adapter = WindowAdapter(32, 8, period=2, seed=4)
        dev = DeviceSimulator(
            q, 8, windows=np.full(8, 4, dtype=np.int64),
            local_steps=8, adapter=adapter,
        )
        rng = np.random.default_rng(0)
        for _ in range(6):
            dev.round(rng.integers(0, 2, (8, 32), dtype=np.uint8))
        assert adapter.adaptations > 0

    def test_block_count_mismatch_rejected(self):
        q = QuboMatrix.random(16, seed=2)
        adapter = WindowAdapter(16, 4, seed=0)
        with pytest.raises(ValueError, match="blocks"):
            DeviceSimulator(q, 8, adapter=adapter)


class TestSolverIntegration:
    def test_sync_solver_with_adaptation(self):
        q = QuboMatrix.random(48, seed=3)
        cfg = AbsConfig(
            blocks_per_gpu=8, local_steps=16, max_rounds=20,
            adapt_windows=True, adapt_period=2, seed=6,
        )
        res = AdaptiveBulkSearch(q, cfg).solve("sync")
        from repro.qubo import energy

        assert res.best_energy == energy(q, res.best_x)

    def test_adaptation_deterministic_by_seed(self):
        q = QuboMatrix.random(48, seed=3)
        cfg = AbsConfig(
            blocks_per_gpu=8, local_steps=16, max_rounds=15,
            adapt_windows=True, adapt_period=2, seed=9,
        )
        a = AdaptiveBulkSearch(q, cfg).solve("sync")
        b = AdaptiveBulkSearch(q, cfg).solve("sync")
        assert a.best_energy == b.best_energy
        assert np.array_equal(a.best_x, b.best_x)

    def test_process_mode_with_adaptation(self):
        q = QuboMatrix.random(32, seed=4)
        cfg = AbsConfig(
            blocks_per_gpu=4, local_steps=8, max_rounds=6, time_limit=30.0,
            adapt_windows=True, adapt_period=2, seed=10,
        )
        res = AdaptiveBulkSearch(q, cfg).solve("process")
        assert res.rounds >= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AbsConfig(max_rounds=1, adapt_period=0)
        with pytest.raises(ValueError):
            AbsConfig(max_rounds=1, adapt_fraction=0.8)
