"""Algorithm 2 — local search with O(n + n²/m) search efficiency.

One initial O(n²) evaluation, then each candidate's energy comes from
the single-delta identity Eq. (10) at O(n).  With ``m`` steps this
amortizes to O(n + n²/m) per evaluated solution (Lemma 2).
"""

from __future__ import annotations

import numpy as np

from repro.qubo.energy import delta_single, energy
from repro.qubo.matrix import WeightsLike
from repro.search.accept import AcceptRule, DescentAccept
from repro.search.base import LocalSearch, SearchRecord
from repro.utils.rng import SeedLike


class OneStepLocalSearch(LocalSearch):
    """Algorithm 2: incremental single-flip energy via Eq. (10)."""

    name = "one-step delta (Alg. 2)"

    def __init__(self, accept: AcceptRule | None = None) -> None:
        self.accept_rule = accept or DescentAccept()

    def run(
        self,
        weights: WeightsLike,
        x0: np.ndarray,
        steps: int,
        seed: SeedLike = None,
        *,
        record_history: bool = False,
    ) -> SearchRecord:
        W, x, rng = self._prepare(weights, x0, steps, seed)
        n = W.shape[0]

        e = energy(W, x)
        ops = n * n
        evaluated = 1
        best_x = x.copy()
        best_e = e
        flips = 0
        history: list[int] = []

        for _ in range(steps):
            k = int(rng.integers(n))
            d = delta_single(W, x, k)  # Eq. (10): O(n)
            ops += n
            evaluated += 1
            if self.accept_rule.accept(d, rng):
                x[k] ^= 1
                e += d
                flips += 1
                if e < best_e:
                    best_e = e
                    best_x = x.copy()
            self.accept_rule.step()
            if record_history:
                history.append(best_e)

        return SearchRecord(
            best_x=best_x,
            best_energy=best_e,
            final_x=x,
            final_energy=e,
            steps=steps,
            flips=flips,
            evaluated=evaluated,
            ops=ops,
            history=history,
        )
