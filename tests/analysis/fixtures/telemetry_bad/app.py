"""Fixture emitter with undeclared names and dynamic-event abuse."""


def run(bus, name):
    bus.emit("demo.event", value=1)
    bus.emit("undeclared.event", value=2)
    bus.emit(f"demo.{name}", value=3)
    bus.counters.inc("demo.count")
    bus.counters.inc("undeclared.count")
    bus.counters.inc(f"demo.{name}.ns", 5)
    bus.counters.inc(f"other.{name}.ns", 5)
