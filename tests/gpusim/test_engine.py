"""Tests for the bulk engine — including exact equivalence with the
scalar reference implementations."""

import numpy as np
import pytest

from repro.gpusim.engine import BulkSearchEngine
from repro.qubo import QuboMatrix, SearchState
from repro.search.policies import WindowMinDeltaPolicy
from repro.search.straight import straight_search


@pytest.fixture
def problem():
    return QuboMatrix.random(40, seed=2718)


class TestConstruction:
    def test_initial_state_is_zero_vector(self, problem):
        eng = BulkSearchEngine(problem, 4)
        assert not eng.X.any()
        assert (eng.energy == 0).all()
        assert np.array_equal(eng.delta[0], np.diagonal(problem.W))

    def test_window_broadcast(self, problem):
        eng = BulkSearchEngine(problem, 3, windows=8)
        assert np.array_equal(eng.windows, [8, 8, 8])

    def test_per_block_windows(self, problem):
        eng = BulkSearchEngine(problem, 3, windows=np.array([2, 4, 8]))
        assert np.array_equal(eng.windows, [2, 4, 8])

    def test_staggered_default_offsets(self, problem):
        eng = BulkSearchEngine(problem, 4)
        assert len(set(eng.offsets.tolist())) > 1

    @pytest.mark.parametrize("bad_windows", [0, 41, [1, 0]])
    def test_invalid_windows(self, problem, bad_windows):
        with pytest.raises(ValueError):
            if isinstance(bad_windows, list):
                BulkSearchEngine(problem, 2, windows=np.array(bad_windows))
            else:
                BulkSearchEngine(problem, 2, windows=bad_windows)

    def test_invalid_offsets(self, problem):
        with pytest.raises(ValueError):
            BulkSearchEngine(problem, 2, offsets=np.array([0, 40]))

    def test_invalid_block_count(self, problem):
        with pytest.raises(ValueError):
            BulkSearchEngine(problem, 0)


class TestScalarEquivalence:
    """Block b of the engine must walk exactly like the scalar code."""

    @pytest.mark.parametrize("window", [1, 4, 16, 40])
    def test_local_steps_match_scalar_policy(self, problem, window):
        eng = BulkSearchEngine(
            problem, 2, windows=window, offsets=np.zeros(2, dtype=np.int64)
        )
        eng.local_steps(60)
        st = SearchState.zeros(problem)
        pol = WindowMinDeltaPolicy(window)
        rng = np.random.default_rng(0)
        for _ in range(60):
            st.flip(pol.select(st, rng))
        assert np.array_equal(eng.X[0], st.x)
        assert eng.energy[0] == st.energy
        assert np.array_equal(eng.delta[0], st.delta)

    def test_straight_matches_scalar(self, problem, rng):
        B = 3
        targets = rng.integers(0, 2, (B, problem.n), dtype=np.uint8)
        eng = BulkSearchEngine(problem, B)
        flips = eng.straight_to(targets)
        assert (eng.X == targets).all()
        assert flips == int(targets.sum())  # from zero: distance = popcount
        for b in range(B):
            st = SearchState.zeros(problem)
            bx, be, _ = straight_search(st, targets[b], scan_neighbors=True)
            assert st.energy == eng.energy[b]
            assert np.array_equal(st.delta, eng.delta[b])
            assert be == eng.best_energy[b]

    def test_state_stays_valid_through_mixed_usage(self, problem, rng):
        eng = BulkSearchEngine(problem, 4, windows=np.array([2, 4, 8, 16]))
        eng.straight_to(rng.integers(0, 2, (4, problem.n), dtype=np.uint8))
        eng.local_steps(30)
        eng.straight_to(rng.integers(0, 2, (4, problem.n), dtype=np.uint8))
        eng.local_steps(30)
        eng.validate()


class TestBestTracking:
    def test_best_energy_matches_best_x(self, problem, rng):
        eng = BulkSearchEngine(problem, 4)
        eng.straight_to(rng.integers(0, 2, (4, problem.n), dtype=np.uint8))
        eng.local_steps(50)
        from repro.qubo import energy

        for b in range(4):
            e, x = eng.block_best(b)
            assert e == energy(problem, x)

    def test_reset_best_forgets(self, problem, rng):
        eng = BulkSearchEngine(problem, 2)
        eng.straight_to(rng.integers(0, 2, (2, problem.n), dtype=np.uint8))
        assert (eng.best_energy < np.iinfo(np.int64).max).all()
        eng.reset_best()
        assert (eng.best_energy == np.iinfo(np.int64).max).all()

    def test_global_best_is_min_over_blocks(self, problem, rng):
        eng = BulkSearchEngine(problem, 4)
        eng.straight_to(rng.integers(0, 2, (4, problem.n), dtype=np.uint8))
        eng.local_steps(20)
        e, x = eng.global_best()
        assert e == eng.best_energy.min()

    def test_block_best_index_check(self, problem):
        eng = BulkSearchEngine(problem, 2)
        with pytest.raises(IndexError):
            eng.block_best(2)


class TestCounters:
    def test_flip_and_evaluated_counts(self, problem):
        eng = BulkSearchEngine(problem, 3)
        eng.local_steps(10)
        assert eng.counters.flips == 30
        assert eng.counters.evaluated == 30 * problem.n
        assert eng.counters.local_flips == 30

    def test_straight_counts(self, problem, rng):
        targets = rng.integers(0, 2, (3, problem.n), dtype=np.uint8)
        eng = BulkSearchEngine(problem, 3)
        flips = eng.straight_to(targets)
        assert eng.counters.straight_flips == flips

    def test_negative_steps_rejected(self, problem):
        with pytest.raises(ValueError):
            BulkSearchEngine(problem, 1).local_steps(-1)

    def test_target_shape_check(self, problem):
        eng = BulkSearchEngine(problem, 2)
        with pytest.raises(ValueError):
            eng.straight_to(np.zeros((3, problem.n), dtype=np.uint8))


class TestSetState:
    def test_set_state_recomputes(self, problem, rng):
        eng = BulkSearchEngine(problem, 2)
        x = rng.integers(0, 2, problem.n, dtype=np.uint8)
        eng.set_state(1, x)
        eng.validate()
        assert np.array_equal(eng.X[1], x)

    def test_blocks_retire_independently(self, problem):
        """Blocks at different Hamming distances finish at different
        iterations but all end exactly at their targets."""
        eng = BulkSearchEngine(problem, 3)
        targets = np.zeros((3, problem.n), dtype=np.uint8)
        targets[0, :1] = 1
        targets[1, :20] = 1
        targets[2, :] = 1
        eng.straight_to(targets)
        assert (eng.X == targets).all()
        eng.validate()
