"""Common interface and result record for all local searches.

Every search in this package reports two instrumentation counters so
that the paper's *search efficiency* (Definition 1) can be measured, not
just asserted:

- ``ops`` — arithmetic operations spent on energy bookkeeping (a full
  O(n²) evaluation counts n², an Eq. (10) single delta counts n, an
  Eq. (16) delta-vector refresh counts n).
- ``evaluated`` — number of distinct solutions whose energy the search
  learned (Algorithm 4 learns all n neighbors per flip).

``efficiency = ops / evaluated`` then reproduces Lemmas 1–3 and
Theorem 1 empirically.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.qubo.matrix import WeightsLike, as_weight_matrix
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_bit_vector


@dataclass
class SearchRecord:
    """Outcome and instrumentation of one local-search run.

    Attributes
    ----------
    best_x, best_energy:
        The best solution visited and its energy.
    final_x, final_energy:
        Where the walk ended (Algorithm 4 intentionally separates the
        walk position from the best-so-far).
    steps:
        Search-step iterations executed.
    flips:
        Accepted bit flips (== steps for forced-flip searches).
    evaluated:
        Solutions whose energy became known (Definition 1 denominator).
    ops:
        Energy-bookkeeping operation count (Definition 1 numerator).
    history:
        Optional per-step best-energy trace (populated on request).
    """

    best_x: np.ndarray
    best_energy: int
    final_x: np.ndarray
    final_energy: int
    steps: int
    flips: int
    evaluated: int
    ops: int
    history: list[int] = field(default_factory=list)

    @property
    def efficiency(self) -> float:
        """Measured search efficiency: operations per evaluated solution."""
        if self.evaluated == 0:
            return float("nan")
        return self.ops / self.evaluated


class LocalSearch(abc.ABC):
    """Abstract base class for single-walk local searches.

    Subclasses implement :meth:`run`; the base class provides input
    canonicalization shared by all of them.
    """

    #: Human-readable algorithm name (used in benchmark tables).
    name: str = "local-search"

    @abc.abstractmethod
    def run(
        self,
        weights: WeightsLike,
        x0: np.ndarray,
        steps: int,
        seed: SeedLike = None,
        *,
        record_history: bool = False,
    ) -> SearchRecord:
        """Run ``steps`` search iterations starting from ``x0``."""

    @staticmethod
    def _prepare(
        weights: WeightsLike, x0: np.ndarray, steps: int, seed: SeedLike
    ) -> tuple[np.ndarray, np.ndarray, np.random.Generator]:
        """Validate inputs; returns ``(W, x0_copy, rng)``."""
        W = as_weight_matrix(weights)
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        x = check_bit_vector(x0, W.shape[0], "x0").copy()
        return W, x, as_generator(seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
