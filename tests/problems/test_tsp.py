"""Tests for the TSP → QUBO formulation and reference solvers."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems.tsp import (
    TSP_SCALE,
    decode_tour,
    held_karp,
    tour_length,
    tour_to_bits,
    tsp_to_qubo,
    two_opt,
)
from repro.problems.tsplib import euc_2d
from repro.qubo import energy
from repro.search import solve_exact


def random_dist(c, seed=0, box=100):
    rng = np.random.default_rng(seed)
    return euc_2d(rng.uniform(0, box, (c, 2)))


class TestFormulationIdentities:
    @given(st.integers(0, 2**31 - 1), st.integers(4, 7))
    @settings(max_examples=20)
    def test_valid_tour_energy_equals_scaled_length(self, seed, c):
        d = random_dist(c, seed)
        tq = tsp_to_qubo(d)
        rng = np.random.default_rng(seed)
        perm = [0] + list(rng.permutation(np.arange(1, c)))
        bits = tour_to_bits(perm)
        e = energy(tq.qubo, bits)
        assert tq.energy_to_length(e) == tour_length(d, perm)
        assert tq.length_to_energy(tour_length(d, perm)) == e

    def test_invalid_solution_pays_penalty(self):
        d = random_dist(5, seed=1)
        tq = tsp_to_qubo(d)
        valid = tour_to_bits([0, 1, 2, 3, 4])
        invalid = valid.copy()
        invalid[0] ^= 1  # break a one-hot constraint
        assert energy(tq.qubo, invalid) > energy(tq.qubo, valid) - TSP_SCALE * tq.penalty

    def test_valid_tours_at_least_4_flips_apart(self):
        """The paper's hardness argument: two valid solutions differ in
        at least four bits."""
        d = random_dist(5, seed=2)
        tours = [
            tour_to_bits([0] + list(p)) for p in itertools.permutations([1, 2, 3, 4])
        ]
        for a, b in itertools.combinations(tours, 2):
            assert int((a ^ b).sum()) >= 4

    def test_default_penalty_is_twice_max_distance(self):
        d = random_dist(6, seed=3)
        tq = tsp_to_qubo(d)
        assert tq.penalty == 2 * int(d.max())

    def test_ground_state_is_optimal_tour(self):
        d = random_dist(4, seed=4)
        tq = tsp_to_qubo(d)
        sol = solve_exact(tq.qubo)  # (4−1)² = 9 bits
        L, _ = held_karp(d)
        assert sol.energy == tq.length_to_energy(L)
        tour = decode_tour(sol.x, 4)
        assert tour is not None
        assert tour_length(d, tour) == L

    def test_n_bits(self):
        tq = tsp_to_qubo(random_dist(6, seed=0))
        assert tq.n_bits == 25
        assert tq.qubo.n == 25

    def test_custom_penalty(self):
        d = random_dist(5, seed=5)
        tq = tsp_to_qubo(d, penalty=9999)
        assert tq.penalty == 9999

    @pytest.mark.parametrize("bad", [0, -5])
    def test_invalid_penalty(self, bad):
        with pytest.raises(ValueError):
            tsp_to_qubo(random_dist(4, seed=0), penalty=bad)


class TestDistanceValidation:
    def test_rejects_asymmetric(self):
        d = random_dist(4, seed=0).copy()
        d[0, 1] += 1
        with pytest.raises(ValueError, match="symmetric"):
            tsp_to_qubo(d)

    def test_rejects_nonzero_diagonal(self):
        d = random_dist(4, seed=0).copy()
        np.fill_diagonal(d, 1)
        with pytest.raises(ValueError, match="diagonal"):
            tsp_to_qubo(d)

    def test_rejects_floats(self):
        with pytest.raises(TypeError, match="integer"):
            tsp_to_qubo(np.zeros((4, 4)))

    def test_rejects_negative(self):
        d = random_dist(4, seed=0).copy()
        d[0, 1] = d[1, 0] = -1
        with pytest.raises(ValueError, match="non-negative"):
            tsp_to_qubo(d)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError, match="3"):
            tsp_to_qubo(np.zeros((2, 2), dtype=np.int64))


class TestEncodingDecoding:
    def test_roundtrip(self):
        tour = [0, 3, 1, 2]
        assert decode_tour(tour_to_bits(tour), 4) == tour

    def test_decode_invalid_returns_none(self):
        assert decode_tour(np.zeros(9, dtype=np.uint8), 4) is None
        x = np.zeros(9, dtype=np.uint8)
        x[0] = x[1] = 1  # city 1 at two positions
        assert decode_tour(x, 4) is None

    def test_tour_to_bits_validation(self):
        with pytest.raises(ValueError, match="start"):
            tour_to_bits([1, 0, 2])
        with pytest.raises(ValueError, match="every city"):
            tour_to_bits([0, 1, 1])
        with pytest.raises(ValueError, match="3"):
            tour_to_bits([0, 1])

    def test_tour_length_closed(self):
        d = np.array([[0, 2, 9], [2, 0, 4], [9, 4, 0]], dtype=np.int64)
        assert tour_length(d, [0, 1, 2]) == 2 + 4 + 9

    def test_tour_length_validation(self):
        d = random_dist(4, seed=0)
        with pytest.raises(ValueError):
            tour_length(d, [0, 1, 2])


class TestHeldKarp:
    @pytest.mark.parametrize("c", [4, 6, 8])
    def test_matches_brute_force(self, c):
        d = random_dist(c, seed=c)
        L, tour = held_karp(d)
        brute = min(
            tour_length(d, [0] + list(p))
            for p in itertools.permutations(range(1, c))
        )
        assert L == brute
        assert tour_length(d, tour) == L

    def test_tour_starts_at_zero(self):
        _, tour = held_karp(random_dist(7, seed=1))
        assert tour[0] == 0
        assert sorted(tour) == list(range(7))

    def test_too_large_rejected(self):
        with pytest.raises(ValueError, match="17"):
            held_karp(random_dist(18, seed=0))


class TestTwoOpt:
    def test_valid_tour_and_plausible_length(self):
        d = random_dist(12, seed=9)
        L, tour = two_opt(d, seed=0)
        assert sorted(tour) == list(range(12))
        assert tour[0] == 0
        assert tour_length(d, tour) == L

    def test_at_least_as_good_as_identity_tour(self):
        d = random_dist(15, seed=10)
        L, _ = two_opt(d, seed=0)
        assert L <= tour_length(d, list(range(15)))

    def test_matches_exact_on_small(self):
        d = random_dist(8, seed=11)
        L_exact, _ = held_karp(d)
        L_2opt, _ = two_opt(d, seed=0, restarts=6)
        assert L_2opt >= L_exact
        assert L_2opt <= 1.15 * L_exact  # 2-opt is near-optimal here

    def test_restart_validation(self):
        with pytest.raises(ValueError):
            two_opt(random_dist(5, seed=0), restarts=0)
