"""Tests for the adaptive window tuner (paper §5 future work)."""

import numpy as np
import pytest

from repro.abs import AbsConfig, AdaptiveBulkSearch, VariantController, WindowAdapter
from repro.abs.device import DeviceSimulator
from repro.qubo import QuboMatrix
from repro.telemetry import MemorySink, TelemetryBus


class TestWindowAdapter:
    def test_not_ready_before_period(self):
        a = WindowAdapter(64, 8, period=3, seed=0)
        a.observe(np.zeros(8))
        a.observe(np.zeros(8))
        assert not a.ready
        assert a.maybe_adapt(np.full(8, 16)) is None
        with pytest.raises(RuntimeError):
            a.adapt(np.full(8, 16))

    def test_adapt_replaces_worst_with_winner_derived(self):
        a = WindowAdapter(64, 8, period=1, fraction=0.25, seed=1)
        energies = np.array([-100, -90, -80, -70, -60, -50, -40, 10])
        a.observe(energies)
        windows = np.array([2, 4, 8, 16, 32, 64, 5, 7], dtype=np.int64)
        new = a.adapt(windows)
        k = 2  # 25 % of 8
        # Winners (lowest energy) keep their windows.
        assert np.array_equal(new[:6], windows[:6])
        # Losers got windows derived from winners' {2, 4} by ×{0.5,1,2}.
        allowed = {1, 2, 4, 8}
        assert set(new[6:].tolist()) <= allowed
        assert a.adaptations == k

    def test_windows_clamped_to_range(self):
        a = WindowAdapter(8, 4, period=1, fraction=0.5, seed=2)
        a.observe(np.array([-10, -9, 0, 1]))
        new = a.adapt(np.array([8, 8, 1, 1], dtype=np.int64))
        assert (new >= 1).all() and (new <= 8).all()

    def test_period_resets_after_adapt(self):
        a = WindowAdapter(64, 4, period=2, seed=3)
        a.observe(np.zeros(4))
        a.observe(np.zeros(4))
        a.adapt(np.full(4, 8))
        assert not a.ready

    def test_deterministic_by_seed(self):
        def run(seed):
            a = WindowAdapter(64, 8, period=1, seed=seed)
            a.observe(np.arange(8, dtype=float))
            return a.adapt(np.full(8, 16, dtype=np.int64))

        assert np.array_equal(run(5), run(5))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0, "n_blocks": 2},
            {"n": 4, "n_blocks": 0},
            {"n": 4, "n_blocks": 2, "period": 0},
            {"n": 4, "n_blocks": 2, "fraction": 0.0},
            {"n": 4, "n_blocks": 2, "fraction": 0.9},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WindowAdapter(**{"n": 4, "n_blocks": 2, **kwargs})

    def test_observe_shape_checked(self):
        a = WindowAdapter(16, 4, seed=0)
        with pytest.raises(ValueError):
            a.observe(np.zeros(5))


class TestDeviceIntegration:
    def test_device_adapts_windows_over_rounds(self):
        q = QuboMatrix.random(32, seed=1)
        adapter = WindowAdapter(32, 8, period=2, seed=4)
        dev = DeviceSimulator(
            q, 8, windows=np.full(8, 4, dtype=np.int64),
            local_steps=8, adapter=adapter,
        )
        rng = np.random.default_rng(0)
        for _ in range(6):
            dev.round(rng.integers(0, 2, (8, 32), dtype=np.uint8))
        assert adapter.adaptations > 0

    def test_block_count_mismatch_rejected(self):
        q = QuboMatrix.random(16, seed=2)
        adapter = WindowAdapter(16, 4, seed=0)
        with pytest.raises(ValueError, match="blocks"):
            DeviceSimulator(q, 8, adapter=adapter)


class TestSolverIntegration:
    def test_sync_solver_with_adaptation(self):
        q = QuboMatrix.random(48, seed=3)
        cfg = AbsConfig(
            blocks_per_gpu=8, local_steps=16, max_rounds=20,
            adapt_windows=True, adapt_period=2, seed=6,
        )
        res = AdaptiveBulkSearch(q, cfg).solve("sync")
        from repro.qubo import energy

        assert res.best_energy == energy(q, res.best_x)

    def test_adaptation_deterministic_by_seed(self):
        q = QuboMatrix.random(48, seed=3)
        cfg = AbsConfig(
            blocks_per_gpu=8, local_steps=16, max_rounds=15,
            adapt_windows=True, adapt_period=2, seed=9,
        )
        a = AdaptiveBulkSearch(q, cfg).solve("sync")
        b = AdaptiveBulkSearch(q, cfg).solve("sync")
        assert a.best_energy == b.best_energy
        assert np.array_equal(a.best_x, b.best_x)

    def test_process_mode_with_adaptation(self):
        q = QuboMatrix.random(32, seed=4)
        cfg = AbsConfig(
            blocks_per_gpu=4, local_steps=8, max_rounds=6, time_limit=30.0,
            adapt_windows=True, adapt_period=2, seed=10,
        )
        res = AdaptiveBulkSearch(q, cfg).solve("process")
        assert res.rounds >= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AbsConfig(max_rounds=1, adapt_period=0)
        with pytest.raises(ValueError):
            AbsConfig(max_rounds=1, adapt_fraction=0.8)


class TestAdaptOverlapRegression:
    """``adapt`` must never pick a block as donor *and* loser."""

    def test_single_block_is_noop(self):
        a = WindowAdapter(64, 1, period=1, fraction=0.5, seed=0)
        a.observe(np.array([-5.0]))
        new = a.adapt(np.array([16], dtype=np.int64))
        assert np.array_equal(new, [16])
        assert a.adaptations == 0
        # The period still resets — the next round starts a fresh window.
        assert not a.ready

    def test_single_block_emits_nothing(self):
        sink = MemorySink()
        bus = TelemetryBus()
        bus.attach(sink)
        a = WindowAdapter(64, 1, period=1, fraction=0.5, seed=0, bus=bus)
        a.observe(np.array([-5.0]))
        a.adapt(np.array([16], dtype=np.int64))
        assert sink.records() == []
        assert bus.counters.get("adapt.reassignments") == 0

    @pytest.mark.parametrize("n_blocks", [2, 3, 4, 5, 8])
    def test_winners_and_losers_disjoint_at_half_fraction(self, n_blocks):
        a = WindowAdapter(64, n_blocks, period=1, fraction=0.5, seed=7)
        energies = np.arange(n_blocks, dtype=float)
        a.observe(energies)
        windows = np.arange(1, n_blocks + 1, dtype=np.int64)
        new = a.adapt(windows)
        k = min(max(1, int(n_blocks * 0.5)), n_blocks // 2)
        # The k best-ranked blocks (lowest energy = lowest index here)
        # keep their windows untouched.
        assert np.array_equal(new[:k], windows[:k])
        assert a.adaptations == k

    def test_best_block_never_overwritten(self):
        # B=3, fraction=0.5 → k=1: rank 0 is a donor, rank 2 a loser;
        # the old code could overlap them at B=1 (covered above) — here
        # the winner's window must survive many adaptations.
        a = WindowAdapter(64, 3, period=1, fraction=0.5, seed=11)
        windows = np.array([4, 8, 16], dtype=np.int64)
        for _ in range(10):
            a.observe(np.array([-100.0, -50.0, 0.0]))
            windows = a.adapt(windows)
            assert windows[0] == 4


class TestObserveNonFiniteRegression:
    """A NaN round-best must not poison the ranking sums forever."""

    def test_nan_does_not_poison_sums(self):
        a = WindowAdapter(64, 4, period=2, seed=0)
        a.observe(np.array([1.0, np.nan, 3.0, 4.0]))
        a.observe(np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.isfinite(a._sums).all()
        new = a.adapt(np.full(4, 8, dtype=np.int64))
        assert (new >= 1).all()

    def test_nonfinite_counted_and_ranked_as_loser(self):
        a = WindowAdapter(64, 4, period=1, fraction=0.25, seed=0)
        a.observe(np.array([-10.0, np.inf, -5.0, -7.0]))
        assert a.nonfinite_observations == 1
        # The inf block was substituted with the round's worst finite
        # energy (-5), not +inf — sums stay usable.
        assert a._sums[1] == -5.0

    def test_all_nonfinite_round_skipped(self):
        a = WindowAdapter(64, 3, period=1, seed=0)
        a.observe(np.full(3, np.nan))
        assert not a.ready
        assert a.nonfinite_observations == 3

    def test_nonfinite_counter_on_bus(self):
        bus = TelemetryBus()
        a = WindowAdapter(64, 2, period=1, seed=0, bus=bus)
        a.observe(np.array([np.nan, 1.0]))
        assert bus.counters.get("adapt.nonfinite_observations") == 1


@pytest.mark.diverse
class TestVariantController:
    def test_validation(self):
        with pytest.raises(ValueError):
            VariantController([])
        with pytest.raises(ValueError):
            VariantController(["a"], period=0)
        c = VariantController(["a", "b"])
        with pytest.raises(ValueError):
            c.observe(2, 1.0)

    def test_no_move_during_baseline_window(self):
        c = VariantController(["a", "a", "b", "b"], period=1)
        for g in range(4):
            c.observe(g, 0.0)
        assert c.end_sweep() is None  # first window only baselines

    def test_device_migrates_to_improving_variant(self):
        c = VariantController(["a", "a", "b", "b"], period=1)
        for g in range(4):
            c.observe(g, 10.0)
        c.end_sweep()
        # Variant "a" improves, "b" stagnates → one b-device joins a.
        for g, e in enumerate([5.0, 5.0, 10.0, 10.0]):
            c.observe(g, e)
        move = c.end_sweep()
        assert move is not None
        device, src, dst = move
        assert (src, dst) == ("b", "a")
        assert c.assignment == ["a", "a", "a", "b"] or device == 3
        assert c.reassignments == 1

    def test_never_extinguishes_a_variant(self):
        c = VariantController(["a", "a", "a", "b"], period=1)
        for g in range(4):
            c.observe(g, 10.0)
        c.end_sweep()
        for g, e in enumerate([5.0, 5.0, 5.0, 10.0]):
            c.observe(g, e)
        assert c.end_sweep() is None  # b has one device left
        assert c.assignment == ["a", "a", "a", "b"]

    def test_no_move_without_strict_difference(self):
        c = VariantController(["a", "a", "b", "b"], period=1)
        for _ in range(2):
            for g in range(4):
                c.observe(g, 7.0)
            c.end_sweep()
        assert c.reassignments == 0

    def test_nonfinite_observation_guarded(self):
        c = VariantController(["a", "b"], period=1)
        c.observe(0, np.nan)
        c.observe(1, np.inf)
        assert c.nonfinite_observations == 2
        assert c.end_sweep() is None

    def test_deterministic(self):
        def run():
            c = VariantController(["a", "b", "a", "b"], period=2)
            for sweep in range(8):
                for g in range(4):
                    c.observe(g, float((g + 1) * (8 - sweep)))
                c.end_sweep()
            return c.assignment, c.reassignments

        assert run() == run()

    def test_migration_event_and_counter(self):
        sink = MemorySink()
        bus = TelemetryBus()
        bus.attach(sink)
        c = VariantController(["a", "a", "b", "b"], period=1, bus=bus)
        for g in range(4):
            c.observe(g, 10.0)
        c.end_sweep()
        for g, e in enumerate([5.0, 5.0, 10.0, 10.0]):
            c.observe(g, e)
        c.end_sweep()
        events = [r for r in sink.records() if r["event"] == "adapt.variant"]
        assert len(events) == 1
        assert events[0]["from_variant"] == "b"
        assert events[0]["to_variant"] == "a"
        assert bus.counters.get("adapt.variant_reassignments") == 1
