"""Tests for the occupancy calculator — exact Table 2 reproduction."""

import pytest

from repro.gpusim.occupancy import (
    Occupancy,
    compute_occupancy,
    max_supported_bits,
    sweep_bits_per_thread,
    valid_bits_per_thread,
)
from repro.paperdata import TABLE_2


class TestAgainstPaper:
    @pytest.mark.parametrize(
        "row", TABLE_2, ids=lambda r: f"n{r.n}-p{r.bits_per_thread}"
    )
    def test_active_blocks_match_every_published_row(self, row):
        occ = compute_occupancy(row.n, row.bits_per_thread)
        assert occ.active_blocks == row.active_blocks
        assert occ.full  # the paper runs everything at 100 % occupancy

    def test_known_threads_per_block(self):
        # n=1k: the published threads column is arithmetically
        # consistent and must match exactly.
        for p, threads in [(1, 1024), (2, 512), (4, 256), (8, 128), (16, 64)]:
            assert compute_occupancy(1024, p).threads_per_block == threads

    def test_2k_p8_published_inconsistency(self):
        """The paper prints 128 threads/block for n=2k, p=8, but its own
        active-block count (272 = 68·1024/256) implies 256 — we follow
        the arithmetic."""
        occ = compute_occupancy(2048, 8)
        assert occ.threads_per_block == 256
        assert occ.active_blocks == 272

    def test_peak_configuration(self):
        # n=1k, p=16 → 64 threads, 1088 blocks: the 1.24 T/s config.
        occ = compute_occupancy(1024, 16)
        assert occ.threads_per_block == 64
        assert occ.active_blocks == 1088

    def test_max_supported_bits_is_32k(self):
        """'Our system can support up to 32 k-bit QUBO problems' (§3.2)."""
        assert max_supported_bits() == 32768


class TestValidation:
    def test_too_many_threads_rejected(self):
        with pytest.raises(ValueError, match="threads/block"):
            compute_occupancy(4096, 2)  # 2048 threads > 1024

    def test_below_warp_rejected(self):
        with pytest.raises(ValueError, match="warp"):
            compute_occupancy(64, 16)  # 4 threads < 32

    def test_register_pressure_rejected(self):
        with pytest.raises(ValueError, match="register"):
            compute_occupancy(32768, 64)  # 64 deltas/thread won't fit

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compute_occupancy(0, 1)
        with pytest.raises(ValueError):
            compute_occupancy(64, 0)

    def test_ceil_division_covers_all_bits(self):
        occ = compute_occupancy(1000, 3)  # 334 threads own 1002 slots
        assert occ.threads_per_block * 3 >= 1000


class TestSweep:
    def test_sweep_matches_paper_row_count(self):
        # Table 2 lists 5/5/4/3/2/1 configurations for 1k…32k; our
        # sweep may include extra valid p (e.g. p=32 at n=1k) but must
        # include every published one.
        published = {(r.n, r.bits_per_thread) for r in TABLE_2}
        for n in (1024, 2048, 4096, 8192, 16384, 32768):
            ours = {(o.n, o.bits_per_thread) for o in sweep_bits_per_thread(n)}
            assert {(a, b) for a, b in published if a == n} <= ours

    def test_valid_bits_sorted_powers_of_two(self):
        ps = valid_bits_per_thread(2048)
        assert ps == sorted(ps)
        assert all(p & (p - 1) == 0 for p in ps)

    def test_non_power_sweep(self):
        ps = valid_bits_per_thread(100, powers_of_two=False)
        assert 3 in ps or len(ps) > 0

    def test_occupancy_value_range(self):
        for occ in sweep_bits_per_thread(1024):
            assert isinstance(occ, Occupancy)
            assert 0 < occ.occupancy <= 1.0
