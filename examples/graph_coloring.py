#!/usr/bin/env python3
"""Graph colouring via QUBO — another 'other application' (paper §5).

Colours a random planar-ish graph with 4 colours by compiling the
one-hot + conflict penalties into a QUBO.  A proper colouring is found
exactly when the energy reaches ``−offset``; ABS stops at that moment.
Also demonstrates the convergence sparkline helper.

Run:  python examples/graph_coloring.py
"""

from __future__ import annotations

from repro import AbsConfig, AdaptiveBulkSearch
from repro.problems import (
    coloring_to_qubo,
    decode_coloring,
    is_proper_coloring,
    toroidal_graph,
)
from repro.utils.plot import sparkline


def main() -> None:
    graph = toroidal_graph(6, 6, diagonal_fraction=1.0, seed=13)
    k = 4  # torus-with-diagonals contains triangles; 4 colours suffice
    print(
        f"graph: {graph.number_of_nodes()} vertices, "
        f"{graph.number_of_edges()} edges; colouring with {k} colours"
    )

    qubo, offset = coloring_to_qubo(graph, k)
    print(f"QUBO: {qubo.n} bits, feasible energy = {-offset}")

    config = AbsConfig(
        blocks_per_gpu=32,
        local_steps=48,
        pool_capacity=48,
        target_energy=-offset,
        time_limit=20.0,
        seed=8,
    )
    result = AdaptiveBulkSearch(qubo, config).solve()

    print(f"best energy : {result.best_energy} (target {-offset})")
    print(f"convergence : {sparkline([e for _, e in result.history], width=48)}")
    assignment = decode_coloring(result.best_x, graph.number_of_nodes(), k)
    if assignment is None:
        print("one-hot constraints violated — raise the budget")
        return
    ok = is_proper_coloring(graph, assignment)
    print(f"proper colouring: {ok}")
    if ok:
        usage = {c: assignment.count(c) for c in range(k)}
        print(f"colour usage  : {usage}")


if __name__ == "__main__":
    main()
