"""Spin-glass benchmark generators (Ising-native instances).

The paper frames QUBO as "finding the ground state of an Ising model";
the canonical hard Ising families are spin glasses:

- :func:`sherrington_kirkpatrick` — the fully-connected SK model with
  random ±J (or discretized Gaussian) couplings, zero field;
- :func:`edwards_anderson` — the 2-D lattice spin glass with ±J
  couplings on a torus grid.

Both return an :class:`~repro.qubo.ising.IsingModel` together with its
exact QUBO compilation (via :func:`~repro.qubo.ising.ising_to_qubo`),
ready for any solver in this package.  Couplings are integers, so the
QUBO conversion is lossless.
"""

from __future__ import annotations

import numpy as np

from repro.qubo.ising import IsingModel, ising_to_qubo
from repro.qubo.matrix import QuboMatrix
from repro.utils.rng import SeedLike, as_generator


def _finalize(J: np.ndarray, name: str) -> tuple[IsingModel, QuboMatrix, float]:
    model = IsingModel(J.astype(np.float64), np.zeros(J.shape[0]))
    qubo, constant = ising_to_qubo(model, name=name)
    return model, qubo, constant


def sherrington_kirkpatrick(
    n: int,
    seed: SeedLike = None,
    *,
    couplings: str = "pm1",
    scale: int = 100,
) -> tuple[IsingModel, QuboMatrix, float]:
    """The SK model: dense symmetric random couplings, no field.

    Parameters
    ----------
    n:
        Number of spins.
    couplings:
        ``"pm1"`` — uniform ±1 (the binary SK variant); ``"gaussian"``
        — ``round(scale · N(0, 1))`` (integer-discretized Gaussian,
        the classical SK normalization up to the integer grid).
    scale:
        Discretization scale for the Gaussian variant.

    Returns
    -------
    (model, qubo, constant):
        The Ising model, its exact QUBO, and the constant such that
        ``model.energy(2x − 1) == E_qubo(x) + constant``.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if couplings not in ("pm1", "gaussian"):
        raise ValueError(f"couplings must be 'pm1' or 'gaussian', got {couplings!r}")
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    rng = as_generator(seed)
    if couplings == "pm1":
        upper = rng.choice((-1, 1), size=(n, n)).astype(np.int64)
    else:
        upper = np.rint(scale * rng.standard_normal((n, n))).astype(np.int64)
    J = np.triu(upper, 1)
    J = J + J.T
    # Keep 2J integral for a lossless QUBO conversion (always true for
    # integer J) and make J/2-integrality explicit: ising_to_qubo needs
    # 2·J integral, which integers satisfy.
    return _finalize(J, name=f"sk-{couplings}-{n}")


def edwards_anderson(
    rows: int,
    cols: int,
    seed: SeedLike = None,
) -> tuple[IsingModel, QuboMatrix, float]:
    """The 2-D Edwards–Anderson ±J spin glass on a torus grid.

    Spin ``(r, c)`` is index ``r · cols + c``; couplings connect each
    site to its right and down neighbours (with wraparound).
    """
    if rows < 2 or cols < 2:
        raise ValueError("rows and cols must be >= 2")
    rng = as_generator(seed)
    n = rows * cols
    J = np.zeros((n, n), dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            for v in (r * cols + (c + 1) % cols, ((r + 1) % rows) * cols + c):
                j = int(rng.choice((-1, 1)))
                J[u, v] += j
                J[v, u] += j
    np.fill_diagonal(J, 0)
    return _finalize(J, name=f"ea-{rows}x{cols}")


def ground_state_energy_bound(model: IsingModel) -> float:
    """The trivial bound ``−Σ|J|/2 − Σ|h|`` (tight only for
    frustration-free instances); useful as a sanity floor in tests."""
    return model.ground_state_bound()
