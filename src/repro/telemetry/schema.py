"""The documented event schema and a JSONL trace validator.

This module is the machine-checkable twin of ``docs/observability.md``:
every event the pipeline can emit is declared here with its required
and optional fields, and :func:`validate_trace` checks a ``--trace-out``
JSONL file line by line against the declarations.  ``make trace-demo``
and the ``python -m repro trace`` subcommand both run this validator,
so the docs, the emit sites, and the schema cannot drift apart
silently.

Run directly on a trace file::

    python -m repro.telemetry.schema out.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

#: Type groups used in field specs.  ``bool`` is excluded from INT/NUM
#: (JSON distinguishes ``true`` from ``1``; so do we).
INT = ("int",)
NUM = ("num",)
STR = ("str",)
BOOL = ("bool",)
OPT_INT = ("int", "null")
OPT_NUM = ("num", "null")


def _type_ok(value: Any, kinds: Sequence[str]) -> bool:
    for kind in kinds:
        if kind == "null" and value is None:
            return True
        if kind == "bool" and isinstance(value, bool):
            return True
        if kind == "int" and isinstance(value, int) and not isinstance(value, bool):
            return True
        if kind == "num" and isinstance(value, (int, float)) and not isinstance(value, bool):
            return True
        if kind == "str" and isinstance(value, str):
            return True
    return False


@dataclass(frozen=True)
class EventSpec:
    """Field contract for one event name."""

    required: Mapping[str, Sequence[str]]
    optional: Mapping[str, Sequence[str]] = field(default_factory=dict)


#: Every event name the pipeline emits, with its payload contract.
#: Keep in lock-step with docs/observability.md.
EVENT_SCHEMAS: dict[str, EventSpec] = {
    # Solver lifecycle -------------------------------------------------
    "solve.start": EventSpec(
        required={
            "mode": STR, "n": INT, "n_gpus": INT, "blocks_per_gpu": INT,
            "local_steps": INT, "pool_capacity": INT, "seed": OPT_INT,
            "adapt_windows": BOOL,
        },
        # ``backend`` is the *active* kernel backend (post-fallback);
        # ``diversity_min_dist`` / ``variants`` are the Diverse-ABS
        # knobs; all optional so earlier traces stay valid.
        optional={
            "backend": STR, "diversity_min_dist": INT, "variants": STR,
        },
    ),
    "solve.end": EventSpec(
        required={
            "best_energy": INT, "rounds": INT, "elapsed": NUM,
            "evaluated": INT, "flips": INT, "reached_target": BOOL,
        },
        # ``sweeps`` joined in 1.4 (min per-device round count);
        # optional so earlier traces stay valid.
        optional={"workers_restarted": INT, "workers_lost": INT, "sweeps": INT},
    ),
    # Host loop (paper §3.1 Steps 2–4) ---------------------------------
    "host.round": EventSpec(
        required={
            "round": INT, "device": INT, "best_energy": OPT_NUM,
            "pool_size": INT, "elapsed": NUM,
        }
    ),
    "host.absorb": EventSpec(
        required={
            "arrived": INT, "inserted": INT, "rejected_duplicate": INT,
            "rejected_worse": INT, "pool_size": INT, "pool_best": OPT_NUM,
            "pool_worst": OPT_NUM, "pool_spread": OPT_NUM,
        },
        # Diverse-ABS niche rejections this absorb (optional so
        # pre-diversity traces stay valid).
        optional={"rejected_diverse": INT},
    ),
    "host.targets": EventSpec(
        required={"count": INT, "mutation": INT, "crossover": INT, "copy": INT}
    ),
    "host.queue": EventSpec(
        required={"device": INT, "targets_queued": INT, "results_queued": INT}
    ),
    # Exchange transport (process mode; see repro.abs.exchange) -------
    # Emitted once per solve after the transport is built.  On the shm
    # transport the slot sizes are the bit-packed shared-memory record
    # sizes; the queue transport reports its pickled-array sizes and
    # ``ring_slots == 0``.
    "exchange.open": EventSpec(
        required={
            "transport": STR, "workers": INT, "ring_slots": INT,
            "target_slot_bytes": INT, "result_slot_bytes": INT,
        },
        optional={"port": INT},  # tcp transport: the acceptor's port
    ),
    # Emitted by the tcp transport when a worker slot connects again
    # after its first HELLO — a crash, a dropped stream, or an elastic
    # rejoin.  ``connects`` counts lifetime connections for that slot.
    "exchange.reconnect": EventSpec(
        required={"device": INT, "incarnation": INT, "connects": INT}
    ),
    "worker.result": EventSpec(
        required={
            "worker": INT, "round": INT, "best_energy": INT,
            "evaluated": INT, "flips": INT,
        }
    ),
    # Worker supervision (process mode; see repro.abs.supervisor) -----
    "supervisor.stall": EventSpec(
        required={"worker": INT, "silent_for": NUM, "stall_timeout": NUM}
    ),
    "supervisor.restart": EventSpec(
        required={
            "worker": INT, "reason": STR, "incarnation": INT,
            "restarts_used": INT, "exitcode": OPT_INT,
        }
    ),
    "supervisor.degrade": EventSpec(
        required={
            "worker": INT, "reason": STR, "restarts_used": INT,
            "healthy_left": INT, "exitcode": OPT_INT,
        }
    ),
    # Device loop (paper §3.2 Steps 2–5) -------------------------------
    "device.round": EventSpec(
        required={
            "device": INT, "round": INT, "straight_flips": INT,
            "retired": INT, "local_flips": INT, "evaluated": INT,
            "best_energy": INT,
        }
    ),
    "engine.straight": EventSpec(
        required={
            "flips": INT, "iters": INT, "retired": INT,
            "already_at_target": INT,
        },
        optional={"device": INT, "backend": STR},
    ),
    "engine.local": EventSpec(
        required={"steps": INT, "flips": INT, "evaluated": INT},
        optional={"device": INT, "backend": STR},
    ),
    # Kernel-backend resolution (repro.backends): emitted once per
    # engine when the requested backend was substituted (e.g. ``numba``
    # requested without numba importable).
    "backend.fallback": EventSpec(
        required={"requested": STR, "using": STR, "reason": STR},
        optional={"device": INT},
    ),
    # Window adaptation (paper §5 future work) -------------------------
    # ``device`` is stamped when the event was relayed from a worker
    # process (process mode); sync-mode emissions omit it.
    "adapt.windows": EventSpec(
        required={
            "reassigned": INT, "window_min": INT, "window_max": INT,
            "window_mean": NUM,
        },
        optional={"device": INT},
    ),
    # Variant-level reallocation (Diverse ABS, arXiv:2207.03069): one
    # device migrated from a stagnating variant to an improving one.
    "adapt.variant": EventSpec(
        required={"device": INT, "from_variant": STR, "to_variant": STR}
    ),
    # Scalar Algorithm-4 reference search ------------------------------
    "search.run": EventSpec(
        required={"steps": INT, "flips": INT, "evaluated": INT, "best_energy": INT}
    ),
    # Warm-fleet solver service (repro.service) ------------------------
    "service.job_submitted": EventSpec(
        required={"job": INT, "n": INT, "priority": INT, "queued": INT}
    ),
    "service.job_start": EventSpec(
        required={"job": INT, "n": INT, "cache_hit": BOOL},
        optional={"weights_cache_hit": BOOL, "fleet_reused": BOOL},
    ),
    "service.job_end": EventSpec(
        required={"job": INT, "status": STR, "elapsed": NUM},
        optional={"best_energy": INT, "rounds": INT},
    ),
}

#: Fields present on every record regardless of event name.
COMMON_FIELDS: dict[str, Sequence[str]] = {"event": STR, "t": NUM, "seq": INT}

#: Stamp fields a wrapping bus (``telemetry.StampedBus``) may add to
#: *any* event: the service stamps every record a job's solve emits
#: with that job's id so one trace can interleave many jobs and still
#: be teased apart.  Allowed everywhere, required nowhere.
STAMP_FIELDS: dict[str, Sequence[str]] = {"job": INT}

#: Every *fixed* counter name the pipeline increments.  Like
#: ``EVENT_SCHEMAS``, this is the machine-checkable registry: the
#: ``telemetry-consistency`` rule in ``repro.analysis`` statically
#: extracts every ``bus.counters.inc(...)`` site from the tree and
#: cross-checks both directions (undeclared increments *and* dead
#: declarations are errors).  Keep in lock-step with
#: docs/observability.md.
COUNTER_NAMES: frozenset[str] = frozenset(
    {
        # solution pool (repro.ga.pool)
        "pool.inserted",
        "pool.rejected_duplicate",
        "pool.rejected_worse",
        "pool.rejected_diverse",
        # GA operator mix (repro.ga.host)
        "ga.mutation",
        "ga.crossover",
        "ga.copy",
        # host loop (repro.abs.host / solver)
        "host.rounds",
        "host.solutions_absorbed",
        "host.targets_generated",
        # window adapter + variant controller (repro.abs.adaptive)
        "adapt.reassignments",
        "adapt.nonfinite_observations",
        "adapt.variant_reassignments",
        # variant recipes (repro.abs.variants / device tabu polish)
        "variant.tabu_steps",
        # worker supervision (repro.abs.supervisor)
        "supervisor.restarts",
        "supervisor.workers_lost",
        # scalar reference search (repro.search)
        "search.flips",
        "search.evaluated",
        # bulk engine (repro.gpusim.engine)
        "engine.flips",
        "engine.evaluated",
        "engine.delta_updates",
        "engine.straight_flips",
        "engine.local_flips",
        "engine.straight_retirements",
        # graycode exact finisher (repro.abs.decompose)
        "backend.graycode.finisher_calls",
        "backend.graycode.enumerated",
        # exchange transport (repro.abs.exchange)
        "exchange.targets_published",
        "exchange.results_consumed",
        "exchange.bytes_to_device",
        "exchange.bytes_from_device",
        "exchange.packs",
        "exchange.unpacks",
        "exchange.publish_stalls",
        "exchange.target_waits",
        # tcp exchange transport (repro.abs.tcp)
        "exchange.tcp.connects",
        "exchange.tcp.reconnects",
        "exchange.tcp.frames_to_device",
        "exchange.tcp.frames_from_device",
        "exchange.tcp.dropped_results",
        # solver phase timings (repro.abs.solver)
        "solver.setup_ns",
        "solver.search_ns",
        # warm-fleet solver service (repro.service)
        "service.jobs_submitted",
        "service.jobs_completed",
        "service.jobs_cancelled",
        "service.jobs_failed",
        "service.cache_hits",
        "service.weights_cache_hits",
        "service.fleet_rearms",
        "service.fleet_spawns",
    }
)

#: Parameterized counter families: ``*`` stands for one dynamic path
#: segment (today: the active kernel-backend name).  An f-string
#: increment site must normalize to exactly one of these patterns.
COUNTER_PATTERNS: tuple[str, ...] = (
    "backend.*.local_steps_ns",
    "backend.*.straight_select_ns",
    "backend.*.flip_ns",
    "backend.*.best_ns",
    "backend.*.prepare_ns",
)


class SchemaError(ValueError):
    """Raised for a record that violates the declared schema.

    ``lineno`` carries the 1-based trace line of the first violation
    when the error came from :func:`validate_trace` (``None`` for
    single-record validation), so callers can print machine-parseable
    ``path:line:`` locations.
    """

    def __init__(self, message: str, lineno: int | None = None) -> None:
        super().__init__(message)
        self.lineno = lineno


def validate_record(record: Mapping[str, Any]) -> None:
    """Check one JSONL record; raises :class:`SchemaError` on violation."""
    for name, kinds in COMMON_FIELDS.items():
        if name not in record:
            raise SchemaError(f"missing common field {name!r}")
        if not _type_ok(record[name], kinds):
            raise SchemaError(
                f"field {name!r} has wrong type {type(record[name]).__name__}"
            )
    event = record["event"]
    spec = EVENT_SCHEMAS.get(event)
    if spec is None:
        raise SchemaError(f"unknown event name {event!r}")
    payload = {k: v for k, v in record.items() if k not in COMMON_FIELDS}
    for fname, kinds in spec.required.items():
        if fname not in payload:
            raise SchemaError(f"{event}: missing required field {fname!r}")
        if not _type_ok(payload[fname], kinds):
            raise SchemaError(
                f"{event}: field {fname!r} has wrong type "
                f"{type(payload[fname]).__name__} (want {'/'.join(kinds)})"
            )
    for fname, value in payload.items():
        if fname in spec.required:
            continue
        if fname in spec.optional:
            if not _type_ok(value, spec.optional[fname]):
                raise SchemaError(
                    f"{event}: field {fname!r} has wrong type {type(value).__name__}"
                )
            continue
        if fname in STAMP_FIELDS:
            if not _type_ok(value, STAMP_FIELDS[fname]):
                raise SchemaError(
                    f"{event}: stamp field {fname!r} has wrong type "
                    f"{type(value).__name__}"
                )
            continue
        raise SchemaError(f"{event}: undeclared field {fname!r}")


def validate_trace(path: str | Path) -> dict[str, int]:
    """Validate a JSONL trace file; returns ``{event name: count}``.

    Raises :class:`SchemaError` naming the first offending line, or
    :class:`OSError` if the file cannot be read.  Sequence numbers must
    be strictly increasing (the bus guarantees it; a shuffled or
    truncated-and-concatenated file is not a valid trace).
    """
    counts: dict[str, int] = {}
    last_seq = 0
    with Path(path).open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(
                    f"line {lineno}: not valid JSON ({exc})", lineno=lineno
                ) from exc
            if not isinstance(record, dict):
                raise SchemaError(
                    f"line {lineno}: record is not a JSON object", lineno=lineno
                )
            try:
                validate_record(record)
            except SchemaError as exc:
                raise SchemaError(f"line {lineno}: {exc}", lineno=lineno) from exc
            if record["seq"] <= last_seq:
                raise SchemaError(
                    f"line {lineno}: seq {record['seq']} not increasing "
                    f"(previous {last_seq})",
                    lineno=lineno,
                )
            last_seq = record["seq"]
            counts[record["event"]] = counts.get(record["event"], 0) + 1
    return counts


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry: validate a trace file and print per-event counts."""
    parser = argparse.ArgumentParser(
        description="Validate an ABS telemetry JSONL trace against the schema."
    )
    parser.add_argument("trace", help="path to a --trace-out JSONL file")
    args = parser.parse_args(argv)
    try:
        counts = validate_trace(args.trace)
    except SchemaError as exc:
        # Machine-parseable location first (`path:line:`), so CI log
        # scrapers and editors can jump straight to the offending record.
        if exc.lineno is not None:
            print(f"{args.trace}:{exc.lineno}: INVALID: {exc}", file=sys.stderr)
        else:
            print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    total = sum(counts.values())
    width = max((len(n) for n in counts), default=5)
    for name in sorted(counts):
        print(f"{name:<{width}}  {counts[name]}")
    print(f"OK: {total} events, {len(counts)} event types")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
