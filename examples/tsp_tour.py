#!/usr/bin/env python3
"""TSP as QUBO (paper §4.1.2, Table 1(b)).

Builds a 12-city Euclidean instance, compiles it to the (c−1)²-bit
QUBO with one-hot penalties of 2·max-distance, solves it with ABS, and
decodes the resulting bit matrix back into a tour — comparing against
the Held–Karp exact optimum.

TSP QUBOs are deliberately hard for bit-flip searches: valid tours are
at least four flips apart, so watch how much longer this takes per bit
than the Max-Cut example.

Run:  python examples/tsp_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import AbsConfig, AdaptiveBulkSearch
from repro.problems import decode_tour, held_karp, tour_length, tsp_to_qubo
from repro.problems.tsplib import euc_2d


def main() -> None:
    # A reproducible random 12-city instance with TSPLIB EUC_2D rounding.
    rng = np.random.default_rng(2020)
    coords = rng.uniform(0, 1000, size=(12, 2))
    dist = euc_2d(coords)

    optimum, opt_tour = held_karp(dist)
    print(f"cities: 12, exact optimum (Held–Karp): {optimum}")

    tq = tsp_to_qubo(dist)
    print(
        f"QUBO: {tq.n_bits} bits, penalty {tq.penalty} (= 2 x max distance "
        f"{int(dist.max())})"
    )

    config = AbsConfig(
        blocks_per_gpu=48,
        local_steps=40,
        pool_capacity=64,
        target_energy=tq.length_to_energy(optimum),
        time_limit=30.0,
        seed=3,
    )
    result = AdaptiveBulkSearch(tq.qubo, config).solve()

    tour = decode_tour(result.best_x, cities=12)
    if tour is None:
        print("best solution violates the one-hot constraints (raise the budget)")
        return
    length = tour_length(dist, tour)
    print(f"ABS tour: {tour}")
    print(f"length  : {length}  (optimum {optimum}, gap {length - optimum})")
    print(f"reached exact optimum: {result.reached_target}")
    print(f"time to target: {result.time_to_target}")
    assert tq.energy_to_length(result.best_energy) == length


if __name__ == "__main__":
    main()
