"""Failure-injection tests for the multi-process solver."""

import multiprocessing
import os
import time

import numpy as np
import pytest

import repro.abs.solver as solver_mod
from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.abs.buffers import SharedWeights
from repro.qubo import QuboMatrix, energy
from repro.telemetry import MemorySink, TelemetryBus

pytestmark = [pytest.mark.process, pytest.mark.timeout(60)]


class TestWorkerDeath:
    def test_all_workers_dying_raises(self, monkeypatch):
        """If every device process exits without producing results, the
        host must fail loudly instead of spinning forever.

        ``max_worker_restarts=0`` keeps the test fast; the default
        budget is covered below."""

        def _suicidal_worker(*args, **kwargs):
            raise SystemExit(1)

        monkeypatch.setattr(solver_mod, "_worker_main", _suicidal_worker)
        q = QuboMatrix.random(16, seed=0)
        cfg = AbsConfig(
            blocks_per_gpu=4,
            local_steps=4,
            max_rounds=5,
            max_worker_restarts=0,
            seed=1,
        )
        with pytest.raises(RuntimeError, match="workers died"):
            AdaptiveBulkSearch(q, cfg).solve("process")

    def test_restart_budget_spent_before_giving_up(self, monkeypatch):
        """With a restart budget, a persistently crashing worker is
        retried that many times before the run fails."""

        def _suicidal_worker(*args, **kwargs):
            raise SystemExit(1)

        monkeypatch.setattr(solver_mod, "_worker_main", _suicidal_worker)
        q = QuboMatrix.random(16, seed=0)
        cfg = AbsConfig(
            blocks_per_gpu=4,
            local_steps=4,
            max_rounds=5,
            max_worker_restarts=2,
            seed=1,
        )
        with pytest.raises(RuntimeError, match="after 2 restarts"):
            AdaptiveBulkSearch(q, cfg).solve("process")

    def test_shared_memory_cleaned_after_worker_death(self, monkeypatch):
        import glob

        def _suicidal_worker(*args, **kwargs):
            raise SystemExit(1)

        monkeypatch.setattr(solver_mod, "_worker_main", _suicidal_worker)
        before = set(glob.glob("/dev/shm/*"))
        q = QuboMatrix.random(16, seed=0)
        cfg = AbsConfig(
            blocks_per_gpu=4,
            local_steps=4,
            max_rounds=5,
            max_worker_restarts=0,
            seed=1,
        )
        with pytest.raises(RuntimeError):
            AdaptiveBulkSearch(q, cfg).solve("process")
        after = set(glob.glob("/dev/shm/*"))
        assert after <= before


class _SetOnEvent:
    def __init__(self, name, evt):
        self.name = name
        self.evt = evt

    def handle(self, event):
        if event.name == self.name:
            self.evt.set()


@pytest.mark.tcp
class TestTcpFaultInjection:
    """The tcp lane under injected faults: the supervisor machinery
    must behave exactly as it does over shm — kill or stall a socket
    worker and a fresh incarnation finishes the solve with a valid
    result."""

    def test_socket_worker_killed_mid_round(self, monkeypatch):
        """Kill a tcp worker's first incarnation mid-run: the
        replacement says HELLO on a new connection (surfacing the
        ``exchange.reconnect`` event), skips its predecessor's targets
        via the epoch stamp, and the final energy is valid."""
        ctx = multiprocessing.get_context("fork")
        restarted = ctx.Event()
        real_worker = solver_mod._worker_main

        def flaky_worker(worker_id, incarnation, *rest):
            if worker_id == 0 and incarnation == 0:
                # Say HELLO like a real worker, then die mid-round: the
                # host has seen this slot's first connection, so the
                # replacement's HELLO is a *re*connect.
                from repro.abs.exchange import open_worker_endpoint

                exchange_ref, stop_evt = rest[8], rest[9]
                open_worker_endpoint(
                    exchange_ref, worker_id=0, incarnation=0, stop_evt=stop_evt
                )
                os._exit(11)
            restarted.wait()  # start only after the host handled the death
            real_worker(worker_id, incarnation, *rest)

        monkeypatch.setattr(solver_mod, "_worker_main", flaky_worker)
        q = QuboMatrix.random(24, seed=321)
        sink = MemorySink()
        bus = TelemetryBus([sink, _SetOnEvent("supervisor.restart", restarted)])
        cfg = AbsConfig(
            n_gpus=1,
            blocks_per_gpu=4,
            local_steps=8,
            max_rounds=4,
            max_worker_restarts=1,
            time_limit=60.0,
            seed=77,
            exchange="tcp",
        )
        res = AdaptiveBulkSearch(q, cfg, telemetry=bus).solve("process")
        assert res.workers_restarted == 1
        assert res.workers_lost == 0
        assert res.rounds == cfg.max_rounds
        assert res.best_energy == energy(q, res.best_x)
        # The replacement's HELLO was the slot's second connection.
        reconnects = sink.named("exchange.reconnect")
        assert len(reconnects) >= 1
        assert reconnects[0].fields["device"] == 0
        assert reconnects[0].fields["connects"] >= 2
        assert sink.named("exchange.open")[0].fields["transport"] == "tcp"

    def test_stalled_socket_worker_restarted(self, monkeypatch):
        """A worker that connects but never publishes (its ACKs delayed
        past ``worker_stall_timeout``) must be declared stalled and
        replaced, not waited on forever."""
        ctx = multiprocessing.get_context("fork")
        restarted = ctx.Event()
        real_worker = solver_mod._worker_main

        def stalling_worker(worker_id, incarnation, *rest):
            if worker_id == 0 and incarnation == 0:
                time.sleep(300)  # silent far past the stall threshold
                os._exit(13)
            restarted.wait()
            real_worker(worker_id, incarnation, *rest)

        monkeypatch.setattr(solver_mod, "_worker_main", stalling_worker)
        q = QuboMatrix.random(24, seed=321)
        sink = MemorySink()
        bus = TelemetryBus([sink, _SetOnEvent("supervisor.restart", restarted)])
        cfg = AbsConfig(
            n_gpus=1,
            blocks_per_gpu=4,
            local_steps=8,
            max_rounds=3,
            max_worker_restarts=1,
            worker_stall_timeout=1.0,
            time_limit=60.0,
            seed=5,
            exchange="tcp",
        )
        res = AdaptiveBulkSearch(q, cfg, telemetry=bus).solve("process")
        assert res.workers_restarted == 1
        assert res.best_energy == energy(q, res.best_x)
        assert len(sink.named("supervisor.stall")) >= 1
        restart_events = sink.named("supervisor.restart")
        assert restart_events and restart_events[0].fields["incarnation"] == 1

    @pytest.mark.timeout(120)
    def test_acceptance_n1024_four_socket_workers_one_kill(self, monkeypatch):
        """The PR acceptance instance: n=1024 over ≥4 socket workers,
        surviving one injected worker kill with a valid final result."""
        ctx = multiprocessing.get_context("fork")
        restarted = ctx.Event()
        real_worker = solver_mod._worker_main

        def flaky_worker(worker_id, incarnation, *rest):
            if worker_id == 2 and incarnation == 0:
                from repro.abs.exchange import open_worker_endpoint

                exchange_ref, stop_evt = rest[8], rest[9]
                open_worker_endpoint(  # connect first, then die mid-round
                    exchange_ref, worker_id=2, incarnation=0, stop_evt=stop_evt
                )
                os._exit(11)
            if worker_id == 2:
                restarted.wait()
            real_worker(worker_id, incarnation, *rest)

        monkeypatch.setattr(solver_mod, "_worker_main", flaky_worker)
        q = QuboMatrix.random(1024, seed=10)
        sink = MemorySink()
        bus = TelemetryBus([sink, _SetOnEvent("supervisor.restart", restarted)])
        cfg = AbsConfig(
            n_gpus=4,
            blocks_per_gpu=4,
            local_steps=8,
            max_rounds=8,
            max_worker_restarts=1,
            time_limit=110.0,
            seed=2020,
            exchange="tcp",
        )
        res = AdaptiveBulkSearch(q, cfg, telemetry=bus).solve("process")
        assert res.workers_restarted == 1
        assert res.workers_lost == 0
        assert res.best_x.shape == (1024,)
        assert res.best_energy == energy(q, res.best_x)  # no invalid result
        assert res.best_energy < 0
        # All four sockets connected; the killed slot reconnected.
        assert sink.named("exchange.open")[0].fields["workers"] == 4
        assert any(
            e.fields["device"] == 2 for e in sink.named("exchange.reconnect")
        )


class TestSharedWeightsFailures:
    def test_attach_to_missing_segment(self):
        with pytest.raises(FileNotFoundError):
            SharedWeights.attach(("nonexistent-segment-xyz", (2, 2), "int64"))

    def test_attach_after_unlink(self):
        owner = SharedWeights.create(np.zeros((2, 2), dtype=np.int64))
        desc = owner.descriptor
        owner.unlink()
        with pytest.raises(FileNotFoundError):
            SharedWeights.attach(desc)


class TestBadInputsToSolver:
    def test_asymmetric_weights_rejected_at_construction(self):
        W = np.array([[0, 1], [2, 0]])
        with pytest.raises(ValueError):
            AdaptiveBulkSearch(QuboMatrix(W), AbsConfig(max_rounds=1))

    def test_float_ndarray_rejected(self):
        with pytest.raises(TypeError):
            AdaptiveBulkSearch(np.eye(4), AbsConfig(max_rounds=1))
