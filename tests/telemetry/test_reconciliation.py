"""Counter-family reconciliation between bus and run snapshots.

The acceptance contract for the counter-drift fix: with telemetry on,
the session counters accumulated on the bus for ``engine.evaluated``
and ``engine.flips`` must equal the per-run values in
``SolveResult.counters`` (which come from :class:`EngineCounters`) —
in sync mode *and* in process mode, where worker counters travel back
to the host as cumulative snapshots.
"""

import pytest

from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.qubo import QuboMatrix
from repro.telemetry import MemorySink, TelemetryBus, validate_record

RECONCILED_KEYS = (
    "engine.evaluated",
    "engine.flips",
    "engine.straight_flips",
    "engine.local_flips",
    "engine.straight_retirements",
)


@pytest.fixture
def problem():
    return QuboMatrix.random(32, seed=321)


class TestSyncReconciliation:
    def test_bus_counters_match_result_counters(self, problem):
        cfg = AbsConfig(
            blocks_per_gpu=8,
            local_steps=16,
            max_rounds=8,
            adapt_windows=True,
            seed=11,
        )
        bus = TelemetryBus()
        res = AdaptiveBulkSearch(problem, cfg, telemetry=bus).solve("sync")
        session = bus.counters.snapshot()
        for key in RECONCILED_KEYS:
            assert session[key] == res.counters[key], key
        # …and both agree with the result's headline fields.
        assert session["engine.evaluated"] == res.evaluated
        assert session["engine.flips"] == res.flips

    def test_flip_family_is_internally_consistent(self, problem):
        cfg = AbsConfig(blocks_per_gpu=8, local_steps=16, max_rounds=6, seed=12)
        bus = TelemetryBus()
        AdaptiveBulkSearch(problem, cfg, telemetry=bus).solve("sync")
        snap = bus.counters.snapshot()
        assert (
            snap["engine.straight_flips"] + snap["engine.local_flips"]
            == snap["engine.flips"]
        )


@pytest.mark.process
@pytest.mark.timeout(60)
class TestProcessReconciliation:
    def test_bus_counters_match_result_counters(self, problem):
        cfg = AbsConfig(
            n_gpus=2,
            blocks_per_gpu=4,
            local_steps=8,
            max_rounds=6,
            adapt_windows=True,
            time_limit=30.0,
            seed=13,
        )
        bus = TelemetryBus()
        res = AdaptiveBulkSearch(problem, cfg, telemetry=bus).solve("process")
        session = bus.counters.snapshot()
        # How the rounds split between the two workers is scheduler-
        # dependent, so compare with a 0 default: a counter a worker
        # never incremented simply has no session entry.
        for key in RECONCILED_KEYS:
            assert session.get(key, 0) == res.counters[key], key
        assert session.get("engine.evaluated", 0) == res.evaluated
        assert session.get("engine.flips", 0) == res.flips
        assert (
            session.get("adapt.reassignments", 0)
            == res.counters["adapt.reassignments"]
        )

    def test_worker_events_relayed_with_device_stamp(self, problem):
        """Process mode must not silently drop worker-side events: the
        host re-emits them stamped with the producing worker's id.

        A single worker keeps the run deterministic (every round lands
        on worker 0), so the adapter provably fires within the round
        budget."""
        cfg = AbsConfig(
            n_gpus=1,
            blocks_per_gpu=8,
            local_steps=8,
            max_rounds=10,
            adapt_windows=True,
            time_limit=30.0,
            seed=14,
        )
        sink = MemorySink()
        bus = TelemetryBus([sink])
        AdaptiveBulkSearch(problem, cfg, telemetry=bus).solve("process")
        for name in ("engine.straight", "engine.local", "adapt.windows"):
            relayed = sink.named(name)
            assert relayed, name
            assert all(e.fields["device"] == 0 for e in relayed), name
        for record in sink.records():
            validate_record(record)
