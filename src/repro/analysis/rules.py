"""The core project-invariant rules behind ``python -m repro analyze``.

Every rule is purely static: declarations (the telemetry schema, the
``AbsConfig`` field list) are read from the *analyzed* files' ASTs, so
the rules work identically on the real tree and on self-contained test
fixtures.  Rule catalog with rationale: ``docs/analysis.md``.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Iterable, Iterator, Sequence

from repro.analysis.core import Finding, Module, Rule, register_rule
from repro.analysis.lockcheck import RULE_LOCK_DISCIPLINE

__all__ = [
    "RULE_CONFIG_PLUMBING",
    "RULE_KERNEL_PURITY",
    "RULE_LOCK_DISCIPLINE",
    "RULE_RNG_DISCIPLINE",
    "RULE_SHM_PROTOCOL",
    "RULE_TELEMETRY",
]


# --------------------------------------------------------------------------
# shared AST helpers
# --------------------------------------------------------------------------

def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _str_const(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _fstring_pattern(node: ast.JoinedStr) -> str:
    """Normalize an f-string: each interpolation becomes one ``*``."""
    parts: list[str] = []
    for piece in node.values:
        if isinstance(piece, ast.Constant):
            parts.append(str(piece.value))
        else:
            parts.append("*")
    return "".join(parts)


def _first_arg(call: ast.Call) -> ast.AST | None:
    return call.args[0] if call.args else None


def _module_functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# --------------------------------------------------------------------------
# 1. telemetry-consistency
# --------------------------------------------------------------------------

def _extract_schema_decls(module: Module) -> dict[str, dict[str, int]] | None:
    """``{"events"|"counters"|"patterns": {name: decl lineno}}`` or None."""
    events: dict[str, int] = {}
    counters: dict[str, int] = {}
    patterns: dict[str, int] = {}
    found_events = False
    for node in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name) or value is None:
                continue
            if target.id == "EVENT_SCHEMAS" and isinstance(value, ast.Dict):
                found_events = True
                for key in value.keys:
                    name = _str_const(key) if key is not None else None
                    if name is not None:
                        events[name] = key.lineno  # type: ignore[union-attr]
            elif target.id == "COUNTER_NAMES":
                inner = value
                if isinstance(inner, ast.Call) and len(inner.args) == 1:
                    inner = inner.args[0]  # frozenset({...})
                if isinstance(inner, (ast.Set, ast.List, ast.Tuple)):
                    for elt in inner.elts:
                        name = _str_const(elt)
                        if name is not None:
                            counters[name] = elt.lineno
            elif target.id == "COUNTER_PATTERNS":
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    for elt in value.elts:
                        name = _str_const(elt)
                        if name is not None:
                            patterns[name] = elt.lineno
    if not found_events:
        return None
    return {"events": events, "counters": counters, "patterns": patterns}


def _is_inc_call(call: ast.Call) -> bool:
    """``<…>.counters.inc(…)`` — the CounterRegistry increment idiom."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "inc"):
        return False
    base = func.value
    return (isinstance(base, ast.Attribute) and base.attr == "counters") or (
        isinstance(base, ast.Name) and base.id == "counters"
    )


def _is_emit_call(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Attribute) and call.func.attr == "emit"


def _check_telemetry(modules: Sequence[Module]) -> Iterable[Finding]:
    rule = "telemetry-consistency"
    schema_module: Module | None = None
    decls: dict[str, dict[str, int]] | None = None
    for module in modules:
        extracted = _extract_schema_decls(module)
        if extracted is not None:
            schema_module, decls = module, extracted
            break
    if decls is None:
        # No schema in the analyzed set (single-file run): fall back to
        # the installed declarations; dead-declaration checks are
        # meaningless without the full tree, so skip them.
        from repro.telemetry import schema as _schema

        decls = {
            "events": dict.fromkeys(_schema.EVENT_SCHEMAS, 0),
            "counters": dict.fromkeys(_schema.COUNTER_NAMES, 0),
            "patterns": dict.fromkeys(_schema.COUNTER_PATTERNS, 0),
        }

    events, counters, patterns = decls["events"], decls["counters"], decls["patterns"]
    live_events: set[str] = set()
    live_counters: set[str] = set()
    live_patterns: set[str] = set()
    string_pool: set[str] = set()  # every str constant outside the schema
    emitters = [m for m in modules if m is not schema_module]

    for module in emitters:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                string_pool.add(node.value)
            if not isinstance(node, ast.Call):
                continue
            arg = _first_arg(node)
            if _is_emit_call(node):
                name = _str_const(arg) if arg is not None else None
                if name is not None:
                    live_events.add(name)
                    if name not in events:
                        yield module.finding(
                            node, rule,
                            f"event {name!r} is not declared in the telemetry schema",
                        )
                elif isinstance(arg, ast.JoinedStr):
                    yield module.finding(
                        node, rule,
                        "event name is an f-string — event names must be "
                        "literal so the schema can be checked statically",
                    )
                # a plain variable first arg is the relay re-emit idiom:
                # the original literal site is checked instead.
            elif _is_inc_call(node):
                name = _str_const(arg) if arg is not None else None
                if name is not None:
                    if name in counters:
                        live_counters.add(name)
                    else:
                        matched = [p for p in patterns if fnmatchcase(name, p)]
                        if matched:
                            live_patterns.update(matched)
                        else:
                            yield module.finding(
                                node, rule,
                                f"counter {name!r} is not declared in "
                                "COUNTER_NAMES (telemetry schema)",
                            )
                elif isinstance(arg, ast.JoinedStr):
                    pattern = _fstring_pattern(arg)
                    if pattern in patterns:
                        live_patterns.add(pattern)
                    else:
                        yield module.finding(
                            node, rule,
                            f"dynamic counter {pattern!r} does not match any "
                            "COUNTER_PATTERNS entry (telemetry schema)",
                        )

    if schema_module is None or not emitters:
        return
    # Drift in the other direction: declarations nobody emits.  A fixed
    # counter also counts as live when its name appears as a string
    # constant anywhere (the exchange transports bank counts in plain
    # dicts that the solver replays into the bus by variable name).
    for name, lineno in events.items():
        if name not in live_events:
            yield schema_module.finding(
                lineno, rule, f"declared event {name!r} has no emit site"
            )
    for name, lineno in counters.items():
        if name not in live_counters and name not in string_pool:
            yield schema_module.finding(
                lineno, rule, f"declared counter {name!r} has no increment site"
            )
    for name, lineno in patterns.items():
        if name not in live_patterns:
            yield schema_module.finding(
                lineno, rule,
                f"declared counter pattern {name!r} has no f-string increment site",
            )


RULE_TELEMETRY = register_rule(Rule(
    id="telemetry-consistency",
    description=(
        "every bus.emit()/counter name must be declared in "
        "repro.telemetry.schema, and every declaration must have an emitter"
    ),
    scope="project",
    check=_check_telemetry,
))


# --------------------------------------------------------------------------
# 2. rng-discipline
# --------------------------------------------------------------------------

#: numpy.random constructors that *produce* seeded generators — allowed.
_RNG_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator",
     "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}
)


def _check_rng(module: Module) -> Iterable[Finding]:
    rule = "rng-discipline"
    numpy_aliases = {"numpy"}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
                elif alias.name in ("random", "numpy.random"):
                    yield module.finding(
                        node, rule,
                        f"import of {alias.name!r} in the deterministic search "
                        "stack — thread a seeded np.random.Generator instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield module.finding(
                    node, rule,
                    "import from stdlib 'random' in the deterministic search "
                    "stack — thread a seeded np.random.Generator instead",
                )
            elif node.module is not None and node.module.endswith(".random") and (
                node.module.split(".", 1)[0] in numpy_aliases
            ):
                for alias in node.names:
                    if alias.name not in _RNG_ALLOWED:
                        yield module.finding(
                            node, rule,
                            f"'from numpy.random import {alias.name}' pulls in "
                            "module-level (global-state) RNG",
                        )

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _dotted(node.func)
        if chain is None:
            continue
        parts = chain.split(".")
        if (
            len(parts) >= 3
            and parts[0] in numpy_aliases
            and parts[1] == "random"
            and parts[2] not in _RNG_ALLOWED
        ):
            yield module.finding(
                node, rule,
                f"call to global-state RNG {chain!r} breaks lockstep "
                "determinism — use a seeded Generator threaded from AbsConfig.seed",
            )
        elif parts[0] == "random" and len(parts) >= 2 and parts[0] not in numpy_aliases:
            yield module.finding(
                node, rule,
                f"call to stdlib RNG {chain!r} — use a seeded np.random.Generator",
            )
        elif parts[-1] == "default_rng" and not node.args and not node.keywords:
            yield module.finding(
                node, rule,
                "default_rng() without a seed is nondeterministic — pass a "
                "seed or SeedSequence derived from AbsConfig.seed",
            )


RULE_RNG_DISCIPLINE = register_rule(Rule(
    id="rng-discipline",
    description=(
        "no global-state RNG (np.random.* module calls, stdlib random, "
        "unseeded default_rng) in the deterministic search stack"
    ),
    scope="module",
    check=_check_rng,
    path_parts=(
        "repro/search/", "repro/ga/", "repro/abs/",
        "repro/backends/", "repro/gpusim/",
    ),
))


# --------------------------------------------------------------------------
# 3. config-plumbing
# --------------------------------------------------------------------------

def _config_fields(
    modules: Sequence[Module], class_name: str
) -> tuple[Module, dict[str, int]] | None:
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                fields = {
                    stmt.target.id: stmt.lineno
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                }
                return module, fields
    return None


def _config_keywords(scope: ast.AST, class_name: str) -> tuple[set[str], bool]:
    """Keyword names passed to ``<class_name>(...)`` calls under ``scope``.

    The bool is True when a ``**kwargs`` splat reaches the constructor
    (every field is then considered plumbed).
    """
    keywords: set[str] = set()
    splat = False
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        chain = _dotted(node.func)
        if chain is None or chain.split(".")[-1] != class_name:
            continue
        for kw in node.keywords:
            if kw.arg is None:
                splat = True
            else:
                keywords.add(kw.arg)
    return keywords, splat


def _absconfig_fields(modules: Sequence[Module]) -> tuple[Module, dict[str, int]] | None:
    return _config_fields(modules, "AbsConfig")


def _absconfig_keywords(scope: ast.AST) -> tuple[set[str], bool]:
    return _config_keywords(scope, "AbsConfig")


def _check_config_plumbing(modules: Sequence[Module]) -> Iterable[Finding]:
    rule = "config-plumbing"
    located = _absconfig_fields(modules)
    if located is None:
        return
    config_module, fields = located
    if not fields:
        return

    api_module = next((m for m in modules if m.path.name == "api.py"), None)
    cli_module = next((m for m in modules if m.path.name == "cli.py"), None)

    if api_module is not None:
        solve = next(
            (f for f in _module_functions(api_module.tree) if f.name == "solve"),
            None,
        )
        if solve is not None:
            params = {a.arg for a in solve.args.args + solve.args.kwonlyargs}
            has_var_kw = solve.args.kwarg is not None
            keywords, splat = _absconfig_keywords(solve)
            for name, lineno in fields.items():
                if name not in keywords and not splat:
                    yield config_module.finding(
                        lineno, rule,
                        f"AbsConfig.{name} is never passed to AbsConfig() "
                        "inside api.solve() — knob unreachable from solve(...)",
                    )
                elif name not in params and not has_var_kw:
                    yield config_module.finding(
                        lineno, rule,
                        f"AbsConfig.{name} is not a keyword of api.solve() — "
                        "knob unreachable from the one-call API",
                    )

    if cli_module is not None:
        keywords, splat = _absconfig_keywords(cli_module.tree)
        for name, lineno in fields.items():
            if name not in keywords and not splat:
                yield config_module.finding(
                    lineno, rule,
                    f"AbsConfig.{name} is never passed to AbsConfig() in the "
                    "CLI — knob unreachable from the command line",
                )

    # The warm-fleet service config gets the same treatment: every
    # ServiceConfig knob must reach a ServiceConfig(...) call in the CLI
    # (the `serve` subcommand), so adding a field without a flag fails
    # `make analyze`.
    svc = _config_fields(modules, "ServiceConfig")
    if svc is not None and cli_module is not None:
        svc_module, svc_fields = svc
        keywords, splat = _config_keywords(cli_module.tree, "ServiceConfig")
        for name, lineno in svc_fields.items():
            if name not in keywords and not splat:
                yield svc_module.finding(
                    lineno, rule,
                    f"ServiceConfig.{name} is never passed to ServiceConfig() "
                    "in the CLI — knob unreachable from `serve`",
                )


RULE_CONFIG_PLUMBING = register_rule(Rule(
    id="config-plumbing",
    description=(
        "every AbsConfig field must be reachable from api.solve() kwargs "
        "and from an AbsConfig(...) call in the CLI; every ServiceConfig "
        "field from a ServiceConfig(...) call in the CLI"
    ),
    scope="project",
    check=_check_config_plumbing,
))


# --------------------------------------------------------------------------
# 4. kernel-purity
# --------------------------------------------------------------------------

#: Engine/telemetry layers a kernel backend must not reach back into.
_FORBIDDEN_BACKEND_IMPORTS = (
    "repro.telemetry", "repro.abs", "repro.gpusim", "repro.ga",
)

_MUTABLE_CTORS = frozenset({"dict", "list", "set", "defaultdict", "deque", "Counter"})

#: The per-flip kernel interface: methods with these names on a Backend
#: class run once per step (or per batch of steps) on the hot path.
_HOT_KERNEL_METHODS = frozenset({
    "flip", "select_window", "select_straight", "update_best",
    "track_position", "run_local_steps",
})

#: Call roots that mean process/filesystem/warning work.  Legal in
#: ``prepare_*()`` and registry factories (that is where the bitplane
#: backend compiles its C library); never in a hot kernel method.
#: ``ctypes``/``os`` are deliberately absent — calling an already
#: compiled function is exactly what a hot kernel is for.
_HOT_KERNEL_FORBIDDEN_ROOTS = frozenset({
    "subprocess", "tempfile", "shutil", "warnings",
})
_HOT_KERNEL_FORBIDDEN_BUILTINS = frozenset({"open", "print", "exec", "compile"})


def _module_mutable_globals(tree: ast.Module) -> set[str]:
    mutable: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        is_mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CTORS
        )
        if is_mutable:
            for target in targets:
                if isinstance(target, ast.Name):
                    mutable.add(target.id)
    return mutable


def _kernel_scopes(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Kernel bodies: Backend-subclass methods and *nested* functions.

    Module-level helper functions (registry management, factory entry
    points) are legitimately stateful; the purity constraint applies to
    the code that runs per flip — backend methods and the closures
    compiled inside them (the numba kernels).
    """
    funcs = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and any(
            (base_name := _dotted(base)) and "Backend" in base_name.split(".")[-1]
            for base in node.bases
        ):
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    funcs.add(sub)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is not node and isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    funcs.add(sub)
    return iter(sorted(funcs, key=lambda f: f.lineno))


def _check_kernel_purity(module: Module) -> Iterable[Finding]:
    rule = "kernel-purity"
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith(
                    _FORBIDDEN_BACKEND_IMPORTS
                ):
                    yield module.finding(
                        node, rule,
                        f"backend module imports {alias.name!r} — kernels must "
                        "not reach back into engine/telemetry state",
                    )
        elif isinstance(node, ast.ImportFrom) and node.module is not None:
            if node.module == "repro" or node.module.startswith(
                _FORBIDDEN_BACKEND_IMPORTS
            ):
                yield module.finding(
                    node, rule,
                    f"backend module imports from {node.module!r} — kernels "
                    "must not reach back into engine/telemetry state",
                )
        elif isinstance(node, ast.Call) and (
            _is_emit_call(node) or _is_inc_call(node)
        ):
            yield module.finding(
                node, rule,
                "telemetry emitted from a kernel backend — timing/counting "
                "belongs to the engine wrapper (numba-compat guard)",
            )

    mutable = _module_mutable_globals(module.tree)
    for func in _kernel_scopes(module.tree):
        local_names = {a.arg for a in func.args.args + func.args.kwonlyargs}
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                yield module.finding(
                    node, rule,
                    f"kernel body {func.name!r} rebinds outer state via "
                    f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}",
                )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutable
                and node.id not in local_names
            ):
                yield module.finding(
                    node, rule,
                    f"kernel body {func.name!r} closes over mutable module "
                    f"global {node.id!r} (breaks nopython compilation and "
                    "process isolation)",
                )

    for klass in ast.walk(module.tree):
        if not (
            isinstance(klass, ast.ClassDef)
            and any(
                (base_name := _dotted(base))
                and "Backend" in base_name.split(".")[-1]
                for base in klass.bases
            )
        ):
            continue
        for func in ast.walk(klass):
            if (
                not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
                or func.name not in _HOT_KERNEL_METHODS
            ):
                continue
            for call in ast.walk(func):
                if not isinstance(call, ast.Call):
                    continue
                dotted = _dotted(call.func)
                if not dotted:
                    continue
                root = dotted.split(".")[0]
                if root in _HOT_KERNEL_FORBIDDEN_ROOTS or (
                    "." not in dotted and dotted in _HOT_KERNEL_FORBIDDEN_BUILTINS
                ):
                    yield module.finding(
                        call, rule,
                        f"hot kernel {func.name!r} calls {dotted!r} — "
                        "process/file/warning work belongs in prepare_*() "
                        "or the registry factory, not the per-flip path",
                    )


RULE_KERNEL_PURITY = register_rule(Rule(
    id="kernel-purity",
    description=(
        "repro.backends kernel bodies must not emit telemetry, close over "
        "mutable module globals, or import engine state; hot kernel methods "
        "must not do process/file/warning work"
    ),
    scope="module",
    check=_check_kernel_purity,
    path_parts=("repro/backends/",),
))


# --------------------------------------------------------------------------
# 5. shm-protocol
# --------------------------------------------------------------------------

#: Attribute names of the exchange payload views (everything that must be
#: ordered around the `_header` sequence/epoch words).
_PAYLOAD_ATTRS = frozenset({"_slots", "_meta", "_energies", "_packed"})


def _is_exchange_module(module: Module) -> bool:
    posix = module.path.as_posix()
    return posix.endswith("abs/exchange.py") or posix.endswith("/exchange.py")


#: TCP frame-layout symbols owned by repro.abs.tcp.  The wire format
#: (magic, header struct, payload heads, counter vector order) must
#: never be re-derived or poked at outside the transport module — the
#: codec functions are the only sanctioned surface.
_TCP_LAYOUT_NAMES = frozenset({
    "FRAME_MAGIC",
    "FRAME_HEADER",
    "MAX_FRAME_PAYLOAD",
    "_TARGETS_HEAD",
    "_RESULT_HEAD",
    "_WIRE_COUNTER_KEYS",
})


def _is_transport_module(module: Module) -> bool:
    """Modules allowed to know a transport's byte layout (shm or tcp)."""
    posix = module.path.as_posix()
    return (
        _is_exchange_module(module)
        or posix.endswith("abs/tcp.py")
        or posix.endswith("/tcp.py")
    )


def _is_checker_module(module: Module) -> bool:
    return "repro/analysis/" in module.path.as_posix()


def _subscript_base_attr(node: ast.Subscript, aliases: dict[str, str]) -> str | None:
    """Payload attribute a subscript ultimately targets, or None.

    Resolves one level of local aliasing (``meta = self._meta[s]``)
    recorded in ``aliases``.
    """
    base = node.value
    if isinstance(base, ast.Attribute) and base.attr in _PAYLOAD_ATTRS:
        return base.attr
    if isinstance(base, ast.Name) and base.id in aliases:
        return aliases[base.id]
    return None


def _header_index(node: ast.Subscript) -> str | None:
    """``_H_SEQ``/``_H_EPOCH`` for a ``…._header[<idx>]`` subscript."""
    if not (isinstance(node.value, ast.Attribute) and node.value.attr == "_header"):
        return None
    idx = node.slice
    if isinstance(idx, ast.Name) and idx.id in ("_H_SEQ", "_H_EPOCH"):
        return idx.id
    return None


def _protocol_events(func: ast.FunctionDef | ast.AsyncFunctionDef):
    """Ordered shared-memory access events in one method body."""
    aliases: dict[str, str] = {}
    events: list[tuple[int, str]] = []  # (lineno, kind)
    nodes = sorted(
        (n for n in ast.walk(func) if hasattr(n, "lineno")),
        key=lambda n: (n.lineno, n.col_offset),
    )
    for node in nodes:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
            if isinstance(target, ast.Name):
                attr: str | None = None
                if isinstance(value, ast.Subscript):
                    attr = _subscript_base_attr(value, aliases)
                elif isinstance(value, ast.Attribute) and value.attr in _PAYLOAD_ATTRS:
                    attr = value.attr
                if attr is not None:
                    aliases[target.id] = attr
        if not isinstance(node, ast.Subscript):
            continue
        header = _header_index(node)
        store = isinstance(node.ctx, ast.Store)
        if header is not None:
            kind = ("store:" if store else "load:") + header
            events.append((node.lineno, kind))
        elif _subscript_base_attr(node, aliases) is not None:
            events.append((node.lineno, "store:payload" if store else "load:payload"))
    return events


def _check_shm_protocol(module: Module) -> Iterable[Finding]:
    rule = "shm-protocol"
    outside_exchange = not _is_exchange_module(module)
    checker = _is_checker_module(module)

    if outside_exchange and not checker:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Subscript) and isinstance(
                node.value, ast.Attribute
            ) and node.value.attr == "buf":
                yield module.finding(
                    node, rule,
                    "raw SharedMemory.buf indexing outside exchange.py — the "
                    "seqlock/ring layout is owned by repro.abs.exchange",
                )
            elif isinstance(node, ast.Attribute) and node.attr == "_header" and not (
                isinstance(node.value, ast.Name) and node.value.id in ("self", "cls")
            ):
                yield module.finding(
                    node, rule,
                    "exchange _header word accessed outside the protocol module",
                )
            elif isinstance(node, ast.Call):
                chain = _dotted(node.func)
                if chain is not None and chain.split(".")[-1] == "ndarray":
                    kw = {k.arg: k.value for k in node.keywords if k.arg}
                    buffer = kw.get("buffer")
                    if (
                        "offset" in kw
                        and isinstance(buffer, ast.Attribute)
                        and buffer.attr == "buf"
                    ):
                        yield module.finding(
                            node, rule,
                            "offset ndarray view over SharedMemory.buf outside "
                            "exchange.py — layout arithmetic must stay in the "
                            "protocol module",
                        )

    # The tcp lane's layout confinement: the frame wire format lives in
    # repro.abs.tcp only.  Importing a layout symbol — or defining a
    # same-named one — anywhere else means some module is packing or
    # parsing frames by hand instead of using the codec functions.
    if not _is_transport_module(module) and not checker:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "repro.abs.tcp":
                for alias in node.names:
                    if alias.name in _TCP_LAYOUT_NAMES:
                        yield module.finding(
                            node, rule,
                            f"tcp frame-layout symbol {alias.name} imported "
                            "outside the transport module — the wire format "
                            "is owned by repro.abs.tcp (use the codec "
                            "functions)",
                        )
            elif isinstance(node, (ast.Name, ast.Attribute)):
                name = node.id if isinstance(node, ast.Name) else node.attr
                if name in _TCP_LAYOUT_NAMES:
                    yield module.finding(
                        node, rule,
                        f"tcp frame layout ({name}) referenced outside the "
                        "transport module — frame bytes are packed and "
                        "parsed only in repro.abs.tcp",
                    )

    # Store-ordering checks for any seqlock/SPSC-shaped method (the real
    # exchange classes and protocol fixtures alike).
    for cls in (n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)):
        for func in (n for n in cls.body if isinstance(n, ast.FunctionDef)):
            events = _protocol_events(func)
            if not events:
                continue
            seq_stores = [ln for ln, k in events if k == "store:_H_SEQ"]
            epoch_stores = [ln for ln, k in events if k == "store:_H_EPOCH"]
            seq_loads = [ln for ln, k in events if k == "load:_H_SEQ"]
            p_stores = [ln for ln, k in events if k == "store:payload"]
            p_loads = [ln for ln, k in events if k == "load:payload"]

            if seq_stores and p_stores:
                # Seqlock writer: the (final) sequence-word store is the
                # publication point — every payload/epoch store must
                # precede it, or a reader can see a fresh generation
                # with a half-written payload.
                publish = max(seq_stores)
                for ln in p_stores + epoch_stores:
                    if ln > publish:
                        yield module.finding(
                            ln, rule,
                            f"{cls.name}.{func.name}: payload/epoch stored "
                            "after the sequence word was published — readers "
                            "can observe a torn record",
                        )
            elif epoch_stores and p_loads and not seq_stores:
                # SPSC consumer: advancing tail releases the slot to the
                # producer — every payload copy must complete first.
                release = min(epoch_stores)
                for ln in p_loads:
                    if ln > release:
                        yield module.finding(
                            ln, rule,
                            f"{cls.name}.{func.name}: payload read after the "
                            "tail word released the slot — the producer may "
                            "overwrite it mid-copy",
                        )
            elif p_loads and seq_loads and not (seq_stores or epoch_stores):
                # Seqlock reader: the sequence word must be re-checked
                # after the last payload copy, or torn reads go
                # undetected.
                if max(seq_loads) < max(p_loads):
                    yield module.finding(
                        max(p_loads), rule,
                        f"{cls.name}.{func.name}: no sequence-word re-check "
                        "after the payload copy — torn reads are undetectable",
                    )


RULE_SHM_PROTOCOL = register_rule(Rule(
    id="shm-protocol",
    description=(
        "transport byte layouts stay in their modules: SharedMemory.buf "
        "arithmetic inside exchange.py, tcp frame structs inside tcp.py; "
        "seqlock/SPSC methods must order payload stores/copies around the "
        "header words"
    ),
    scope="module",
    check=_check_shm_protocol,
))
