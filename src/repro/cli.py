"""Command-line interface: ``python -m repro`` / ``abs-solve``.

Subcommands
-----------
- ``solve``     — run ABS on a QUBO instance file (.qubo/.json/.npy)
- ``maxcut``    — solve Max-Cut from a G-set file or synthetic catalog name
- ``tsp``       — solve a TSPLIB file or synthetic catalog name as QUBO
- ``random``    — generate a random 16-bit instance file
- ``occupancy`` — print the Table 2 occupancy sweep for a problem size
- ``rate``      — print modeled search rates (calibrated Table 2 model)
- ``landscape`` — landscape anatomy of an instance (ruggedness, traps)
- ``trace``     — validate a ``--trace-out`` JSONL file against the schema
- ``analyze``   — project-invariant static analyzer (``repro.analysis``)
  with an optional exchange-protocol interleaving check
- ``serve``     — run a batch of jobs through the warm-fleet solver
  service (persistent workers, prepared-state reuse, result cache;
  see ``docs/service.md``)

The solving subcommands accept ``--trace-out FILE`` (write the
telemetry JSONL trace documented in ``docs/observability.md``) and
``--log-level {info,debug}`` (progress lines / every event on stderr).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.utils.tables import Table


def _telemetry(args: argparse.Namespace):
    """Build the (possibly null) bus from the shared observability flags."""
    from repro.telemetry import make_bus

    return make_bus(
        getattr(args, "trace_out", None), getattr(args, "log_level", None)
    )


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend: numpy (reference), numba (JIT), bitplane "
        "(packed uint64 state + compiled C kernels), or graycode "
        "(exact enumerator, engine kernels = numpy).  numba/bitplane "
        "fall back to numpy when their toolchain is missing; default: "
        "$REPRO_BACKEND or numpy.  Never changes the search result, "
        "only speed.",
    )


def _add_observability_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a telemetry JSONL trace (schema: docs/observability.md)",
    )
    p.add_argument(
        "--log-level",
        choices=("info", "debug"),
        default=None,
        help="log progress (info) or every event (debug) to stderr",
    )


def _parse_window(value: str):
    """``--window`` values: 'spread', an int, or comma-separated ints."""
    if value == "spread":
        return "spread"
    if "," in value:
        return [int(v) for v in value.split(",") if v.strip()]
    return int(value)


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.abs import AbsConfig, AdaptiveBulkSearch
    from repro.ga.host import GaConfig
    from repro.qubo import io as qio

    matrix = qio.load(args.instance)
    config = AbsConfig(
        n_gpus=args.gpus,
        blocks_per_gpu=args.blocks,
        local_steps=args.local_steps,
        window=args.window,
        backend=args.backend,
        pool_capacity=args.pool,
        ga=GaConfig(
            p_mutation=args.ga_mutation, p_crossover=args.ga_crossover
        ),
        scan_neighbors=args.scan_neighbors,
        adapt_windows=args.adapt,
        adapt_period=args.adapt_period,
        adapt_fraction=args.adapt_fraction,
        target_energy=args.target,
        time_limit=args.time_limit,
        max_rounds=args.rounds,
        seed=args.seed,
        max_worker_restarts=args.max_worker_restarts,
        worker_stall_timeout=args.worker_stall_timeout,
        start_method=args.start_method,
        exchange=args.exchange,
        pipeline=args.pipeline,
        lockstep=args.lockstep,
        diversity_min_dist=args.diversity_min_dist,
        variants=args.variants,
        variant_adapt=args.variant_adapt,
        variant_adapt_period=args.variant_adapt_period,
    )
    with _telemetry(args) as bus:
        result = AdaptiveBulkSearch(matrix, config, telemetry=bus).solve(args.mode)
    print(f"instance      : {matrix.name} (n={matrix.n})")
    if args.backend is not None:
        from repro.backends import resolve_backend

        print(f"backend       : {resolve_backend(args.backend).name}")
    print(f"best energy   : {result.best_energy}")
    print(f"elapsed       : {result.elapsed:.4g} s")
    print(f"search rate   : {result.search_rate:.4g} solutions/s")
    print(f"rounds        : {result.rounds} ({result.sweeps} sweeps)")
    if result.workers_restarted or result.workers_lost:
        print(
            f"workers       : {result.workers_restarted} restarted, "
            f"{result.workers_lost} lost"
        )
    if args.target is not None:
        status = "reached" if result.reached_target else "NOT reached"
        print(f"target {args.target}: {status}")
    if args.trace_out:
        print(f"trace         -> {args.trace_out}")
    if args.out:
        import numpy as np

        np.save(args.out, result.best_x)
        print(f"best solution -> {args.out}")
    return 0 if (args.target is None or result.reached_target) else 1


def _cmd_maxcut(args: argparse.Namespace) -> int:
    import os

    from repro.abs import AbsConfig, AdaptiveBulkSearch
    from repro.problems import (
        cut_value,
        load_gset,
        maxcut_to_qubo,
        maxcut_to_sparse_qubo,
        synthetic_gset,
    )
    from repro.problems.gset import GSET_CATALOG

    if os.path.exists(args.graph):
        graph = load_gset(args.graph)
        source = f"file {args.graph}"
    elif args.graph in GSET_CATALOG:
        graph = synthetic_gset(args.graph)
        source = f"synthetic analogue {args.graph}"
    else:
        raise ValueError(
            f"{args.graph!r} is neither a file nor a catalog name "
            f"(catalog: {sorted(GSET_CATALOG)})"
        )
    builder = maxcut_to_sparse_qubo if args.sparse else maxcut_to_qubo
    qubo = builder(graph)
    config = AbsConfig(
        blocks_per_gpu=args.blocks,
        local_steps=args.local_steps,
        backend=args.backend,
        pool_capacity=args.pool,
        adapt_windows=args.adapt,
        time_limit=args.time_limit,
        max_rounds=args.rounds,
        seed=args.seed,
    )
    with _telemetry(args) as bus:
        result = AdaptiveBulkSearch(qubo, config, telemetry=bus).solve()
    cut = -result.best_energy
    print(f"graph       : {source}")
    print(
        f"              {graph.number_of_nodes()} vertices, "
        f"{graph.number_of_edges()} edges"
    )
    print(f"best cut    : {cut} (verified {cut_value(graph, result.best_x)})")
    print(f"elapsed     : {result.elapsed:.4g} s")
    print(f"search rate : {result.search_rate:.4g} solutions/s")
    if args.trace_out:
        print(f"trace       -> {args.trace_out}")
    return 0


def _cmd_tsp(args: argparse.Namespace) -> int:
    import os

    from repro.abs import AbsConfig, AdaptiveBulkSearch
    from repro.problems import decode_tour, held_karp, tour_length, tsp_to_qubo, two_opt
    from repro.problems.tsplib import TSPLIB_CATALOG, load_tsplib, synthetic_instance

    if os.path.exists(args.instance):
        inst = load_tsplib(args.instance)
        source = f"file {args.instance}"
    elif args.instance in TSPLIB_CATALOG:
        inst = synthetic_instance(args.instance)
        source = f"synthetic analogue {args.instance}"
    else:
        raise ValueError(
            f"{args.instance!r} is neither a file nor a catalog name "
            f"(catalog: {sorted(TSPLIB_CATALOG)})"
        )
    if inst.cities <= 17:
        ref, _ = held_karp(inst.dist)
        ref_kind = "exact optimum"
    else:
        ref, _ = two_opt(inst.dist, seed=0, restarts=4)
        ref_kind = "2-opt reference"
    tq = tsp_to_qubo(inst.dist, name=inst.name)
    target_len = int(round(ref * (1 + args.slack)))
    config = AbsConfig(
        blocks_per_gpu=args.blocks,
        local_steps=args.local_steps,
        backend=args.backend,
        pool_capacity=args.pool,
        target_energy=tq.length_to_energy(target_len),
        time_limit=args.time_limit,
        seed=args.seed,
    )
    with _telemetry(args) as bus:
        result = AdaptiveBulkSearch(tq.qubo, config, telemetry=bus).solve()
    print(f"instance    : {source} ({inst.cities} cities, {tq.n_bits} bits)")
    print(f"reference   : {ref} ({ref_kind}); target {target_len} (+{args.slack:.0%})")
    tour = decode_tour(result.best_x, inst.cities)
    if tour is None:
        print("best solution violates tour constraints — raise --time-limit")
        return 1
    length = tour_length(inst.dist, tour)
    print(f"tour length : {length} (target {'reached' if result.reached_target else 'missed'})")
    print(f"tour        : {' '.join(map(str, tour))}")
    print(f"elapsed     : {result.elapsed:.4g} s")
    return 0 if result.reached_target else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry.schema import main as schema_main

    return schema_main([args.trace])


def _cmd_random(args: argparse.Namespace) -> int:
    from repro.problems.random_qubo import random_qubo
    from repro.qubo import io as qio

    matrix = random_qubo(args.n, args.seed)
    qio.save(matrix, args.out)
    print(f"wrote {matrix.name} (n={matrix.n}, 16-bit weights) -> {args.out}")
    return 0


def _cmd_occupancy(args: argparse.Namespace) -> int:
    from repro.gpusim import sweep_bits_per_thread

    if args.n < 1:
        raise ValueError(f"n must be >= 1, got {args.n}")
    table = Table(
        ["bits/thread", "threads/block", "blocks/SM", "active blocks/GPU", "occupancy"],
        title=f"Occupancy sweep for n={args.n} (RTX 2080 Ti model)",
    )
    for occ in sweep_bits_per_thread(args.n):
        table.add_row(
            [
                occ.bits_per_thread,
                occ.threads_per_block,
                occ.blocks_per_sm,
                occ.active_blocks,
                f"{occ.occupancy:.0%}",
            ]
        )
    print(table.render())
    return 0


def _cmd_rate(args: argparse.Namespace) -> int:
    from repro.gpusim.timing import calibrated_model, model_table2

    model = calibrated_model()
    table = Table(
        ["n", "bits/thread", "threads/block", "active blocks", "modeled rate (T/s)"],
        title=f"Modeled search rate, {args.gpus} GPU(s) (calibrated to paper Table 2)",
    )
    for row in model_table2(model, n_gpus=args.gpus):
        table.add_row(
            [row["n"], row["p"], row["threads"], row["blocks"], row["rate"] / 1e12]
        )
    print(table.render())
    return 0


def _cmd_landscape(args: argparse.Namespace) -> int:
    from repro.metrics.landscape import (
        descent_statistics,
        escape_radius,
        random_walk_autocorrelation,
    )
    from repro.qubo import io as qio

    matrix = qio.load(args.instance)
    print(f"instance          : {matrix.name} (n={matrix.n}, "
          f"density {matrix.density():.3f}, {matrix.weight_bits()}-bit weights)")
    ac = random_walk_autocorrelation(
        matrix, steps=args.walk_steps, seed=args.seed or 0
    )
    print(f"walk ρ(1)         : {ac.rho1:.4f}")
    print(f"correlation length: {ac.correlation_length:.1f} flips")
    ds = descent_statistics(matrix, descents=args.descents, seed=args.seed or 0)
    print(
        f"greedy descents   : {ds.distinct_endpoints}/{args.descents} distinct "
        f"endpoints, best {ds.best:.6g}, mean {ds.mean:.6g}"
    )
    escapable = sum(
        1
        for i in range(args.descents)
        if escape_radius(matrix, ds.endpoint_bits[i]) is not None
    )
    print(
        f"2-flip escapable  : {escapable}/{args.descents} endpoints "
        "(low values indicate penalty-cliff hardness, e.g. TSP QUBOs)"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.analysis import (
        all_rules,
        analyze_paths,
        get_rule,
        render_findings,
        severity_rank,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:<22} [{rule.scope}] {rule.description}")
        return 0
    rules = [get_rule(r) for r in args.rule] if args.rule else None
    pkg_root = Path(repro.__file__).resolve().parent
    paths = [Path(p) for p in args.paths] or [pkg_root]
    findings = analyze_paths(paths, rules=rules, root=pkg_root.parent)

    reports = []
    if args.interleave in ("all", "exchange"):
        from repro.analysis.interleave import run_all

        reports.extend(run_all(depth=args.interleave_depth))
    if args.interleave in ("all", "service"):
        from repro.analysis.lifecycle import explore_service

        reports.append(explore_service())

    if args.format == "json":
        extra = {
            "interleave": [
                {
                    "structure": r.structure,
                    "depth": r.depth,
                    "states": r.states,
                    "transitions": r.transitions,
                    "terminals": r.terminals,
                    "violations": r.violations,
                    "ok": r.ok,
                }
                for r in reports
            ]
        }
        print(render_findings(findings, "json", extra=extra))
    else:
        text = render_findings(findings, "text")
        if text:
            print(text)
        for report in reports:
            print(report.summary())
            for violation in report.violations:
                print(f"  {violation}")
        if not findings and not any(not r.ok for r in reports):
            checked = ", ".join(r.id for r in (rules or all_rules()))
            print(f"OK: no findings ({checked})")
    threshold = severity_rank(args.fail_on)
    gating = [f for f in findings if severity_rank(f.severity) >= threshold]
    failed = bool(gating) or any(not r.ok for r in reports)
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.abs import AbsConfig
    from repro.ga.host import GaConfig
    from repro.qubo import io as qio
    from repro.service import ServiceConfig, SolverService

    if args.jobs:
        with open(args.jobs) as fh:
            specs = json.load(fh)
        if not isinstance(specs, list):
            raise ValueError("--jobs file must hold a JSON list of job specs")
    else:
        specs = [json.loads(line) for line in sys.stdin if line.strip()]
    if not specs:
        raise ValueError("no jobs given (use --jobs FILE or pipe JSONL specs)")

    service_config = ServiceConfig(
        result_cache_size=args.result_cache_size,
        weights_cache_size=args.weights_cache_size,
        prepared_cache_size=args.prepared_cache_size,
        max_queue=args.max_queue,
        default_priority=args.default_priority,
        arm_timeout=args.arm_timeout,
    )
    matrices: dict = {}
    submitted = []
    table = Table(
        ["job", "instance", "status", "best energy", "rounds", "elapsed", "cache"],
        title="warm-fleet service batch",
    )
    failures = 0
    with _telemetry(args) as bus, SolverService(
        service_config, telemetry=bus
    ) as service:
        for i, spec in enumerate(specs):
            if not isinstance(spec, dict) or "instance" not in spec:
                raise ValueError(
                    f"job spec {i} must be a JSON object with an 'instance' key"
                )
            path = spec["instance"]
            if path not in matrices:
                matrices[path] = qio.load(path)
            cfg_kwargs = dict(spec.get("config", {}))
            if "ga" in cfg_kwargs:
                cfg_kwargs["ga"] = GaConfig(**cfg_kwargs["ga"])
            job_id = service.submit(
                matrices[path],
                AbsConfig(**cfg_kwargs),
                mode=spec.get("mode", args.mode),
                priority=spec.get("priority"),
            )
            submitted.append((job_id, path))
        for job_id, path in submitted:
            try:
                service.result(job_id, timeout=args.job_timeout)
            except (RuntimeError, TimeoutError):
                pass
            snap = service.status(job_id)
            if snap["status"] != "done":
                failures += 1
            table.add_row(
                [
                    job_id,
                    path,
                    snap["status"] + (f" ({snap['error']})" if snap["error"] else ""),
                    snap.get("best_energy", "-"),
                    snap.get("rounds", "-"),
                    f"{snap['elapsed']:.3g} s" if "elapsed" in snap else "-",
                    "hit" if snap["cache_hit"] else "",
                ]
            )
    print(table.render())
    done = len(submitted) - failures
    print(f"{done}/{len(submitted)} jobs completed")
    if args.trace_out:
        print(f"trace -> {args.trace_out}")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="abs-solve",
        description="Adaptive Bulk Search QUBO solver (ICPP 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="solve a QUBO instance file")
    p.add_argument("instance", help="path to a .qubo/.json/.npy instance")
    p.add_argument("--gpus", type=int, default=1, help="simulated GPUs (default 1)")
    p.add_argument("--blocks", type=int, default=32, help="blocks per GPU (default 32)")
    p.add_argument("--local-steps", type=int, default=32, help="flips per round (default 32)")
    p.add_argument(
        "--window",
        type=_parse_window,
        default="spread",
        metavar="W",
        help="Figure-2 selection window: an int, 'spread' (temperature "
        "ladder, the default), or comma-separated per-block values",
    )
    p.add_argument("--pool", type=int, default=64, help="host pool capacity (default 64)")
    p.add_argument(
        "--scan-neighbors",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="track the incumbent over all n neighbors per flip "
        "(Algorithm 4's inner check; default on)",
    )
    p.add_argument(
        "--ga-mutation",
        type=float,
        default=0.45,
        metavar="P",
        help="GA mutation probability (default 0.45; remainder after "
        "mutation+crossover is plain copy)",
    )
    p.add_argument(
        "--ga-crossover",
        type=float,
        default=0.45,
        metavar="P",
        help="GA crossover probability (default 0.45)",
    )
    p.add_argument("--target", type=int, default=None, help="stop at this energy")
    p.add_argument("--time-limit", type=float, default=None, help="seconds budget")
    p.add_argument("--rounds", type=int, default=None, help="round budget")
    p.add_argument("--seed", type=int, default=None, help="root RNG seed")
    p.add_argument("--mode", choices=("sync", "process"), default="sync")
    p.add_argument(
        "--adapt",
        action="store_true",
        help="adapt per-block windows automatically (paper §5 future work)",
    )
    p.add_argument(
        "--adapt-period",
        type=int,
        default=4,
        metavar="R",
        help="rounds between window adaptations (with --adapt; default 4)",
    )
    p.add_argument(
        "--adapt-fraction",
        type=float,
        default=0.25,
        metavar="F",
        help="share of blocks reassigned per adaptation "
        "(with --adapt; default 0.25)",
    )
    p.add_argument(
        "--max-worker-restarts",
        type=int,
        default=2,
        metavar="N",
        help="process mode: restart budget per worker before it is "
        "marked lost (default 2; 0 disables restarts)",
    )
    p.add_argument(
        "--worker-stall-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="process mode: treat a worker as unhealthy after this "
        "long without a result (default: disabled)",
    )
    p.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="process mode: multiprocessing start method "
        "(default: fork where available)",
    )
    p.add_argument(
        "--exchange",
        choices=("shm", "queue", "tcp"),
        default=None,
        help="process mode: host<->worker transport — shm (Figure-5 "
        "bit-packed shared-memory rings, the default), queue "
        "(pickling mp.Queue fallback), or tcp (framed loopback "
        "sockets, elastic workers); default: $REPRO_EXCHANGE or shm."
        "  Never changes the search result.",
    )
    p.add_argument(
        "--pipeline",
        action="store_true",
        help="process mode: double-buffer GA targets so host generation "
        "overlaps worker rounds (targets one round staler)",
    )
    p.add_argument(
        "--lockstep",
        action="store_true",
        help="process mode: workers block for fresh targets every round "
        "(deterministic single-worker runs; devices may idle)",
    )
    p.add_argument(
        "--diversity-min-dist",
        type=int,
        default=0,
        metavar="D",
        help="Diverse-ABS pool admission: candidates within Hamming "
        "distance D of a pool entry must beat their niche's energy "
        "(default 0 = base duplicate-only policy)",
    )
    p.add_argument(
        "--variants",
        default=None,
        metavar="NAMES",
        help="Diverse-ABS fleet: comma-separated variant recipes cycled "
        "over devices (ladder,hot,greedy,tabu — or 'fleet' for the "
        "stock mix); default: single base recipe",
    )
    p.add_argument(
        "--variant-adapt",
        action="store_true",
        help="reallocate devices from stagnating variants to improving "
        "ones (sync mode, with --variants)",
    )
    p.add_argument(
        "--variant-adapt-period",
        type=int,
        default=8,
        metavar="S",
        help="sweeps between variant reallocations "
        "(with --variant-adapt; default 8)",
    )
    p.add_argument("--out", default=None, help="write best solution to .npy")
    _add_backend_flag(p)
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("maxcut", help="solve Max-Cut (G-set file or catalog name)")
    p.add_argument("graph", help="G-set file path or catalog name (G1, G6, …)")
    p.add_argument("--sparse", action="store_true", help="use the sparse backend")
    p.add_argument("--blocks", type=int, default=32)
    p.add_argument("--local-steps", type=int, default=64)
    p.add_argument("--pool", type=int, default=48)
    p.add_argument("--time-limit", type=float, default=3.0)
    p.add_argument("--rounds", type=int, default=None, help="round budget")
    p.add_argument(
        "--adapt",
        action="store_true",
        help="adapt per-block windows automatically (paper §5 future work)",
    )
    p.add_argument("--seed", type=int, default=None)
    _add_backend_flag(p)
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_maxcut)

    p = sub.add_parser("tsp", help="solve a TSP (TSPLIB file or catalog name)")
    p.add_argument("instance", help="TSPLIB .tsp path or catalog name (ulysses16, …)")
    p.add_argument("--slack", type=float, default=0.02, help="target = ref×(1+slack)")
    p.add_argument("--blocks", type=int, default=48)
    p.add_argument("--local-steps", type=int, default=40)
    p.add_argument("--pool", type=int, default=64)
    p.add_argument("--time-limit", type=float, default=20.0)
    p.add_argument("--seed", type=int, default=None)
    _add_backend_flag(p)
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_tsp)

    p = sub.add_parser("random", help="generate a random 16-bit instance")
    p.add_argument("n", type=int, help="number of bits")
    p.add_argument("out", help="output path (.qubo/.json/.npy)")
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(func=_cmd_random)

    p = sub.add_parser("occupancy", help="print the occupancy sweep for a size")
    p.add_argument("n", type=int, help="number of bits")
    p.set_defaults(func=_cmd_occupancy)

    p = sub.add_parser("rate", help="print modeled search rates (Table 2)")
    p.add_argument("--gpus", type=int, default=4)
    p.set_defaults(func=_cmd_rate)

    p = sub.add_parser(
        "trace", help="validate a telemetry JSONL trace against the schema"
    )
    p.add_argument("trace", help="path to a --trace-out JSONL file")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("landscape", help="landscape anatomy of an instance")
    p.add_argument("instance", help="path to a .qubo/.json/.npy instance")
    p.add_argument("--walk-steps", type=int, default=2000)
    p.add_argument("--descents", type=int, default=20)
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(func=_cmd_landscape)

    p = sub.add_parser(
        "serve",
        help="run a batch of jobs through the warm-fleet solver service "
        "(docs/service.md)",
    )
    p.add_argument(
        "--jobs",
        default=None,
        metavar="FILE",
        help="JSON list of job specs; each spec is an object with "
        "'instance' (path), optional 'config' (AbsConfig fields), "
        "'mode', and 'priority'.  Default: read one JSON spec per "
        "line from stdin.",
    )
    p.add_argument(
        "--mode",
        choices=("sync", "process"),
        default="process",
        help="solve mode for specs that don't set one (default process "
        "— jobs share the persistent warm fleet)",
    )
    p.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wait budget when collecting results (default: none)",
    )
    p.add_argument(
        "--result-cache-size",
        type=int,
        default=128,
        metavar="N",
        help="completed-result cache entries, keyed by the canonical "
        "(problem, config, seed) run digest; deterministic seeded jobs "
        "only — sync or lockstep, no time_limit (default 128; 0 disables)",
    )
    p.add_argument(
        "--weights-cache-size",
        type=int,
        default=8,
        metavar="N",
        help="shared-memory weight segments kept across jobs, keyed by "
        "problem digest (default 8)",
    )
    p.add_argument(
        "--prepared-cache-size",
        type=int,
        default=4,
        metavar="N",
        help="per-worker cache of backend-prepared weights (default 4)",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=0,
        metavar="N",
        help="maximum queued jobs before submit fails (default 0 = unbounded)",
    )
    p.add_argument(
        "--default-priority",
        type=int,
        default=0,
        metavar="P",
        help="priority for specs without one; higher runs earlier, ties "
        "are FIFO (default 0)",
    )
    p.add_argument(
        "--arm-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="fleet re-arm handshake deadline per job (default 30)",
    )
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "analyze",
        help="run the project-invariant static analyzer "
        "(rule catalog: docs/analysis.md)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files/directories to analyze (default: the installed "
        "repro package tree)",
    )
    p.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule (repeatable; default: all rules)",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    p.add_argument(
        "--fail-on",
        choices=("note", "warning", "error"),
        default="note",
        help="lowest finding severity that fails the exit code "
        "(default note: any finding fails; interleave violations "
        "always fail)",
    )
    p.add_argument(
        "--interleave",
        nargs="?",
        const="all",
        choices=("all", "exchange", "service"),
        default=None,
        metavar="SUITE",
        help="also model-check concurrency: 'exchange' explores the "
        "seqlock/SPSC/tcp stream protocols, 'service' the solver "
        "service's job lifecycle, 'all' (the default when the flag "
        "is bare) both",
    )
    p.add_argument(
        "--interleave-depth",
        type=int,
        default=6,
        metavar="D",
        help="operations per actor for --interleave (default 6)",
    )
    p.set_defaults(func=_cmd_analyze)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
