"""The warm-fleet solver service: many jobs, one set of processes.

:class:`SolverService` owns a persistent :class:`~repro.abs.fleet.
WorkerFleet` and a background dispatcher thread.  Callers ``submit``
QUBO jobs and collect results asynchronously; the service amortizes
everything a one-shot ``solve("process")`` pays per call — process
spawn, exchange-transport allocation, shared-memory weight copies, and
backend weight preparation — across the whole job stream.

Semantics that matter:

- **Determinism**: a job run through the service produces the same
  result, bit for bit, as a one-shot ``AdaptiveBulkSearch.solve()``
  with the same problem, config, and seed (pinned by
  ``tests/service/test_service_determinism.py`` on the shm and tcp
  transports).  The warm path reuses *state-free* plumbing only.
- **Scheduling**: highest priority first, FIFO within a priority
  (``(-priority, submit_seq)`` heap).  One job runs at a time — the
  fleet is a shared search engine, not a thread pool.
- **Result cache**: jobs whose outcome is a pure function of the run
  digest — seeded, no wall-clock ``time_limit``, and deterministic
  execution (``sync`` mode or ``lockstep=True``) — are cached under
  the canonical :func:`repro.qubo.io.run_digest` key; a repeat
  submission returns a deep copy of the cached
  :class:`~repro.abs.result.SolveResult` without touching the fleet.
  Anything else (unseeded, time-limited, free-running process mode)
  recomputes every time, and a cancelled job's partial result is
  never cached.
- **Cancellation**: round granularity for running process-mode jobs
  (the host loop polls between rounds); queued jobs cancel
  immediately; sync-mode jobs are only cancellable while queued.
- **Failure**: a job that breaks the fleet (all workers dead, re-arm
  timeout) is marked failed and the fleet is torn down — the next
  process-mode job builds a fresh one.  The supervisor's restart
  budget spans the fleet's lifetime, not one job.
"""

from __future__ import annotations

import copy
import heapq
import threading
import time
from typing import Any

from repro.abs.config import AbsConfig
from repro.abs.exchange import resolve_exchange
from repro.abs.fleet import WorkerFleet
from repro.abs.result import SolveResult
from repro.abs.solver import AdaptiveBulkSearch
from repro.qubo.io import problem_digest, run_digest
from repro.service.config import ServiceConfig
from repro.telemetry.bus import NULL_BUS, NullBus, StampedBus, TelemetryBus

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"
FAILED = "failed"


class _Job:
    """Book-keeping for one submitted job."""

    __slots__ = (
        "job_id", "solver", "mode", "priority", "digest", "run_key",
        "status", "result", "error", "cache_hit", "cancel_evt",
        "done_evt", "started", "finished",
    )

    def __init__(
        self,
        job_id: int,
        solver: AdaptiveBulkSearch,
        mode: str,
        priority: int,
        digest: str,
        run_key: str | None,
    ) -> None:
        self.job_id = job_id
        self.solver = solver
        self.mode = mode
        self.priority = priority
        self.digest = digest
        self.run_key = run_key
        self.status = QUEUED
        self.result: SolveResult | None = None
        self.error: str | None = None
        self.cache_hit = False
        self.cancel_evt = threading.Event()
        self.done_evt = threading.Event()
        self.started: float | None = None
        self.finished: float | None = None


class SolverService:
    """A persistent warm fleet serving a queue of QUBO jobs.

    Example
    -------
    >>> from repro.qubo import QuboMatrix
    >>> from repro.abs import AbsConfig
    >>> from repro.service import SolverService
    >>> with SolverService() as svc:
    ...     jid = svc.submit(QuboMatrix.random(32, seed=0),
    ...                      AbsConfig(max_rounds=5, seed=1))
    ...     res = svc.result(jid)
    >>> res.rounds
    5
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        telemetry: TelemetryBus | NullBus | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.bus = telemetry if telemetry is not None else NULL_BUS
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[int, _Job] = {}  # guarded-by: _lock
        # _heap holds (-priority, job_id); cancelled entries go stale in
        # place, so _queued tracks the live QUEUED count separately.
        self._heap: list[tuple[int, int]] = []  # guarded-by: _lock
        self._queued = 0  # guarded-by: _lock
        self._next_id = 1  # guarded-by: _lock
        self._running: _Job | None = None  # guarded-by: _lock
        self._fleet: WorkerFleet | None = None  # guarded-by: _lock
        self._fleet_key: tuple[Any, ...] | None = None  # guarded-by: _lock
        self._result_cache: dict[str, SolveResult] = {}  # guarded-by: _lock
        self._cache_order: list[str] = []  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="solver-service", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(
        self,
        weights: Any,
        config: AbsConfig | None = None,
        *,
        mode: str = "process",
        priority: int | None = None,
        telemetry_stamp: bool = True,
    ) -> int:
        """Queue a job; returns its id (monotonic, 1-based).

        ``mode`` is ``"process"`` (runs on the warm fleet) or
        ``"sync"`` (runs inline on the dispatcher thread — no fleet,
        useful for small jobs and cross-checks).  ``priority``: higher
        runs earlier; ``None`` takes the config default.  With
        ``telemetry_stamp`` (default), every event the job emits is
        stamped ``job=<id>`` via :class:`~repro.telemetry.StampedBus`.
        """
        if mode not in ("sync", "process"):
            raise ValueError(f"unknown mode {mode!r} (use 'sync' or 'process')")
        prio = self.config.default_priority if priority is None else int(priority)
        bus = self.bus
        with self._cond:
            if self._closed:
                raise RuntimeError("service is closed")
            if self.config.max_queue and self._queued >= self.config.max_queue:
                raise RuntimeError(
                    f"job queue is full ({self.config.max_queue} queued)"
                )
            job_id = self._next_id
            self._next_id += 1
            job_bus = (
                StampedBus(bus, job=job_id)
                if bus.enabled and telemetry_stamp
                else bus
            )
            solver = AdaptiveBulkSearch(weights, config, telemetry=job_bus)
            digest = problem_digest(solver.W)
            cfg = solver.config
            # Cache only runs that are a pure function of the digest:
            # seeded, no wall-clock stop, and deterministic execution
            # (sync on one thread, or process mode in lockstep).  A
            # free-running or time-limited job is a sample, and a cache
            # hit would silently substitute it for a fresh solve.
            cacheable = (
                cfg.seed is not None
                and cfg.time_limit is None
                and (mode == "sync" or cfg.lockstep)
            )
            run_key = (
                run_digest(solver.W, cfg, extra={"mode": mode})
                if cacheable
                else None
            )
            job = _Job(job_id, solver, mode, prio, digest, run_key)
            self._jobs[job_id] = job
            heapq.heappush(self._heap, (-prio, job_id))
            self._queued += 1
            queued = self._queued
            self._cond.notify_all()
        if bus.enabled:
            bus.counters.inc("service.jobs_submitted")
            bus.emit(
                "service.job_submitted",
                job=job_id,
                n=solver.n,
                priority=prio,
                queued=queued,
            )
        return job_id

    def status(self, job_id: int) -> dict[str, Any]:
        """Snapshot of one job's state (cheap, never blocks)."""
        job = self._get(job_id)
        with self._lock:
            snap = {
                "id": job.job_id,
                "status": job.status,
                "mode": job.mode,
                "priority": job.priority,
                "cache_hit": job.cache_hit,
                "error": job.error,
            }
            if job.result is not None:
                snap["best_energy"] = job.result.best_energy
                snap["rounds"] = job.result.rounds
            if job.started is not None and job.finished is not None:
                snap["elapsed"] = job.finished - job.started
            return snap

    def cancel(self, job_id: int) -> bool:
        """Cancel a job; returns whether the request took effect.

        Queued jobs leave the queue immediately.  A running
        process-mode job stops at the next round boundary (its partial
        result is kept on the record).  Finished jobs return False.
        """
        job = self._get(job_id)
        with self._cond:
            if job.status == QUEUED:
                job.cancel_evt.set()
                self._queued -= 1
                self._finish(job, CANCELLED, started=False)
                return True
            if job.status == RUNNING:
                job.cancel_evt.set()
                return True
            return False

    def result(self, job_id: int, timeout: float | None = None) -> SolveResult:
        """Block until a job finishes; return its :class:`SolveResult`.

        Raises ``TimeoutError`` if the deadline passes, and
        ``RuntimeError`` for failed jobs or jobs cancelled before any
        result existed.  A job cancelled mid-run returns the partial
        result accumulated up to the cancellation round.
        """
        job = self._get(job_id)
        if not job.done_evt.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.status}")
        if job.result is not None:
            return job.result
        if job.status == CANCELLED:
            raise RuntimeError(f"job {job_id} was cancelled before it ran")
        raise RuntimeError(f"job {job_id} failed: {job.error}")

    def close(self) -> None:
        """Cancel pending work, stop the dispatcher, drop the fleet."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            while self._heap:
                _, job_id = heapq.heappop(self._heap)
                job = self._jobs[job_id]
                if job.status == QUEUED:
                    job.cancel_evt.set()
                    self._queued -= 1
                    self._finish(job, CANCELLED, started=False)
            if self._running is not None:
                self._running.cancel_evt.set()
            self._cond.notify_all()
        self._dispatcher.join(timeout=60.0)
        self._teardown_fleet()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _get(self, job_id: int) -> _Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id {job_id}")
        return job

    def _finish(self, job: _Job, status: str, *, started: bool = True) -> None:
        # Caller holds the lock.  Counter/event emission is deferred to
        # _announce (outside the lock) via the returned record state.
        job.status = status
        job.finished = time.monotonic()
        if not started:
            job.started = job.finished
        job.done_evt.set()
        self._announce(job)

    def _announce(self, job: _Job) -> None:
        bus = self.bus
        if not bus.enabled:
            return
        counter = {
            DONE: "service.jobs_completed",
            CANCELLED: "service.jobs_cancelled",
            FAILED: "service.jobs_failed",
        }.get(job.status)
        if counter:
            bus.counters.inc(counter)
        fields: dict[str, Any] = {
            "job": job.job_id,
            "status": job.status,
            "elapsed": (job.finished or 0.0) - (job.started or job.finished or 0.0),
        }
        if job.result is not None:
            fields["best_energy"] = job.result.best_energy
            fields["rounds"] = job.result.rounds
        bus.emit("service.job_end", **fields)

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                job = None
                while job is None:
                    while self._heap:
                        _, job_id = heapq.heappop(self._heap)
                        candidate = self._jobs[job_id]
                        if candidate.status == QUEUED:
                            job = candidate
                            self._queued -= 1
                            break
                    if job is not None:
                        break
                    if self._closed:
                        return
                    self._cond.wait(timeout=0.2)
                job.status = RUNNING
                job.started = time.monotonic()
                self._running = job
            try:
                self._run_job(job)
            finally:
                with self._cond:
                    self._running = None

    def _run_job(self, job: _Job) -> None:
        bus = self.bus
        with self._lock:
            cached = (
                self._result_cache.get(job.run_key)
                if job.run_key is not None
                else None
            )
            fleet_reused = (
                self._fleet is not None and self._fleet_key == self._job_key(job)
            )
        if bus.enabled:
            bus.emit(
                "service.job_start",
                job=job.job_id,
                n=job.solver.n,
                cache_hit=cached is not None,
                fleet_reused=fleet_reused,
            )
        if cached is not None:
            with self._cond:
                job.cache_hit = True
                job.result = copy.deepcopy(cached)
                self._finish(job, DONE)
            if bus.enabled:
                bus.counters.inc("service.cache_hits")
            return
        try:
            if job.mode == "sync":
                result = job.solver.solve("sync")
            else:
                fleet = self._ensure_fleet(job)
                result = job.solver.solve_on_fleet(
                    fleet,
                    digest=job.digest,
                    cancelled=job.cancel_evt.is_set,
                )
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            with self._cond:
                job.error = f"{type(exc).__name__}: {exc}"
                self._finish(job, FAILED)
            if job.mode == "process":
                # The fleet may be in an arbitrary state (dead workers,
                # half-armed job); rebuild for the next job.
                self._teardown_fleet()
            return
        # A cancelled job's result is truncated at the cancellation
        # round — caching it would answer a later identical submission
        # with the partial result as a DONE hit.  The cancellation flag
        # is read exactly once, under the lock, so the cache-insert
        # decision and the final status can never disagree (the PR-9
        # race was this check running outside the lock).
        with self._cond:
            cancelled = job.cancel_evt.is_set()
            if (
                job.run_key is not None
                and self.config.result_cache_size
                and not cancelled
            ):
                self._result_cache[job.run_key] = copy.deepcopy(result)
                self._cache_order.append(job.run_key)
                while len(self._cache_order) > self.config.result_cache_size:
                    self._result_cache.pop(self._cache_order.pop(0), None)
            job.result = result
            self._finish(job, CANCELLED if cancelled else DONE)

    # ------------------------------------------------------------------
    # Fleet lifecycle
    # ------------------------------------------------------------------
    @staticmethod
    def _job_key(job: _Job) -> tuple[Any, ...]:
        cfg = job.solver.config
        return (
            resolve_exchange(cfg.exchange),
            cfg.n_gpus,
            cfg.blocks_per_gpu,
            job.solver.n,
            cfg.start_method,
            cfg.max_worker_restarts,
            cfg.worker_stall_timeout,
        )

    def _ensure_fleet(self, job: _Job) -> WorkerFleet:
        # Only the dispatcher thread builds or swaps fleets, so there
        # is no build race; the lock covers the _fleet/_fleet_key refs
        # that `status`-path readers snapshot.  Slow work — shutdown,
        # construction, start() — stays outside the locked regions.
        key = self._job_key(job)
        stale: WorkerFleet | None = None
        with self._lock:
            if self._fleet is not None and self._fleet_key != key:
                stale, self._fleet, self._fleet_key = self._fleet, None, None
            fleet = self._fleet
        if stale is not None:
            stale.shutdown()
        if fleet is None:
            cfg = job.solver.config
            fleet = WorkerFleet(
                job.solver.n,
                exchange=cfg.exchange,
                n_workers=cfg.n_gpus,
                n_blocks=cfg.blocks_per_gpu,
                bus=self.bus,
                max_restarts=cfg.max_worker_restarts,
                stall_timeout=cfg.worker_stall_timeout,
                start_method=cfg.start_method,
                persistent=True,
                prepared_cache_size=self.config.prepared_cache_size,
                weights_cache_size=self.config.weights_cache_size,
                arm_timeout=self.config.arm_timeout,
            )
            fleet.start()
            with self._lock:
                self._fleet = fleet
                self._fleet_key = key
        return fleet

    def _teardown_fleet(self) -> None:
        with self._lock:
            fleet, self._fleet, self._fleet_key = self._fleet, None, None
        if fleet is not None:
            fleet.shutdown()
