"""Warm-fleet service benchmark: amortized cold-start across jobs (PR 9).

A one-shot ``solve("process")`` pays worker spawn, exchange-transport
allocation, shared-memory weight publication, and backend weight
preparation on *every* call — for small jobs that setup dwarfs the
search itself.  :class:`repro.service.SolverService` pays it once and
re-arms the same fleet per job, so the figure of merit is simply
jobs/second over a stream of small/medium jobs:

- **cold**  — each job is an independent one-shot ``solve("process")``;
- **warm**  — the same jobs through one ``SolverService``;
- **cache** — a repeat of a seeded job, answered from the result cache.

Both lanes use the ``spawn`` start method: it is the portable
multiprocessing default (macOS/Windows, CUDA-safe), and its
interpreter-boot cost is the faithful stand-in for what a real
multi-GPU deployment pays per cold start (CUDA context + kernel module
load, seconds per device in the paper's setting).  ``fork`` hides that
cost on Linux and caps the honest speedup at ~2x; spawn is what the
service actually amortizes.

Every warm result is also checked bit-for-bit against its cold
counterpart — the speedup is meaningless if the answers drift.

Results land in ``benchmarks/results/BENCH_service.json``.

Runnable both ways::

    pytest benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.qubo import QuboMatrix
from repro.service import SolverService
from repro.utils.tables import Table

try:  # standalone execution has no package context for conftest
    from benchmarks.conftest import FULL, RESULTS_DIR
except ImportError:  # pragma: no cover - `python benchmarks/bench_service.py`
    import os

    FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")
    RESULTS_DIR = Path(__file__).parent / "results"

#: Distinct problems cycled through the job stream.
_PROBLEM_SIZES = (48, 96, 160)
#: Seeds per problem — 3 problems x 8 seeds = 24 jobs (the ISSUE asks
#: for at least 20).
_SEEDS_PER_PROBLEM = 8 if not FULL else 16


def _jobs():
    problems = {
        n: QuboMatrix.random(n, seed=n) for n in _PROBLEM_SIZES
    }
    # Problem-major order: fleet geometry is keyed by problem size, so
    # interleaving sizes would rebuild the fleet on every job.  A
    # caller batching mixed sizes should do the same (docs/service.md).
    jobs = []
    for n, q in problems.items():
        for seed in range(_SEEDS_PER_PROBLEM):
            cfg = AbsConfig(
                n_gpus=1,
                blocks_per_gpu=8,
                local_steps=8,
                pool_capacity=16,
                max_rounds=5,
                seed=seed + 1,
                lockstep=True,
                start_method="spawn",
            )
            jobs.append((q, cfg))
    return jobs


def _fingerprint(res):
    return (res.best_energy, res.best_x.tobytes(), res.rounds, res.sweeps)


def run_bench() -> dict:
    jobs = _jobs()

    t0 = time.perf_counter()
    cold = [AdaptiveBulkSearch(q, cfg).solve("process") for q, cfg in jobs]
    cold_s = time.perf_counter() - t0

    with SolverService() as svc:
        t0 = time.perf_counter()
        ids = [svc.submit(q, cfg) for q, cfg in jobs]
        warm = [svc.result(j, timeout=300) for j in ids]
        warm_s = time.perf_counter() - t0

        mismatches = sum(
            _fingerprint(a) != _fingerprint(b) for a, b in zip(cold, warm)
        )

        # Result-cache lane: resubmit the first job (same run digest).
        q, cfg = jobs[0]
        hit_id = svc.submit(q, cfg)
        svc.result(hit_id, timeout=60)
        hit = svc.status(hit_id)
        cache_hit_s = hit["elapsed"]

    n_jobs = len(jobs)
    payload = {
        "bench": "service",
        "full_scale": FULL,
        "jobs": n_jobs,
        "problem_sizes": list(_PROBLEM_SIZES),
        "cold": {
            "elapsed_s": round(cold_s, 6),
            "jobs_per_s": round(n_jobs / cold_s, 3),
        },
        "warm": {
            "elapsed_s": round(warm_s, 6),
            "jobs_per_s": round(n_jobs / warm_s, 3),
        },
        "warm_vs_cold_speedup": round(cold_s / warm_s, 3),
        "bit_identical_mismatches": mismatches,
        "cache_hit": {
            "hit": bool(hit["cache_hit"]),
            "elapsed_s": round(cache_hit_s, 6),
            "vs_cold_job_fraction": round(cache_hit_s / (cold_s / n_jobs), 6),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return payload


def _render(payload: dict) -> str:
    table = Table(
        ["lane", "elapsed", "jobs/s", "vs cold"],
        title=f"Warm-fleet service over {payload['jobs']} jobs",
    )
    cold, warm = payload["cold"], payload["warm"]
    table.add_row(["cold one-shots", f"{cold['elapsed_s']:.2f} s", f"{cold['jobs_per_s']:.2f}", "1.00x"])
    table.add_row(
        [
            "warm service",
            f"{warm['elapsed_s']:.2f} s",
            f"{warm['jobs_per_s']:.2f}",
            f"{payload['warm_vs_cold_speedup']:.2f}x",
        ]
    )
    hit = payload["cache_hit"]
    table.add_row(
        [
            "cache hit",
            f"{hit['elapsed_s'] * 1e3:.2f} ms",
            "-",
            f"{hit['vs_cold_job_fraction']:.2%} of a cold job",
        ]
    )
    return table.render()


def test_bench_service(report):
    payload = run_bench()
    report("Warm-fleet service throughput", _render(payload))
    assert payload["bit_identical_mismatches"] == 0
    # The ISSUE's acceptance gates: >=5x jobs/sec warm vs cold over
    # >=20 small/medium jobs, and a cache hit under 1% of a cold job.
    assert payload["jobs"] >= 20
    assert payload["warm_vs_cold_speedup"] >= 5.0
    assert payload["cache_hit"]["hit"]
    assert payload["cache_hit"]["vs_cold_job_fraction"] < 0.01


if __name__ == "__main__":  # pragma: no cover
    print(_render(run_bench()))
