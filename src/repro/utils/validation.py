"""Small argument-validation helpers shared across the package.

These raise early with actionable messages instead of letting NumPy
broadcasting silently accept malformed input.
"""

from __future__ import annotations

import numpy as np


def check_positive(value: float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_probability(value: float, name: str) -> None:
    """Raise :class:`ValueError` unless ``0 <= value <= 1``."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_index(index: int, n: int, name: str = "index") -> None:
    """Raise :class:`IndexError` unless ``0 <= index < n``."""
    if not (0 <= index < n):
        raise IndexError(f"{name} must be in [0, {n}), got {index}")


def check_bit_vector(x: np.ndarray, n: int | None = None, name: str = "x") -> np.ndarray:
    """Validate and canonicalize a bit vector.

    Returns a contiguous ``uint8`` array of zeros and ones.  Raises
    :class:`ValueError` for wrong dimensionality, wrong length (when
    ``n`` is given), or entries outside {0, 1}.
    """
    arr = np.ascontiguousarray(x)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if n is not None and arr.shape[0] != n:
        raise ValueError(f"{name} must have length {n}, got {arr.shape[0]}")
    if arr.dtype != np.uint8:
        if not np.isin(arr, (0, 1)).all():
            raise ValueError(f"{name} must contain only 0/1 entries")
        arr = arr.astype(np.uint8)
    elif arr.size and arr.max() > 1:
        raise ValueError(f"{name} must contain only 0/1 entries")
    return arr
