"""Fixture api: solve() exposes every AbsConfig field."""

from .config import AbsConfig


def solve(weights, *, alpha=1, beta=0.5):
    return AbsConfig(alpha=alpha, beta=beta)
