"""Max-Cut ↔ QUBO (paper §4.1.1, Eq. 17).

Given an edge-weighted graph ``G``, the QUBO weights are

``W_ij = G_ij`` for ``i ≠ j`` and ``W_ii = −Σ_k G_ik``,

under which ``E(X) = −cut(X)``: minimizing the energy maximizes the
cut.  Graphs are represented as :class:`networkx.Graph` with integer
``weight`` edge attributes (default 1).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.qubo.matrix import QuboMatrix
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_bit_vector


def _adjacency(graph: nx.Graph) -> np.ndarray:
    """Dense symmetric integer adjacency with edge weights."""
    n = graph.number_of_nodes()
    nodes = sorted(graph.nodes())
    if nodes != list(range(n)):
        raise ValueError("graph nodes must be exactly 0..n-1")
    A = np.zeros((n, n), dtype=np.int64)
    for u, v, data in graph.edges(data=True):
        w = int(data.get("weight", 1))
        if u == v:
            raise ValueError(f"self-loop on node {u} has no Max-Cut meaning")
        A[u, v] += w
        A[v, u] += w
    return A


def maxcut_to_qubo(graph: nx.Graph, *, name: str | None = None) -> QuboMatrix:
    """Eq. (17): the QUBO whose energy is the negated cut value."""
    A = _adjacency(graph)
    W = A.copy()
    np.fill_diagonal(W, -A.sum(axis=1))
    return QuboMatrix(W, copy=False, check=True, name=name or "maxcut")


def maxcut_to_sparse_qubo(graph: nx.Graph, *, name: str | None = None):
    """Eq. (17) as a :class:`~repro.qubo.sparse.SparseQubo`.

    G-set-scale graphs are sparse (average degree 5–50); the sparse
    form stores O(edges) instead of O(n²) — a 10 000-vertex instance
    drops from 800 MB dense to a few MB — and makes every flip cost
    O(degree) instead of O(n).
    """
    from repro.qubo.sparse import SparseQubo

    n = graph.number_of_nodes()
    nodes = sorted(graph.nodes())
    if nodes != list(range(n)):
        raise ValueError("graph nodes must be exactly 0..n-1")
    rows, cols, vals = [], [], []
    degree_w = np.zeros(n, dtype=np.int64)
    for u, v, data in graph.edges(data=True):
        if u == v:
            raise ValueError(f"self-loop on node {u} has no Max-Cut meaning")
        w = int(data.get("weight", 1))
        rows.append(min(u, v))
        cols.append(max(u, v))
        vals.append(w)
        degree_w[u] += w
        degree_w[v] += w
    return SparseQubo.from_graph_terms(
        n,
        -degree_w,
        np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64),
        np.array(vals, dtype=np.int64),
        name=name or "maxcut-sparse",
    )


def cut_value(graph: nx.Graph, x: np.ndarray) -> int:
    """Weight of the cut induced by the bipartition ``x`` (direct sum)."""
    xb = check_bit_vector(x, graph.number_of_nodes(), "x")
    total = 0
    for u, v, data in graph.edges(data=True):
        if xb[u] != xb[v]:
            total += int(data.get("weight", 1))
    return total


def energy_to_cut(energy: int) -> int:
    """Map a Max-Cut QUBO energy back to the cut weight (``−E``)."""
    return -int(energy)


def random_graph(
    n: int,
    n_edges: int,
    *,
    weighted: bool = False,
    seed: SeedLike = None,
    name: str | None = None,
) -> nx.Graph:
    """A uniform random simple graph — the G-set "random" family.

    ``weighted=False`` gives all-+1 edges (G1-style); ``weighted=True``
    draws each weight from {−1, +1} (G6-style).
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    max_edges = n * (n - 1) // 2
    if not (0 <= n_edges <= max_edges):
        raise ValueError(f"n_edges must be in [0, {max_edges}], got {n_edges}")
    rng = as_generator(seed)
    g = nx.Graph(name=name or f"random-{n}-{n_edges}")
    g.add_nodes_from(range(n))
    # Sample distinct unordered pairs by index into the triangle.
    chosen = rng.choice(max_edges, size=n_edges, replace=False)
    # Invert the pair index: row i starts at offset i*n - i*(i+1)/2 - i - 1…
    # simpler: draw pairs via the triangular root.
    iu, ju = np.triu_indices(n, k=1)
    for t in chosen:
        u, v = int(iu[t]), int(ju[t])
        w = int(rng.choice((-1, 1))) if weighted else 1
        g.add_edge(u, v, weight=w)
    return g


def toroidal_graph(
    rows: int,
    cols: int,
    *,
    weighted: bool = False,
    diagonal_fraction: float = 0.5,
    seed: SeedLike = None,
    name: str | None = None,
) -> nx.Graph:
    """A toroidal grid with random diagonals — the "planar" family stand-in.

    The G-set planar instances (G35/G39) are sparse and locally
    structured; a torus grid plus a random fraction of diagonal
    shortcuts reproduces that character (low degree, local edges) with
    a seeded generator.  Node ``(r, c)`` is index ``r · cols + c``.
    """
    if rows < 2 or cols < 2:
        raise ValueError("rows and cols must be >= 2")
    if not (0.0 <= diagonal_fraction <= 1.0):
        raise ValueError(f"diagonal_fraction must be in [0, 1], got {diagonal_fraction}")
    rng = as_generator(seed)
    n = rows * cols
    g = nx.Graph(name=name or f"torus-{rows}x{cols}")
    g.add_nodes_from(range(n))

    def w() -> int:
        return int(rng.choice((-1, 1))) if weighted else 1

    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            g.add_edge(u, r * cols + (c + 1) % cols, weight=w())
            g.add_edge(u, ((r + 1) % rows) * cols + c, weight=w())
            if rng.random() < diagonal_fraction:
                g.add_edge(u, ((r + 1) % rows) * cols + (c + 1) % cols, weight=w())
    return g
