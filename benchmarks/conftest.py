"""Benchmark-harness plumbing.

Every bench regenerates one table or figure from the paper's evaluation
section and registers a rendered paper-vs-measured table through the
``report`` fixture.  The tables are printed in the terminal summary
(after pytest's capture ends) and written to ``benchmarks/results/`` so
that ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures them.

Scale: by default every bench runs a *reduced* configuration sized for
a laptop/CI box (seconds, not the paper's four RTX 2080 Ti).  Set
``REPRO_FULL=1`` for the full instance list (minutes to hours).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Full-scale switch shared by all benches.
FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

_reports: list[tuple[str, str]] = []


@pytest.fixture
def report():
    """Register a rendered results table for the terminal summary."""

    def _register(title: str, text: str) -> None:
        _reports.append((title, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = title.lower().replace(" ", "_").replace("(", "").replace(")", "")
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")

    return _register


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _reports:
        return
    terminalreporter.section("paper reproduction results")
    for title, text in _reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {title} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)
