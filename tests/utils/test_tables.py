"""Tests for ASCII table rendering."""

import pytest

from repro.utils.tables import Table, render_table


class TestTable:
    def test_basic_render(self):
        t = Table(["a", "bb"], title="T")
        t.add_row([1, 2.34567])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.346" in lines[3]  # 4 significant figures

    def test_column_alignment(self):
        t = Table(["x", "y"])
        t.add_row(["longvalue", 1])
        t.add_row(["s", 22])
        lines = t.render().splitlines()
        # All rows render to the same padded width for column x.
        assert lines[2].index("1") == lines[3].index("2")

    def test_wrong_row_length_rejected(self):
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.add_row([1, 2])

    def test_no_title(self):
        t = Table(["a"])
        t.add_row([1])
        assert t.render().splitlines()[0].startswith("a")

    def test_str_equals_render(self):
        t = Table(["a"])
        t.add_row([5])
        assert str(t) == t.render()

    def test_render_table_helper(self):
        out = render_table(["h"], [[1], [2]], title="x")
        assert out.count("\n") == 4
