"""Tests for GA target generation (host Step 4)."""

import numpy as np
import pytest

from repro.ga.host import GaConfig, TargetGenerator
from repro.ga.pool import SolutionPool


def seeded_pool(n=16, capacity=8, seed=0):
    pool = SolutionPool(n, capacity)
    rng = np.random.default_rng(seed)
    for i in range(capacity):
        x = rng.integers(0, 2, n, dtype=np.uint8)
        pool.insert(x, int(rng.integers(-100, 100)))
    return pool


class TestGaConfig:
    def test_defaults_valid(self):
        GaConfig()

    @pytest.mark.parametrize("kwargs", [
        {"p_mutation": -0.1},
        {"p_crossover": 1.2},
        {"p_mutation": 0.7, "p_crossover": 0.7},
        {"elite_bias": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GaConfig(**kwargs)


class TestTargetGenerator:
    def test_generates_requested_count(self):
        gen = TargetGenerator(seeded_pool(), seed=1)
        targets = gen.generate(12)
        assert len(targets) == 12
        assert all(t.shape == (16,) and t.dtype == np.uint8 for t in targets)

    def test_negative_count_rejected(self):
        gen = TargetGenerator(seeded_pool(), seed=1)
        with pytest.raises(ValueError):
            gen.generate(-1)

    def test_operator_counters_advance(self):
        gen = TargetGenerator(seeded_pool(), seed=2)
        gen.generate(100)
        assert sum(gen.counts.values()) == 100
        assert gen.counts["mutation"] > 0
        assert gen.counts["crossover"] > 0

    def test_copy_only_config(self):
        cfg = GaConfig(p_mutation=0.0, p_crossover=0.0)
        pool = seeded_pool()
        gen = TargetGenerator(pool, cfg, seed=3)
        targets = gen.generate(10)
        assert gen.counts["copy"] == 10
        keys = {p.x.tobytes() for p in pool}
        assert all(t.tobytes() in keys for t in targets)

    def test_mutation_only_produces_nearby_targets(self):
        cfg = GaConfig(p_mutation=1.0, p_crossover=0.0, mutation_flips=2)
        pool = seeded_pool()
        gen = TargetGenerator(pool, cfg, seed=4)
        for t in gen.generate(10):
            dists = [int((t ^ p.x).sum()) for p in pool]
            assert min(dists) <= 2

    def test_single_member_pool_falls_back_to_copy_or_mutation(self):
        pool = SolutionPool(8, capacity=4)
        pool.insert(np.ones(8, dtype=np.uint8), 5)
        cfg = GaConfig(p_mutation=0.0, p_crossover=1.0)
        gen = TargetGenerator(pool, cfg, seed=5)
        targets = gen.generate(5)  # crossover impossible with one parent
        assert len(targets) == 5
        assert gen.counts["crossover"] == 0

    def test_reproducible_by_seed(self):
        a = TargetGenerator(seeded_pool(), seed=6).generate(8)
        b = TargetGenerator(seeded_pool(), seed=6).generate(8)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
