"""Optional numba JIT backend: fused multi-step kernels, no per-step loop.

The reference backend pays one Python-level iteration per forced flip
in ``run_local_steps`` — the dominant hot path of a solve.  This
backend compiles the whole multi-step loop (select → Eq. 16 flip →
incumbent check → offset advance) into one nopython kernel per weight
representation, so ``local_steps(k)`` costs a single Python call
regardless of ``k``.  The straight-search primitives are JIT-compiled
too.

numba is an *optional* dependency: when it is not importable (or the
``REPRO_NO_NUMBA`` environment variable is set, which the test suite
uses to exercise the fallback lane), :func:`make_numba_backend` returns
the NumPy reference backend instead, tagged with
``fallback_from="numba"`` so the engine can emit a one-time
``backend.fallback`` telemetry event; a Python :class:`RuntimeWarning`
is issued once per process as well.

Every kernel here replicates the reference semantics bit-for-bit: all
arithmetic is int64 and every argmin breaks ties toward the first
minimum, exactly like ``np.argmin``.  The differential suite pins this
(`tests/backends/test_equivalence.py` runs against whatever the
registry resolves, so with numba installed the JIT kernels are compared
step-for-step against the scalar references; the ``backend_numba``
marker selects the JIT-specific tests).
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro.backends.base import KernelBackend, PreparedWeights

_INT64_MAX = np.iinfo(np.int64).max

_warned = False


def numba_available() -> bool:
    """Whether the JIT backend can actually JIT on this interpreter.

    ``REPRO_NO_NUMBA`` (any non-empty value) masks an installed numba —
    the mechanism ``make test-backends`` uses to cover the fallback
    path deterministically.
    """
    if os.environ.get("REPRO_NO_NUMBA", ""):
        return False
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def make_numba_backend() -> KernelBackend:
    """The ``numba`` registry factory: JIT backend or tagged fallback."""
    global _warned
    if numba_available():
        return NumbaBackend()
    from repro.backends.numpy_backend import NumpyBackend

    if not _warned:
        _warned = True
        warnings.warn(
            "backend 'numba' requested but numba is not importable; "
            "falling back to the NumPy reference backend "
            "(pip install numba to enable JIT kernels)",
            RuntimeWarning,
            stacklevel=3,
        )
    fallback = NumpyBackend()
    fallback.fallback_from = "numba"
    return fallback


def _build_kernels():
    """Compile the nopython kernels (deferred so import stays cheap)."""
    from numba import njit

    @njit(cache=True)
    def flip_dense(W, X, delta, energy, ids, ks):
        n = W.shape[1]
        for i in range(ids.shape[0]):
            b = ids[i]
            k = ks[i]
            dk_old = delta[b, k]
            sk = np.int64(1) - 2 * np.int64(X[b, k])
            for j in range(n):
                delta[b, j] += 2 * W[k, j] * (np.int64(1) - 2 * np.int64(X[b, j])) * sk
            delta[b, k] = -dk_old
            energy[b] += dk_old
            X[b, k] ^= np.uint8(1)
        return ids.shape[0] * n

    @njit(cache=True)
    def flip_sparse(indptr, indices, data, X, delta, energy, ids, ks):
        updates = 0
        for i in range(ids.shape[0]):
            b = ids[i]
            k = ks[i]
            dk_old = delta[b, k]
            sk = np.int64(1) - 2 * np.int64(X[b, k])
            for p in range(indptr[k], indptr[k + 1]):
                j = indices[p]
                delta[b, j] += 2 * data[p] * (np.int64(1) - 2 * np.int64(X[b, j])) * sk
                updates += 1
            delta[b, k] = -dk_old
            energy[b] += dk_old
            X[b, k] ^= np.uint8(1)
            updates += 1
        return updates

    @njit(cache=True)
    def select_window(delta, offsets, windows, out):
        B, n = delta.shape
        for b in range(B):
            off = offsets[b]
            best = _INT64_MAX
            k = -1
            for j in range(windows[b]):
                idx = (off + j) % n
                v = delta[b, idx]
                if v < best:
                    best = v
                    k = idx
            out[b] = k

    @njit(cache=True)
    def select_straight(delta, diff, ids, out):
        n = delta.shape[1]
        for i in range(ids.shape[0]):
            b = ids[i]
            best = _INT64_MAX
            k = 0
            for j in range(n):
                if diff[b, j] and delta[b, j] < best:
                    best = delta[b, j]
                    k = j
            out[i] = k

    @njit(cache=True)
    def update_best(X, delta, energy, best_energy, best_x, ids):
        n = delta.shape[1]
        for i in range(ids.shape[0]):
            b = ids[i]
            pos = 0
            dmin = delta[b, 0]
            for j in range(1, n):
                if delta[b, j] < dmin:
                    dmin = delta[b, j]
                    pos = j
            cand = energy[b] + dmin
            if cand < best_energy[b]:
                best_energy[b] = cand
                for j in range(n):
                    best_x[b, j] = X[b, j]
                best_x[b, pos] ^= np.uint8(1)
            if energy[b] < best_energy[b]:
                best_energy[b] = energy[b]
                for j in range(n):
                    best_x[b, j] = X[b, j]

    @njit(cache=True)
    def track_position(X, energy, best_energy, best_x, ids):
        n = X.shape[1]
        for i in range(ids.shape[0]):
            b = ids[i]
            if energy[b] < best_energy[b]:
                best_energy[b] = energy[b]
                for j in range(n):
                    best_x[b, j] = X[b, j]

    @njit(cache=True)
    def local_steps_dense(
        W, X, delta, energy, best_energy, best_x, offsets, windows, steps
    ):
        B, n = X.shape
        for _ in range(steps):
            for b in range(B):
                # Figure 2 windowed min-Δ select
                off = offsets[b]
                dmin = _INT64_MAX
                k = -1
                for j in range(windows[b]):
                    idx = (off + j) % n
                    v = delta[b, idx]
                    if v < dmin:
                        dmin = v
                        k = idx
                # Eq. (16) flip
                dk_old = delta[b, k]
                sk = np.int64(1) - 2 * np.int64(X[b, k])
                for j in range(n):
                    delta[b, j] += (
                        2 * W[k, j] * (np.int64(1) - 2 * np.int64(X[b, j])) * sk
                    )
                delta[b, k] = -dk_old
                energy[b] += dk_old
                X[b, k] ^= np.uint8(1)
                # Incumbent over all n neighbours, then the position
                pos = 0
                dmin = delta[b, 0]
                for j in range(1, n):
                    if delta[b, j] < dmin:
                        dmin = delta[b, j]
                        pos = j
                cand = energy[b] + dmin
                if cand < best_energy[b]:
                    best_energy[b] = cand
                    for j in range(n):
                        best_x[b, j] = X[b, j]
                    best_x[b, pos] ^= np.uint8(1)
                if energy[b] < best_energy[b]:
                    best_energy[b] = energy[b]
                    for j in range(n):
                        best_x[b, j] = X[b, j]
                offsets[b] = (offsets[b] + windows[b]) % n
        return steps * B * n

    @njit(cache=True)
    def local_steps_sparse(
        indptr,
        indices,
        data,
        X,
        delta,
        energy,
        best_energy,
        best_x,
        offsets,
        windows,
        steps,
    ):
        B, n = X.shape
        updates = 0
        for _ in range(steps):
            for b in range(B):
                off = offsets[b]
                dmin = _INT64_MAX
                k = -1
                for j in range(windows[b]):
                    idx = (off + j) % n
                    v = delta[b, idx]
                    if v < dmin:
                        dmin = v
                        k = idx
                dk_old = delta[b, k]
                sk = np.int64(1) - 2 * np.int64(X[b, k])
                for p in range(indptr[k], indptr[k + 1]):
                    j = indices[p]
                    delta[b, j] += (
                        2 * data[p] * (np.int64(1) - 2 * np.int64(X[b, j])) * sk
                    )
                    updates += 1
                delta[b, k] = -dk_old
                energy[b] += dk_old
                X[b, k] ^= np.uint8(1)
                updates += 1
                pos = 0
                dmin = delta[b, 0]
                for j in range(1, n):
                    if delta[b, j] < dmin:
                        dmin = delta[b, j]
                        pos = j
                cand = energy[b] + dmin
                if cand < best_energy[b]:
                    best_energy[b] = cand
                    for j in range(n):
                        best_x[b, j] = X[b, j]
                    best_x[b, pos] ^= np.uint8(1)
                if energy[b] < best_energy[b]:
                    best_energy[b] = energy[b]
                    for j in range(n):
                        best_x[b, j] = X[b, j]
                offsets[b] = (offsets[b] + windows[b]) % n
        return updates

    return {
        "flip_dense": flip_dense,
        "flip_sparse": flip_sparse,
        "select_window": select_window,
        "select_straight": select_straight,
        "update_best": update_best,
        "track_position": track_position,
        "local_steps_dense": local_steps_dense,
        "local_steps_sparse": local_steps_sparse,
    }


class NumbaBackend(KernelBackend):
    """JIT kernel set; construct only when :func:`numba_available`.

    Compilation is deferred to the first kernel call (per process, and
    cached on disk by numba), so constructing the backend — e.g. just
    to resolve its name — stays cheap.
    """

    name = "numba"

    def __init__(self) -> None:
        self._k: dict | None = None

    @property
    def kernels(self) -> dict:
        if self._k is None:
            self._k = _build_kernels()
        return self._k

    def flip(self, pw, X, delta, energy, ids, ks) -> int:
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        ks = np.ascontiguousarray(ks, dtype=np.int64)
        if pw.is_sparse:
            return int(
                self.kernels["flip_sparse"](
                    pw.indptr, pw.indices, pw.data, X, delta, energy, ids, ks
                )
            )
        return int(self.kernels["flip_dense"](pw.dense, X, delta, energy, ids, ks))

    def select_window(self, delta, offsets, windows) -> np.ndarray:
        out = np.empty(delta.shape[0], dtype=np.int64)
        self.kernels["select_window"](delta, offsets, windows, out)
        return out

    def select_straight(self, delta, diff, ids) -> np.ndarray:
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        out = np.empty(ids.shape[0], dtype=np.int64)
        self.kernels["select_straight"](delta, diff, ids, out)
        return out

    def update_best(self, X, delta, energy, best_energy, best_x, ids) -> None:
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        self.kernels["update_best"](X, delta, energy, best_energy, best_x, ids)

    def track_position(self, X, energy, best_energy, best_x, ids) -> None:
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        self.kernels["track_position"](X, energy, best_energy, best_x, ids)

    def run_local_steps(
        self, pw, X, delta, energy, best_energy, best_x, offsets, windows, steps
    ) -> int:
        if steps == 0:
            return 0
        if pw.is_sparse:
            return int(
                self.kernels["local_steps_sparse"](
                    pw.indptr,
                    pw.indices,
                    pw.data,
                    X,
                    delta,
                    energy,
                    best_energy,
                    best_x,
                    offsets,
                    windows,
                    steps,
                )
            )
        return int(
            self.kernels["local_steps_dense"](
                pw.dense, X, delta, energy, best_energy, best_x, offsets, windows, steps
            )
        )
