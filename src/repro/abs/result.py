"""Solve results and run statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SolveResult:
    """Outcome of one :class:`~repro.abs.solver.AdaptiveBulkSearch` run.

    Attributes
    ----------
    best_x, best_energy:
        The best solution found and its energy.
    elapsed:
        Wall-clock seconds spent searching (setup excluded).
    rounds:
        Completed device rounds (summed over devices).  With two
        devices and ``rounds == 6``, each device ran ~3 rounds.
    sweeps:
        Completed *sweeps*: full passes in which every (surviving)
        device finished a round — ``min`` over the per-device round
        counts.  ``rounds`` measures total work, ``sweeps`` measures
        search depth; in sync mode ``rounds == sweeps × n_gpus`` up to
        the partial final sweep, and both are counted identically in
        process mode (workers lost to supervision are excluded from
        the ``min``).
    evaluated:
        Total solutions evaluated (Definition 1 denominator).
    flips:
        Total accepted bit flips across all blocks.
    reached_target:
        Whether ``target_energy`` was met (always ``False`` when no
        target was set).
    time_to_target:
        Seconds until the target was first met (``None`` if never).
    history:
        ``(elapsed_seconds, best_energy)`` checkpoints, one per host
        polling iteration — the solver's convergence trace.
    n_gpus:
        Devices that produced the result.
    counters:
        Per-run counter snapshot (``pool.*``, ``ga.*``, ``engine.*``,
        ``adapt.*``, ``host.*`` — the full catalog is in
        ``docs/observability.md``).  Populated by the solver whether or
        not telemetry is enabled; derived from component state at the
        end of the run, so it costs nothing on the hot path.
    workers_restarted:
        Process mode: worker processes restarted by the supervision
        layer after dying or stalling (each replacement was rehydrated
        with fresh GA targets from the pool).  Always 0 in sync mode.
    workers_lost:
        Process mode: workers permanently retired after exhausting
        ``max_worker_restarts`` — the solve completed on the
        survivors.  Always 0 in sync mode.
    pool_mean_distance:
        Mean pairwise Hamming distance over the host pool at the end
        of the run (``None`` when the pool held fewer than two
        solutions).  The Diverse-ABS diversity metric: higher with
        ``diversity_min_dist`` niching than without.
    setup_ns:
        Nanoseconds spent preparing the run before the first search
        round: weight prep / shared-memory publication, worker spawn,
        exchange setup.  This is the cold-start cost the warm-fleet
        service amortizes (see ``docs/service.md``); also surfaced as
        the ``solver.setup_ns`` counter.
    search_ns:
        Nanoseconds spent in the search loop proper (the same span
        ``elapsed`` measures, in integer nanoseconds; also the
        ``solver.search_ns`` counter).
    """

    best_x: np.ndarray
    best_energy: int
    elapsed: float
    rounds: int
    evaluated: int
    flips: int
    sweeps: int = 0
    reached_target: bool = False
    time_to_target: float | None = None
    history: list[tuple[float, int]] = field(default_factory=list)
    n_gpus: int = 1
    counters: dict[str, int] = field(default_factory=dict)
    workers_restarted: int = 0
    workers_lost: int = 0
    pool_mean_distance: float | None = None
    setup_ns: int = 0
    search_ns: int = 0

    @property
    def search_rate(self) -> float:
        """Measured solutions/second (Definition 1 over the whole run)."""
        if self.elapsed <= 0:
            return 0.0
        return self.evaluated / self.elapsed

    def summary(self) -> str:
        """One-line human-readable digest."""
        rate = self.search_rate
        degraded = ""
        if self.workers_restarted or self.workers_lost:
            degraded = (
                f" restarted={self.workers_restarted} lost={self.workers_lost}"
            )
        return (
            f"best={self.best_energy} elapsed={self.elapsed:.3g}s "
            f"rounds={self.rounds} sweeps={self.sweeps} "
            f"evaluated={self.evaluated:.3g} "
            f"rate={rate:.3g}/s gpus={self.n_gpus}"
            + degraded
            + (" [target reached]" if self.reached_target else "")
        )
