"""Tests for the qbsolv-style decomposition solver."""

import numpy as np
import pytest

from repro.abs.decompose import (
    DecompositionConfig,
    DecompositionResult,
    DecompositionSolver,
)
from repro.problems.maxcut import maxcut_to_sparse_qubo, random_graph
from repro.qubo import QuboMatrix, energy
from repro.search import solve_exact


class TestSubproblemConstruction:
    """The conditioned sub-QUBO must satisfy the energy identity
    E(x with S←y) − E(x with S←0) == E_sub(y) for every y."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_energy_identity_dense(self, seed):
        q = QuboMatrix.random(20, seed=seed)
        solver = DecompositionSolver(q, DecompositionConfig(subproblem_size=6, seed=0))
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 2, 20, dtype=np.uint8)
        subset = rng.choice(20, size=6, replace=False)
        sub = solver.build_subproblem(x, subset)
        base = x.copy()
        base[subset] = 0
        e_base = energy(q, base)
        for _ in range(10):
            y = rng.integers(0, 2, 6, dtype=np.uint8)
            full = x.copy()
            full[subset] = y
            assert energy(q, full) - e_base == energy(sub, y)

    def test_energy_identity_sparse(self):
        g = random_graph(30, 90, weighted=True, seed=4)
        sq = maxcut_to_sparse_qubo(g)
        solver = DecompositionSolver(sq, DecompositionConfig(subproblem_size=8, seed=0))
        rng = np.random.default_rng(4)
        x = rng.integers(0, 2, 30, dtype=np.uint8)
        subset = rng.choice(30, size=8, replace=False)
        sub = solver.build_subproblem(x, subset)
        base = x.copy()
        base[subset] = 0
        e_base = sq.energy(base)
        for _ in range(10):
            y = rng.integers(0, 2, 8, dtype=np.uint8)
            full = x.copy()
            full[subset] = y
            assert sq.energy(full) - e_base == energy(sub, y)


class TestSolve:
    def test_full_subset_equals_direct_solve(self):
        """With k = n the first iteration already solves the whole
        problem; the result must reach the exact optimum."""
        q = QuboMatrix.random(14, seed=5)
        opt = solve_exact(q).energy
        cfg = DecompositionConfig(
            subproblem_size=14, iterations=6, inner_rounds=40,
            inner_blocks=16, seed=1,
        )
        res = DecompositionSolver(q, cfg).solve()
        assert res.best_energy == opt

    def test_small_subproblems_reach_optimum(self):
        q = QuboMatrix.random(24, seed=6)
        opt = solve_exact(q).energy
        cfg = DecompositionConfig(
            subproblem_size=10, iterations=40, inner_rounds=20, seed=2,
        )
        res = DecompositionSolver(q, cfg).solve()
        assert res.best_energy == opt
        assert energy(q, res.best_x) == res.best_energy

    def test_history_monotone_and_improvements_counted(self):
        q = QuboMatrix.random(40, seed=7)
        cfg = DecompositionConfig(subproblem_size=12, iterations=15, seed=3)
        res = DecompositionSolver(q, cfg).solve()
        energies = [e for _, e in res.history]
        assert all(energies[i + 1] <= energies[i] for i in range(len(energies) - 1))
        assert res.improvements >= 1
        assert res.iterations == 15

    def test_patience_stops_early(self):
        # An already-optimal incumbent cannot improve: patience triggers.
        q = QuboMatrix.zeros(16)  # every solution optimal at 0
        cfg = DecompositionConfig(
            subproblem_size=4, iterations=50, patience=3, seed=4,
        )
        res = DecompositionSolver(q, cfg).solve()
        assert res.iterations <= 4 + 3

    def test_random_selection_mode(self):
        q = QuboMatrix.random(30, seed=8)
        cfg = DecompositionConfig(
            subproblem_size=10, iterations=10, selection="random", seed=5,
        )
        res = DecompositionSolver(q, cfg).solve()
        assert energy(q, res.best_x) == res.best_energy

    def test_sparse_backend_solve(self):
        g = random_graph(60, 200, weighted=True, seed=9)
        sq = maxcut_to_sparse_qubo(g)
        cfg = DecompositionConfig(subproblem_size=16, iterations=15, seed=6)
        res = DecompositionSolver(sq, cfg).solve()
        assert sq.energy(res.best_x) == res.best_energy
        assert res.best_energy < 0  # found some cut

    def test_deterministic_by_seed(self):
        q = QuboMatrix.random(30, seed=10)
        cfg = DecompositionConfig(subproblem_size=10, iterations=8, seed=7)
        a = DecompositionSolver(q, cfg).solve()
        b = DecompositionSolver(q, cfg).solve()
        assert a.best_energy == b.best_energy
        assert np.array_equal(a.best_x, b.best_x)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"subproblem_size": 1},
            {"iterations": 0},
            {"selection": "psychic"},
            {"inner_rounds": 0},
            {"patience": 0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            DecompositionConfig(**kwargs)

    def test_subproblem_larger_than_problem(self):
        q = QuboMatrix.random(8, seed=0)
        with pytest.raises(ValueError, match="exceeds"):
            DecompositionSolver(q, DecompositionConfig(subproblem_size=16))
