"""Tests for the sorted, duplicate-free solution pool."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.pool import SolutionPool


def bits(*vals):
    return np.array(vals, dtype=np.uint8)


class TestBasics:
    def test_insert_and_best(self):
        pool = SolutionPool(3, capacity=4)
        assert pool.insert(bits(1, 0, 0), 5)
        assert pool.insert(bits(0, 1, 0), 2)
        assert pool.best().energy == 2
        assert pool.worst().energy == 5
        assert len(pool) == 2

    def test_sorted_iteration(self):
        pool = SolutionPool(3, capacity=8)
        for e, x in [(4, bits(1, 0, 0)), (1, bits(0, 1, 0)), (3, bits(0, 0, 1))]:
            pool.insert(x, e)
        assert pool.energies() == [1, 3, 4]
        assert [p.energy for p in pool] == [1, 3, 4]

    def test_duplicate_bits_rejected(self):
        pool = SolutionPool(3, capacity=4)
        assert pool.insert(bits(1, 1, 0), 5)
        assert not pool.insert(bits(1, 1, 0), 2)  # same bits, better energy
        assert pool.rejected_duplicate == 1
        assert len(pool) == 1

    def test_eviction_of_worst(self):
        pool = SolutionPool(2, capacity=2)
        pool.insert(bits(1, 0), 10)
        pool.insert(bits(0, 1), 20)
        assert pool.insert(bits(1, 1), 5)
        assert len(pool) == 2
        assert pool.energies() == [5, 10]
        assert not pool.contains(bits(0, 1))

    def test_rejects_worse_than_worst_when_full(self):
        pool = SolutionPool(2, capacity=2)
        pool.insert(bits(1, 0), 10)
        pool.insert(bits(0, 1), 20)
        assert not pool.insert(bits(1, 1), 30)
        assert pool.rejected_worse == 1

    def test_infinite_energy_entries_sort_last(self):
        pool = SolutionPool(2, capacity=3)
        pool.insert(bits(1, 0), math.inf)
        pool.insert(bits(0, 1), 7)
        assert pool.best().energy == 7
        assert pool.worst().energy == math.inf

    def test_contains(self):
        pool = SolutionPool(2, capacity=2)
        pool.insert(bits(1, 0), 1)
        assert pool.contains(bits(1, 0))
        assert not pool.contains(bits(0, 1))

    def test_empty_pool_access(self):
        pool = SolutionPool(2, capacity=2)
        with pytest.raises(IndexError):
            pool.best()
        with pytest.raises(IndexError):
            pool.worst()

    def test_getitem_by_rank(self):
        pool = SolutionPool(2, capacity=4)
        pool.insert(bits(1, 0), 9)
        pool.insert(bits(0, 1), 3)
        assert pool[0].energy == 3
        assert pool[1].energy == 9

    def test_stored_solution_readonly_copy(self):
        pool = SolutionPool(2, capacity=2)
        x = bits(1, 0)
        pool.insert(x, 1)
        x[0] = 0  # caller mutation must not corrupt the pool
        assert pool.contains(bits(1, 0))
        with pytest.raises(ValueError):
            pool.best().x[0] = 0


class TestValidation:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SolutionPool(3, capacity=0)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            SolutionPool(-1, capacity=2)

    def test_wrong_length_insert(self):
        pool = SolutionPool(3, capacity=2)
        with pytest.raises(ValueError):
            pool.insert(bits(1, 0), 1)


class TestSeedRandom:
    def test_fills_to_capacity(self):
        pool = SolutionPool(32, capacity=16)
        added = pool.seed_random(seed=0)
        assert added == 16
        assert len(pool) == 16
        assert pool.evaluated_fraction() == 0.0

    def test_tiny_space_saturates(self):
        pool = SolutionPool(1, capacity=10)
        added = pool.seed_random(seed=0)
        assert added == 2  # only two distinct 1-bit vectors exist
        pool.check_invariants()

    def test_partial_count(self):
        pool = SolutionPool(16, capacity=10)
        assert pool.seed_random(seed=1, count=4) == 4
        assert len(pool) == 4


class TestInvariantsPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(-100, 100), st.integers(0, 255)),
            max_size=60,
        )
    )
    @settings(max_examples=30)
    def test_random_insert_stream_keeps_invariants(self, stream):
        pool = SolutionPool(8, capacity=10)
        for e, code in stream:
            x = np.array([(code >> i) & 1 for i in range(8)], dtype=np.uint8)
            pool.insert(x, e)
            pool.check_invariants()
        # Every stored solution is distinct and energies are sorted.
        pool.check_invariants()

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=40))
    @settings(max_examples=30)
    def test_best_is_min_of_accepted(self, codes):
        pool = SolutionPool(4, capacity=5)
        best_seen = {}
        for code in codes:
            x = np.array([(code >> i) & 1 for i in range(4)], dtype=np.uint8)
            e = code * 3 - 20
            if pool.insert(x, e):
                best_seen[x.tobytes()] = e
        if best_seen:
            assert pool.best().energy == min(best_seen.values())


class TestBatchInsert:
    def test_matches_sequential_inserts(self):
        rng = np.random.default_rng(11)
        X = rng.integers(0, 2, (40, 8), dtype=np.uint8)
        energies = rng.integers(-50, 50, 40)
        a = SolutionPool(8, capacity=10)
        b = SolutionPool(8, capacity=10)
        n_batch = a.insert_batch(X, energies)
        n_seq = sum(b.insert(X[i], int(energies[i])) for i in range(40))
        assert n_batch == n_seq
        assert a.energies() == b.energies()
        assert (a.as_matrix() == b.as_matrix()).all()
        assert a.rejected_duplicate == b.rejected_duplicate
        assert a.rejected_worse == b.rejected_worse
        a.check_invariants()

    def test_empty_batch(self):
        pool = SolutionPool(8, capacity=4)
        assert pool.insert_batch(
            np.zeros((0, 8), dtype=np.uint8), np.zeros(0)
        ) == 0

    def test_shape_validation(self):
        pool = SolutionPool(8, capacity=4)
        with pytest.raises(ValueError, match="shape"):
            pool.insert_batch(np.zeros((2, 7), dtype=np.uint8), np.zeros(2))
        with pytest.raises(ValueError, match="energies"):
            pool.insert_batch(np.zeros((2, 8), dtype=np.uint8), np.zeros(3))
        with pytest.raises(ValueError, match="0/1"):
            pool.insert_batch(
                np.full((1, 8), 2, dtype=np.uint8), np.zeros(1)
            )

    def test_eviction_uses_cached_keys(self):
        """Filling past capacity exercises the cached-key eviction path;
        invariants confirm keys stay aligned with solutions."""
        rng = np.random.default_rng(12)
        pool = SolutionPool(10, capacity=5)
        for batch in range(6):
            X = rng.integers(0, 2, (8, 10), dtype=np.uint8)
            energies = rng.integers(-100, 100, 8)
            pool.insert_batch(X, energies)
            pool.check_invariants()
        assert len(pool) == 5

    def test_as_matrix_roundtrip(self):
        pool = SolutionPool(6, capacity=4)
        X = np.eye(4, 6, dtype=np.uint8)
        pool.insert_batch(X, np.arange(4))
        mat = pool.as_matrix()
        assert mat.shape == (4, 6)
        assert (mat == X).all()  # already sorted by energy
        assert pool.as_matrix() is not mat  # copies

    def test_as_matrix_empty(self):
        pool = SolutionPool(6, capacity=4)
        assert pool.as_matrix().shape == (0, 6)
