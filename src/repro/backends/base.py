"""The kernel-backend contract for the bulk engine.

The hot path of :class:`~repro.gpusim.engine.BulkSearchEngine` is five
kernels, each the batched analogue of one paper construct:

==================  =====================================================
kernel              paper anchor
==================  =====================================================
``flip``            Eq. (16) delta refresh (dense row add / sparse
                    scatter over the flipped bit's neighbours)
``select_window``   Figure 2 windowed min-Δ selection (rotating offset,
                    per-block window ``l``)
``select_straight`` Algorithm 5 line 3: min-Δ over still-differing bits
``update_best``     Algorithm 4's inner ``E(X) + d_i < E(B)`` incumbent
                    check over all ``n`` exposed neighbours
``track_position``  the literal Algorithm 5 variant that only considers
                    visited solutions
==================  =====================================================

A backend implements these against the shared batched state arrays
(``X`` uint8 ``B×n``, ``delta``/``energy`` int64, ``best_*``) and may
additionally fuse the whole :meth:`run_local_steps` loop (the dominant
hot path — one Python-level iteration per forced flip in the reference
implementation).  All arithmetic is int64; every kernel must be
**bit-for-bit identical** to the NumPy reference backend, including
argmin tie-breaking (first minimum wins).  The differential suite in
``tests/backends/test_equivalence.py`` pins every registered backend to
the scalar references automatically.

Backends are stateless with respect to the search: all search state
lives in the engine's arrays, so engines can be checkpointed and
backends swapped between runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

_INT64_MAX = np.iinfo(np.int64).max


@dataclass(frozen=True)
class PreparedWeights:
    """Kernel-ready view of the problem weights.

    ``dense`` is a contiguous int64 ``n×n`` matrix, or ``None`` for a
    sparse problem, in which case the off-diagonal weights are given in
    CSR form (``indptr``/``indices``/``data``, both triangles stored).
    Backends receive this object on every kernel call and may stash
    derived artifacts keyed by it (e.g. compiled closures).
    """

    n: int
    dense: np.ndarray | None = None
    indptr: np.ndarray | None = None
    indices: np.ndarray | None = None
    data: np.ndarray | None = None

    @property
    def is_sparse(self) -> bool:
        return self.dense is None


class KernelBackend(ABC):
    """Abstract kernel set; see the module docstring for the contract.

    Attributes
    ----------
    name:
        Registry name; stamped on ``solve.start`` telemetry and on
        :attr:`SolveResult.counters` consumers via the engine.
    fallback_from:
        When this instance was substituted for an unavailable backend
        (e.g. ``numba`` without numba installed), the originally
        requested name; ``None`` otherwise.  The engine emits a
        ``backend.fallback`` telemetry event when set.
    """

    name: str = "?"
    fallback_from: str | None = None

    # ------------------------------------------------------------------
    # Weight preparation
    # ------------------------------------------------------------------
    def prepare_dense(self, W: np.ndarray) -> PreparedWeights:
        """Wrap a contiguous int64 dense matrix for the kernels."""
        return PreparedWeights(n=int(W.shape[0]), dense=W)

    def prepare_sparse(self, sparse) -> PreparedWeights:
        """Wrap a :class:`~repro.qubo.sparse.SparseQubo`'s CSR arrays."""
        csr = sparse.csr
        return PreparedWeights(
            n=sparse.n,
            indptr=np.ascontiguousarray(csr.indptr, dtype=np.int64),
            indices=np.ascontiguousarray(csr.indices, dtype=np.int64),
            data=np.ascontiguousarray(csr.data, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Primitive kernels
    # ------------------------------------------------------------------
    @abstractmethod
    def flip(
        self,
        pw: PreparedWeights,
        X: np.ndarray,
        delta: np.ndarray,
        energy: np.ndarray,
        ids: np.ndarray,
        ks: np.ndarray,
    ) -> int:
        """Flip bit ``ks[i]`` of block ``ids[i]`` for all i (Eq. 16).

        Mutates ``X``/``delta``/``energy`` in place and returns the
        number of delta-vector entries written: ``m·n`` on the dense
        path, ``Σ (degree(k_i) + 1)`` on the sparse path — the honest
        work metric behind the ``engine.delta_updates`` counter (the
        paper's ``evaluated`` exposure metric stays ``m·n`` either way).
        """

    @abstractmethod
    def select_window(
        self,
        delta: np.ndarray,
        offsets: np.ndarray,
        windows: np.ndarray,
    ) -> np.ndarray:
        """Figure 2: per-block min-Δ bit inside the rotating window.

        Returns the length-``B`` int64 array of chosen bit indices.
        Ties break toward the *earliest lane* (lowest offset distance),
        exactly like ``np.argmin`` over the windowed extract.
        """

    @abstractmethod
    def select_straight(
        self,
        delta: np.ndarray,
        diff: np.ndarray,
        ids: np.ndarray,
    ) -> np.ndarray:
        """Algorithm 5 line 3 for blocks ``ids``: min-Δ differing bit.

        ``diff`` is the full ``B×n`` uint8 array ``X ^ T``; the result
        has one chosen index per entry of ``ids``.  Ties break toward
        the lowest bit index.
        """

    @abstractmethod
    def update_best(
        self,
        X: np.ndarray,
        delta: np.ndarray,
        energy: np.ndarray,
        best_energy: np.ndarray,
        best_x: np.ndarray,
        ids: np.ndarray,
    ) -> None:
        """Incumbent check over all ``n`` exposed neighbours + position.

        Must test the best neighbour (``E + min Δ``) *before* the walk
        position itself, matching the scalar reference's update order.
        """

    @abstractmethod
    def track_position(
        self,
        X: np.ndarray,
        energy: np.ndarray,
        best_energy: np.ndarray,
        best_x: np.ndarray,
        ids: np.ndarray,
    ) -> None:
        """Literal Algorithm 5 tracking: visited solutions only."""

    # ------------------------------------------------------------------
    # Fused hot loop
    # ------------------------------------------------------------------
    def run_local_steps(
        self,
        pw: PreparedWeights,
        X: np.ndarray,
        delta: np.ndarray,
        energy: np.ndarray,
        best_energy: np.ndarray,
        best_x: np.ndarray,
        offsets: np.ndarray,
        windows: np.ndarray,
        steps: int,
    ) -> int:
        """Batched Algorithm 4: ``steps`` forced flips for every block.

        Default implementation composes the primitive kernels with one
        Python iteration per step; JIT backends override it with a
        fused multi-step kernel.  Mutates all state arrays (including
        ``offsets``, advanced by ``windows`` each step, mod n) in place
        and returns the total delta-entry writes (see :meth:`flip`).
        """
        n = pw.n
        B = X.shape[0]
        ids = np.arange(B)
        updates = 0
        for _ in range(steps):
            ks = self.select_window(delta, offsets, windows)
            updates += self.flip(pw, X, delta, energy, ids, ks)
            self.update_best(X, delta, energy, best_energy, best_x, ids)
            offsets[:] = (offsets + windows) % n
        return updates

    def __repr__(self) -> str:
        suffix = f", fallback_from={self.fallback_from!r}" if self.fallback_from else ""
        return f"{type(self).__name__}(name={self.name!r}{suffix})"
