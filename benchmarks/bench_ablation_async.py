"""Ablation — asynchronous vs barrier-synchronized block execution.

§3.2: straight-search lengths vary per block (each GA target lands at a
different Hamming distance), *"This variation may produce an overhead
for synchronization between CUDA blocks, but it is avoided because each
CUDA block operates asynchronously."*

This bench measures the actual per-round work distribution of a live
ABS run (Hamming distance + fixed local steps per block per round) and
computes the makespans of the two execution disciplines.  Shape: the
asynchronous speedup must exceed 1 and grow when straight searches
dominate the round (small ``local_steps``).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import FULL
from repro.gpusim.async_sim import async_speedup, sample_round_work
from repro.problems.random_qubo import random_qubo
from repro.utils.tables import Table

_N = 512 if FULL else 256
_BLOCKS = 32
_ROUNDS = 24 if FULL else 16


def test_ablation_async_execution(benchmark, report):
    qubo = random_qubo(_N, seed=_N)
    table = Table(
        [
            "local steps / round", "mean work", "work std",
            "sync makespan", "async makespan", "async speedup",
        ],
        title=(
            f"Asynchronous vs synchronized execution, n={_N}, "
            f"{_BLOCKS} blocks × {_ROUNDS} rounds (work = Hamming + steps)"
        ),
    )
    speedups = {}
    for steps in (8, 32, 128):
        work = sample_round_work(
            qubo, _BLOCKS, _ROUNDS, local_steps=steps, seed=steps
        )
        from repro.gpusim.async_sim import (
            asynchronous_makespan,
            synchronized_makespan,
        )

        s = async_speedup(work)
        speedups[steps] = s
        table.add_row(
            [
                steps,
                f"{work.mean():.1f}",
                f"{work.std():.1f}",
                f"{synchronized_makespan(work):.0f}",
                f"{asynchronous_makespan(work):.0f}",
                f"{s:.3f}x",
            ]
        )

    report(
        "Ablation async execution",
        table.render()
        + "\n\nBarriers pay the per-round maximum; free-running blocks pay "
        "their own means.  The gap is the §3.2 synchronization overhead "
        "ABS avoids, and it widens when variable-length straight searches "
        "dominate the round.",
    )

    # The paper's claim: asynchrony strictly helps …
    assert all(s > 1.0 for s in speedups.values())
    # … and matters most when the variable part dominates the round.
    assert speedups[8] > speedups[128]

    benchmark(
        lambda: sample_round_work(qubo, 8, 4, local_steps=16, seed=0)
    )
