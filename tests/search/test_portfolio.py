"""Tests for the algorithm-portfolio meta-search."""

import numpy as np
import pytest

from repro.qubo import QuboMatrix, energy
from repro.search import BulkLocalSearch, SimulatedAnnealing, TabuSearch
from repro.search.portfolio import PortfolioOutcome, PortfolioSearch


@pytest.fixture
def problem():
    return QuboMatrix.random(24, seed=99)


def make_portfolio():
    return PortfolioSearch([BulkLocalSearch(), TabuSearch(), SimulatedAnnealing()])


class TestRunPortfolio:
    def test_breakdown_covers_all_members(self, problem, rng):
        x0 = rng.integers(0, 2, 24, dtype=np.uint8)
        out = make_portfolio().run_portfolio(problem, x0, 300, seed=1)
        assert isinstance(out, PortfolioOutcome)
        assert len(out.records) == 3
        assert out.winner in out.records

    def test_best_is_min_over_members(self, problem, rng):
        x0 = rng.integers(0, 2, 24, dtype=np.uint8)
        out = make_portfolio().run_portfolio(problem, x0, 300, seed=2)
        assert out.best.best_energy == min(
            r.best_energy for r in out.records.values()
        )

    def test_run_interface_returns_winner_record(self, problem, rng):
        x0 = rng.integers(0, 2, 24, dtype=np.uint8)
        rec = make_portfolio().run(problem, x0, 300, seed=3)
        assert rec.best_energy == energy(problem, rec.best_x)

    def test_budget_split_roughly_equal(self, problem, rng):
        x0 = rng.integers(0, 2, 24, dtype=np.uint8)
        out = make_portfolio().run_portfolio(problem, x0, 300, seed=4)
        for rec in out.records.values():
            assert rec.steps == 100  # 300 / 3 members

    def test_custom_budget_fractions(self, problem, rng):
        x0 = rng.integers(0, 2, 24, dtype=np.uint8)
        pf = PortfolioSearch(
            [BulkLocalSearch(), TabuSearch()], weights_budget=[3.0, 1.0]
        )
        out = pf.run_portfolio(problem, x0, 400, seed=5)
        steps = [r.steps for r in out.records.values()]
        assert sorted(steps) == [100, 300]

    def test_duplicate_member_names_disambiguated(self, problem, rng):
        pf = PortfolioSearch([TabuSearch(tenure=4), TabuSearch(tenure=16)])
        x0 = rng.integers(0, 2, 24, dtype=np.uint8)
        out = pf.run_portfolio(problem, x0, 100, seed=6)
        assert len(out.records) == 2
        assert "tabu search" in out.records
        assert "tabu search #2" in out.records

    def test_reproducible_by_seed(self, problem, rng):
        x0 = rng.integers(0, 2, 24, dtype=np.uint8)
        a = make_portfolio().run(problem, x0, 200, seed=7)
        b = make_portfolio().run(problem, x0, 200, seed=7)
        assert a.best_energy == b.best_energy

    def test_never_worse_than_any_member_at_share(self, problem, rng):
        """The portfolio guarantee, verified directly."""
        x0 = rng.integers(0, 2, 24, dtype=np.uint8)
        pf = make_portfolio()
        out = pf.run_portfolio(problem, x0, 300, seed=8)
        for rec in out.records.values():
            assert out.best.best_energy <= rec.best_energy


class TestValidation:
    def test_empty_portfolio(self):
        with pytest.raises(ValueError, match="at least one"):
            PortfolioSearch([])

    def test_budget_length_mismatch(self):
        with pytest.raises(ValueError, match="weights"):
            PortfolioSearch([TabuSearch()], weights_budget=[0.5, 0.5])

    def test_nonpositive_budget(self):
        with pytest.raises(ValueError, match="positive"):
            PortfolioSearch([TabuSearch()], weights_budget=[0.0])
