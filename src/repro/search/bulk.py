"""Algorithm 4 — the proposed forced-flip local search, O(1) efficiency.

Every iteration flips exactly one bit (chosen by a
:class:`~repro.search.policies.SelectionPolicy`) and refreshes the whole
delta vector with Eq. (16).  Because the refresh exposes ``E + Δ_i`` for
all ``n`` neighbors, each O(n) step evaluates ``n`` solutions, so the
per-solution cost is O(1) (Theorem 1).  The best solution is tracked
over *all* evaluated neighbors, not just visited ones — a neighbor the
policy would never walk to can still become the incumbent, exactly as
the inner ``if E(X) + d_i < E(B)`` of the paper's pseudo-code.

This is the scalar reference implementation; the batched variant that
simulates CUDA blocks lives in :mod:`repro.gpusim.engine` and is tested
for equivalence against this one.
"""

from __future__ import annotations

import numpy as np

from repro.qubo.matrix import WeightsLike
from repro.qubo.state import SearchState
from repro.search.base import LocalSearch, SearchRecord
from repro.search.deltasearch import advance_to
from repro.search.policies import SelectionPolicy, WindowMinDeltaPolicy
from repro.telemetry.bus import NULL_BUS, NullBus, TelemetryBus
from repro.utils.rng import SeedLike, as_generator


def _scan_best(state: SearchState, best_e: int, best_x: np.ndarray) -> tuple[int, np.ndarray]:
    """Update the incumbent from all n neighbor energies ``E + Δ``."""
    k = int(np.argmin(state.delta))
    cand = state.energy + int(state.delta[k])
    if cand < best_e:
        best_x = state.x.copy()
        best_x[k] ^= 1
        best_e = cand
    # The walk position itself is one of the evaluated solutions too.
    if state.energy < best_e:
        best_e = state.energy
        best_x = state.x.copy()
    return best_e, best_x


class BulkLocalSearch(LocalSearch):
    """Algorithm 4: forced flips with full neighbor evaluation.

    Parameters
    ----------
    policy:
        Bit-selection policy (default: the paper's windowed min-Δ with
        ``l = 16``).
    start_from_zero:
        When ``True`` (paper behaviour), the search bootstraps from the
        all-zero vector and walks to ``x0`` using the Algorithm 3/4
        prefix, keeping O(1) efficiency with **no** O(n²) evaluation.
        When ``False``, the delta vector for ``x0`` is computed directly
        at O(n²).
    """

    name = "bulk forced-flip (Alg. 4)"

    def __init__(
        self,
        policy: SelectionPolicy | None = None,
        *,
        start_from_zero: bool = True,
        bus: TelemetryBus | NullBus | None = None,
    ) -> None:
        self.policy = policy or WindowMinDeltaPolicy(window=16)
        self.start_from_zero = bool(start_from_zero)
        #: Telemetry bus; one aggregate ``search.run`` event per run.
        self.bus = bus if bus is not None else NULL_BUS

    def run(
        self,
        weights: WeightsLike,
        x0: np.ndarray,
        steps: int,
        seed: SeedLike = None,
        *,
        record_history: bool = False,
    ) -> SearchRecord:
        W, x_target, rng = self._prepare(weights, x0, steps, seed)
        n = W.shape[0]
        policy = self.policy.clone()

        ops = 0
        evaluated = 0
        if self.start_from_zero:
            state = SearchState.zeros(W)
            # Walking 0 → x0 evaluates n neighbors per flip here too: the
            # delta vector is live the whole way (Alg. 4 first half).
            best_e = state.energy
            best_x = state.x.copy()
            for k in np.flatnonzero(x_target):
                state.flip(int(k))
                ops += n
                evaluated += n
                best_e, best_x = _scan_best(state, best_e, best_x)
        else:
            state = SearchState.from_bits(W, x_target)
            ops += n * n
            evaluated += n  # the full delta vector exposes all neighbors
            best_e, best_x = _scan_best(state, state.energy, state.x.copy())

        history: list[int] = []
        for _ in range(steps):
            k = policy.select(state, rng)
            state.flip(k)  # Eq. (16): O(n), exposes n neighbor energies
            ops += n
            evaluated += n
            best_e, best_x = _scan_best(state, best_e, best_x)
            if record_history:
                history.append(best_e)

        bus = self.bus
        if bus.enabled:
            bus.counters.inc("search.flips", state.flips)
            bus.counters.inc("search.evaluated", evaluated)
            bus.emit(
                "search.run",
                steps=steps,
                flips=state.flips,
                evaluated=evaluated,
                best_energy=int(best_e),
            )
        return SearchRecord(
            best_x=best_x,
            best_energy=best_e,
            final_x=state.x.copy(),
            final_energy=state.energy,
            steps=steps,
            flips=state.flips,
            evaluated=evaluated,
            ops=ops,
            history=history,
        )
