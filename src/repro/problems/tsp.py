"""TSP → QUBO (paper §4.1.2) plus exact/heuristic tour references.

A ``c``-city symmetric TSP becomes a ``(c − 1)²``-bit QUBO: city 0 is
pinned to visit order 0 (the paper's Figure 7 omits one city for the
same reason), and bit ``(i, j)`` (city ``i ∈ 1..c−1``, order
``j ∈ 1..c−1``) means "city i is visited j-th".  One-hot row and column
constraints carry a penalty ``A = 2 · max distance`` (paper §4.1.2);
consecutive orders pay the travel distance, including the closing edges
through the fixed city.

Because QUBO weights must form a *symmetric integer* matrix, the whole
objective is scaled by :data:`TSP_SCALE` = 2 (an unordered bit pair
with objective coefficient ``q`` is stored as ``W_ij = W_ji = q``, so
the energy picks up ``2q``).  :meth:`TspQubo.energy_to_length` and
:meth:`TspQubo.length_to_energy` convert both ways.

Valid tours are ≥ 4 bit flips apart (two rows and two columns must
change), which is exactly why the paper calls TSP QUBOs hard instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.qubo.matrix import QuboMatrix
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_bit_vector

#: Global energy scale: ``E(X) = TSP_SCALE · (objective + penalties + const)``.
TSP_SCALE = 2


def _check_distance_matrix(dist: np.ndarray) -> np.ndarray:
    d = np.asarray(dist)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"distance matrix must be square, got shape {d.shape}")
    if d.shape[0] < 3:
        raise ValueError(f"TSP needs at least 3 cities, got {d.shape[0]}")
    if not np.issubdtype(d.dtype, np.integer):
        raise TypeError("distances must be integers (TSPLIB rounds to nint)")
    if (d < 0).any():
        raise ValueError("distances must be non-negative")
    if np.any(np.diagonal(d) != 0):
        raise ValueError("distance matrix diagonal must be zero")
    if not np.array_equal(d, d.T):
        raise ValueError("distance matrix must be symmetric")
    return d.astype(np.int64)


@dataclass(frozen=True)
class TspQubo:
    """A TSP instance compiled to QUBO, with decode helpers."""

    qubo: QuboMatrix
    dist: np.ndarray
    penalty: int

    @property
    def cities(self) -> int:
        """Number of cities ``c``."""
        return self.dist.shape[0]

    @property
    def n_bits(self) -> int:
        """``(c − 1)²``."""
        return (self.cities - 1) ** 2

    @property
    def constant(self) -> int:
        """Constant dropped from the QUBO: ``2 · A · (c − 1)``.

        Each of the ``2(c − 1)`` satisfied one-hot constraints
        contributes ``−A`` through its expanded linear/quadratic terms,
        so a valid tour's energy is
        ``TSP_SCALE · (length − constant)``.
        """
        return 2 * self.penalty * (self.cities - 1)

    def energy_to_length(self, energy: int) -> float:
        """Tour length implied by a **valid** solution's energy."""
        return energy / TSP_SCALE + self.constant

    def length_to_energy(self, length: int) -> int:
        """QUBO energy a valid tour of ``length`` attains (target maker)."""
        return TSP_SCALE * (int(length) - self.constant)


def tsp_to_qubo(dist: np.ndarray, *, penalty: int | None = None, name: str | None = None) -> TspQubo:
    """Compile a symmetric integer distance matrix to a QUBO.

    ``penalty`` defaults to the paper's ``2 · max distance``.
    """
    d = _check_distance_matrix(dist)
    c = d.shape[0]
    if penalty is None:
        penalty = 2 * int(d.max())
    if penalty <= 0:
        raise ValueError(f"penalty must be positive, got {penalty}")
    A = int(penalty)
    m = c - 1  # movable cities == movable positions
    N = m * m
    W = np.zeros((N, N), dtype=np.int64)
    Wv = W.reshape(m, m, m, m)  # axes: (city−1, pos−1, city'−1, pos'−1)

    d_sub = d[1:, 1:]  # distances among movable cities (zero diagonal)
    # Travel between consecutive interior positions j → j+1.
    for p in range(m - 1):
        Wv[:, p, :, p + 1] += d_sub
        Wv[:, p + 1, :, p] += d_sub
    # One-hot penalties: 2A on every same-row / same-column bit pair.
    off_diag = 2 * A * (1 - np.eye(m, dtype=np.int64))
    for i in range(m):
        Wv[i, :, i, :] += off_diag  # city i visited once
    for p in range(m):
        Wv[:, p, :, p] += off_diag  # position p filled once
    # Diagonal: linear terms ×TSP_SCALE.  Each bit belongs to one row
    # and one column constraint (−A each); the first/last positions add
    # the closing edges through the fixed city 0.
    lin = np.full((m, m), -2 * A, dtype=np.int64)
    lin[:, 0] += d[0, 1:]       # pos 1: edge from city 0
    lin[:, m - 1] += d[1:, 0]   # pos c−1: edge back to city 0
    diag = TSP_SCALE * lin.reshape(N)
    W[np.arange(N), np.arange(N)] = diag

    qubo = QuboMatrix(W, copy=False, check=False, name=name or f"tsp-{c}")
    return TspQubo(qubo=qubo, dist=d, penalty=A)


# ---------------------------------------------------------------------------
# Encoding / decoding
# ---------------------------------------------------------------------------

def decode_tour(x: np.ndarray, cities: int) -> list[int] | None:
    """Decode a bit vector into a tour ``[0, …]`` or ``None`` if invalid.

    Valid means every movable city appears exactly once and every
    position holds exactly one city.
    """
    m = cities - 1
    xb = check_bit_vector(x, m * m, "x").reshape(m, m)
    if not ((xb.sum(axis=1) == 1).all() and (xb.sum(axis=0) == 1).all()):
        return None
    order = np.argmax(xb, axis=0)  # position p → movable-city index
    return [0] + [int(order[p]) + 1 for p in range(m)]


def tour_to_bits(tour: list[int]) -> np.ndarray:
    """Encode a tour starting at city 0 into the QUBO bit vector."""
    c = len(tour)
    if c < 3:
        raise ValueError(f"tour must visit at least 3 cities, got {c}")
    if tour[0] != 0:
        raise ValueError("tour must start at the fixed city 0")
    if sorted(tour) != list(range(c)):
        raise ValueError("tour must visit every city exactly once")
    m = c - 1
    x = np.zeros((m, m), dtype=np.uint8)
    for pos, city in enumerate(tour[1:]):
        x[city - 1, pos] = 1
    return x.reshape(m * m)


def tour_length(dist: np.ndarray, tour: list[int]) -> int:
    """Closed-tour length under a distance matrix."""
    d = np.asarray(dist)
    c = len(tour)
    if sorted(tour) != list(range(d.shape[0])):
        raise ValueError("tour must visit every city exactly once")
    return int(sum(d[tour[i], tour[(i + 1) % c]] for i in range(c)))


# ---------------------------------------------------------------------------
# Reference solvers (for target values)
# ---------------------------------------------------------------------------

def held_karp(dist: np.ndarray) -> tuple[int, list[int]]:
    """Exact TSP by Held–Karp dynamic programming (c ≤ 17).

    O(2ᶜ·c²) time and O(2ᶜ·c) memory; provides the provably optimal
    targets for the small Table 1(b) analogues.
    """
    d = _check_distance_matrix(dist)
    c = d.shape[0]
    if c > 17:
        raise ValueError(f"held_karp supports c <= 17, got {c}")
    m = c - 1
    full = 1 << m
    INF = np.iinfo(np.int64).max // 4
    dp = np.full((full, m), INF, dtype=np.int64)
    parent = np.full((full, m), -1, dtype=np.int32)
    for j in range(m):
        dp[1 << j, j] = d[0, j + 1]
    for mask in range(1, full):
        members = [j for j in range(m) if mask >> j & 1]
        if len(members) < 2:
            continue
        for j in members:
            prev_mask = mask ^ (1 << j)
            cand = dp[prev_mask] + d[1:, j + 1]  # from every last city
            cand = np.where(
                [(prev_mask >> k) & 1 for k in range(m)], cand, INF
            )
            best = int(np.argmin(cand))
            if cand[best] < dp[mask, j]:
                dp[mask, j] = cand[best]
                parent[mask, j] = best
    closing = dp[full - 1] + d[1:, 0]
    last = int(np.argmin(closing))
    length = int(closing[last])
    # Reconstruct the tour backwards through the parent table.
    tour_rev = []
    mask, j = full - 1, last
    while j >= 0:
        tour_rev.append(j + 1)
        j2 = int(parent[mask, j])
        mask ^= 1 << j
        j = j2
    tour = [0] + tour_rev[::-1]
    return length, tour


def two_opt(
    dist: np.ndarray, *, seed: SeedLike = None, restarts: int = 4
) -> tuple[int, list[int]]:
    """Nearest-neighbour + 2-opt local search (reference for large c).

    Not exact; used to set "best-known"-style targets for instances too
    large for Held–Karp, in the same spirit as the paper's use of
    best-known TSPLIB values.
    """
    d = _check_distance_matrix(dist)
    c = d.shape[0]
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    rng = as_generator(seed)
    best_len, best_tour = None, None
    for _ in range(restarts):
        # Nearest-neighbour construction from a random start.
        start = int(rng.integers(c))
        unvisited = set(range(c)) - {start}
        tour = [start]
        while unvisited:
            last = tour[-1]
            nxt = min(unvisited, key=lambda v: d[last, v])
            tour.append(nxt)
            unvisited.remove(nxt)
        # 2-opt until no improving exchange remains.
        improved = True
        while improved:
            improved = False
            for i in range(1, c - 1):
                a, b = tour[i - 1], tour[i]
                # Vectorized gain over all j > i.
                js = np.arange(i + 1, c)
                cs = np.array([tour[j] for j in js])
                ds_next = np.array([tour[(j + 1) % c] for j in js])
                gain = (d[a, b] + d[cs, ds_next]) - (d[a, cs] + d[b, ds_next])
                pos = int(np.argmax(gain))
                if gain[pos] > 0:
                    j = int(js[pos])
                    tour[i : j + 1] = tour[i : j + 1][::-1]
                    improved = True
        # Rotate so city 0 leads (canonical form for tour_to_bits).
        z = tour.index(0)
        tour = tour[z:] + tour[:z]
        length = tour_length(d, tour)
        if best_len is None or length < best_len:
            best_len, best_tour = length, tour
    return int(best_len), list(best_tour)
