"""Tests for the energy function and the §2 difference identities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qubo.energy import (
    delta_single,
    delta_vector,
    energy,
    energy_batch,
    phi,
    update_delta_after_flip,
)
from repro.qubo.matrix import QuboMatrix


def _random_case(draw, max_n=12):
    n = draw(st.integers(2, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    upper = rng.integers(-100, 101, size=(n, n))
    W = np.triu(upper) + np.triu(upper, 1).T
    x = rng.integers(0, 2, size=n).astype(np.uint8)
    return W.astype(np.int64), x, rng


class TestPhi:
    def test_scalar(self):
        assert phi(0) == 1 and phi(1) == -1

    def test_array(self):
        out = phi(np.array([0, 1, 0], dtype=np.uint8))
        assert np.array_equal(out, [1, -1, 1])
        assert out.dtype == np.int64


class TestEnergy:
    def test_zero_vector_is_zero(self, small_qubo):
        assert energy(small_qubo, np.zeros(small_qubo.n, dtype=np.uint8)) == 0

    def test_single_bit_is_diagonal(self, small_qubo):
        for k in range(small_qubo.n):
            x = np.zeros(small_qubo.n, dtype=np.uint8)
            x[k] = 1
            assert energy(small_qubo, x) == small_qubo.W[k, k]

    def test_all_ones_is_total_sum(self, small_qubo):
        x = np.ones(small_qubo.n, dtype=np.uint8)
        assert energy(small_qubo, x) == small_qubo.W.sum()

    def test_wrong_length_rejected(self, small_qubo):
        with pytest.raises(ValueError):
            energy(small_qubo, np.zeros(small_qubo.n + 1, dtype=np.uint8))

    def test_figure1_example(self):
        # The paper's Figure 1: n=4 example with E(0111) worked out.
        W = np.array(
            [
                [-5, 6, -2, 3],
                [6, -4, 1, -3],
                [-2, 1, -3, 2],
                [3, -3, 2, -2],
            ]
        )
        # Verify a couple of assignments against direct expansion.
        for bits in ([1, 0, 0, 0], [1, 1, 0, 0], [0, 1, 1, 1]):
            x = np.array(bits, dtype=np.uint8)
            direct = sum(
                W[i, j] * bits[i] * bits[j] for i in range(4) for j in range(4)
            )
            assert energy(W, x) == direct


class TestEnergyBatch:
    def test_matches_scalar(self, small_qubo, rng):
        X = rng.integers(0, 2, size=(8, small_qubo.n), dtype=np.uint8)
        batch = energy_batch(small_qubo, X)
        for i in range(8):
            assert batch[i] == energy(small_qubo, X[i])

    def test_shape_validation(self, small_qubo):
        with pytest.raises(ValueError):
            energy_batch(small_qubo, np.zeros((3, small_qubo.n + 1), dtype=np.uint8))

    def test_dtype_is_int64(self, small_qubo, rng):
        X = rng.integers(0, 2, size=(2, small_qubo.n), dtype=np.uint8)
        assert energy_batch(small_qubo, X).dtype == np.int64


class TestDeltaIdentities:
    """Eq. (4)/(5): E(flip_k X) == E(X) + Δ_k(X) for every k."""

    @given(st.data())
    def test_delta_vector_matches_brute_force(self, data):
        W, x, _ = _random_case(data.draw)
        d = delta_vector(W, x)
        e = energy(W, x)
        for k in range(len(x)):
            flipped = x.copy()
            flipped[k] ^= 1
            assert e + d[k] == energy(W, flipped)

    @given(st.data())
    def test_delta_single_matches_vector(self, data):
        W, x, rng = _random_case(data.draw)
        d = delta_vector(W, x)
        k = int(rng.integers(len(x)))
        assert delta_single(W, x, k) == d[k]

    def test_delta_on_zero_vector_is_diagonal(self, small_qubo):
        x = np.zeros(small_qubo.n, dtype=np.uint8)
        assert np.array_equal(
            delta_vector(small_qubo, x), np.diagonal(small_qubo.W)
        )

    def test_delta_single_index_check(self, small_qubo):
        x = np.zeros(small_qubo.n, dtype=np.uint8)
        with pytest.raises(IndexError):
            delta_single(small_qubo, x, small_qubo.n)


class TestUpdateDeltaAfterFlip:
    """Eq. (6)/(16): the O(n) refresh stays consistent along walks."""

    @given(st.data())
    @settings(max_examples=25)
    def test_random_walk_consistency(self, data):
        W, x, rng = _random_case(data.draw)
        n = len(x)
        delta = delta_vector(W, x)
        e = energy(W, x)
        for _ in range(3 * n):
            k = int(rng.integers(n))
            e += update_delta_after_flip(W, x, delta, k)
        assert e == energy(W, x)
        assert np.array_equal(delta, delta_vector(W, x))

    def test_returns_applied_delta(self, small_qubo, rng):
        x = rng.integers(0, 2, small_qubo.n, dtype=np.uint8)
        delta = delta_vector(small_qubo, x)
        expect = int(delta[3])
        applied = update_delta_after_flip(small_qubo.W, x, delta, 3)
        assert applied == expect

    def test_double_flip_is_identity(self, small_qubo, rng):
        x = rng.integers(0, 2, small_qubo.n, dtype=np.uint8)
        x0 = x.copy()
        delta = delta_vector(small_qubo, x)
        d0 = delta.copy()
        a1 = update_delta_after_flip(small_qubo.W, x, delta, 5)
        a2 = update_delta_after_flip(small_qubo.W, x, delta, 5)
        assert a1 == -a2
        assert np.array_equal(x, x0)
        assert np.array_equal(delta, d0)

    def test_requires_int64_delta(self, small_qubo):
        x = np.zeros(small_qubo.n, dtype=np.uint8)
        with pytest.raises(TypeError):
            update_delta_after_flip(
                small_qubo.W, x, np.zeros(small_qubo.n, dtype=np.int32), 0
            )

    def test_shape_mismatch_rejected(self, small_qubo):
        x = np.zeros(small_qubo.n, dtype=np.uint8)
        with pytest.raises(ValueError):
            update_delta_after_flip(
                small_qubo.W, x, np.zeros(small_qubo.n + 1, dtype=np.int64), 0
            )

    def test_index_out_of_range(self, small_qubo):
        x = np.zeros(small_qubo.n, dtype=np.uint8)
        d = delta_vector(small_qubo, x)
        with pytest.raises(IndexError):
            update_delta_after_flip(small_qubo.W, x, d, -1)
