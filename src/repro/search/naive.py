"""Algorithm 1 — the naive local search with O(n²) search efficiency.

Each iteration picks a random bit, re-evaluates the flipped solution's
energy from scratch with Eq. (1), and applies the acceptance rule.  It
exists as the baseline rung of the efficiency ladder (Lemma 1) and as a
slow-but-obviously-correct oracle for tests.
"""

from __future__ import annotations

import numpy as np

from repro.qubo.energy import energy
from repro.qubo.matrix import WeightsLike
from repro.search.accept import AcceptRule, DescentAccept
from repro.search.base import LocalSearch, SearchRecord
from repro.utils.rng import SeedLike


class NaiveLocalSearch(LocalSearch):
    """Algorithm 1: full O(n²) re-evaluation per candidate.

    Parameters
    ----------
    accept:
        Acceptance rule for the ``Accept`` hook (default: strict
        descent, the simplest metaheuristic).
    """

    name = "naive (Alg. 1)"

    def __init__(self, accept: AcceptRule | None = None) -> None:
        self.accept_rule = accept or DescentAccept()

    def run(
        self,
        weights: WeightsLike,
        x0: np.ndarray,
        steps: int,
        seed: SeedLike = None,
        *,
        record_history: bool = False,
    ) -> SearchRecord:
        W, x, rng = self._prepare(weights, x0, steps, seed)
        n = W.shape[0]

        e = energy(W, x)
        ops = n * n  # initial full evaluation
        evaluated = 1
        best_x = x.copy()
        best_e = e
        flips = 0
        history: list[int] = []

        for _ in range(steps):
            k = int(rng.integers(n))
            x[k] ^= 1
            e_new = energy(W, x)  # O(n²) from scratch — the point of Alg. 1
            ops += n * n
            evaluated += 1
            if self.accept_rule.accept(e_new - e, rng):
                e = e_new
                flips += 1
                if e < best_e:
                    best_e = e
                    best_x = x.copy()
            else:
                x[k] ^= 1  # reject: undo
            self.accept_rule.step()
            if record_history:
                history.append(best_e)

        return SearchRecord(
            best_x=best_x,
            best_energy=best_e,
            final_x=x,
            final_energy=e,
            steps=steps,
            flips=flips,
            evaluated=evaluated,
            ops=ops,
            history=history,
        )
