"""One simulated GPU device executing the §3.2 loop.

Device steps (paper §3.2), realized on a
:class:`~repro.gpusim.engine.BulkSearchEngine`:

1. initialize every block from the zero vector (done by the engine);
2. read target solutions ``T``;
3. reset each block's best solution/energy;
4. (a) straight search from the current solution to ``T``,
   (b) bulk local search from ``T`` with a fixed number of flips;
5. report each block's best solution.

:meth:`DeviceSimulator.round` performs Steps 2–5 once for all blocks.
"""

from __future__ import annotations

import numpy as np

from repro.abs.adaptive import WindowAdapter
from repro.gpusim.engine import BulkSearchEngine
from repro.qubo.matrix import WeightsLike
from repro.search.tabu import TabuSearch
from repro.telemetry.bus import NULL_BUS, NullBus, TelemetryBus


class DeviceSimulator:
    """Wraps a bulk engine as one ABS device.

    Parameters
    ----------
    weights:
        Problem weights.
    n_blocks:
        CUDA blocks simulated by this device.
    windows:
        Per-block Figure-2 window sizes (see
        :func:`~repro.abs.config.resolve_windows`).
    local_steps:
        Fixed number of forced flips in Step 4b.
    scan_neighbors:
        Whether the straight-search phase also tracks the incumbent
        over all exposed neighbors.
    backend:
        Kernel backend for the engine (name, instance, or ``None`` for
        the environment/default resolution — see :mod:`repro.backends`).
    bus:
        Optional telemetry bus; the device emits one ``device.round``
        event per round (and hands the bus to its engine).
    device_id:
        Identifier stamped on emitted events (the GPU index).
    tabu_steps:
        Diverse-ABS variant knob: when positive, each round's best
        block solution gets a :class:`~repro.search.tabu.TabuSearch`
        polish of this many steps before Step 5 reports it (the
        engine's walk state is untouched — only the reported copy
        improves).  Steps spent here are tracked separately from the
        ``engine.*`` flip counters as ``variant.tabu_steps``.
    tabu_tenure:
        Tenure for the polish pass (``None``: the search's default).
    prepared:
        Optional PreparedWeights from a previous engine over the same
        weights and backend; skips backend prep (warm-fleet reuse).
    """

    def __init__(
        self,
        weights: WeightsLike,
        n_blocks: int,
        *,
        windows: int | np.ndarray = 16,
        local_steps: int = 32,
        scan_neighbors: bool = True,
        adapter: WindowAdapter | None = None,
        backend: str | None = None,
        bus: TelemetryBus | NullBus | None = None,
        device_id: int = 0,
        tabu_steps: int = 0,
        tabu_tenure: int | None = None,
        prepared: object | None = None,
    ) -> None:
        if local_steps < 0:
            raise ValueError(f"local_steps must be >= 0, got {local_steps}")
        if tabu_steps < 0:
            raise ValueError(f"tabu_steps must be >= 0, got {tabu_steps}")
        self.bus = bus if bus is not None else NULL_BUS
        self.device_id = int(device_id)
        self.engine = BulkSearchEngine(
            weights,
            n_blocks,
            windows=windows,
            backend=backend,
            bus=self.bus,
            prepared=prepared,
        )
        self.local_steps = int(local_steps)
        self.scan_neighbors = bool(scan_neighbors)
        self.adapter = adapter
        if adapter is not None and adapter.B != self.engine.B:
            raise ValueError(
                f"adapter manages {adapter.B} blocks, device has {self.engine.B}"
            )
        self._weights = weights
        self._polish_cache: object | None = None
        self.tabu_steps = 0
        self._tabu: TabuSearch | None = None
        self.set_tabu(tabu_steps, tabu_tenure)
        #: Total tabu-polish steps executed (``variant.tabu_steps``).
        self.tabu_steps_done = 0
        self.rounds = 0

    def set_tabu(self, steps: int, tenure: int | None = None) -> None:
        """(Re)configure the per-round tabu polish; ``0`` disables it."""
        if steps < 0:
            raise ValueError(f"tabu_steps must be >= 0, got {steps}")
        self.tabu_steps = int(steps)
        self._tabu = TabuSearch(tenure) if self.tabu_steps else None

    def _polish_weights(self) -> object:
        # The polish runs on the host side of the simulated device;
        # TabuSearch needs a dense matrix, so sparse problems are
        # densified once on first use (they are small by construction).
        if self._polish_cache is None:
            from repro.qubo.sparse import SparseQubo

            w = self._weights
            self._polish_cache = (
                w.to_dense() if isinstance(w, SparseQubo) else w
            )
        return self._polish_cache

    @property
    def n_blocks(self) -> int:
        """Number of simulated CUDA blocks."""
        return self.engine.B

    @property
    def evaluated(self) -> int:
        """Total solutions evaluated by this device (Definition 1)."""
        return self.engine.counters.evaluated

    def round(self, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Steps 2–5 for every block; returns ``(energies, best_x)``.

        ``targets`` has shape ``(n_blocks, n)`` — one GA target per
        block.  The walk position persists across rounds (iteration
        ``i`` starts from the final solution of iteration ``i − 1``,
        Figure 4), which is what keeps the search efficiency at O(1).

        The Step-5 gather is batched: ``energies`` is the ``(B,)``
        int64 per-block best energies and ``best_x`` the matching
        ``(B, n)`` uint8 solutions — two array copies instead of B
        per-block ``StoredSolution`` objects.
        """
        eng = self.engine
        c = eng.counters
        straight0, local0, eval0 = c.straight_flips, c.local_flips, c.evaluated
        retired0 = c.straight_retirements
        eng.reset_best()                                  # Step 3
        eng.straight_to(targets, scan_neighbors=self.scan_neighbors)  # 4a
        eng.local_steps(self.local_steps)                 # Step 4b
        self.rounds += 1
        bus = self.bus
        if bus.enabled:
            bus.emit(
                "device.round",
                device=self.device_id,
                round=self.rounds,
                straight_flips=c.straight_flips - straight0,
                retired=c.straight_retirements - retired0,
                local_flips=c.local_flips - local0,
                evaluated=c.evaluated - eval0,
                best_energy=int(eng.best_energy.min()),
            )
        if self.adapter is not None:
            # Future-work feature: blocks whose searches underperform
            # adopt (perturbed) windows from the best-performing blocks.
            self.adapter.observe(eng.best_energy)
            adapted = self.adapter.maybe_adapt(eng.windows)
            if adapted is not None:
                eng.windows = adapted
        energies, xs = eng.best_energy.copy(), eng.best_x.copy()  # Step 5
        if self._tabu is not None:
            # Diverse-ABS tabu variant: polish the round's best block
            # solution before reporting it.  Only the reported copy is
            # touched — the engine's walk state stays on its own
            # trajectory, like the paper's independent CPU search.
            b = int(energies.argmin())
            rec = self._tabu.run(
                self._polish_weights(), xs[b], self.tabu_steps, seed=0
            )
            self.tabu_steps_done += rec.steps
            if bus.enabled:
                bus.counters.inc("variant.tabu_steps", rec.steps)
            if rec.best_energy < energies[b]:
                energies[b] = rec.best_energy
                xs[b] = rec.best_x
        return energies, xs
