#!/usr/bin/env python3
"""Ising spin glasses via the Ising API (the paper's §1 framing).

Builds a 2-D Edwards–Anderson ±J spin glass and a small
Sherrington–Kirkpatrick instance, solves them through
``repro.api.solve_ising`` (QUBO conversion is handled internally), and
reports the spin configurations and Hamiltonians.

Run:  python examples/spin_glass.py
"""

from __future__ import annotations

import numpy as np

from repro.api import solve_ising
from repro.problems.spin_glass import edwards_anderson, sherrington_kirkpatrick


def main() -> None:
    # --- 6×6 Edwards–Anderson lattice glass -------------------------
    model, qubo, constant = edwards_anderson(6, 6, seed=3)
    res = solve_ising(model, time_limit=2.0, blocks_per_gpu=32, seed=1)
    up = int((res.spins == 1).sum())
    print(f"EA 6x6 torus glass : H = {res.hamiltonian:.0f}")
    print(f"  spins up/down    : {up} / {model.n - up}")
    # How many couplings did the ground-state candidate satisfy?
    J = model.J
    s = res.spins.astype(np.float64)
    satisfied = int(((J * np.outer(s, s))[np.triu_indices(model.n, 1)] > 0).sum())
    total = int((J[np.triu_indices(model.n, 1)] != 0).sum())
    print(f"  satisfied bonds  : {satisfied}/{total} (frustration keeps it < 100%)")

    # --- SK model ----------------------------------------------------
    model2, _, _ = sherrington_kirkpatrick(64, seed=7, couplings="gaussian")
    res2 = solve_ising(model2, time_limit=2.0, blocks_per_gpu=32, seed=2)
    print(f"SK n=64 (gaussian) : H = {res2.hamiltonian:.0f}")
    print(f"  magnetization    : {res2.spins.mean():+.3f} (≈ 0 for a glass)")
    assert model2.energy(res2.spins) == res2.hamiltonian


if __name__ == "__main__":
    main()
