"""Lossless conversion between QUBO and Ising formulations.

The paper (§1) notes the two are equivalent: a QUBO over bits
``x ∈ {0,1}ⁿ`` maps to an Ising model over spins ``s ∈ {−1,+1}ⁿ`` with
Hamiltonian ``H(s) = −Σ_{i<j} J_ij s_i s_j − Σ_i h_i s_i``.  With the
substitution ``x_i = (1 + s_i)/2`` (so ``s = +1 ↦ x = 1``) one gets

``E(X) = offset − Σ_{i<j} J_ij s_i s_j − Σ_i h_i s_i``

with ``J_ij = −W_ij/2`` (i ≠ j), ``h_i = −(Σ_j W_ij)/2``, and
``offset = (Σ_ij W_ij + Σ_i W_ii)/4``.  Coefficients are kept exact as
multiples of ¼ by storing them as float64 (all values are k/4 with
integer k, representable exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.qubo.matrix import QuboMatrix, WeightsLike, as_weight_matrix
from repro.utils.validation import check_bit_vector


@dataclass(frozen=True)
class IsingModel:
    """An Ising model ``H(s) = −Σ_{i<j} J_ij s_i s_j − Σ h_i s_i + offset``.

    ``J`` is symmetric with a zero diagonal; ``offset`` is a constant so
    that :meth:`energy` agrees exactly with the source QUBO's energy
    under the spin map ``s = 2x − 1``.
    """

    J: np.ndarray
    h: np.ndarray
    offset: float = 0.0

    def __post_init__(self) -> None:
        J = np.asarray(self.J, dtype=np.float64)
        h = np.asarray(self.h, dtype=np.float64)
        if J.ndim != 2 or J.shape[0] != J.shape[1]:
            raise ValueError(f"J must be square, got shape {J.shape}")
        if h.shape != (J.shape[0],):
            raise ValueError(
                f"h must have shape ({J.shape[0]},), got {h.shape}"
            )
        if not np.allclose(J, J.T):
            raise ValueError("J must be symmetric")
        if np.any(np.diagonal(J) != 0):
            raise ValueError("J must have a zero diagonal")
        object.__setattr__(self, "J", J)
        object.__setattr__(self, "h", h)

    @property
    def n(self) -> int:
        """Number of spins."""
        return self.J.shape[0]

    def energy(self, s: np.ndarray) -> float:
        """Hamiltonian value for a spin vector ``s ∈ {−1,+1}ⁿ``.

        Includes the ``offset`` term so the value equals the source
        QUBO energy of the corresponding bit vector.
        """
        s = np.asarray(s, dtype=np.float64)
        if s.shape != (self.n,):
            raise ValueError(f"s must have shape ({self.n},), got {s.shape}")
        if not np.isin(s, (-1.0, 1.0)).all():
            raise ValueError("spins must be ±1")
        # Σ_{i<j} J_ij s_i s_j == (sᵀJs)/2 because diag(J) == 0.
        coupling = float(s @ self.J @ s) / 2.0
        return self.offset - coupling - float(self.h @ s)

    def ground_state_bound(self) -> float:
        """A trivial lower bound: offset − Σ|J|/2 − Σ|h|."""
        return (
            self.offset
            - float(np.abs(self.J).sum()) / 2.0
            - float(np.abs(self.h).sum())
        )


def spins_to_bits(s: np.ndarray) -> np.ndarray:
    """Map spins ±1 to bits via ``x = (1 + s)/2`` (+1 ↦ 1)."""
    s = np.asarray(s)
    if not np.isin(s, (-1, 1)).all():
        raise ValueError("spins must be ±1")
    return ((1 + s) // 2).astype(np.uint8)


def bits_to_spins(x: np.ndarray) -> np.ndarray:
    """Map bits {0,1} to spins via ``s = 2x − 1`` (1 ↦ +1)."""
    xb = check_bit_vector(x)
    return (2 * xb.astype(np.int64) - 1).astype(np.int8)


def qubo_to_ising(weights: WeightsLike) -> IsingModel:
    """Convert a QUBO weight matrix to the equivalent Ising model.

    The returned model satisfies ``ising.energy(2x − 1) == E(x)``
    exactly for every bit vector ``x``.
    """
    W = as_weight_matrix(weights).astype(np.float64)
    n = W.shape[0]
    J = -W / 2.0
    np.fill_diagonal(J, 0.0)
    h = -W.sum(axis=1) / 2.0
    offset = (W.sum() + np.trace(W)) / 4.0
    return IsingModel(J=J, h=h, offset=float(offset))


def ising_to_qubo(model: IsingModel, *, name: str | None = None) -> tuple[QuboMatrix, float]:
    """Convert an Ising model back to a QUBO.

    Returns ``(qubo, constant)`` such that for every bit vector ``x``
    with spins ``s = 2x − 1``:

    ``model.energy(s) == E_qubo(x) + constant``

    The QUBO weights are integers when ``4·J`` and ``2·h`` are integral
    (always true for matrices produced by :func:`qubo_to_ising`);
    otherwise a :class:`ValueError` is raised — scale the model first.
    """
    n = model.n
    # Invert the forward map: W_ij = −2 J_ij (i≠j); then choose the
    # diagonal so the linear terms match: row_i = Σ_j W_ij and we need
    # h_i = −row_i/2  ⇒  W_ii = −2 h_i − Σ_{j≠i} W_ij.
    Wf = -2.0 * model.J
    off_diag_rowsum = Wf.sum(axis=1)  # diag(J)=0 so this is Σ_{j≠i}
    diag = -2.0 * model.h - off_diag_rowsum
    np.fill_diagonal(Wf, diag)
    if not np.allclose(Wf, np.round(Wf)):
        raise ValueError(
            "Ising coefficients do not yield integer QUBO weights; "
            "rescale J and h so that 2J and 2h are integral"
        )
    W = np.round(Wf).astype(np.int64)
    qubo = QuboMatrix(W, copy=False, check=True, name=name)
    # Constant = model.offset − forward-offset of the produced W.
    forward_offset = (W.sum() + np.trace(W)) / 4.0
    constant = float(model.offset - forward_offset)
    return qubo, constant
