"""The telemetry bus: guarded event emission + a counter registry.

Design constraints (see ``docs/observability.md`` for the contract):

- **Off by default, near-zero overhead.**  Every instrumented component
  holds a bus reference defaulting to the shared :data:`NULL_BUS`.  Hot
  paths guard with ``if bus.enabled:`` so a disabled run never builds an
  event payload; counter increments on the null bus are no-ops.
- **No per-flip Python calls.**  The vectorized engine emits one event
  per ``local_steps`` / ``straight_to`` batch, never per flip.
- **Determinism-neutral.**  The bus never touches any RNG stream and
  never feeds information back into the search; a seeded solve is
  bit-identical with telemetry on or off (pinned by
  ``tests/telemetry/test_pipeline.py``).

Counters on the bus accumulate for the bus's lifetime (a *session*);
the per-run snapshot a solve returns on
:attr:`~repro.abs.result.SolveResult.counters` is derived from component
state instead, so it is available even with telemetry disabled.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Protocol, runtime_checkable

from repro.telemetry.events import Event


@runtime_checkable
class Sink(Protocol):
    """Anything that can receive events from a bus."""

    def handle(self, event: Event) -> None: ...


class CounterRegistry:
    """Named monotone integer counters, keyed by dotted names."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` (default 1) to counter ``name``."""
        self._counts[name] = self._counts.get(name, 0) + int(value)

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """Name-sorted copy of all counters."""
        return dict(sorted(self._counts.items()))

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return f"CounterRegistry({len(self._counts)} counters)"


class _NullCounters(CounterRegistry):
    """Counter registry whose increments are no-ops (disabled telemetry)."""

    __slots__ = ()

    def inc(self, name: str, value: int = 1) -> None:  # noqa: ARG002
        pass


class TelemetryBus:
    """Dispatches events to attached sinks and hosts the session counters.

    Parameters
    ----------
    sinks:
        Initial sinks (more can be attached later).
    clock:
        Monotonic time source; injectable for tests.

    The bus is a context manager: ``with TelemetryBus([JsonlSink(p)]):``
    closes closeable sinks on exit.
    """

    enabled = True

    def __init__(
        self,
        sinks: tuple[Sink, ...] | list[Sink] = (),
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._sinks: list[Sink] = list(sinks)
        self._clock = clock
        self._t0 = clock()
        self._seq = 0
        self.counters = CounterRegistry()

    def attach(self, sink: Sink) -> Sink:
        """Add a sink; returns it so call sites can keep the reference."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Sink) -> None:
        """Remove a previously attached sink (no-op if absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    @property
    def sinks(self) -> tuple[Sink, ...]:
        """The currently attached sinks."""
        return tuple(self._sinks)

    def emit(self, name: str, /, **fields: Any) -> None:
        """Deliver one event to every sink.

        Call sites on hot paths must guard with ``if bus.enabled:`` so
        the kwargs dict is never built for a disabled bus.
        """
        self._seq += 1
        event = Event(name=name, t=self._clock() - self._t0, seq=self._seq, fields=fields)
        for sink in self._sinks:
            sink.handle(event)

    def close(self) -> None:
        """Close every sink that supports it (flushes JSONL writers)."""
        for sink in self._sinks:
            closer = getattr(sink, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "TelemetryBus":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullBus:
    """The disabled bus: every operation is a no-op.

    Shares the :class:`TelemetryBus` interface so instrumented code
    never branches on bus *type*, only on :attr:`enabled`.
    """

    enabled = False

    def __init__(self) -> None:
        self.counters: CounterRegistry = _NullCounters()

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return ()

    def attach(self, sink: Sink) -> Sink:
        return sink

    def detach(self, sink: Sink) -> None:
        pass

    def emit(self, name: str, /, **fields: Any) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullBus":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


class RelayBus:
    """An enabled bus that *buffers* events for cross-process relay.

    Worker processes cannot share the host's :class:`TelemetryBus` (its
    sinks hold file handles and in-memory lists that do not cross
    ``fork``/``spawn`` boundaries usefully).  Instead a worker builds a
    ``RelayBus``, hands it to its instrumented components, and ships
    :meth:`drain`'s ``(name, fields)`` pairs back with each result
    batch; the host re-emits them on the real bus — stamping the worker
    id — which assigns the authoritative timestamp and sequence number.

    Counter increments are accepted (components call
    ``bus.counters.inc`` unconditionally inside ``enabled`` guards) but
    deliberately dropped: the host reconciles session counters from the
    cumulative worker counter snapshots instead, which survive event
    loss and double-restart races.
    """

    enabled = True

    def __init__(self) -> None:
        self.counters = CounterRegistry()
        self._pending: list[tuple[str, dict[str, Any]]] = []

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return ()

    def attach(self, sink: Sink) -> Sink:
        return sink

    def detach(self, sink: Sink) -> None:
        pass

    def emit(self, name: str, /, **fields: Any) -> None:
        self._pending.append((name, fields))

    def drain(self) -> list[tuple[str, dict[str, Any]]]:
        """Take (and clear) the buffered ``(name, fields)`` pairs."""
        pending, self._pending = self._pending, []
        return pending

    def close(self) -> None:
        pass


class StampedBus:
    """A view of another bus that stamps fixed fields onto every event.

    The warm-fleet service wraps its shared bus in
    ``StampedBus(bus, job=<id>)`` for each job's solve, so one trace can
    interleave many jobs and still be teased apart per job.  Stamp
    fields must be declared in ``schema.STAMP_FIELDS`` — the validator
    accepts them on any event.  Counters, sinks, and :attr:`enabled`
    delegate to the wrapped bus; explicit event fields win over stamps
    on a name collision.
    """

    __slots__ = ("_inner", "_stamp")

    def __init__(self, inner: Any, **stamp: Any) -> None:
        self._inner = inner
        self._stamp = stamp

    @property
    def enabled(self) -> bool:
        return self._inner.enabled

    @property
    def counters(self) -> CounterRegistry:
        return self._inner.counters

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return self._inner.sinks

    def attach(self, sink: Sink) -> Sink:
        return self._inner.attach(sink)

    def detach(self, sink: Sink) -> None:
        self._inner.detach(sink)

    def emit(self, name: str, /, **fields: Any) -> None:
        self._inner.emit(name, **{**self._stamp, **fields})

    def close(self) -> None:
        # Closing a per-job view must not close the service's shared
        # sinks; the owner closes the inner bus.
        pass


#: Shared disabled bus — the default for every instrumented component.
NULL_BUS = NullBus()
