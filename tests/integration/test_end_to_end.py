"""End-to-end integration: problem formulation → ABS → decoded answer."""

import numpy as np
import pytest

from repro.abs import AbsConfig, AdaptiveBulkSearch
from repro.problems import (
    cut_value,
    decode_tour,
    held_karp,
    maxcut_to_qubo,
    partition_to_qubo,
    random_graph,
    tour_length,
    tsp_to_qubo,
)
from repro.problems.tsplib import euc_2d
from repro.qubo import QuboMatrix, energy
from repro.qubo import io as qio
from repro.search import solve_exact


class TestMaxCutPipeline:
    def test_abs_finds_optimal_cut_small(self):
        g = random_graph(18, 60, weighted=True, seed=1)
        q = maxcut_to_qubo(g)
        opt = solve_exact(q).energy
        cfg = AbsConfig(
            blocks_per_gpu=16, local_steps=24, pool_capacity=24,
            target_energy=opt, max_rounds=300, seed=2,
        )
        res = AdaptiveBulkSearch(q, cfg).solve("sync")
        assert res.reached_target
        assert cut_value(g, res.best_x) == -opt

    def test_larger_maxcut_improves_steadily(self):
        g = random_graph(200, 1200, weighted=False, seed=3)
        q = maxcut_to_qubo(g)
        cfg = AbsConfig(blocks_per_gpu=16, local_steps=40, max_rounds=40, seed=4)
        res = AdaptiveBulkSearch(q, cfg).solve("sync")
        cut = cut_value(g, res.best_x)
        assert cut == -res.best_energy
        # A random bipartition cuts ~half the edges; ABS must beat that
        # clearly (the true max cut is far above 50 %).
        assert cut > 0.55 * g.number_of_edges()


class TestTspPipeline:
    def test_abs_finds_optimal_tour(self):
        rng = np.random.default_rng(10)
        dist = euc_2d(rng.uniform(0, 100, (6, 2)))
        tq = tsp_to_qubo(dist)
        L_opt, _ = held_karp(dist)
        cfg = AbsConfig(
            blocks_per_gpu=24, local_steps=30, pool_capacity=32,
            target_energy=tq.length_to_energy(L_opt), max_rounds=600, seed=11,
        )
        res = AdaptiveBulkSearch(tq.qubo, cfg).solve("sync")
        assert res.reached_target
        tour = decode_tour(res.best_x, 6)
        assert tour is not None
        assert tour_length(dist, tour) == L_opt


class TestPartitionPipeline:
    def test_abs_finds_perfect_partition(self):
        vals = np.array([7, 3, 2, 5, 8, 5, 4, 6], dtype=np.int64)  # total 40
        q, offset = partition_to_qubo(vals)
        cfg = AbsConfig(
            blocks_per_gpu=16, local_steps=16, target_energy=-offset,
            max_rounds=400, seed=12,
        )
        res = AdaptiveBulkSearch(q, cfg).solve("sync")
        assert res.reached_target  # difference 0 exists and was found


class TestFilePipeline:
    def test_save_solve_load_cycle(self, tmp_path):
        q = QuboMatrix.random(20, seed=20)
        path = tmp_path / "inst.json"
        qio.save(q, path)
        loaded = qio.load(path)
        opt = solve_exact(loaded).energy
        cfg = AbsConfig(
            blocks_per_gpu=16, local_steps=16, target_energy=opt,
            max_rounds=300, seed=13,
        )
        res = AdaptiveBulkSearch(loaded, cfg).solve("sync")
        assert res.best_energy == opt
        assert energy(q, res.best_x) == opt
