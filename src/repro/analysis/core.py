"""Rule-registry AST lint framework behind ``python -m repro analyze``.

The framework is deliberately small: a :class:`Module` wraps one parsed
source file, a :class:`Rule` couples an id/description to a check
callable, and :func:`analyze_paths` parses a file set once, fans it out
to every selected rule, and filters the resulting :class:`Finding` list
through ``# repro: noqa[rule]`` suppressions.

Two rule scopes exist:

- ``module`` rules see one :class:`Module` at a time (optionally
  restricted to path fragments via ``Rule.path_parts``);
- ``project`` rules see the whole module set at once — needed for
  cross-file invariants like schema/emit-site consistency and
  ``AbsConfig`` plumbing.

Suppressions are line-scoped and rule-scoped: ``# repro: noqa[rule-id]``
on the flagged line silences that rule only; a bare ``# repro: noqa``
silences every rule on the line.  File-wide waivers are intentionally
not supported — a suppression should sit next to the code it excuses.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "FINDING_SCHEMA_VERSION",
    "Finding",
    "Module",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "analyze_paths",
    "get_rule",
    "load_module",
    "register_rule",
    "render_findings",
    "severity_rank",
]

#: Version of the JSON finding schema emitted by :func:`render_findings`.
#: Bump only on breaking changes to the per-finding keys; additive
#: top-level keys (like ``interleave``) do not bump it.
FINDING_SCHEMA_VERSION = 1

#: Recognized severities, least to most severe.  ``severity_rank``
#: indexes into this; ``analyze --fail-on`` thresholds against it.
SEVERITIES = ("note", "warning", "error")


def severity_rank(severity: str) -> int:
    """Position of ``severity`` in :data:`SEVERITIES` (unknown → error)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        return len(SEVERITIES) - 1

#: ``# repro: noqa`` or ``# repro: noqa[rule-a, rule-b]`` anywhere in a line.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s-]*)\])?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to a source location."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.severity}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class Module:
    """One parsed source file plus the context rules need.

    ``rel`` is the display path (relative to the analysis root when
    possible) used in findings; ``noqa`` maps line numbers to the set of
    suppressed rule ids on that line (``None`` = all rules).
    """

    path: Path
    rel: str
    source: str
    tree: ast.Module
    noqa: Mapping[int, set[str] | None] = field(default_factory=dict)

    def finding(
        self, node: ast.AST | int, rule: str, message: str, severity: str = "error"
    ) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(path=self.rel, line=line, rule=rule, message=message,
                       severity=severity)


ModuleCheck = Callable[[Module], Iterable[Finding]]
ProjectCheck = Callable[[Sequence[Module]], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A named invariant check.

    ``scope`` is ``"module"`` or ``"project"``.  For module rules,
    ``path_parts`` (POSIX path fragments, e.g. ``"repro/backends/"``)
    restricts which files the rule runs on; empty means every file.
    """

    id: str
    description: str
    scope: str
    check: ModuleCheck | ProjectCheck
    path_parts: tuple[str, ...] = ()

    def applies_to(self, module: Module) -> bool:
        if not self.path_parts:
            return True
        posix = module.path.as_posix()
        return any(part in posix for part in self.path_parts)


_RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    if rule.scope not in ("module", "project"):
        raise ValueError(f"rule {rule.id!r}: unknown scope {rule.scope!r}")
    _RULES[rule.id] = rule
    return rule


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by id (import triggers registration)."""
    from repro.analysis import rules as _rules  # noqa: F401  (registry side effect)

    return tuple(_RULES[k] for k in sorted(_RULES))


def get_rule(rule_id: str) -> Rule:
    from repro.analysis import rules as _rules  # noqa: F401  (registry side effect)

    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})") from None


def _parse_noqa(source: str) -> dict[int, set[str] | None]:
    table: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line or "noqa" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group(1)
        if rules is None:
            table[lineno] = None  # blanket: every rule suppressed
        else:
            ids = {r.strip() for r in rules.split(",") if r.strip()}
            existing = table.get(lineno)
            if existing is None and lineno in table:
                continue  # already blanket-suppressed
            table[lineno] = ids if existing is None else existing | ids
    return table


def load_module(path: Path, root: Path | None = None) -> Module | Finding:
    """Parse one file; returns a :class:`Finding` if it cannot be parsed."""
    try:
        rel = path.relative_to(root).as_posix() if root else path.as_posix()
    except ValueError:
        rel = path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return Finding(path=rel, line=line, rule="parse-error",
                       message=f"cannot analyze: {exc}")
    return Module(path=path, rel=rel, source=source, tree=tree,
                  noqa=_parse_noqa(source))


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _suppressed(finding: Finding, noqa: Mapping[int, set[str] | None]) -> bool:
    rules = noqa.get(finding.line, ...)
    if rules is ...:
        return False
    return rules is None or finding.rule in rules  # type: ignore[union-attr]


def analyze_paths(
    paths: Sequence[Path | str],
    *,
    rules: Sequence[Rule] | None = None,
    root: Path | str | None = None,
) -> list[Finding]:
    """Run ``rules`` (default: all) over every ``.py`` file under ``paths``.

    Findings are sorted by location and already filtered through each
    file's ``# repro: noqa`` table.  Unparseable files surface as
    ``parse-error`` findings rather than exceptions, so one bad file
    cannot hide findings in the rest of the tree.
    """
    selected = tuple(rules) if rules is not None else all_rules()
    root_path = Path(root).resolve() if root is not None else None
    modules: list[Module] = []
    findings: list[Finding] = []
    for path in iter_python_files([Path(p) for p in paths]):
        loaded = load_module(path.resolve(), root_path)
        if isinstance(loaded, Finding):
            findings.append(loaded)
        else:
            modules.append(loaded)

    noqa_by_rel = {m.rel: m.noqa for m in modules}
    raw: list[Finding] = []
    for rule in selected:
        if rule.scope == "module":
            check: ModuleCheck = rule.check  # type: ignore[assignment]
            for module in modules:
                if rule.applies_to(module):
                    raw.extend(check(module))
        else:
            project_check: ProjectCheck = rule.check  # type: ignore[assignment]
            raw.extend(project_check(modules))

    for finding in raw:
        if not _suppressed(finding, noqa_by_rel.get(finding.path, {})):
            findings.append(finding)
    return sorted(set(findings))


def render_findings(
    findings: Sequence[Finding],
    fmt: str = "text",
    extra: Mapping[str, object] | None = None,
) -> str:
    """Render findings as ``text`` (one ``file:line`` per row) or ``json``."""
    if fmt == "json":
        payload: dict[str, object] = {
            "schema_version": FINDING_SCHEMA_VERSION,
            "findings": [f.as_dict() for f in findings],
            "count": len(findings),
        }
        if extra:
            payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=True)
    lines = [f.format() for f in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)
