"""Tests for TSPLIB parsing and the synthetic catalog."""

import numpy as np
import pytest

from repro.problems.tsplib import (
    TSPLIB_CATALOG,
    TspInstance,
    TsplibFormatError,
    att_distance,
    ceil_2d,
    euc_2d,
    geo_distance,
    load_tsplib,
    man_2d,
    synthetic_instance,
)


class TestDistanceFunctions:
    def test_euc_2d_rounding(self):
        coords = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 1.4]])
        d = euc_2d(coords)
        assert d[0, 1] == 5
        assert d[0, 2] == 1  # 1.4 rounds to 1
        assert (np.diagonal(d) == 0).all()
        assert np.array_equal(d, d.T)

    def test_att_ceiling_behaviour(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0]])
        d = att_distance(coords)
        # sqrt(1/10) ≈ 0.316 → rounds to 0 → ceil to 1
        assert d[0, 1] == 1

    def test_ceil_2d_rounds_up(self):
        coords = np.array([[0.0, 0.0], [0.0, 1.4]])
        assert ceil_2d(coords)[0, 1] == 2
        assert ceil_2d(coords)[0, 0] == 0

    def test_man_2d(self):
        coords = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = man_2d(coords)
        assert d[0, 1] == 7
        assert np.array_equal(d, d.T)

    def test_ceil_2d_parser_integration(self, tmp_path):
        p = tmp_path / "c.tsp"
        p.write_text(
            "DIMENSION: 2\nEDGE_WEIGHT_TYPE: CEIL_2D\n"
            "NODE_COORD_SECTION\n1 0 0\n2 0 1.4\nEOF\n"
        )
        assert load_tsplib(p).dist[0, 1] == 2

    def test_geo_symmetric_zero_diagonal(self):
        coords = np.array([[38.24, 20.42], [39.57, 26.15], [40.56, 25.32]])
        d = geo_distance(coords)
        assert np.array_equal(d, d.T)
        assert (np.diagonal(d) == 0).all()
        assert (d[np.triu_indices(3, 1)] > 0).all()


class TestParser:
    def _write(self, tmp_path, text):
        p = tmp_path / "inst.tsp"
        p.write_text(text)
        return p

    def test_euc_2d_file(self, tmp_path):
        p = self._write(
            tmp_path,
            "NAME: tiny\nTYPE: TSP\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\n"
            "NODE_COORD_SECTION\n1 0 0\n2 3 4\n3 0 8\nEOF\n",
        )
        inst = load_tsplib(p)
        assert inst.name == "tiny"
        assert inst.cities == 3
        assert inst.dist[0, 1] == 5
        assert inst.dist[0, 2] == 8

    def test_explicit_full_matrix(self, tmp_path):
        p = self._write(
            tmp_path,
            "NAME: ex\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
            "EDGE_WEIGHT_FORMAT: FULL_MATRIX\nEDGE_WEIGHT_SECTION\n"
            "0 1 2\n1 0 3\n2 3 0\nEOF\n",
        )
        inst = load_tsplib(p)
        assert inst.dist[0, 2] == 2 and inst.dist[1, 2] == 3

    def test_explicit_upper_row(self, tmp_path):
        p = self._write(
            tmp_path,
            "NAME: up\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
            "EDGE_WEIGHT_FORMAT: UPPER_ROW\nEDGE_WEIGHT_SECTION\n"
            "7 8 9\nEOF\n",
        )
        inst = load_tsplib(p)
        assert inst.dist[0, 1] == 7 and inst.dist[0, 2] == 8 and inst.dist[1, 2] == 9
        assert np.array_equal(inst.dist, inst.dist.T)

    def test_explicit_lower_diag_row(self, tmp_path):
        p = self._write(
            tmp_path,
            "NAME: lo\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
            "EDGE_WEIGHT_FORMAT: LOWER_DIAG_ROW\nEDGE_WEIGHT_SECTION\n"
            "0 4 0 5 6 0\nEOF\n",
        )
        inst = load_tsplib(p)
        assert inst.dist[0, 1] == 4 and inst.dist[0, 2] == 5 and inst.dist[1, 2] == 6

    def test_missing_dimension(self, tmp_path):
        p = self._write(tmp_path, "NAME: x\nEDGE_WEIGHT_TYPE: EUC_2D\nEOF\n")
        with pytest.raises(TsplibFormatError, match="DIMENSION"):
            load_tsplib(p)

    def test_coord_count_mismatch(self, tmp_path):
        p = self._write(
            tmp_path,
            "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\nEOF\n",
        )
        with pytest.raises(TsplibFormatError, match="coords"):
            load_tsplib(p)

    def test_unsupported_type(self, tmp_path):
        p = self._write(tmp_path, "DIMENSION: 2\nEDGE_WEIGHT_TYPE: XRAY1\nEOF\n")
        with pytest.raises(TsplibFormatError, match="EDGE_WEIGHT_TYPE"):
            load_tsplib(p)

    def test_bad_weight_count(self, tmp_path):
        p = self._write(
            tmp_path,
            "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
            "EDGE_WEIGHT_FORMAT: FULL_MATRIX\nEDGE_WEIGHT_SECTION\n1 2\nEOF\n",
        )
        with pytest.raises(TsplibFormatError, match="FULL_MATRIX"):
            load_tsplib(p)

    def test_bad_coord_line(self, tmp_path):
        p = self._write(
            tmp_path,
            "DIMENSION: 1\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0\nEOF\n",
        )
        with pytest.raises(TsplibFormatError, match="coord"):
            load_tsplib(p)


class TestCatalog:
    def test_city_counts_match_paper(self):
        from repro.paperdata import TABLE_1B

        for row in TABLE_1B:
            spec = TSPLIB_CATALOG[row.problem]
            assert spec.cities == row.cities

    def test_bit_counts(self):
        assert synthetic_instance("ulysses16").n_bits == 225
        assert synthetic_instance("bayg29").n_bits == 784
        assert synthetic_instance("dantzig42").n_bits == 1681
        assert synthetic_instance("berlin52").n_bits == 2601
        # st70: (70−1)² = 4761; the paper prints 4621 (typo).
        assert synthetic_instance("st70").n_bits == 4761

    def test_deterministic(self):
        a = synthetic_instance("bayg29")
        b = synthetic_instance("bayg29")
        assert np.array_equal(a.dist, b.dist)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            synthetic_instance("nowhere99")

    def test_reference_length_exact_small(self):
        inst = synthetic_instance("ulysses16")
        from repro.problems.tsp import held_karp

        assert inst.reference_length() == held_karp(inst.dist)[0]

    def test_reference_length_heuristic_large(self):
        inst = synthetic_instance("bayg29")
        ref = inst.reference_length()
        assert ref > 0
