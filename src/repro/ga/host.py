"""Target-solution generation — the GA step of the host loop (§3.1 Step 4).

Each time devices return solutions, the host generates the same number
of fresh *target solutions* by applying a randomly chosen genetic
operator (mutation / uniform crossover / copy) to pool members.  Copy
is useful because the device restarts its best-tracking per target
(§3.2 Step 3), so re-searching around a good solution still makes
progress.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ga.operators import crossover_uniform, mutate, select_parent
from repro.ga.pool import SolutionPool
from repro.telemetry.bus import NULL_BUS, NullBus, TelemetryBus
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class GaConfig:
    """Operator mix and parameters for target generation.

    Attributes
    ----------
    p_mutation, p_crossover:
        Probabilities of the two non-trivial operators; the remainder
        is plain copy.  Must sum to at most 1.
    mutation_flips:
        Bits flipped per mutation (``None``: ``max(1, n // 16)``).
    elite_bias:
        Rank-selection bias (see :func:`~repro.ga.operators.select_parent`).
    """

    p_mutation: float = 0.45
    p_crossover: float = 0.45
    mutation_flips: int | None = None
    elite_bias: float = 2.0

    def __post_init__(self) -> None:
        check_probability(self.p_mutation, "p_mutation")
        check_probability(self.p_crossover, "p_crossover")
        if self.p_mutation + self.p_crossover > 1.0 + 1e-12:
            raise ValueError(
                "p_mutation + p_crossover must not exceed 1 "
                f"(got {self.p_mutation} + {self.p_crossover})"
            )
        if self.elite_bias <= 0:
            raise ValueError(f"elite_bias must be positive, got {self.elite_bias}")


class TargetGenerator:
    """Produces GA target solutions from a :class:`SolutionPool`."""

    def __init__(
        self,
        pool: SolutionPool,
        config: GaConfig | None = None,
        seed: SeedLike = None,
        *,
        bus: TelemetryBus | NullBus | None = None,
    ) -> None:
        self.pool = pool
        self.config = config or GaConfig()
        self._rng = as_generator(seed)
        self._bus = bus if bus is not None else NULL_BUS
        #: Operator usage counters (diagnostics).
        self.counts = {"mutation": 0, "crossover": 0, "copy": 0}

    def generate_one(self) -> np.ndarray:
        """One new target via a randomly chosen operator."""
        cfg = self.config
        rng = self._rng
        u = rng.random()
        parent = select_parent(self.pool, rng, elite_bias=cfg.elite_bias)
        if u < cfg.p_mutation:
            self.counts["mutation"] += 1
            self._bus.counters.inc("ga.mutation")
            return mutate(parent, rng, cfg.mutation_flips)
        if u < cfg.p_mutation + cfg.p_crossover and len(self.pool) >= 2:
            self.counts["crossover"] += 1
            self._bus.counters.inc("ga.crossover")
            other = select_parent(self.pool, rng, elite_bias=cfg.elite_bias)
            return crossover_uniform(parent, other, rng)
        self.counts["copy"] += 1
        self._bus.counters.inc("ga.copy")
        return parent.copy()

    def generate(self, count: int) -> list[np.ndarray]:
        """``count`` new targets (the paper matches the number of newly
        arrived device solutions)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.generate_one() for _ in range(count)]
