"""Tests for the sparse QUBO backend."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse as sp

from repro.qubo import QuboMatrix, SearchState, SparseQubo
from repro.qubo.energy import delta_single, delta_vector, energy, update_delta_after_flip


def make_pair(n=24, seed=0, density=0.2):
    """A dense matrix and its sparse twin."""
    rng = np.random.default_rng(seed)
    W = rng.integers(-50, 51, size=(n, n))
    W = np.triu(W) + np.triu(W, 1).T
    mask = rng.random((n, n)) < density
    mask = np.triu(mask) | np.triu(mask).T
    np.fill_diagonal(mask, True)
    W = (W * mask).astype(np.int64)
    dense = QuboMatrix(W)
    return dense, SparseQubo.from_dense(dense)


class TestConstruction:
    def test_from_dense_roundtrip(self):
        dense, sparse = make_pair()
        assert sparse.to_dense() == dense
        assert sparse.n == dense.n
        assert sparse.name == dense.name

    def test_rejects_asymmetric(self):
        off = sp.csr_array(np.array([[0, 1], [2, 0]]))
        with pytest.raises(ValueError, match="symmetric"):
            SparseQubo(off, np.zeros(2, dtype=np.int64))

    def test_rejects_nonzero_offdiag_diagonal(self):
        off = sp.csr_array(np.eye(2, dtype=np.int64))
        with pytest.raises(ValueError, match="empty diagonal"):
            SparseQubo(off, np.zeros(2, dtype=np.int64))

    def test_rejects_float_data(self):
        off = sp.csr_array(np.zeros((2, 2)))
        with pytest.raises(TypeError, match="integer"):
            SparseQubo(off, np.zeros(2, dtype=np.int64))

    def test_rejects_wrong_diag_shape(self):
        off = sp.csr_array(np.zeros((3, 3), dtype=np.int64))
        with pytest.raises(ValueError, match="diag"):
            SparseQubo(off, np.zeros(2, dtype=np.int64))

    def test_from_dense_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            SparseQubo.from_dense(np.array([[0, 1], [2, 0]]))

    def test_from_graph_terms(self):
        sq = SparseQubo.from_graph_terms(
            4,
            diag=np.array([1, 2, 3, 4]),
            rows=np.array([0, 1]),
            cols=np.array([2, 3]),
            vals=np.array([5, -7]),
        )
        dense = sq.to_dense()
        assert dense.W[0, 2] == 5 and dense.W[2, 0] == 5
        assert dense.W[1, 3] == -7
        assert dense.W[0, 0] == 1 and dense.W[3, 3] == 4

    def test_from_graph_terms_validation(self):
        with pytest.raises(ValueError, match="off-diagonal"):
            SparseQubo.from_graph_terms(
                3, np.zeros(3), np.array([1]), np.array([1]), np.array([2])
            )
        with pytest.raises(IndexError):
            SparseQubo.from_graph_terms(
                3, np.zeros(3), np.array([0]), np.array([5]), np.array([2])
            )
        with pytest.raises(ValueError, match="shapes"):
            SparseQubo.from_graph_terms(
                3, np.zeros(3), np.array([0]), np.array([1, 2]), np.array([2])
            )

    def test_metadata(self):
        _, sparse = make_pair()
        assert sparse.nnz >= 0
        assert 0 < sparse.density() <= 1
        assert sparse.nbytes > 0
        assert "SparseQubo" in repr(sparse)


class TestEnergyEquivalence:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25)
    def test_energy_matches_dense(self, seed):
        dense, sparse = make_pair(seed=seed % 1000)
        x = np.random.default_rng(seed).integers(0, 2, dense.n, dtype=np.uint8)
        assert sparse.energy(x) == energy(dense, x)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25)
    def test_delta_vector_matches_dense(self, seed):
        dense, sparse = make_pair(seed=seed % 1000)
        x = np.random.default_rng(seed).integers(0, 2, dense.n, dtype=np.uint8)
        assert np.array_equal(sparse.delta_vector(x), delta_vector(dense, x))

    def test_dispatch_through_energy_module(self):
        dense, sparse = make_pair(seed=3)
        x = np.random.default_rng(3).integers(0, 2, dense.n, dtype=np.uint8)
        assert energy(sparse, x) == energy(dense, x)
        assert np.array_equal(delta_vector(sparse, x), delta_vector(dense, x))
        assert delta_single(sparse, x, 5) == delta_single(dense, x, 5)

    def test_update_after_flip_matches_dense(self):
        dense, sparse = make_pair(seed=4)
        rng = np.random.default_rng(4)
        xd = rng.integers(0, 2, dense.n, dtype=np.uint8)
        xs = xd.copy()
        dd = delta_vector(dense, xd)
        ds = dd.copy()
        for _ in range(60):
            k = int(rng.integers(dense.n))
            a1 = update_delta_after_flip(dense.W, xd, dd, k)
            a2 = sparse.update_delta_after_flip(xs, ds, k)
            assert a1 == a2
        assert np.array_equal(xd, xs)
        assert np.array_equal(dd, ds)

    def test_row_accessor(self):
        dense, sparse = make_pair(seed=5)
        for k in range(dense.n):
            cols, vals = sparse.row(k)
            expect = dense.W[k].copy()
            expect[k] = 0
            got = np.zeros(dense.n, dtype=np.int64)
            got[cols] = vals
            assert np.array_equal(got, expect)


class TestSearchStateIntegration:
    def test_state_with_sparse_weights(self):
        _, sparse = make_pair(seed=6)
        st_ = SearchState.zeros(sparse)
        assert np.array_equal(st_.delta, sparse.diag)
        for k in (0, 3, 3, 11, 7):
            st_.flip(k)
        st_.validate()

    def test_from_bits_sparse(self):
        dense, sparse = make_pair(seed=7)
        x = np.random.default_rng(7).integers(0, 2, dense.n, dtype=np.uint8)
        a = SearchState.from_bits(dense, x)
        b = SearchState.from_bits(sparse, x)
        assert a.energy == b.energy
        assert np.array_equal(a.delta, b.delta)

    def test_validation_errors(self):
        _, sparse = make_pair()
        x = np.zeros(sparse.n, dtype=np.uint8)
        with pytest.raises(TypeError, match="int64"):
            sparse.update_delta_after_flip(x, np.zeros(sparse.n, dtype=np.int32), 0)
        with pytest.raises(ValueError, match="length"):
            sparse.update_delta_after_flip(x, np.zeros(sparse.n + 1, dtype=np.int64), 0)
        with pytest.raises(IndexError):
            sparse.update_delta_after_flip(x, np.zeros(sparse.n, dtype=np.int64), -1)
