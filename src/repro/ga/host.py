"""Target-solution generation — the GA step of the host loop (§3.1 Step 4).

Each time devices return solutions, the host generates the same number
of fresh *target solutions* by applying a randomly chosen genetic
operator (mutation / uniform crossover / copy) to pool members.  Copy
is useful because the device restarts its best-tracking per target
(§3.2 Step 3), so re-searching around a good solution still makes
progress.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ga.operators import (
    crossover_uniform,
    crossover_uniform_batch,
    mutate,
    mutate_batch,
    select_parent,
    select_parent_ranks,
)
from repro.ga.pool import SolutionPool
from repro.telemetry.bus import NULL_BUS, NullBus, TelemetryBus
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class GaConfig:
    """Operator mix and parameters for target generation.

    Attributes
    ----------
    p_mutation, p_crossover:
        Probabilities of the two non-trivial operators; the remainder
        is plain copy.  Must sum to at most 1.
    mutation_flips:
        Bits flipped per mutation (``None``: ``max(1, n // 16)``).
    elite_bias:
        Rank-selection bias (see :func:`~repro.ga.operators.select_parent`).
    """

    p_mutation: float = 0.45
    p_crossover: float = 0.45
    mutation_flips: int | None = None
    elite_bias: float = 2.0

    def __post_init__(self) -> None:
        check_probability(self.p_mutation, "p_mutation")
        check_probability(self.p_crossover, "p_crossover")
        if self.p_mutation + self.p_crossover > 1.0 + 1e-12:
            raise ValueError(
                "p_mutation + p_crossover must not exceed 1 "
                f"(got {self.p_mutation} + {self.p_crossover})"
            )
        if self.elite_bias <= 0:
            raise ValueError(f"elite_bias must be positive, got {self.elite_bias}")


class TargetGenerator:
    """Produces GA target solutions from a :class:`SolutionPool`."""

    def __init__(
        self,
        pool: SolutionPool,
        config: GaConfig | None = None,
        seed: SeedLike = None,
        *,
        bus: TelemetryBus | NullBus | None = None,
    ) -> None:
        self.pool = pool
        self.config = config or GaConfig()
        self._rng = as_generator(seed)
        self._bus = bus if bus is not None else NULL_BUS
        #: Operator usage counters (diagnostics).
        self.counts = {"mutation": 0, "crossover": 0, "copy": 0}

    def generate_one(self) -> np.ndarray:
        """One new target via a randomly chosen operator."""
        cfg = self.config
        rng = self._rng
        u = rng.random()
        parent = select_parent(self.pool, rng, elite_bias=cfg.elite_bias)
        if u < cfg.p_mutation:
            self.counts["mutation"] += 1
            self._bus.counters.inc("ga.mutation")
            return mutate(parent, rng, cfg.mutation_flips)
        if u < cfg.p_mutation + cfg.p_crossover and len(self.pool) >= 2:
            self.counts["crossover"] += 1
            self._bus.counters.inc("ga.crossover")
            other = select_parent(self.pool, rng, elite_bias=cfg.elite_bias)
            return crossover_uniform(parent, other, rng)
        self.counts["copy"] += 1
        self._bus.counters.inc("ga.copy")
        return parent.copy()

    def generate(self, count: int) -> np.ndarray:
        """``count`` new targets as one ``(count, n)`` uint8 matrix.

        (The paper matches the number of newly arrived device
        solutions.)  Fully vectorized: one RNG draw decides every
        row's operator, one batched draw selects all parents, and the
        mutation / crossover rows are produced by the ``*_batch``
        operators — no per-target Python loop.  Draws from the RNG in
        a different order than ``count`` :meth:`generate_one` calls,
        so the two paths give different (equally valid) targets for
        the same seed; :meth:`generate_scalar` keeps the scalar order
        available for equivalence tests and benchmarks.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        pool = self.pool
        n = pool.n
        if count == 0:
            return np.zeros((0, n), dtype=np.uint8)
        m = len(pool)
        if m == 0:
            raise IndexError("cannot select a parent from an empty pool")
        cfg = self.config
        rng = self._rng
        u = rng.random(count)
        pool_mat = pool.as_matrix()
        ranks = select_parent_ranks(m, rng.random(count), cfg.elite_bias)
        out = pool_mat[ranks]  # fancy indexing copies: rows are children
        is_mut = u < cfg.p_mutation
        is_cross = (
            ~is_mut & (u < cfg.p_mutation + cfg.p_crossover) & (m >= 2)
        )
        k_cross = int(is_cross.sum())
        if k_cross:
            ranks2 = select_parent_ranks(m, rng.random(k_cross), cfg.elite_bias)
            out[is_cross] = crossover_uniform_batch(
                out[is_cross], pool_mat[ranks2], rng
            )
        k_mut = int(is_mut.sum())
        if k_mut:
            out[is_mut] = mutate_batch(out[is_mut], rng, cfg.mutation_flips)
        k_copy = count - k_mut - k_cross
        self.counts["mutation"] += k_mut
        self.counts["crossover"] += k_cross
        self.counts["copy"] += k_copy
        bus = self._bus
        if bus.enabled:
            if k_mut:
                bus.counters.inc("ga.mutation", k_mut)
            if k_cross:
                bus.counters.inc("ga.crossover", k_cross)
            if k_copy:
                bus.counters.inc("ga.copy", k_copy)
        return np.ascontiguousarray(out)

    def generate_scalar(self, count: int) -> np.ndarray:
        """``count`` targets via the scalar per-row path.

        Same return shape as :meth:`generate`; used by the equivalence
        tests and as the baseline lane of ``bench_exchange``.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return np.zeros((0, self.pool.n), dtype=np.uint8)
        return np.stack([self.generate_one() for _ in range(count)])
