"""Local-search algorithms (paper §2) and classical baselines.

The paper develops a ladder of local searches distinguished by their
*search efficiency* (Definition 1: operations spent per evaluated
solution):

====================  =======================  ============================
Module                Paper                    Search efficiency
====================  =======================  ============================
:mod:`.naive`         Algorithm 1              O(n²)       (Lemma 1)
:mod:`.onestep`       Algorithm 2              O(n + n²/m) (Lemma 2)
:mod:`.deltasearch`   Algorithm 3              O(n)        (Lemma 3)
:mod:`.bulk`          Algorithm 4 (proposed)   O(1)        (Theorem 1)
:mod:`.straight`      Algorithm 5 (straight)   O(1) amortized
====================  =======================  ============================

:mod:`.sa` and :mod:`.tabu` are the classical baselines used in the
Table 3 comparison; :mod:`.exact` provides ground truth for small n.
Every algorithm counts its arithmetic work so the Lemma/Theorem scaling
claims can be verified empirically (``benchmarks/bench_ablation_efficiency``).
"""

from repro.search.accept import AcceptRule, AlwaysAccept, DescentAccept, MetropolisAccept
from repro.search.base import LocalSearch, SearchRecord
from repro.search.bulk import BulkLocalSearch
from repro.search.deltasearch import DeltaLocalSearch
from repro.search.exact import ExactSolution, solve_exact
from repro.search.naive import NaiveLocalSearch
from repro.search.onestep import OneStepLocalSearch
from repro.search.portfolio import PortfolioOutcome, PortfolioSearch
from repro.search.policies import (
    GreedyPolicy,
    RandomPolicy,
    SelectionPolicy,
    WindowMinDeltaPolicy,
)
from repro.search.sa import CoolingSchedule, GeometricSchedule, LinearSchedule, SimulatedAnnealing
from repro.search.straight import straight_search
from repro.search.tabu import TabuSearch

__all__ = [
    "LocalSearch",
    "SearchRecord",
    "NaiveLocalSearch",
    "OneStepLocalSearch",
    "DeltaLocalSearch",
    "BulkLocalSearch",
    "straight_search",
    "SelectionPolicy",
    "WindowMinDeltaPolicy",
    "GreedyPolicy",
    "RandomPolicy",
    "AcceptRule",
    "AlwaysAccept",
    "DescentAccept",
    "MetropolisAccept",
    "SimulatedAnnealing",
    "CoolingSchedule",
    "GeometricSchedule",
    "LinearSchedule",
    "TabuSearch",
    "PortfolioSearch",
    "PortfolioOutcome",
    "solve_exact",
    "ExactSolution",
]
